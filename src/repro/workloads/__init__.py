"""Every workload of the paper's evaluation (§5, §6).

* :mod:`repro.workloads.kernels` — the five fundamental computational
  kernels of §6.1 (MM, Jacobi, Histogram, Query, SpMV),
* :mod:`repro.workloads.polybench` — all 30 Polybench kernels of §5 as
  data-centric programs with loop- and NumPy-reference implementations,
* :mod:`repro.workloads.bfs` — the data-driven push-based BFS of §6.3
  (Fig. 16) and its transformation chain,
* :mod:`repro.workloads.sse` — the OMEN scattering-self-energy
  computation of §6.4 (Fig. 18) with its baselines.

Modules import lazily so that using one workload does not pull in the
whole corpus.
"""

import importlib

__all__ = ["bfs", "kernels", "polybench", "sse"]


def __getattr__(name):
    if name in __all__:
        return importlib.import_module(f"repro.workloads.{name}")
    raise AttributeError(name)
