"""PolyBench stencil kernels: jacobi-1d, jacobi-2d, seidel-2d, heat-3d,
fdtd-2d, adi, deriche."""

from __future__ import annotations

from typing import Dict

import numpy as np

import repro as rp
from repro.workloads.polybench import PolybenchKernel, register

N = rp.symbol("N")
NX, NY = rp.symbol("NX"), rp.symbol("NY")
TSTEPS = rp.symbol("TSTEPS")
W, H = rp.symbol("W"), rp.symbol("H")


# ---------------------------------------------------------------- jacobi-1d
def _jacobi1d_sdfg():
    @rp.program
    def jacobi1d(A: rp.float64[N], B: rp.float64[N], TSTEPS: rp.int64):
        for t in range(TSTEPS):
            for i in rp.map[1 : N - 1]:
                B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1])
            for i in rp.map[1 : N - 1]:
                A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1])

    jacobi1d._sdfg = None
    return jacobi1d.to_sdfg()


def _jacobi1d_data(s):
    n = s["N"]
    i = np.arange(n, dtype=np.float64)
    return {"A": (i + 2) / n, "B": (i + 3) / n}


def _jacobi1d_loops(d, s):
    A, B = d["A"], d["B"]
    for t in range(s["TSTEPS"]):
        for i in range(1, s["N"] - 1):
            B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1])
        for i in range(1, s["N"] - 1):
            A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1])


def _jacobi1d_numpy(d, s):
    A, B = d["A"], d["B"]
    for t in range(s["TSTEPS"]):
        B[1:-1] = 0.33333 * (A[:-2] + A[1:-1] + A[2:])
        A[1:-1] = 0.33333 * (B[:-2] + B[1:-1] + B[2:])


register(PolybenchKernel(
    "jacobi-1d", _jacobi1d_sdfg, _jacobi1d_data, _jacobi1d_loops, _jacobi1d_numpy,
    sizes={"N": 400, "TSTEPS": 20}, outputs=("A", "B"), extra_symbols=("TSTEPS",),
))


# ---------------------------------------------------------------- jacobi-2d
def _jacobi2d_sdfg():
    @rp.program
    def jacobi2d(A: rp.float64[N, N], B: rp.float64[N, N], TSTEPS: rp.int64):
        for t in range(TSTEPS):
            for i, j in rp.map[1 : N - 1, 1 : N - 1]:
                B[i, j] = 0.2 * (A[i, j] + A[i, j - 1] + A[i, j + 1] + A[i + 1, j] + A[i - 1, j])
            for i, j in rp.map[1 : N - 1, 1 : N - 1]:
                A[i, j] = 0.2 * (B[i, j] + B[i, j - 1] + B[i, j + 1] + B[i + 1, j] + B[i - 1, j])

    jacobi2d._sdfg = None
    return jacobi2d.to_sdfg()


def _jacobi2d_data(s):
    n = s["N"]
    i, j = np.indices((n, n)).astype(np.float64)
    return {"A": i * (j + 2) / n, "B": i * (j + 3) / n}


def _jacobi2d_loops(d, s):
    A, B = d["A"], d["B"]
    n = s["N"]
    for t in range(s["TSTEPS"]):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                B[i, j] = 0.2 * (A[i, j] + A[i, j - 1] + A[i, j + 1] + A[i + 1, j] + A[i - 1, j])
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                A[i, j] = 0.2 * (B[i, j] + B[i, j - 1] + B[i, j + 1] + B[i + 1, j] + B[i - 1, j])


def _jacobi2d_numpy(d, s):
    A, B = d["A"], d["B"]
    for t in range(s["TSTEPS"]):
        B[1:-1, 1:-1] = 0.2 * (
            A[1:-1, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:] + A[2:, 1:-1] + A[:-2, 1:-1]
        )
        A[1:-1, 1:-1] = 0.2 * (
            B[1:-1, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:] + B[2:, 1:-1] + B[:-2, 1:-1]
        )


register(PolybenchKernel(
    "jacobi-2d", _jacobi2d_sdfg, _jacobi2d_data, _jacobi2d_loops, _jacobi2d_numpy,
    sizes={"N": 60, "TSTEPS": 10}, outputs=("A", "B"), extra_symbols=("TSTEPS",),
))


# ---------------------------------------------------------------- seidel-2d
def _seidel2d_sdfg():
    @rp.program
    def seidel2d(A: rp.float64[N, N], TSTEPS: rp.int64):
        for t in range(TSTEPS):
            for i in range(1, N - 1):
                for j in range(1, N - 1):
                    A[i, j] = (
                        A[i - 1, j - 1] + A[i - 1, j] + A[i - 1, j + 1]
                        + A[i, j - 1] + A[i, j] + A[i, j + 1]
                        + A[i + 1, j - 1] + A[i + 1, j] + A[i + 1, j + 1]
                    ) / 9.0

    seidel2d._sdfg = None
    return seidel2d.to_sdfg()


def _seidel2d_data(s):
    n = s["N"]
    i, j = np.indices((n, n)).astype(np.float64)
    return {"A": (i * (j + 2) + 2) / n}


def _seidel2d_loops(d, s):
    A = d["A"]
    n = s["N"]
    for t in range(s["TSTEPS"]):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                A[i, j] = (
                    A[i - 1, j - 1] + A[i - 1, j] + A[i - 1, j + 1]
                    + A[i, j - 1] + A[i, j] + A[i, j + 1]
                    + A[i + 1, j - 1] + A[i + 1, j] + A[i + 1, j + 1]
                ) / 9.0


_seidel2d_numpy = _seidel2d_loops  # inherently sequential (Gauss-Seidel)

register(PolybenchKernel(
    "seidel-2d", _seidel2d_sdfg, _seidel2d_data, _seidel2d_loops, _seidel2d_numpy,
    sizes={"N": 16, "TSTEPS": 2}, outputs=("A",), extra_symbols=("TSTEPS",),
))


# ------------------------------------------------------------------ heat-3d
def _heat3d_sdfg():
    @rp.program
    def heat3d(A: rp.float64[N, N, N], B: rp.float64[N, N, N], TSTEPS: rp.int64):
        for t in range(TSTEPS):
            for i, j, k in rp.map[1 : N - 1, 1 : N - 1, 1 : N - 1]:
                B[i, j, k] = (
                    0.125 * (A[i + 1, j, k] - 2.0 * A[i, j, k] + A[i - 1, j, k])
                    + 0.125 * (A[i, j + 1, k] - 2.0 * A[i, j, k] + A[i, j - 1, k])
                    + 0.125 * (A[i, j, k + 1] - 2.0 * A[i, j, k] + A[i, j, k - 1])
                    + A[i, j, k]
                )
            for i, j, k in rp.map[1 : N - 1, 1 : N - 1, 1 : N - 1]:
                A[i, j, k] = (
                    0.125 * (B[i + 1, j, k] - 2.0 * B[i, j, k] + B[i - 1, j, k])
                    + 0.125 * (B[i, j + 1, k] - 2.0 * B[i, j, k] + B[i, j - 1, k])
                    + 0.125 * (B[i, j, k + 1] - 2.0 * B[i, j, k] + B[i, j, k - 1])
                    + B[i, j, k]
                )

    heat3d._sdfg = None
    return heat3d.to_sdfg()


def _heat3d_data(s):
    n = s["N"]
    i, j, k = np.indices((n, n, n)).astype(np.float64)
    init = (i + j + (n - k)) * 10.0 / n
    return {"A": init.copy(), "B": init.copy()}


def _heat3d_loops(d, s):
    A, B = d["A"], d["B"]
    n = s["N"]

    def step(src, dst):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                for k in range(1, n - 1):
                    dst[i, j, k] = (
                        0.125 * (src[i + 1, j, k] - 2 * src[i, j, k] + src[i - 1, j, k])
                        + 0.125 * (src[i, j + 1, k] - 2 * src[i, j, k] + src[i, j - 1, k])
                        + 0.125 * (src[i, j, k + 1] - 2 * src[i, j, k] + src[i, j, k - 1])
                        + src[i, j, k]
                    )

    for t in range(s["TSTEPS"]):
        step(A, B)
        step(B, A)


def _heat3d_numpy(d, s):
    A, B = d["A"], d["B"]

    def step(src, dst):
        c = src[1:-1, 1:-1, 1:-1]
        dst[1:-1, 1:-1, 1:-1] = (
            0.125 * (src[2:, 1:-1, 1:-1] - 2 * c + src[:-2, 1:-1, 1:-1])
            + 0.125 * (src[1:-1, 2:, 1:-1] - 2 * c + src[1:-1, :-2, 1:-1])
            + 0.125 * (src[1:-1, 1:-1, 2:] - 2 * c + src[1:-1, 1:-1, :-2])
            + c
        )

    for t in range(s["TSTEPS"]):
        step(A, B)
        step(B, A)


register(PolybenchKernel(
    "heat-3d", _heat3d_sdfg, _heat3d_data, _heat3d_loops, _heat3d_numpy,
    sizes={"N": 16, "TSTEPS": 6}, outputs=("A", "B"), extra_symbols=("TSTEPS",),
))


# ------------------------------------------------------------------ fdtd-2d
def _fdtd2d_sdfg():
    @rp.program
    def fdtd2d(
        ex: rp.float64[NX, NY], ey: rp.float64[NX, NY],
        hz: rp.float64[NX, NY], fict: rp.float64[TSTEPS],
        TSTEPS: rp.int64,
    ):
        for t in range(TSTEPS):
            for j in rp.map[0:NY]:
                ey[0, j] = fict[t]
            for i, j in rp.map[1:NX, 0:NY]:
                ey[i, j] += -0.5 * (hz[i, j] - hz[i - 1, j])
            for i, j in rp.map[0:NX, 1:NY]:
                ex[i, j] += -0.5 * (hz[i, j] - hz[i, j - 1])
            for i, j in rp.map[0 : NX - 1, 0 : NY - 1]:
                hz[i, j] += -0.7 * (ex[i, j + 1] - ex[i, j] + ey[i + 1, j] - ey[i, j])

    fdtd2d._sdfg = None
    return fdtd2d.to_sdfg()


def _fdtd2d_data(s):
    nx, ny, t = s["NX"], s["NY"], s["TSTEPS"]
    i, j = np.indices((nx, ny)).astype(np.float64)
    return {
        "ex": i * (j + 1) / nx,
        "ey": i * (j + 2) / ny,
        "hz": i * (j + 3) / nx,
        "fict": np.arange(t, dtype=np.float64),
    }


def _fdtd2d_loops(d, s):
    ex, ey, hz, fict = d["ex"], d["ey"], d["hz"], d["fict"]
    nx, ny = s["NX"], s["NY"]
    for t in range(s["TSTEPS"]):
        for j in range(ny):
            ey[0, j] = fict[t]
        for i in range(1, nx):
            for j in range(ny):
                ey[i, j] -= 0.5 * (hz[i, j] - hz[i - 1, j])
        for i in range(nx):
            for j in range(1, ny):
                ex[i, j] -= 0.5 * (hz[i, j] - hz[i, j - 1])
        for i in range(nx - 1):
            for j in range(ny - 1):
                hz[i, j] -= 0.7 * (ex[i, j + 1] - ex[i, j] + ey[i + 1, j] - ey[i, j])


def _fdtd2d_numpy(d, s):
    ex, ey, hz, fict = d["ex"], d["ey"], d["hz"], d["fict"]
    for t in range(s["TSTEPS"]):
        ey[0, :] = fict[t]
        ey[1:, :] -= 0.5 * (hz[1:, :] - hz[:-1, :])
        ex[:, 1:] -= 0.5 * (hz[:, 1:] - hz[:, :-1])
        hz[:-1, :-1] -= 0.7 * (
            ex[:-1, 1:] - ex[:-1, :-1] + ey[1:, :-1] - ey[:-1, :-1]
        )


register(PolybenchKernel(
    "fdtd-2d", _fdtd2d_sdfg, _fdtd2d_data, _fdtd2d_loops, _fdtd2d_numpy,
    sizes={"NX": 40, "NY": 50, "TSTEPS": 10}, outputs=("ex", "ey", "hz"),
    extra_symbols=("TSTEPS",),
))


# ---------------------------------------------------------------------- adi
def _adi_sdfg():
    @rp.program
    def adi(
        u: rp.float64[N, N], v: rp.float64[N, N],
        p: rp.float64[N, N], q: rp.float64[N, N],
        TSTEPS: rp.int64,
    ):
        # Coefficients recomputed from the symbols inside tasklets.
        for t in range(1, TSTEPS + 1):
            # Column sweep.
            for i in rp.map[1 : N - 1]:
                v[0, i] = 1.0
                p[i, 0] = 0.0
                q[i, 0] = 1.0
            for j in range(1, N - 1):
                for i in rp.map[1 : N - 1]:
                    p[i, j] = ((1.0 / TSTEPS) * N * N / 2.0) / (
                        (-((1.0 / TSTEPS) * N * N / 2.0)) * p[i, j - 1]
                        + (1.0 + (1.0 / TSTEPS) * N * N)
                    )
                for i in rp.map[1 : N - 1]:
                    q[i, j] = (
                        -((1.0 / TSTEPS) * N * N / 2.0) * u[j, i - 1]
                        + (1.0 + (1.0 / TSTEPS) * N * N) * u[j, i]
                        - (1.0 / TSTEPS) * N * N / 2.0 * u[j, i + 1]
                        - (-((1.0 / TSTEPS) * N * N / 2.0)) * q[i, j - 1]
                    ) / ((-((1.0 / TSTEPS) * N * N / 2.0)) * p[i, j - 1] + (1.0 + (1.0 / TSTEPS) * N * N))

            for i in rp.map[1 : N - 1]:
                v[N - 1, i] = 1.0
            for j in range(N - 2, 0, -1):
                for i in rp.map[1 : N - 1]:
                    v[j, i] = p[i, j] * v[j + 1, i] + q[i, j]
            # Row sweep.
            for i in rp.map[1 : N - 1]:
                u[i, 0] = 1.0
                p[i, 0] = 0.0
                q[i, 0] = 1.0
            for j in range(1, N - 1):
                for i in rp.map[1 : N - 1]:
                    p[i, j] = ((1.0 / TSTEPS) * N * N / 2.0) / (
                        (-((1.0 / TSTEPS) * N * N / 2.0)) * p[i, j - 1]
                        + (1.0 + (1.0 / TSTEPS) * N * N)
                    )
                for i in rp.map[1 : N - 1]:
                    q[i, j] = (
                        -((1.0 / TSTEPS) * N * N / 2.0) * v[i - 1, j]
                        + (1.0 + (1.0 / TSTEPS) * N * N) * v[i, j]
                        - (1.0 / TSTEPS) * N * N / 2.0 * v[i + 1, j]
                        - (-((1.0 / TSTEPS) * N * N / 2.0)) * q[i, j - 1]
                    ) / ((-((1.0 / TSTEPS) * N * N / 2.0)) * p[i, j - 1] + (1.0 + (1.0 / TSTEPS) * N * N))
            for i in rp.map[1 : N - 1]:
                u[i, N - 1] = 1.0
            for j in range(N - 2, 0, -1):
                for i in rp.map[1 : N - 1]:
                    u[i, j] = p[i, j] * u[i, j + 1] + q[i, j]

    adi._sdfg = None
    return adi.to_sdfg()


def _adi_consts(s):
    n, tsteps = s["N"], s["TSTEPS"]
    # Simplified ADI coefficients (symmetric in both directions): with
    # a = -d/2, b = 1 + d, c = a, where d = dt*n^2.
    d = (1.0 / tsteps) * n * n
    a = -d / 2.0
    b = 1.0 + d
    return a, b


def _adi_loops(dta, s):
    u, v, p, q = dta["u"], dta["v"], dta["p"], dta["q"]
    n = s["N"]
    a, b = _adi_consts(s)
    for t in range(1, s["TSTEPS"] + 1):
        for i in range(1, n - 1):
            v[0, i] = 1.0
            p[i, 0] = 0.0
            q[i, 0] = 1.0
            for j in range(1, n - 1):
                p[i, j] = -a / (a * p[i, j - 1] + b)
                q[i, j] = (a * u[j, i - 1] + b * u[j, i] + a * u[j, i + 1]
                           - a * q[i, j - 1]) / (a * p[i, j - 1] + b)
            v[n - 1, i] = 1.0
            for j in range(n - 2, 0, -1):
                v[j, i] = p[i, j] * v[j + 1, i] + q[i, j]
        for i in range(1, n - 1):
            u[i, 0] = 1.0
            p[i, 0] = 0.0
            q[i, 0] = 1.0
            for j in range(1, n - 1):
                p[i, j] = -a / (a * p[i, j - 1] + b)
                q[i, j] = (a * v[i - 1, j] + b * v[i, j] + a * v[i + 1, j]
                           - a * q[i, j - 1]) / (a * p[i, j - 1] + b)
            u[i, n - 1] = 1.0
            for j in range(n - 2, 0, -1):
                u[i, j] = p[i, j] * u[i, j + 1] + q[i, j]


def _adi_numpy(dta, s):
    u, v, p, q = dta["u"], dta["v"], dta["p"], dta["q"]
    n = s["N"]
    a, b = _adi_consts(s)
    rng = slice(1, n - 1)
    for t in range(1, s["TSTEPS"] + 1):
        v[0, rng] = 1.0
        p[rng, 0] = 0.0
        q[rng, 0] = 1.0
        for j in range(1, n - 1):
            p[rng, j] = -a / (a * p[rng, j - 1] + b)
            q[rng, j] = (
                a * u[j, 0 : n - 2] + b * u[j, rng] + a * u[j, 2:n] - a * q[rng, j - 1]
            ) / (a * p[rng, j - 1] + b)
        v[n - 1, rng] = 1.0
        for j in range(n - 2, 0, -1):
            v[j, rng] = p[rng, j] * v[j + 1, rng] + q[rng, j]
        u[rng, 0] = 1.0
        p[rng, 0] = 0.0
        q[rng, 0] = 1.0
        for j in range(1, n - 1):
            p[rng, j] = -a / (a * p[rng, j - 1] + b)
            q[rng, j] = (
                a * v[0 : n - 2, j] + b * v[rng, j] + a * v[2:n, j] - a * q[rng, j - 1]
            ) / (a * p[rng, j - 1] + b)
        u[rng, n - 1] = 1.0
        for j in range(n - 2, 0, -1):
            u[rng, j] = p[rng, j] * u[rng, j + 1] + q[rng, j]


def _adi_data(s):
    n = s["N"]
    i, j = np.indices((n, n)).astype(np.float64)
    return {
        "u": (i + n - j) / n,
        "v": np.zeros((n, n)),
        "p": np.zeros((n, n)),
        "q": np.zeros((n, n)),
    }


register(PolybenchKernel(
    "adi", _adi_sdfg, _adi_data, _adi_loops, _adi_numpy,
    sizes={"N": 18, "TSTEPS": 4}, outputs=("u", "v"), extra_symbols=("TSTEPS",),
))


# -------------------------------------------------------------------- deriche
def _deriche_sdfg():
    @rp.program
    def deriche(imgIn: rp.float64[W, H], imgOut: rp.float64[W, H]):
        y1: rp.float64[W, H]
        y2: rp.float64[W, H]
        # Horizontal forward scan (rows parallel, columns sequential).
        for j in range(H):
            for i in rp.map[0:W]:
                y1[i, j] = (
                    0.2 * imgIn[i, j]
                    + 0.1 * imgIn[i, max(j - 1, 0)] * (1.0 if j >= 1 else 0.0)
                    + 0.4 * y1[i, max(j - 1, 0)] * (1.0 if j >= 1 else 0.0)
                    + 0.25 * y1[i, max(j - 2, 0)] * (1.0 if j >= 2 else 0.0)
                )
        # Horizontal backward scan.
        for j in range(H - 1, -1, -1):
            for i in rp.map[0:W]:
                y2[i, j] = (
                    0.15 * imgIn[i, min(j + 1, H - 1)] * (1.0 if j <= H - 2 else 0.0)
                    + 0.4 * y2[i, min(j + 1, H - 1)] * (1.0 if j <= H - 2 else 0.0)
                    + 0.25 * y2[i, min(j + 2, H - 1)] * (1.0 if j <= H - 3 else 0.0)
                )
        for i, j in rp.map[0:W, 0:H]:
            imgOut[i, j] = y1[i, j] + y2[i, j]

    deriche._sdfg = None
    return deriche.to_sdfg()


def _deriche_data(s):
    w, h = s["W"], s["H"]
    i, j = np.indices((w, h)).astype(np.float64)
    return {"imgIn": ((313 * i + 991 * j) % 65536) / 65535.0, "imgOut": np.zeros((w, h))}


def _deriche_loops(d, s):
    imgIn, imgOut = d["imgIn"], d["imgOut"]
    w, h = s["W"], s["H"]
    y1 = np.zeros((w, h))
    y2 = np.zeros((w, h))
    for i in range(w):
        for j in range(h):
            y1[i, j] = 0.2 * imgIn[i, j]
            if j >= 1:
                y1[i, j] += 0.1 * imgIn[i, j - 1] + 0.4 * y1[i, j - 1]
            if j >= 2:
                y1[i, j] += 0.25 * y1[i, j - 2]
        for j in range(h - 1, -1, -1):
            y2[i, j] = 0.0
            if j <= h - 2:
                y2[i, j] += 0.15 * imgIn[i, j + 1] + 0.4 * y2[i, j + 1]
            if j <= h - 3:
                y2[i, j] += 0.25 * y2[i, j + 2]
    imgOut[...] = y1 + y2


def _deriche_numpy(d, s):
    imgIn, imgOut = d["imgIn"], d["imgOut"]
    w, h = s["W"], s["H"]
    y1 = np.zeros((w, h))
    y2 = np.zeros((w, h))
    for j in range(h):
        y1[:, j] = 0.2 * imgIn[:, j]
        if j >= 1:
            y1[:, j] += 0.1 * imgIn[:, j - 1] + 0.4 * y1[:, j - 1]
        if j >= 2:
            y1[:, j] += 0.25 * y1[:, j - 2]
    for j in range(h - 1, -1, -1):
        if j <= h - 2:
            y2[:, j] += 0.15 * imgIn[:, j + 1] + 0.4 * y2[:, j + 1]
        if j <= h - 3:
            y2[:, j] += 0.25 * y2[:, j + 2]
    imgOut[...] = y1 + y2


register(PolybenchKernel(
    "deriche", _deriche_sdfg, _deriche_data, _deriche_loops, _deriche_numpy,
    sizes={"W": 32, "H": 36}, outputs=("imgOut",),
))
