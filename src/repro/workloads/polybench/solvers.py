"""PolyBench solver kernels: cholesky, lu, ludcmp, trisolv, durbin,
gramschmidt.  These are the sequential-dependency kernels where the
paper observes unoptimized SDFG performance close to general-purpose
compilers (§5: "data-centric transformations are necessary to optimize
the computations").
"""

from __future__ import annotations

from typing import Dict

import numpy as np

import repro as rp
from repro.workloads.polybench import PolybenchKernel, register

N = rp.symbol("N")
NI, NJ = rp.symbol("NI"), rp.symbol("NJ")


def _spd(n: int) -> np.ndarray:
    """Symmetric positive-definite matrix (Cholesky/LU-friendly)."""
    rng = np.random.RandomState(7)
    B = rng.rand(n, n)
    return B @ B.T + n * np.eye(n)


# --------------------------------------------------------------- cholesky
def _cholesky_sdfg():
    @rp.program
    def cholesky(A: rp.float64[N, N]):
        for i in range(N):
            for j in range(i):
                for k in rp.map[0:j]:
                    A[i, j] += -(A[i, k] * A[j, k])
                A[i, j] = A[i, j] / A[j, j]
            for k in rp.map[0:i]:
                A[i, i] += -(A[i, k] * A[i, k])
            A[i, i] = math.sqrt(A[i, i])

    cholesky._sdfg = None
    return cholesky.to_sdfg()


import math  # noqa: E402  (resolved by the frontend inside tasklet code)


def _cholesky_data(s):
    return {"A": _spd(s["N"])}


def _cholesky_loops(d, s):
    A = d["A"]
    n = s["N"]
    for i in range(n):
        for j in range(i):
            for k in range(j):
                A[i, j] -= A[i, k] * A[j, k]
            A[i, j] /= A[j, j]
        for k in range(i):
            A[i, i] -= A[i, k] * A[i, k]
        A[i, i] = np.sqrt(A[i, i])


def _cholesky_numpy(d, s):
    # np.linalg.cholesky writes the lower triangle; polybench leaves the
    # upper triangle untouched, so merge.
    A = d["A"]
    L = np.linalg.cholesky(A)
    low = np.tril(np.ones_like(A, dtype=bool))
    A[low] = L[low]


register(PolybenchKernel(
    "cholesky", _cholesky_sdfg, _cholesky_data, _cholesky_loops, _cholesky_numpy,
    sizes={"N": 24}, outputs=("A",),
))


# --------------------------------------------------------------------- lu
def _lu_sdfg():
    @rp.program
    def lu(A: rp.float64[N, N]):
        for i in range(N):
            for j in range(i):
                for k in rp.map[0:j]:
                    A[i, j] += -(A[i, k] * A[k, j])
                A[i, j] = A[i, j] / A[j, j]
            for j in range(i, N):
                for k in rp.map[0:i]:
                    A[i, j] += -(A[i, k] * A[k, j])

    lu._sdfg = None
    return lu.to_sdfg()


def _lu_data(s):
    return {"A": _spd(s["N"])}


def _lu_loops(d, s):
    A = d["A"]
    n = s["N"]
    for i in range(n):
        for j in range(i):
            for k in range(j):
                A[i, j] -= A[i, k] * A[k, j]
            A[i, j] /= A[j, j]
        for j in range(i, n):
            for k in range(i):
                A[i, j] -= A[i, k] * A[k, j]


def _lu_numpy(d, s):
    # Doolittle LU without pivoting, row-vectorized.
    A = d["A"]
    n = s["N"]
    for i in range(n):
        for j in range(i):
            A[i, j] = (A[i, j] - A[i, :j] @ A[:j, j]) / A[j, j]
        A[i, i:] -= A[i, :i] @ A[:i, i:]


register(PolybenchKernel(
    "lu", _lu_sdfg, _lu_data, _lu_loops, _lu_numpy,
    sizes={"N": 22}, outputs=("A",),
))


# ----------------------------------------------------------------- ludcmp
def _ludcmp_sdfg():
    @rp.program
    def ludcmp(A: rp.float64[N, N], b: rp.float64[N], x: rp.float64[N], y: rp.float64[N]):
        w: rp.float64
        for i in range(N):
            for j in range(i):
                w[0] = A[i, j]
                for k in rp.map[0:j]:
                    w[0] += -(A[i, k] * A[k, j])
                A[i, j] = w[0] / A[j, j]
            for j in range(i, N):
                w[0] = A[i, j]
                for k in rp.map[0:i]:
                    w[0] += -(A[i, k] * A[k, j])
                A[i, j] = w[0]
        for i in range(N):
            w[0] = b[i]
            for j in rp.map[0:i]:
                w[0] += -(A[i, j] * y[j])
            y[i] = w[0]
        for i in range(N - 1, -1, -1):
            w[0] = y[i]
            for j in rp.map[i + 1 : N]:
                w[0] += -(A[i, j] * x[j])
            x[i] = w[0] / A[i, i]

    ludcmp._sdfg = None
    return ludcmp.to_sdfg()


def _ludcmp_data(s):
    n = s["N"]
    rng = np.random.RandomState(11)
    return {"A": _spd(n), "b": rng.rand(n), "x": np.zeros(n), "y": np.zeros(n)}


def _ludcmp_loops(d, s):
    A, b, x, y = d["A"], d["b"], d["x"], d["y"]
    n = s["N"]
    for i in range(n):
        for j in range(i):
            w = A[i, j]
            for k in range(j):
                w -= A[i, k] * A[k, j]
            A[i, j] = w / A[j, j]
        for j in range(i, n):
            w = A[i, j]
            for k in range(i):
                w -= A[i, k] * A[k, j]
            A[i, j] = w
    for i in range(n):
        w = b[i]
        for j in range(i):
            w -= A[i, j] * y[j]
        y[i] = w
    for i in range(n - 1, -1, -1):
        w = y[i]
        for j in range(i + 1, n):
            w -= A[i, j] * x[j]
        x[i] = w / A[i, i]


def _ludcmp_numpy(d, s):
    A, b, x, y = d["A"], d["b"], d["x"], d["y"]
    n = s["N"]
    for i in range(n):
        for j in range(i):
            A[i, j] = (A[i, j] - A[i, :j] @ A[:j, j]) / A[j, j]
        A[i, i:] -= A[i, :i] @ A[:i, i:]
    for i in range(n):
        y[i] = b[i] - A[i, :i] @ y[:i]
    for i in range(n - 1, -1, -1):
        x[i] = (y[i] - A[i, i + 1 :] @ x[i + 1 :]) / A[i, i]


register(PolybenchKernel(
    "ludcmp", _ludcmp_sdfg, _ludcmp_data, _ludcmp_loops, _ludcmp_numpy,
    sizes={"N": 20}, outputs=("A", "x", "y"),
))


# ---------------------------------------------------------------- trisolv
def _trisolv_sdfg():
    @rp.program
    def trisolv(L: rp.float64[N, N], b: rp.float64[N], x: rp.float64[N]):
        acc: rp.float64
        for i in range(N):
            acc[0] = b[i]
            for j in rp.map[0:i]:
                acc[0] += -(L[i, j] * x[j])
            x[i] = acc[0] / L[i, i]

    trisolv._sdfg = None
    return trisolv.to_sdfg()


def _trisolv_data(s):
    n = s["N"]
    rng = np.random.RandomState(13)
    L = np.tril(rng.rand(n, n)) + n * np.eye(n)
    return {"L": L, "b": rng.rand(n), "x": np.zeros(n)}


def _trisolv_loops(d, s):
    L, b, x = d["L"], d["b"], d["x"]
    for i in range(s["N"]):
        acc = b[i]
        for j in range(i):
            acc -= L[i, j] * x[j]
        x[i] = acc / L[i, i]


def _trisolv_numpy(d, s):
    for i in range(s["N"]):
        d["x"][i] = (d["b"][i] - d["L"][i, :i] @ d["x"][:i]) / d["L"][i, i]


register(PolybenchKernel(
    "trisolv", _trisolv_sdfg, _trisolv_data, _trisolv_loops, _trisolv_numpy,
    sizes={"N": 64}, outputs=("x",),
))


# ----------------------------------------------------------------- durbin
def _durbin_sdfg():
    @rp.program
    def durbin(r: rp.float64[N], y: rp.float64[N]):
        z: rp.float64[N]
        alpha: rp.float64
        beta: rp.float64
        summ: rp.float64
        y[0] = -r[0]
        beta[0] = 1.0
        alpha[0] = -r[0]
        for k in range(1, N):
            beta[0] = (1.0 - alpha[0] * alpha[0]) * beta[0]
            summ[0] = 0.0
            for i in rp.map[0:k]:
                summ[0] += r[k - i - 1] * y[i]
            alpha[0] = -(r[k] + summ[0]) / beta[0]
            for i in rp.map[0:k]:
                z[i] = y[i] + alpha[0] * y[k - i - 1]
            for i in rp.map[0:k]:
                y[i] = z[i]
            y[k] = alpha[0]

    durbin._sdfg = None
    return durbin.to_sdfg()


def _durbin_data(s):
    n = s["N"]
    return {"r": (np.arange(n) + 1.0) / (2.0 * n), "y": np.zeros(n)}


def _durbin_loops(d, s):
    r, y = d["r"], d["y"]
    n = s["N"]
    y[0] = -r[0]
    beta, alpha = 1.0, -r[0]
    z = np.zeros(n)
    for k in range(1, n):
        beta = (1 - alpha * alpha) * beta
        summ = 0.0
        for i in range(k):
            summ += r[k - i - 1] * y[i]
        alpha = -(r[k] + summ) / beta
        for i in range(k):
            z[i] = y[i] + alpha * y[k - i - 1]
        y[:k] = z[:k]
        y[k] = alpha


def _durbin_numpy(d, s):
    r, y = d["r"], d["y"]
    n = s["N"]
    y[0] = -r[0]
    beta, alpha = 1.0, -r[0]
    for k in range(1, n):
        beta = (1 - alpha * alpha) * beta
        summ = r[:k][::-1] @ y[:k]
        alpha = -(r[k] + summ) / beta
        y[:k] = y[:k] + alpha * y[:k][::-1]
        y[k] = alpha


register(PolybenchKernel(
    "durbin", _durbin_sdfg, _durbin_data, _durbin_loops, _durbin_numpy,
    sizes={"N": 48}, outputs=("y",),
))


# ------------------------------------------------------------ gramschmidt
def _gramschmidt_sdfg():
    @rp.program
    def gramschmidt(
        A: rp.float64[NI, NJ], R: rp.float64[NJ, NJ], Q: rp.float64[NI, NJ]
    ):
        nrm: rp.float64
        for k in range(NJ):
            nrm[0] = 0.0
            for i in rp.map[0:NI]:
                nrm[0] += A[i, k] * A[i, k]
            R[k, k] = math.sqrt(nrm[0])
            for i in rp.map[0:NI]:
                Q[i, k] = A[i, k] / R[k, k]
            for j in range(k + 1, NJ):
                R[k, j] = 0.0
                for i in rp.map[0:NI]:
                    R[k, j] += Q[i, k] * A[i, j]
                for i in rp.map[0:NI]:
                    A[i, j] += -(Q[i, k] * R[k, j])

    gramschmidt._sdfg = None
    return gramschmidt.to_sdfg()


def _gramschmidt_data(s):
    rng = np.random.RandomState(17)
    return {
        "A": rng.rand(s["NI"], s["NJ"]) + 0.5,
        "R": np.zeros((s["NJ"], s["NJ"])),
        "Q": np.zeros((s["NI"], s["NJ"])),
    }


def _gramschmidt_loops(d, s):
    A, R, Q = d["A"], d["R"], d["Q"]
    ni, nj = s["NI"], s["NJ"]
    for k in range(nj):
        nrm = 0.0
        for i in range(ni):
            nrm += A[i, k] * A[i, k]
        R[k, k] = np.sqrt(nrm)
        for i in range(ni):
            Q[i, k] = A[i, k] / R[k, k]
        for j in range(k + 1, nj):
            R[k, j] = 0.0
            for i in range(ni):
                R[k, j] += Q[i, k] * A[i, j]
            for i in range(ni):
                A[i, j] -= Q[i, k] * R[k, j]


def _gramschmidt_numpy(d, s):
    A, R, Q = d["A"], d["R"], d["Q"]
    for k in range(s["NJ"]):
        R[k, k] = np.linalg.norm(A[:, k])
        Q[:, k] = A[:, k] / R[k, k]
        R[k, k + 1 :] = Q[:, k] @ A[:, k + 1 :]
        A[:, k + 1 :] -= np.outer(Q[:, k], R[k, k + 1 :])


register(PolybenchKernel(
    "gramschmidt", _gramschmidt_sdfg, _gramschmidt_data, _gramschmidt_loops,
    _gramschmidt_numpy, sizes={"NI": 28, "NJ": 24}, outputs=("A", "R", "Q"),
))
