"""PolyBench data-mining and medley kernels: correlation, covariance,
floyd-warshall, nussinov."""

from __future__ import annotations

from typing import Dict

import numpy as np

import repro as rp
from repro.workloads.polybench import PolybenchKernel, register

M_, N_ = rp.symbol("M_"), rp.symbol("N_")


# -------------------------------------------------------------- correlation
def _correlation_sdfg():
    @rp.program
    def correlation(data: rp.float64[N_, M_], corr: rp.float64[M_, M_]):
        mean: rp.float64[M_]
        stddev: rp.float64[M_]
        for j in rp.map[0:M_]:
            mean[j] = 0.0
        for i, j in rp.map[0:N_, 0:M_]:
            mean[j] += data[i, j]
        for j in rp.map[0:M_]:
            mean[j] = mean[j] / N_
        for j in rp.map[0:M_]:
            stddev[j] = 0.0
        for i, j in rp.map[0:N_, 0:M_]:
            stddev[j] += (data[i, j] - mean[j]) * (data[i, j] - mean[j])
        for j in rp.map[0:M_]:
            stddev[j] = math.sqrt(stddev[j] / N_)
        for j in rp.map[0:M_]:
            stddev[j] = stddev[j] if stddev[j] > 0.1 else 1.0
        for i, j in rp.map[0:N_, 0:M_]:
            data[i, j] = (data[i, j] - mean[j]) / (math.sqrt(1.0 * N_) * stddev[j])
        for i, j in rp.map[0:M_, 0:M_]:
            corr[i, j] = 1.0 if i == j else 0.0
        for i in rp.map[0 : M_ - 1]:
            for j, k in rp.map[i + 1 : M_, 0:N_]:
                corr[i, j] += data[k, i] * data[k, j]
        for i in rp.map[0 : M_ - 1]:
            for j in rp.map[i + 1 : M_]:
                corr[j, i] = corr[i, j]

    correlation._sdfg = None
    return correlation.to_sdfg()


import math  # noqa: E402


def _corr_data(s):
    n, m = s["N_"], s["M_"]
    i, j = np.indices((n, m)).astype(np.float64)
    return {
        "data": (i * j) / m + i,
        "corr": np.zeros((m, m)),
    }


def _corr_loops(d, s):
    data, corr = d["data"], d["corr"]
    n, m = s["N_"], s["M_"]
    mean = data.sum(axis=0) / n
    stddev = np.sqrt(((data - mean) ** 2).sum(axis=0) / n)
    stddev = np.where(stddev > 0.1, stddev, 1.0)
    data -= mean
    data /= np.sqrt(n) * stddev
    corr[...] = np.eye(m)
    for i in range(m - 1):
        for j in range(i + 1, m):
            acc = 0.0
            for k in range(n):
                acc += data[k, i] * data[k, j]
            corr[i, j] = acc
            corr[j, i] = acc


def _corr_numpy(d, s):
    data, corr = d["data"], d["corr"]
    n, m = s["N_"], s["M_"]
    mean = data.mean(axis=0)
    stddev = np.sqrt(((data - mean) ** 2).mean(axis=0))
    stddev = np.where(stddev > 0.1, stddev, 1.0)
    data -= mean
    data /= np.sqrt(n) * stddev
    corr[...] = data.T @ data
    np.fill_diagonal(corr, 1.0)


register(PolybenchKernel(
    "correlation", _correlation_sdfg, _corr_data, _corr_loops, _corr_numpy,
    sizes={"N_": 40, "M_": 32}, outputs=("corr",),
))


# --------------------------------------------------------------- covariance
def _covariance_sdfg():
    @rp.program
    def covariance(data: rp.float64[N_, M_], cov: rp.float64[M_, M_]):
        mean: rp.float64[M_]
        for j in rp.map[0:M_]:
            mean[j] = 0.0
        for i, j in rp.map[0:N_, 0:M_]:
            mean[j] += data[i, j]
        for j in rp.map[0:M_]:
            mean[j] = mean[j] / N_
        for i, j in rp.map[0:N_, 0:M_]:
            data[i, j] = data[i, j] - mean[j]
        for i in rp.map[0:M_]:
            for j, k in rp.map[i:M_, 0:N_]:
                cov[i, j] += data[k, i] * data[k, j] / (N_ - 1.0)
        for i in rp.map[0:M_]:
            for j in rp.map[i:M_]:
                cov[j, i] = cov[i, j]

    covariance._sdfg = None
    return covariance.to_sdfg()


def _cov_data(s):
    n, m = s["N_"], s["M_"]
    i, j = np.indices((n, m)).astype(np.float64)
    return {"data": (i * j) / m, "cov": np.zeros((m, m))}


def _cov_loops(d, s):
    data, cov = d["data"], d["cov"]
    n, m = s["N_"], s["M_"]
    mean = data.sum(axis=0) / n
    data -= mean
    for i in range(m):
        for j in range(i, m):
            acc = 0.0
            for k in range(n):
                acc += data[k, i] * data[k, j]
            cov[i, j] = acc / (n - 1.0)
            cov[j, i] = cov[i, j]


def _cov_numpy(d, s):
    data, cov = d["data"], d["cov"]
    n = s["N_"]
    data -= data.mean(axis=0)
    cov[...] = data.T @ data / (n - 1.0)


register(PolybenchKernel(
    "covariance", _covariance_sdfg, _cov_data, _cov_loops, _cov_numpy,
    sizes={"N_": 40, "M_": 32}, outputs=("cov",),
))


# ----------------------------------------------------------- floyd-warshall
def _floyd_sdfg():
    @rp.program
    def floyd_warshall(paths: rp.float64[N_, N_]):
        for k in range(N_):
            for i, j in rp.map[0:N_, 0:N_]:
                paths[i, j] = min(paths[i, j], paths[i, k] + paths[k, j])

    floyd_warshall._sdfg = None
    return floyd_warshall.to_sdfg()


def _floyd_data(s):
    n = s["N_"]
    rng = np.random.RandomState(23)
    paths = rng.randint(1, 20, size=(n, n)).astype(np.float64)
    np.fill_diagonal(paths, 0.0)
    return {"paths": paths}


def _floyd_loops(d, s):
    p = d["paths"]
    n = s["N_"]
    for k in range(n):
        for i in range(n):
            for j in range(n):
                if p[i, k] + p[k, j] < p[i, j]:
                    p[i, j] = p[i, k] + p[k, j]


def _floyd_numpy(d, s):
    p = d["paths"]
    for k in range(s["N_"]):
        p[...] = np.minimum(p, p[:, k : k + 1] + p[k : k + 1, :])


register(PolybenchKernel(
    "floyd-warshall", _floyd_sdfg, _floyd_data, _floyd_loops, _floyd_numpy,
    sizes={"N_": 36}, outputs=("paths",),
))


# ----------------------------------------------------------------- nussinov
def _nussinov_sdfg():
    @rp.program
    def nussinov(seq: rp.int64[N_], table: rp.float64[N_, N_]):
        for i in range(N_ - 1, -1, -1):
            for j in range(i + 1, N_):
                table[i, j] = max(table[i, j], table[i, j - 1])
                table[i, j] = max(table[i, j], table[i + 1, j])
                table[i, j] = max(
                    table[i, j],
                    table[i + 1, j - 1]
                    + (1.0 if j - 1 > i and seq[i] + seq[j] == 3 else 0.0),
                )
                for k in rp.map[i + 1 : j]:
                    with rp.tasklet:
                        a << table[i, k]
                        b << table[k + 1, j]
                        out >> table(1, rp.max)[i, j]
                        out = a + b

    nussinov._sdfg = None
    return nussinov.to_sdfg()


def _nussinov_data(s):
    n = s["N_"]
    rng = np.random.RandomState(29)
    return {
        "seq": rng.randint(0, 4, size=n).astype(np.int64),
        "table": np.zeros((n, n)),
    }


def _nussinov_loops(d, s):
    seq, table = d["seq"], d["table"]
    n = s["N_"]
    for i in range(n - 1, -1, -1):
        for j in range(i + 1, n):
            table[i, j] = max(table[i, j], table[i, j - 1])
            table[i, j] = max(table[i, j], table[i + 1, j])
            bonus = 1.0 if (j - 1 > i and seq[i] + seq[j] == 3) else 0.0
            table[i, j] = max(table[i, j], table[i + 1, j - 1] + bonus)
            for k in range(i + 1, j):
                table[i, j] = max(table[i, j], table[i, k] + table[k + 1, j])


_nussinov_numpy = _nussinov_loops  # dynamic programming; inherently ordered

register(PolybenchKernel(
    "nussinov", _nussinov_sdfg, _nussinov_data, _nussinov_loops, _nussinov_numpy,
    sizes={"N_": 24}, outputs=("table",),
))
