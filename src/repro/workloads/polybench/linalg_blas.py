"""PolyBench linear-algebra kernels (blas + kernels categories):
gemm, 2mm, 3mm, atax, bicg, mvt, gemver, gesummv, symm, syrk, syr2k,
trmm, doitgen.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

import repro as rp
from repro.workloads.polybench import PolybenchKernel, register

NI, NJ, NK, NL, NM = (rp.symbol(s) for s in ("NI", "NJ", "NK", "NL", "NM"))
NQ, NR, NP = (rp.symbol(s) for s in ("NQ", "NR", "NP"))

ALPHA, BETA = 1.5, 1.2


def _grid(*dims):
    """Deterministic PolyBench-style initialization values."""
    idx = np.indices(dims).astype(np.float64)
    out = np.ones(dims)
    for k, ax in enumerate(idx):
        out = out * ((ax * (k + 2) + 1) % 13)
    return (out % 7 + 1) / 7.0


# ------------------------------------------------------------------- gemm
def _gemm_sdfg():
    @rp.program
    def gemm(A: rp.float64[NI, NK], B: rp.float64[NK, NJ], C: rp.float64[NI, NJ]):
        for i, j in rp.map[0:NI, 0:NJ]:
            C[i, j] = C[i, j] * 1.2
        for i, j, k in rp.map[0:NI, 0:NJ, 0:NK]:
            C[i, j] += 1.5 * A[i, k] * B[k, j]

    gemm._sdfg = None
    return gemm.to_sdfg()


def _gemm_data(s):
    return {
        "A": _grid(s["NI"], s["NK"]),
        "B": _grid(s["NK"], s["NJ"]),
        "C": _grid(s["NI"], s["NJ"]),
    }


def _gemm_loops(d, s):
    A, B, C = d["A"], d["B"], d["C"]
    for i in range(s["NI"]):
        for j in range(s["NJ"]):
            C[i, j] *= BETA
            for k in range(s["NK"]):
                C[i, j] += ALPHA * A[i, k] * B[k, j]


def _gemm_numpy(d, s):
    d["C"][...] = ALPHA * d["A"] @ d["B"] + BETA * d["C"]


register(PolybenchKernel(
    "gemm", _gemm_sdfg, _gemm_data, _gemm_loops, _gemm_numpy,
    sizes={"NI": 40, "NJ": 48, "NK": 56}, outputs=("C",),
))


# -------------------------------------------------------------------- 2mm
def _2mm_sdfg():
    @rp.program
    def k2mm(
        A: rp.float64[NI, NK], B: rp.float64[NK, NJ],
        C: rp.float64[NJ, NL], D: rp.float64[NI, NL],
    ):
        tmp: rp.float64[NI, NJ]
        for i, j in rp.map[0:NI, 0:NJ]:
            tmp[i, j] = 0.0
        for i, j, k in rp.map[0:NI, 0:NJ, 0:NK]:
            tmp[i, j] += 1.5 * A[i, k] * B[k, j]
        for i, j in rp.map[0:NI, 0:NL]:
            D[i, j] = D[i, j] * 1.2
        for i, j, k in rp.map[0:NI, 0:NL, 0:NJ]:
            D[i, j] += tmp[i, k] * C[k, j]

    k2mm._sdfg = None
    return k2mm.to_sdfg()


def _2mm_data(s):
    return {
        "A": _grid(s["NI"], s["NK"]),
        "B": _grid(s["NK"], s["NJ"]),
        "C": _grid(s["NJ"], s["NL"]),
        "D": _grid(s["NI"], s["NL"]),
    }


def _2mm_loops(d, s):
    A, B, C, D = d["A"], d["B"], d["C"], d["D"]
    tmp = np.zeros((s["NI"], s["NJ"]))
    for i in range(s["NI"]):
        for j in range(s["NJ"]):
            for k in range(s["NK"]):
                tmp[i, j] += ALPHA * A[i, k] * B[k, j]
    for i in range(s["NI"]):
        for j in range(s["NL"]):
            D[i, j] *= BETA
            for k in range(s["NJ"]):
                D[i, j] += tmp[i, k] * C[k, j]


def _2mm_numpy(d, s):
    tmp = ALPHA * d["A"] @ d["B"]
    d["D"][...] = tmp @ d["C"] + BETA * d["D"]


register(PolybenchKernel(
    "2mm", _2mm_sdfg, _2mm_data, _2mm_loops, _2mm_numpy,
    sizes={"NI": 32, "NJ": 36, "NK": 40, "NL": 44}, outputs=("D",),
))


# -------------------------------------------------------------------- 3mm
def _3mm_sdfg():
    @rp.program
    def k3mm(
        A: rp.float64[NI, NK], B: rp.float64[NK, NJ],
        C: rp.float64[NJ, NM], D: rp.float64[NM, NL],
        G: rp.float64[NI, NL],
    ):
        E: rp.float64[NI, NJ]
        F: rp.float64[NJ, NL]
        for i, j, k in rp.map[0:NI, 0:NJ, 0:NK]:
            E[i, j] += A[i, k] * B[k, j]
        for i, j, k in rp.map[0:NJ, 0:NL, 0:NM]:
            F[i, j] += C[i, k] * D[k, j]
        for i, j in rp.map[0:NI, 0:NL]:
            G[i, j] = 0.0
        for i, j, k in rp.map[0:NI, 0:NL, 0:NJ]:
            G[i, j] += E[i, k] * F[k, j]

    k3mm._sdfg = None
    return k3mm.to_sdfg()


def _3mm_data(s):
    return {
        "A": _grid(s["NI"], s["NK"]),
        "B": _grid(s["NK"], s["NJ"]),
        "C": _grid(s["NJ"], s["NM"]),
        "D": _grid(s["NM"], s["NL"]),
        "G": np.zeros((s["NI"], s["NL"])),
    }


def _3mm_loops(d, s):
    E = np.zeros((s["NI"], s["NJ"]))
    F = np.zeros((s["NJ"], s["NL"]))
    for i in range(s["NI"]):
        for j in range(s["NJ"]):
            for k in range(s["NK"]):
                E[i, j] += d["A"][i, k] * d["B"][k, j]
    for i in range(s["NJ"]):
        for j in range(s["NL"]):
            for k in range(s["NM"]):
                F[i, j] += d["C"][i, k] * d["D"][k, j]
    d["G"][...] = 0
    for i in range(s["NI"]):
        for j in range(s["NL"]):
            for k in range(s["NJ"]):
                d["G"][i, j] += E[i, k] * F[k, j]


def _3mm_numpy(d, s):
    d["G"][...] = (d["A"] @ d["B"]) @ (d["C"] @ d["D"])


register(PolybenchKernel(
    "3mm", _3mm_sdfg, _3mm_data, _3mm_loops, _3mm_numpy,
    sizes={"NI": 28, "NJ": 32, "NK": 36, "NL": 40, "NM": 44}, outputs=("G",),
))


# ------------------------------------------------------------------- atax
def _atax_sdfg():
    @rp.program
    def atax(A: rp.float64[NI, NJ], x: rp.float64[NJ], y: rp.float64[NJ]):
        tmp: rp.float64[NI]
        for i in rp.map[0:NJ]:
            y[i] = 0.0
        for i, j in rp.map[0:NI, 0:NJ]:
            tmp[i] += A[i, j] * x[j]
        for i, j in rp.map[0:NI, 0:NJ]:
            y[j] += A[i, j] * tmp[i]

    atax._sdfg = None
    return atax.to_sdfg()


def _atax_data(s):
    return {
        "A": _grid(s["NI"], s["NJ"]),
        "x": _grid(s["NJ"]),
        "y": np.zeros(s["NJ"]),
    }


def _atax_loops(d, s):
    A, x, y = d["A"], d["x"], d["y"]
    y[...] = 0
    tmp = np.zeros(s["NI"])
    for i in range(s["NI"]):
        for j in range(s["NJ"]):
            tmp[i] += A[i, j] * x[j]
        for j in range(s["NJ"]):
            y[j] += A[i, j] * tmp[i]


def _atax_numpy(d, s):
    d["y"][...] = d["A"].T @ (d["A"] @ d["x"])


register(PolybenchKernel(
    "atax", _atax_sdfg, _atax_data, _atax_loops, _atax_numpy,
    sizes={"NI": 120, "NJ": 140}, outputs=("y",),
))


# ------------------------------------------------------------------- bicg
def _bicg_sdfg():
    @rp.program
    def bicg(
        A: rp.float64[NI, NJ], p: rp.float64[NJ], r: rp.float64[NI],
        q: rp.float64[NI], s: rp.float64[NJ],
    ):
        for j in rp.map[0:NJ]:
            s[j] = 0.0
        for i in rp.map[0:NI]:
            q[i] = 0.0
        for i, j in rp.map[0:NI, 0:NJ]:
            s[j] += r[i] * A[i, j]
        for i, j in rp.map[0:NI, 0:NJ]:
            q[i] += A[i, j] * p[j]

    bicg._sdfg = None
    return bicg.to_sdfg()


def _bicg_data(s):
    return {
        "A": _grid(s["NI"], s["NJ"]),
        "p": _grid(s["NJ"]),
        "r": _grid(s["NI"]),
        "q": np.zeros(s["NI"]),
        "s": np.zeros(s["NJ"]),
    }


def _bicg_loops(d, s):
    A = d["A"]
    d["s"][...] = 0
    d["q"][...] = 0
    for i in range(s["NI"]):
        for j in range(s["NJ"]):
            d["s"][j] += d["r"][i] * A[i, j]
            d["q"][i] += A[i, j] * d["p"][j]


def _bicg_numpy(d, s):
    d["s"][...] = d["A"].T @ d["r"]
    d["q"][...] = d["A"] @ d["p"]


register(PolybenchKernel(
    "bicg", _bicg_sdfg, _bicg_data, _bicg_loops, _bicg_numpy,
    sizes={"NI": 124, "NJ": 116}, outputs=("q", "s"),
))


# -------------------------------------------------------------------- mvt
def _mvt_sdfg():
    @rp.program
    def mvt(
        A: rp.float64[NI, NI], x1: rp.float64[NI], x2: rp.float64[NI],
        y1: rp.float64[NI], y2: rp.float64[NI],
    ):
        for i, j in rp.map[0:NI, 0:NI]:
            x1[i] += A[i, j] * y1[j]
        for i, j in rp.map[0:NI, 0:NI]:
            x2[i] += A[j, i] * y2[j]

    mvt._sdfg = None
    return mvt.to_sdfg()


def _mvt_data(s):
    return {
        "A": _grid(s["NI"], s["NI"]),
        "x1": _grid(s["NI"]),
        "x2": _grid(s["NI"]) * 0.5,
        "y1": _grid(s["NI"]) * 0.25,
        "y2": _grid(s["NI"]) * 0.125,
    }


def _mvt_loops(d, s):
    n = s["NI"]
    for i in range(n):
        for j in range(n):
            d["x1"][i] += d["A"][i, j] * d["y1"][j]
    for i in range(n):
        for j in range(n):
            d["x2"][i] += d["A"][j, i] * d["y2"][j]


def _mvt_numpy(d, s):
    d["x1"][...] += d["A"] @ d["y1"]
    d["x2"][...] += d["A"].T @ d["y2"]


register(PolybenchKernel(
    "mvt", _mvt_sdfg, _mvt_data, _mvt_loops, _mvt_numpy,
    sizes={"NI": 130}, outputs=("x1", "x2"),
))


# ----------------------------------------------------------------- gemver
def _gemver_sdfg():
    @rp.program
    def gemver(
        A: rp.float64[NI, NI],
        u1: rp.float64[NI], v1: rp.float64[NI],
        u2: rp.float64[NI], v2: rp.float64[NI],
        w: rp.float64[NI], x: rp.float64[NI],
        y: rp.float64[NI], z: rp.float64[NI],
    ):
        for i, j in rp.map[0:NI, 0:NI]:
            A[i, j] = A[i, j] + u1[i] * v1[j] + u2[i] * v2[j]
        for i, j in rp.map[0:NI, 0:NI]:
            x[i] += 1.2 * A[j, i] * y[j]
        for i in rp.map[0:NI]:
            x[i] = x[i] + z[i]
        for i, j in rp.map[0:NI, 0:NI]:
            w[i] += 1.5 * A[i, j] * x[j]

    gemver._sdfg = None
    return gemver.to_sdfg()


def _gemver_data(s):
    n = s["NI"]
    return {
        "A": _grid(n, n),
        "u1": _grid(n), "v1": _grid(n) * 0.5,
        "u2": _grid(n) * 0.25, "v2": _grid(n) * 0.125,
        "w": np.zeros(n), "x": np.zeros(n),
        "y": _grid(n) * 0.75, "z": _grid(n) * 0.3,
    }


def _gemver_loops(d, s):
    n = s["NI"]
    A = d["A"]
    for i in range(n):
        for j in range(n):
            A[i, j] += d["u1"][i] * d["v1"][j] + d["u2"][i] * d["v2"][j]
    for i in range(n):
        for j in range(n):
            d["x"][i] += BETA * A[j, i] * d["y"][j]
    for i in range(n):
        d["x"][i] += d["z"][i]
    for i in range(n):
        for j in range(n):
            d["w"][i] += ALPHA * A[i, j] * d["x"][j]


def _gemver_numpy(d, s):
    A = d["A"]
    A += np.outer(d["u1"], d["v1"]) + np.outer(d["u2"], d["v2"])
    d["x"][...] += BETA * (A.T @ d["y"]) + d["z"]
    d["w"][...] += ALPHA * (A @ d["x"])


register(PolybenchKernel(
    "gemver", _gemver_sdfg, _gemver_data, _gemver_loops, _gemver_numpy,
    sizes={"NI": 120}, outputs=("A", "w", "x"),
))


# ---------------------------------------------------------------- gesummv
def _gesummv_sdfg():
    @rp.program
    def gesummv(
        A: rp.float64[NI, NI], B: rp.float64[NI, NI],
        x: rp.float64[NI], y: rp.float64[NI],
    ):
        tmp: rp.float64[NI]
        for i in rp.map[0:NI]:
            y[i] = 0.0
        for i, j in rp.map[0:NI, 0:NI]:
            tmp[i] += A[i, j] * x[j]
        for i, j in rp.map[0:NI, 0:NI]:
            y[i] += B[i, j] * x[j]
        for i in rp.map[0:NI]:
            y[i] = 1.5 * tmp[i] + 1.2 * y[i]

    gesummv._sdfg = None
    return gesummv.to_sdfg()


def _gesummv_data(s):
    n = s["NI"]
    return {"A": _grid(n, n), "B": _grid(n, n) * 0.5, "x": _grid(n), "y": np.zeros(n)}


def _gesummv_loops(d, s):
    n = s["NI"]
    tmp = np.zeros(n)
    d["y"][...] = 0
    for i in range(n):
        for j in range(n):
            tmp[i] += d["A"][i, j] * d["x"][j]
            d["y"][i] += d["B"][i, j] * d["x"][j]
        d["y"][i] = ALPHA * tmp[i] + BETA * d["y"][i]


def _gesummv_numpy(d, s):
    d["y"][...] = ALPHA * (d["A"] @ d["x"]) + BETA * (d["B"] @ d["x"])


register(PolybenchKernel(
    "gesummv", _gesummv_sdfg, _gesummv_data, _gesummv_loops, _gesummv_numpy,
    sizes={"NI": 130}, outputs=("y",),
))


# ------------------------------------------------------------------- symm
def _symm_sdfg():
    @rp.program
    def symm(
        A: rp.float64[NI, NI], B: rp.float64[NI, NJ], C: rp.float64[NI, NJ]
    ):
        t2: rp.float64[NJ]
        for i in range(NI):
            for j in rp.map[0:NJ]:
                t2[j] = 0.0
            for j, k in rp.map[0:NJ, 0:i]:
                C[k, j] += 1.5 * B[i, j] * A[i, k]
            for j, k in rp.map[0:NJ, 0:i]:
                t2[j] += B[k, j] * A[i, k]
            for j in rp.map[0:NJ]:
                C[i, j] = 1.2 * C[i, j] + 1.5 * B[i, j] * A[i, i] + 1.5 * t2[j]

    symm._sdfg = None
    return symm.to_sdfg()


def _symm_data(s):
    return {
        "A": _grid(s["NI"], s["NI"]),
        "B": _grid(s["NI"], s["NJ"]) * 0.5,
        "C": _grid(s["NI"], s["NJ"]) * 0.25,
    }


def _symm_loops(d, s):
    A, B, C = d["A"], d["B"], d["C"]
    for i in range(s["NI"]):
        for j in range(s["NJ"]):
            temp2 = 0.0
            for k in range(i):
                C[k, j] += ALPHA * B[i, j] * A[i, k]
                temp2 += B[k, j] * A[i, k]
            C[i, j] = BETA * C[i, j] + ALPHA * B[i, j] * A[i, i] + ALPHA * temp2


def _symm_numpy(d, s):
    A, B, C = d["A"], d["B"], d["C"]
    for i in range(s["NI"]):
        C[:i] += ALPHA * np.outer(A[i, :i], B[i])
        temp2 = A[i, :i] @ B[:i]
        C[i] = BETA * C[i] + ALPHA * B[i] * A[i, i] + ALPHA * temp2


register(PolybenchKernel(
    "symm", _symm_sdfg, _symm_data, _symm_loops, _symm_numpy,
    sizes={"NI": 24, "NJ": 28}, outputs=("C",),
))


# ------------------------------------------------------------------- syrk
def _syrk_sdfg():
    @rp.program
    def syrk(A: rp.float64[NI, NK], C: rp.float64[NI, NI]):
        for i in rp.map[0:NI]:
            for j in rp.map[0 : i + 1]:
                C[i, j] = C[i, j] * 1.2
        for i in rp.map[0:NI]:
            for j, k in rp.map[0 : i + 1, 0:NK]:
                C[i, j] += 1.5 * A[i, k] * A[j, k]

    syrk._sdfg = None
    return syrk.to_sdfg()


def _syrk_data(s):
    return {"A": _grid(s["NI"], s["NK"]), "C": _grid(s["NI"], s["NI"])}


def _syrk_loops(d, s):
    A, C = d["A"], d["C"]
    for i in range(s["NI"]):
        for j in range(i + 1):
            C[i, j] *= BETA
            for k in range(s["NK"]):
                C[i, j] += ALPHA * A[i, k] * A[j, k]


def _syrk_numpy(d, s):
    A, C = d["A"], d["C"]
    full = ALPHA * (A @ A.T)
    tri = np.tril(np.ones_like(C, dtype=bool))
    C[tri] = BETA * C[tri] + full[tri]


register(PolybenchKernel(
    "syrk", _syrk_sdfg, _syrk_data, _syrk_loops, _syrk_numpy,
    sizes={"NI": 40, "NK": 48}, outputs=("C",),
))


# ------------------------------------------------------------------ syr2k
def _syr2k_sdfg():
    @rp.program
    def syr2k(A: rp.float64[NI, NK], B: rp.float64[NI, NK], C: rp.float64[NI, NI]):
        for i in rp.map[0:NI]:
            for j in rp.map[0 : i + 1]:
                C[i, j] = C[i, j] * 1.2
        for i in rp.map[0:NI]:
            for j, k in rp.map[0 : i + 1, 0:NK]:
                C[i, j] += 1.5 * A[j, k] * B[i, k] + 1.5 * B[j, k] * A[i, k]

    syr2k._sdfg = None
    return syr2k.to_sdfg()


def _syr2k_data(s):
    return {
        "A": _grid(s["NI"], s["NK"]),
        "B": _grid(s["NI"], s["NK"]) * 0.5,
        "C": _grid(s["NI"], s["NI"]) * 0.25,
    }


def _syr2k_loops(d, s):
    A, B, C = d["A"], d["B"], d["C"]
    for i in range(s["NI"]):
        for j in range(i + 1):
            C[i, j] *= BETA
            for k in range(s["NK"]):
                C[i, j] += ALPHA * A[j, k] * B[i, k] + ALPHA * B[j, k] * A[i, k]


def _syr2k_numpy(d, s):
    A, B, C = d["A"], d["B"], d["C"]
    full = ALPHA * (B @ A.T + A @ B.T)
    tri = np.tril(np.ones_like(C, dtype=bool))
    C[tri] = BETA * C[tri] + full[tri]


register(PolybenchKernel(
    "syr2k", _syr2k_sdfg, _syr2k_data, _syr2k_loops, _syr2k_numpy,
    sizes={"NI": 36, "NK": 40}, outputs=("C",),
))


# ------------------------------------------------------------------- trmm
def _trmm_sdfg():
    @rp.program
    def trmm(A: rp.float64[NI, NI], B: rp.float64[NI, NJ]):
        for i in range(NI):
            for j, k in rp.map[0:NJ, i + 1 : NI]:
                B[i, j] += A[k, i] * B[k, j]
            for j in rp.map[0:NJ]:
                B[i, j] = 1.5 * B[i, j]

    trmm._sdfg = None
    return trmm.to_sdfg()


def _trmm_data(s):
    return {"A": _grid(s["NI"], s["NI"]), "B": _grid(s["NI"], s["NJ"]) * 0.5}


def _trmm_loops(d, s):
    A, B = d["A"], d["B"]
    for i in range(s["NI"]):
        for j in range(s["NJ"]):
            for k in range(i + 1, s["NI"]):
                B[i, j] += A[k, i] * B[k, j]
            B[i, j] = ALPHA * B[i, j]


def _trmm_numpy(d, s):
    A, B = d["A"], d["B"]
    for i in range(s["NI"]):
        B[i] += A[i + 1 :, i] @ B[i + 1 :]
        B[i] *= ALPHA


register(PolybenchKernel(
    "trmm", _trmm_sdfg, _trmm_data, _trmm_loops, _trmm_numpy,
    sizes={"NI": 28, "NJ": 32}, outputs=("B",),
))


# ---------------------------------------------------------------- doitgen
def _doitgen_sdfg():
    @rp.program
    def doitgen(A: rp.float64[NR, NQ, NP], C4: rp.float64[NP, NP]):
        tmp: rp.float64[NR, NQ, NP]
        for r, q, p, s in rp.map[0:NR, 0:NQ, 0:NP, 0:NP]:
            tmp[r, q, p] += A[r, q, s] * C4[s, p]
        for r, q, p in rp.map[0:NR, 0:NQ, 0:NP]:
            A[r, q, p] = tmp[r, q, p]

    doitgen._sdfg = None
    return doitgen.to_sdfg()


def _doitgen_data(s):
    return {"A": _grid(s["NR"], s["NQ"], s["NP"]), "C4": _grid(s["NP"], s["NP"])}


def _doitgen_loops(d, s):
    A, C4 = d["A"], d["C4"]
    total = np.zeros(s["NP"])
    for r in range(s["NR"]):
        for q in range(s["NQ"]):
            total[...] = 0
            for p in range(s["NP"]):
                for k in range(s["NP"]):
                    total[p] += A[r, q, k] * C4[k, p]
            A[r, q] = total


def _doitgen_numpy(d, s):
    d["A"][...] = np.einsum("rqs,sp->rqp", d["A"], d["C4"])


register(PolybenchKernel(
    "doitgen", _doitgen_sdfg, _doitgen_data, _doitgen_loops, _doitgen_numpy,
    sizes={"NR": 12, "NQ": 14, "NP": 16}, outputs=("A",),
))
