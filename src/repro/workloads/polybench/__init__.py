"""The PolyBench suite (all 30 kernels of paper §5 / Fig. 13) as
data-centric programs.

Every kernel registers three implementations:

* ``make_sdfg()`` — the data-centric program (unoptimized, as in §5:
  "without any optimizing transformations"),
* ``ref_loops(data)`` — plain Python loop nest, the role of the
  general-purpose compilers (GCC/Clang/ICC) applied to naive C loops,
* ``ref_numpy(data)`` — vectorized NumPy, the role of the polyhedral
  optimizers (Pluto/Polly/PPCG).

``sizes`` are bench-scale dataset sizes (the paper's *Large* sizes do
not fit this testbed's time budget; shapes of the comparison are what
matters, see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np


@dataclass
class PolybenchKernel:
    name: str
    make_sdfg: Callable[[], object]
    make_data: Callable[[Dict[str, int]], Dict[str, np.ndarray]]
    ref_loops: Callable[[Dict[str, np.ndarray], Dict[str, int]], None]
    ref_numpy: Callable[[Dict[str, np.ndarray], Dict[str, int]], None]
    sizes: Dict[str, int]
    #: Arrays compared for correctness.
    outputs: Tuple[str, ...]
    #: Extra symbols passed at invocation (not inferable from shapes).
    extra_symbols: Tuple[str, ...] = ()

    def data(self) -> Dict[str, np.ndarray]:
        return self.make_data(self.sizes)

    def run_sdfg(self, data: Dict[str, np.ndarray], compiled=None):
        compiled = compiled or self.make_sdfg().compile()
        kwargs = dict(data)
        for sym in self.extra_symbols:
            kwargs[sym] = self.sizes[sym]
        compiled(**kwargs)
        return compiled


KERNELS: Dict[str, PolybenchKernel] = {}


def register(kernel: PolybenchKernel) -> PolybenchKernel:
    KERNELS[kernel.name] = kernel
    return kernel


def get(name: str) -> PolybenchKernel:
    _load()
    return KERNELS[name]


def all_kernels() -> List[str]:
    _load()
    return sorted(KERNELS)


_loaded = False


def _load() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    import importlib

    for mod in ("linalg_blas", "medley", "solvers", "stencils"):
        try:
            importlib.import_module(f"repro.workloads.polybench.{mod}")
        except ModuleNotFoundError:  # partial corpus during development
            pass


def __getattr__(name):
    if name in ("linalg_blas", "medley", "solvers", "stencils"):
        import importlib

        return importlib.import_module(f"repro.workloads.polybench.{name}")
    raise AttributeError(name)
