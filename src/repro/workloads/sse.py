"""Scattering Self-Energy (Σ≷) computation of the OMEN quantum-transport
simulator (paper §6.4, Fig. 18).

The computational pattern (top-left of Fig. 18)::

    Σ≷[kz, E]  ∝  Σ_{qz, ω}  (∇H · G≷[kz−qz, E−ω]) ⊙ (∇H · D≷[qz, ω])

where ∇H, G, D are small Nb×Nb matrices per (momentum, energy) point —
a multitude of tiny matrix multiplications and Hadamard products reduced
with a summation.

Three implementations reproduce Table 2's rows (scaled):

* :func:`sse_omen` — the OMEN role: loops over (kz, E, qz, ω) issuing
  *individual small library GEMM calls* (utilization-starved, 1.3% of
  peak in the paper),
* :func:`sse_numpy_naive` — the "Python (numpy)" role: element-wise
  interpreted loops (0.2% of peak, 30x slower than OMEN),
* :func:`sse_dace` — the data-centric result of the Fig. 18 chain
  ❶ map fission → ❷/❸ data-layout batching → ❹ SBSMM: the whole
  computation becomes a handful of batched-strided multiplications.

``build_sse_sdfg`` expresses the computation as an SDFG (maps with a
Sum-WCR memlet, the Fig. 18 top-right graph) for structural analysis and
the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.library import blas
from repro.sdfg import SDFG, Memlet, dtypes


@dataclass
class SSEProblem:
    """Scaled stand-in for the paper's 4,864-atom nanostructure."""

    nkz: int = 4  # momentum points
    ne: int = 16  # energy points
    nqz: int = 4  # phonon momentum points
    nw: int = 4  # phonon frequency points
    nb: int = 8  # orbitals per block (small-matrix dimension)

    def flops(self) -> int:
        """Useful flops: two Nb^3 multiplies + Nb^2 ops per quadruple."""
        per_point = 2 * (2 * self.nb**3) + 2 * self.nb**2
        return self.nkz * self.ne * self.nqz * self.nw * per_point


def make_sse_data(p: SSEProblem, seed: int = 0) -> Dict[str, np.ndarray]:
    rng = np.random.RandomState(seed)
    return {
        # ∇H: one small matrix; G, D: per (momentum, energy) small matrices.
        "dH": rng.rand(p.nb, p.nb),
        "G": rng.rand(p.nkz, p.ne, p.nb, p.nb),
        "D": rng.rand(p.nqz, p.nw, p.nb, p.nb),
        "Sigma": np.zeros((p.nkz, p.ne, p.nb, p.nb)),
    }


def _wrap(i: int, n: int) -> int:
    return i % n


def sse_omen(p: SSEProblem, data: Dict[str, np.ndarray]) -> np.ndarray:
    """OMEN-style: per-quadruple small GEMM library calls."""
    dH, G, D = data["dH"], data["G"], data["D"]
    Sigma = np.zeros_like(data["Sigma"])
    for kz in range(p.nkz):
        for e in range(p.ne):
            acc = Sigma[kz, e]
            for qz in range(p.nqz):
                for w in range(p.nw):
                    g = G[_wrap(kz - qz, p.nkz), _wrap(e - w, p.ne)]
                    d = D[qz, w]
                    hg = blas.gemm(dH, g)  # ∇H · G
                    hd = blas.gemm(dH, d)  # ∇H · D
                    acc += hg * hd  # Hadamard + accumulate
    return Sigma


def sse_numpy_naive(p: SSEProblem, data: Dict[str, np.ndarray]) -> np.ndarray:
    """Interpreted elementwise loops (the paper's slow numpy row)."""
    dH, G, D = data["dH"], data["G"], data["D"]
    nb = p.nb
    Sigma = np.zeros_like(data["Sigma"])
    for kz in range(p.nkz):
        for e in range(p.ne):
            for qz in range(p.nqz):
                for w in range(p.nw):
                    g = G[_wrap(kz - qz, p.nkz), _wrap(e - w, p.ne)]
                    d = D[qz, w]
                    for a in range(nb):
                        for b in range(nb):
                            hg = 0.0
                            hd = 0.0
                            for i in range(nb):
                                hg += dH[a, i] * g[i, b]
                                hd += dH[a, i] * d[i, b]
                            Sigma[kz, e, a, b] += hg * hd
    return Sigma


def sse_dace(p: SSEProblem, data: Dict[str, np.ndarray]) -> np.ndarray:
    """Data-centric restructuring (Fig. 18 steps ❶-❹).

    Step ❶ splits the monolithic computation into independent stages;
    steps ❷/❸ lay the small matrices out as one batched-strided tensor;
    step ❹ executes each stage as a single SBSMM call.
    """
    dH, G, D = data["dH"], data["G"], data["D"]
    nb = p.nb
    # ❷/❸ data layout: gather all (kz, e, qz, w) operand pairs into one
    # batch. Index arithmetic becomes a gather on views (no Python loops).
    kz_i, e_i, qz_i, w_i = np.meshgrid(
        np.arange(p.nkz), np.arange(p.ne), np.arange(p.nqz), np.arange(p.nw),
        indexing="ij",
    )
    g_batch = G[(kz_i - qz_i) % p.nkz, (e_i - w_i) % p.ne].reshape(-1, nb, nb)
    d_batch = D[qz_i, w_i].reshape(-1, nb, nb)
    batch = g_batch.shape[0]
    dh_batch = np.broadcast_to(dH, (batch, nb, nb))
    # ❹ two batched-strided small multiplications + fused Hadamard-reduce.
    hg, _ = blas.sbsmm(dh_batch, g_batch)
    hd, _ = blas.sbsmm(dh_batch, d_batch)
    prod = (hg * hd).reshape(p.nkz, p.ne, p.nqz * p.nw, nb, nb)
    return prod.sum(axis=2)


def build_sse_sdfg(p: SSEProblem) -> SDFG:
    """The Σ≷ dataflow as an SDFG (Fig. 18 top-right): one parallel map
    over (kz, E, qz, ω, a, b, i) with a Sum-WCR output memlet."""
    sdfg = SDFG("sse")
    nb = p.nb
    sdfg.add_array("dH", (nb, nb), dtypes.float64)
    sdfg.add_array("G", (p.nkz, p.ne, nb, nb), dtypes.float64)
    sdfg.add_array("D", (p.nqz, p.nw, nb, nb), dtypes.float64)
    sdfg.add_array("Sigma", (p.nkz, p.ne, nb, nb), dtypes.float64)
    state = sdfg.add_state("sse")
    state.add_mapped_tasklet(
        "sse",
        {
            "kz": f"0:{p.nkz}",
            "e": f"0:{p.ne}",
            "qz": f"0:{p.nqz}",
            "w": f"0:{p.nw}",
            "a": f"0:{nb}",
            "b": f"0:{nb}",
        },
        inputs={
            "h_row": Memlet(data="dH", subset=f"a, 0:{nb}"),
            "g_col": Memlet(
                data="G",
                subset=f"(kz - qz) % {p.nkz}, (e - w) % {p.ne}, 0:{nb}, b",
            ),
            "d_col": Memlet(data="D", subset=f"qz, w, 0:{nb}, b"),
        },
        code=(
            "hg = 0.0\n"
            "hd = 0.0\n"
            f"for __i in range({nb}):\n"
            "    hg += h_row[__i] * g_col[__i]\n"
            "    hd += h_row[__i] * d_col[__i]\n"
            "out = hg * hd\n"
        ),
        outputs={"out": Memlet(data="Sigma", subset="kz, e, a, b", wcr="sum")},
    )
    sdfg.validate()
    return sdfg
