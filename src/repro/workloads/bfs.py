"""Data-driven push-based Breadth-First Search (paper §6.3, Fig. 16).

The SDFG mirrors the paper's optimized BFS state machine: an
initialization state, then a loop state whose outer map sweeps the
current frontier (data-dependent range from the ``fsz`` scalar), an
inner map with CSR-row dynamic ranges sweeping each vertex's neighbors,
a depth test-and-update through an indirection view, pushes of newly
discovered vertices into a stream, and a Sum-WCR frontier-size
accumulator; the stream drains into the next frontier and the loop
continues while ``fsz > 0``.

``build_bfs_sdfg(optimized=True)`` applies the paper's ❷ LocalStream
step (local accumulation of pushes, bulk update of the global frontier
stream).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.library.graphs import UNVISITED, CSRGraph
from repro.sdfg import SDFG, InterstateEdge, Memlet, dtypes
from repro.symbolic import Subset

INF = int(UNVISITED)


def build_bfs_sdfg(optimized: bool = False) -> SDFG:
    sdfg = SDFG("bfs")
    sdfg.add_array("G_row", ("V + 1",), dtypes.uint32)
    sdfg.add_array("G_col", ("E",), dtypes.uint32)
    sdfg.add_array("depth", ("V",), dtypes.int32)
    sdfg.add_scalar("src", dtypes.int64)
    sdfg.add_array("frontier", ("V",), dtypes.int64, transient=True)
    sdfg.add_scalar("fsz", dtypes.int64, transient=True)
    sdfg.add_scalar("nfsz", dtypes.int64, transient=True)
    sdfg.add_scalar("row_b", dtypes.int64, transient=True)
    sdfg.add_scalar("row_e", dtypes.int64, transient=True)
    sdfg.add_stream("S", dtypes.int64, transient=True)

    # ----------------------------------------------------------- init state
    init = sdfg.add_state("init", is_start=True)
    init.add_mapped_tasklet(
        "depth_init",
        {"v": "0:V"},
        inputs={},
        code=f"d = {INF}",
        outputs={"d": Memlet.simple("depth", "v")},
    )
    depth_w = [n for n in init.data_nodes() if n.data == "depth"][0]
    t0 = init.add_tasklet(
        "seed",
        ["s", "dv"],
        ["f0", "fs", "dout"],
        "dv[s] = 0\nf0 = s\nfs = 1",
    )
    init.add_edge(init.add_read("src"), t0, Memlet.simple("src", "0"), None, "s")
    init.add_edge(depth_w, t0, Memlet(data="depth", subset="0:V", volume=1), None, "dv")
    init.add_edge(
        t0, init.add_write("frontier"), Memlet.simple("frontier", "0"), "f0", None
    )
    init.add_edge(t0, init.add_write("fsz"), Memlet.simple("fsz", "0"), "fs", None)
    depth_w2 = init.add_write("depth")
    init.add_edge(
        t0, depth_w2, Memlet(data="depth", subset="0:V", volume=1, dynamic=True),
        "dout", None,
    )

    # ----------------------------------------------------------- body state
    body = sdfg.add_state("body")
    # Zero the next-frontier counter, ordering it before the sweep.
    tz = body.add_tasklet("zero", [], ["z"], "z = 0")
    nfsz_zero = body.add_access("nfsz")
    body.add_edge(tz, nfsz_zero, Memlet.simple("nfsz", "0"), "z", None)

    # Outer map over the frontier (data-dependent range from fsz).
    ome, omx = body.add_map("frontier_sweep", {"f": "0:__fsz"})
    ome.add_in_connector("__fsz")
    body.add_edge(
        body.add_read("fsz"), ome, Memlet(data="fsz", subset="0", volume=1),
        None, "__fsz",
    )
    body.add_edge(nfsz_zero, ome, Memlet.empty(), None, None)

    # Row-range indirection: begin/end of the CSR row of frontier[f].
    t_row = body.add_tasklet(
        "row_range", ["fr", "rows"], ["b", "e"], "b = rows[fr]\ne = rows[fr + 1]"
    )
    body.add_memlet_path(
        body.add_read("frontier"), ome, t_row,
        memlet=Memlet.simple("frontier", "f"), dst_conn="fr",
    )
    body.add_memlet_path(
        body.add_read("G_row"), ome, t_row,
        memlet=Memlet(data="G_row", subset="0:V + 1", volume=2),
        dst_conn="rows",
    )
    rb = body.add_access("row_b")
    re = body.add_access("row_e")
    body.add_edge(t_row, rb, Memlet.simple("row_b", "0"), "b", None)
    body.add_edge(t_row, re, Memlet.simple("row_e", "0"), "e", None)

    # Inner map over the row's neighbors.
    ime, imx = body.add_map("neighbors", {"nid": "__b:__e"})
    ime.add_in_connector("__b")
    ime.add_in_connector("__e")
    body.add_edge(rb, ime, Memlet(data="row_b", subset="0", volume=1), None, "__b")
    body.add_edge(re, ime, Memlet(data="row_e", subset="0", volume=1), None, "__e")

    t_upd = body.add_tasklet(
        "update_and_push",
        ["cidx", "dview", "dcur"],
        ["dout", "fpush", "cnt"],
        f"c = cidx\n"
        f"if dview[c] == {INF}:\n"
        f"    dview[c] = dcur + 1\n"
        f"    fpush.push(c)\n"
        f"    cnt = 1\n",
    )
    body.add_memlet_path(
        body.add_read("G_col"), ome, ime, t_upd,
        memlet=Memlet.simple("G_col", "nid"), dst_conn="cidx",
    )
    depth_r = body.add_read("depth")
    body.add_memlet_path(
        depth_r, ome, ime, t_upd,
        memlet=Memlet(data="depth", subset="0:V", volume=1, dynamic=True),
        dst_conn="dview",
    )
    # Current depth from the loop symbol d (as a connector-free symbol).
    t_upd.code = t_upd.code.replace("dcur + 1", "d + 1")
    t_upd.in_connectors.discard("dcur")

    depth_w3 = body.add_write("depth")
    body.add_memlet_path(
        t_upd, imx, omx, depth_w3,
        memlet=Memlet(data="depth", subset="0:V", volume=1, dynamic=True),
        src_conn="dout",
    )
    s_node = body.add_access("S")
    body.add_memlet_path(
        t_upd, imx, omx, s_node,
        memlet=Memlet(data="S", subset="0", dynamic=True),
        src_conn="fpush",
    )
    nfsz_acc = body.add_access("nfsz")
    body.add_memlet_path(
        t_upd, imx, omx, nfsz_acc,
        memlet=Memlet(data="nfsz", subset="0", wcr="sum", dynamic=True),
        src_conn="cnt",
    )

    # Drain the discovered vertices into the next frontier; publish size.
    frontier_next = body.add_write("frontier")
    body.add_edge(
        s_node, frontier_next, Memlet(data="S", subset="0", dynamic=True), None, None
    )
    fsz_next = body.add_write("fsz")
    body.add_edge(
        nfsz_acc, fsz_next, Memlet(data="nfsz", subset="0", other_subset="0"),
        None, None,
    )

    # ---------------------------------------------------------- state machine
    end = sdfg.add_state("end")
    sdfg.add_edge(init, body, InterstateEdge(assignments={"d": 0}))
    sdfg.add_edge(
        body, body_guard := sdfg.add_state("guard"), InterstateEdge(
            assignments={"d": "d + 1"}
        ),
    )
    sdfg.add_edge(body_guard, body, InterstateEdge(condition="fsz > 0"))
    sdfg.add_edge(body_guard, end, InterstateEdge(condition="fsz <= 0"))

    if optimized:
        from repro.transformations import LocalStream, apply_transformations

        apply_transformations(sdfg, LocalStream, validate=False)
    sdfg.validate()
    return sdfg


def run_bfs(sdfg: SDFG, graph: CSRGraph, source: int = 0) -> np.ndarray:
    depth = np.zeros(graph.num_vertices, np.int32)
    compiled = sdfg.compile()
    compiled(
        G_row=graph.indptr,
        G_col=graph.indices,
        depth=depth,
        src=source,
        V=graph.num_vertices,
        E=graph.num_edges,
    )
    return depth
