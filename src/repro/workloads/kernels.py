"""The five fundamental computational kernels of the paper's §6.1.

Each kernel provides an SDFG factory (data-centric program), an
``optimize_*`` helper applying the paper's transformation recipe, a data
generator, and a NumPy reference for verification.  The paper's sizes
(MM 2048², Jacobi 2048²xT1024, Histogram 8192², Query 2^26, SpMV
8192²/2^25 nnz) are parameters; benchmarks scale them to the testbed.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

import repro as rp
from repro.library.sparse import CSRMatrix
from repro.sdfg import SDFG, InterstateEdge, Memlet, dtypes
from repro.transformations import (
    MapReduceFusion,
    MapTiling,
    Vectorization,
    apply_transformations,
)

M, K, N = rp.symbol("M"), rp.symbol("K"), rp.symbol("N")
H, W, nnz = rp.symbol("H"), rp.symbol("W"), rp.symbol("nnz")
T, BINS = rp.symbol("T"), rp.symbol("BINS")


# ---------------------------------------------------------------- matmul
def matmul_sdfg() -> SDFG:
    """Matrix multiplication from the numpy operator (Fig. 9b form)."""

    @rp.program
    def mm(A: rp.float64[M, K], B: rp.float64[K, N], C: rp.float64[M, N]):
        C = A @ B

    mm._sdfg = None
    return mm.to_sdfg()


def optimize_matmul(sdfg: SDFG, tile: int = 64) -> SDFG:
    """The §6.2 transformation chain (abbreviated to this testbed's
    effective steps): MapReduceFusion -> MapTiling -> Vectorization."""
    apply_transformations(sdfg, MapReduceFusion)
    apply_transformations(sdfg, Vectorization)
    return sdfg


def matmul_data(n: int, seed: int = 0) -> Dict[str, np.ndarray]:
    rng = np.random.RandomState(seed)
    return {
        "A": rng.rand(n, n),
        "B": rng.rand(n, n),
        "C": np.zeros((n, n)),
    }


def matmul_reference(data: Dict[str, np.ndarray]) -> np.ndarray:
    return data["A"] @ data["B"]


# ---------------------------------------------------------------- jacobi
def jacobi2d_sdfg() -> SDFG:
    """5-point Jacobi stencil, T time steps, double buffering via A[t%2]."""

    @rp.program
    def jacobi(A: rp.float64[2, N, N], T: rp.int64):
        for t in range(T):
            for i, j in rp.map[1 : N - 1, 1 : N - 1]:
                with rp.tasklet:
                    c << A[t % 2, i, j]
                    no << A[t % 2, i - 1, j]
                    so << A[t % 2, i + 1, j]
                    we << A[t % 2, i, j - 1]
                    ea << A[t % 2, i, j + 1]
                    out >> A[(t + 1) % 2, i, j]
                    out = 0.2 * (c + no + so + we + ea)

    jacobi._sdfg = None
    return jacobi.to_sdfg()


def jacobi2d_data(n: int, seed: int = 0) -> Dict[str, np.ndarray]:
    rng = np.random.RandomState(seed)
    A = np.zeros((2, n, n))
    A[0] = rng.rand(n, n)
    # Constant zero boundary (paper setup); both buffers share it.
    A[0, 0, :] = A[0, -1, :] = A[0, :, 0] = A[0, :, -1] = 0.0
    return {"A": A}


def jacobi2d_reference(A: np.ndarray, steps: int) -> np.ndarray:
    buf = A.copy()
    for t in range(steps):
        src, dst = buf[t % 2], buf[(t + 1) % 2]
        dst[1:-1, 1:-1] = 0.2 * (
            src[1:-1, 1:-1] + src[:-2, 1:-1] + src[2:, 1:-1]
            + src[1:-1, :-2] + src[1:-1, 2:]
        )
    return buf


# -------------------------------------------------------------- histogram
def histogram_sdfg() -> SDFG:
    """Histogram with evenly-binned values: data-dependent writes through
    a read-modify-write view plus a dynamic WCR declaration."""

    @rp.program
    def histogram(img: rp.float64[H, W], hist: rp.int64[BINS]):
        for i, j in rp.map[0:H, 0:W]:
            with rp.tasklet:
                v << img[i, j]
                hh << hist[0:BINS]
                hout >> hist(rp.dyn)[0:BINS]
                hh[min(int(v * BINS), BINS - 1)] += 1

    histogram._sdfg = None
    return histogram.to_sdfg()


def histogram_data(h: int, w: int, bins: int = 256, seed: int = 0):
    rng = np.random.RandomState(seed)
    return {
        "img": rng.rand(h, w),
        "hist": np.zeros(bins, np.int64),
    }


def histogram_reference(img: np.ndarray, bins: int) -> np.ndarray:
    idx = np.minimum((img * bins).astype(np.int64), bins - 1)
    return np.bincount(idx.ravel(), minlength=bins)


# ------------------------------------------------------------------ query
def query_sdfg() -> SDFG:
    """Fig. 9a: filter a column against a predicate through a stream,
    counting the survivors with a Sum-WCR memlet."""
    sdfg = SDFG("query")
    sdfg.add_array("col", ("N",), dtypes.float64)
    sdfg.add_array("out", ("N",), dtypes.float64)
    sdfg.add_array("size", (1,), dtypes.int64)
    sdfg.add_scalar("threshold", dtypes.float64)
    sdfg.add_stream("S", dtypes.float64, transient=True)
    st = sdfg.add_state("query")
    st.add_mapped_tasklet(
        "filter",
        {"i": "0:N"},
        inputs={
            "v": Memlet.simple("col", "i"),
            "t": Memlet(data="threshold", subset="0", volume=1),
        },
        code="if v <= t:\n    outv = v\n    cnt = 1",
        outputs={
            "outv": Memlet(data="S", subset="0", dynamic=True),
            "cnt": Memlet(data="size", subset="0", wcr="sum", dynamic=True),
        },
    )
    s_node = [n for n in st.data_nodes() if n.data == "S"][0]
    out_node = st.add_write("out")
    st.add_edge(
        s_node, out_node, Memlet(data="S", subset="0", dynamic=True), None, None
    )
    sdfg.validate()
    return sdfg


def query_data(n: int, seed: int = 0):
    rng = np.random.RandomState(seed)
    return {
        "col": rng.rand(n),
        "out": np.zeros(n),
        "size": np.zeros(1, np.int64),
        "threshold": 0.5,  # filters roughly 50% (paper setup)
    }


def query_reference(col: np.ndarray, threshold: float) -> np.ndarray:
    return col[col <= threshold]


# ------------------------------------------------------------------- spmv
def spmv_sdfg() -> SDFG:
    """Fig. 4: CSR sparse matrix-vector multiplication."""

    @rp.program
    def spmv(
        A_row: rp.uint32[H + 1],
        A_col: rp.uint32[nnz],
        A_val: rp.float32[nnz],
        x: rp.float32[W],
        b: rp.float32[H],
    ):
        for i in rp.map[0:H]:
            for j in rp.map[A_row[i] : A_row[i + 1]]:
                with rp.tasklet:
                    a << A_val[j]
                    in_x << x[A_col[j]]
                    out >> b(1, rp.sum)[i]
                    out = a * in_x

    spmv._sdfg = None
    return spmv.to_sdfg()


def spmv_data(rows: int, nnz_per_row: int, seed: int = 0):
    csr = CSRMatrix.random(rows, rows, nnz_per_row, seed=seed)
    rng = np.random.RandomState(seed + 1)
    return {
        "A_row": csr.indptr,
        "A_col": csr.indices,
        "A_val": csr.data,
        "x": rng.rand(rows).astype(np.float32),
        "b": np.zeros(rows, np.float32),
    }, csr


# ------------------------------------------------------------- gemm chain
def gemm_chain_sdfg(links: int = 8) -> SDFG:
    """Multi-state chain of ``links`` scaled GEMMs: ``X_{k+1} = alpha_k *
    X_k @ B``, with per-link zero-init states and WCR accumulation.

    The chain is the cutout tuner's benchmark program: every link
    contributes two states (init + accumulate), the init states are all
    identical after cutout normalization (one unique group), and each
    accumulate state differs only by its ``alpha_k`` constant (``links``
    unique groups) — so ``2 * links`` cutouts deduplicate to
    ``links + 1`` unique searches.
    """
    sdfg = SDFG("gemm_chain")
    sdfg.add_array("A", ("N", "N"), dtypes.float64)
    sdfg.add_array("B", ("N", "N"), dtypes.float64)
    sdfg.add_array("C", ("N", "N"), dtypes.float64)
    prev_state = None
    prev = "A"
    for k in range(links):
        out = "C" if k == links - 1 else f"T{k}"
        if out != "C":
            sdfg.add_transient(out, ("N", "N"), dtypes.float64)
        init = sdfg.add_state(f"init{k}", is_start=(k == 0))
        init.add_mapped_tasklet(
            "zero",
            {"i": "0:N", "j": "0:N"},
            inputs={},
            code="z = 0.0",
            outputs={"z": Memlet.simple(out, "i, j")},
        )
        comp = sdfg.add_state(f"mm{k}")
        alpha = 1.0 + 0.125 * k  # distinct per link -> distinct cutout group
        comp.add_mapped_tasklet(
            "gemm",
            {"i": "0:N", "j": "0:N", "kk": "0:N"},
            inputs={
                "x": Memlet.simple(prev, "i, kk"),
                "y": Memlet.simple("B", "kk, j"),
            },
            code=f"o = {alpha!r} * x * y",
            outputs={"o": Memlet(data=out, subset="i, j", wcr="sum")},
        )
        if prev_state is not None:
            sdfg.add_edge(prev_state, init, InterstateEdge())
        sdfg.add_edge(init, comp, InterstateEdge())
        prev_state = comp
        prev = out
    sdfg.validate()
    return sdfg


def gemm_chain_data(n: int, seed: int = 0) -> Dict[str, np.ndarray]:
    rng = np.random.RandomState(seed)
    return {
        "A": rng.rand(n, n),
        "B": rng.rand(n, n),
        "C": np.zeros((n, n)),
    }


def gemm_chain_reference(
    data: Dict[str, np.ndarray], links: int = 8
) -> np.ndarray:
    out = data["A"]
    for k in range(links):
        out = (1.0 + 0.125 * k) * (out @ data["B"])
    return out


KERNELS = ("matmul", "jacobi2d", "histogram", "query", "spmv")
