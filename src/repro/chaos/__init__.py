"""Deterministic fault injection for every layer of the stack.

See :mod:`repro.chaos.engine` for the model and the ``REPRO_FAULTS``
grammar, :mod:`repro.chaos.points` for the fault-point catalog, and
``python -m repro.chaos`` for the CLI (list points, check a plan, run a
seeded schedule against a live daemon).
"""

from repro.chaos.engine import (
    ACTIONS,
    ChaosEngine,
    ChaosFault,
    FaultPlan,
    FaultRule,
    active_engine,
    faultpoint,
    install_plan,
    parse_rule,
    plan_from_env,
    uninstall_engine,
)
from repro.chaos.points import CATALOG, LAYERS, FaultPoint

__all__ = [
    "ACTIONS",
    "CATALOG",
    "LAYERS",
    "ChaosEngine",
    "ChaosFault",
    "FaultPlan",
    "FaultPoint",
    "FaultRule",
    "active_engine",
    "faultpoint",
    "install_plan",
    "parse_rule",
    "plan_from_env",
    "uninstall_engine",
]
