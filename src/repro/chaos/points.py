"""Registry of every named fault point woven through the stack.

The catalog is documentation *and* contract: ``python -m repro.chaos
list`` prints it, ``FaultPlan.parse(strict=True)`` validates plans
against it, and the chaos test suite asserts that each registered point
spans the layer it claims.  Keep entries in sync with the
``faultpoint(...)`` call sites — there is a test that greps for them.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class FaultPoint(NamedTuple):
    layer: str
    module: str
    description: str


#: name -> (layer, module with the call site, what failing here models)
CATALOG: Dict[str, FaultPoint] = {
    # --- codegen -----------------------------------------------------
    "compiler.codegen": FaultPoint(
        "codegen", "repro.codegen.compiler",
        "backend code generation fails (raise-io exercises the "
        "cpp→python→interpreter degradation chain)",
    ),
    "compiler.exec": FaultPoint(
        "codegen", "repro.codegen.compiler",
        "exec of generated python source fails (degradable)",
    ),
    # --- caches ------------------------------------------------------
    "progcache.disk_write": FaultPoint(
        "cache", "repro.codegen.progcache",
        "program-cache disk store fails or tears (corrupt = torn write "
        "quarantined on the next read)",
    ),
    "progcache.disk_read": FaultPoint(
        "cache", "repro.codegen.progcache",
        "program-cache disk read fails or returns a torn entry",
    ),
    "tuningcache.disk_write": FaultPoint(
        "cache", "repro.tuning.cache",
        "tuning-cache store fails or tears",
    ),
    "tuningcache.disk_read": FaultPoint(
        "cache", "repro.tuning.cache",
        "tuning-cache read fails or returns a torn entry",
    ),
    # --- runtime -----------------------------------------------------
    "arguments.marshal": FaultPoint(
        "runtime", "repro.runtime.arguments",
        "argument validation/marshaling fails before execution",
    ),
    "isolation.spawn": FaultPoint(
        "runtime", "repro.runtime.isolation",
        "the per-call isolation subprocess cannot be spawned "
        "(raise-io = contained E201 crash, degradable)",
    ),
    "isolation.bundle_write": FaultPoint(
        "runtime", "repro.runtime.isolation",
        "writing a crash repro bundle fails (the crash must still "
        "surface)",
    ),
    "watchdog.checkpoint": FaultPoint(
        "runtime", "repro.runtime.watchdog",
        "a cooperative checkpoint stalls (delay = slow kernel that "
        "trips a genuine R805 deadline)",
    ),
    "parallel.pool_spawn": FaultPoint(
        "runtime", "repro.runtime.parallel",
        "the parallel tier's thread/fork pool cannot be created",
    ),
    # --- serve -------------------------------------------------------
    "pool.worker_spawn": FaultPoint(
        "serve", "repro.serve.pool",
        "a freshly spawned service worker dies during/after its ready "
        "handshake (kill targets the child pid)",
    ),
    "pool.dispatch": FaultPoint(
        "serve", "repro.serve.pool",
        "the supervisor fails while dispatching a job to a worker",
    ),
    "pool.crash_bundle": FaultPoint(
        "serve", "repro.serve.pool",
        "writing a worker-death repro bundle fails",
    ),
    "daemon.frame_read": FaultPoint(
        "serve", "repro.serve.daemon",
        "reading a client request frame fails mid-connection",
    ),
    "daemon.frame_write": FaultPoint(
        "serve", "repro.serve.daemon",
        "writing a response frame fails (delay = slow client socket)",
    ),
    "admission.admit": FaultPoint(
        "serve", "repro.serve.admission",
        "the admission gate itself errors (not a policy rejection)",
    ),
    "worker.request": FaultPoint(
        "serve", "repro.serve.worker",
        "a worker fails on receipt of a job (kill = mid-request worker "
        "death, replayed by the supervisor)",
    ),
    "worker.response_write": FaultPoint(
        "serve", "repro.serve.worker",
        "a worker dies while writing its response",
    ),
    # --- telemetry ---------------------------------------------------
    "telemetry.publish": FaultPoint(
        "telemetry", "repro.telemetry.sink",
        "a producer-side publish fails (must never take a request down)",
    ),
    "telemetry.drain": FaultPoint(
        "telemetry", "repro.telemetry.sink",
        "a consumer-side drain fails (aggregator / worker propagation)",
    ),
}

#: The layers the catalog must span (asserted by the acceptance test).
LAYERS = ("codegen", "cache", "runtime", "serve", "telemetry")
