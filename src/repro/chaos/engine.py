"""Deterministic, seeded fault-injection engine (the chaos layer).

Every subsystem that can fail in production declares **named fault
points** (:data:`repro.chaos.points.CATALOG`) and calls
:func:`faultpoint` at the matching code site::

    data = faultpoint("progcache.disk_write", payload=data)

With no active :class:`FaultPlan` this is one global read — cheap enough
for hot paths.  With a plan installed (via :func:`install_plan` or the
``REPRO_FAULTS`` environment variable), each matching rule decides
*deterministically* whether to fire: per-rule hit counters and a
per-rule ``random.Random(seed)`` stream mean the same plan against the
same request sequence fires the same faults — a failing chaos run is
reproducible from its seed alone.

Grammar (``REPRO_FAULTS``)::

    point:action[@param=value,param=value][;point:action...]

    REPRO_FAULTS="progcache.disk_write:raise-io@hit=2;pool.worker_spawn:kill@p=0.3,seed=7"

Actions:

==========  ==========================================================
``raise``      raise :class:`ChaosFault` (a generic unexpected error)
``raise-io``   raise ``OSError(EIO)`` — exercises every ``except
               OSError`` hardening path and the backend degradation
               chain (``OSError`` is a degradable error)
``enospc``     raise ``OSError(ENOSPC)`` — disk-full at a write site
``corrupt``    truncate the call's ``payload`` at a seeded offset and
               append garbage (a torn write: guaranteed-unparseable)
``delay``      sleep ``ms`` milliseconds (default 100) — slow I/O,
               slow kernels, scheduling stalls
``kill``       SIGKILL the fault point's ``child`` pid (or this
               process when the site has no child) — worker death
``exit``       ``os._exit(70)`` — abrupt but clean process exit
==========  ==========================================================

Parameters:

``hit=N``    fire on the Nth evaluation of this rule (1-based); implies
             ``times=1`` unless ``times`` is given explicitly.
``p=F``      fire with probability ``F`` per evaluation, drawn from the
             rule's own seeded stream.
``seed=S``   seed for the rule's random stream (default: derived from
             the point name, so runs are deterministic even without an
             explicit seed).
``times=K``  fire at most ``K`` times (default: unlimited for ``p``
             rules, once for ``hit`` rules).
``ms=M``     milliseconds for the ``delay`` action (default 100).

Every firing is recorded on the engine (:meth:`ChaosEngine.snapshot`)
and published as a ``fault:<point>`` telemetry event, so tests can
assert exactly which faults fired and that each one was surfaced as a
structured diagnostic.
"""

from __future__ import annotations

import errno
import os
import random
import signal
import threading
import time
import zlib
from typing import Any, Dict, List, Optional

#: All actions a rule may carry.
ACTIONS = ("raise", "raise-io", "enospc", "corrupt", "delay", "kill", "exit")

#: Bound on the engine's firing log (oldest entries are discarded).
MAX_FIRING_LOG = 1024

#: Marker appended by the ``corrupt`` action.  Contains a NUL byte and
#: trailing garbage so a truncated-and-mangled JSON document can never
#: accidentally parse.
CORRUPT_MARKER = "\x00#chaos-corrupt"


class ChaosFault(RuntimeError):
    """An injected fault from a chaos rule (the generic ``raise`` action).

    Deliberately *not* a :class:`~repro.diagnostics.DiagnosticError`:
    the point of the generic action is to model a failure nobody wrote a
    handler for, which the serve stack must still turn into a structured
    ``E204`` response.
    """

    def __init__(self, point: str, action: str):
        super().__init__(f"injected fault at {point!r} (action {action})")
        self.point = point
        self.action = action


class FaultRule:
    """One ``point:action@params`` clause with its own firing state."""

    def __init__(
        self,
        point: str,
        action: str,
        hit: Optional[int] = None,
        p: Optional[float] = None,
        seed: Optional[int] = None,
        times: Optional[int] = None,
        ms: float = 100.0,
    ):
        if action not in ACTIONS:
            raise ValueError(
                f"unknown chaos action {action!r}; expected one of "
                + ", ".join(ACTIONS)
            )
        if hit is not None and hit < 1:
            raise ValueError("hit= is 1-based and must be >= 1")
        if p is not None and not (0.0 <= p <= 1.0):
            raise ValueError("p= must be a probability in [0, 1]")
        self.point = point
        self.action = action
        self.hit = hit
        self.p = p
        #: Deterministic even without an explicit seed: derive one from
        #: the point name so two runs of the same plan agree.
        self.seed = seed if seed is not None else zlib.crc32(point.encode())
        if times is None and hit is not None:
            times = 1
        self.times = times
        self.ms = float(ms)
        # Mutable firing state (guarded by the engine lock).
        self.hits = 0
        self.fired = 0
        self._rng = random.Random(self.seed)

    def matches(self, point: str) -> bool:
        if self.point.endswith(".*"):
            return point.startswith(self.point[:-1]) or point == self.point[:-2]
        return point == self.point

    def should_fire(self) -> bool:
        """Advance this rule's counters for one evaluation; True to fire.
        Caller holds the engine lock."""
        self.hits += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.hit is not None and self.hits < self.hit:
            return False
        if self.p is not None and self._rng.random() >= self.p:
            return False
        self.fired += 1
        return True

    def spec(self) -> str:
        params = []
        if self.hit is not None:
            params.append(f"hit={self.hit}")
        if self.p is not None:
            params.append(f"p={self.p:g}")
        params.append(f"seed={self.seed}")
        if self.times is not None:
            params.append(f"times={self.times}")
        if self.action == "delay":
            params.append(f"ms={self.ms:g}")
        return f"{self.point}:{self.action}@" + ",".join(params)

    def to_json(self) -> Dict[str, Any]:
        return {
            "point": self.point,
            "action": self.action,
            "hit": self.hit,
            "p": self.p,
            "seed": self.seed,
            "times": self.times,
            "ms": self.ms,
            "hits": self.hits,
            "fired": self.fired,
        }


_INT_PARAMS = ("hit", "seed", "times")
_FLOAT_PARAMS = ("p", "ms")


def parse_rule(text: str) -> FaultRule:
    """Parse one ``point:action[@k=v,...]`` clause."""
    point, sep, rest = text.strip().partition(":")
    if not sep or not point or not rest:
        raise ValueError(
            f"bad fault clause {text!r}: expected 'point:action[@k=v,...]'"
        )
    action, _, params = rest.partition("@")
    kwargs: Dict[str, Any] = {}
    if params:
        for item in params.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key or not value:
                raise ValueError(f"bad fault parameter {item!r} in {text!r}")
            if key in _INT_PARAMS:
                kwargs[key] = int(value)
            elif key in _FLOAT_PARAMS:
                kwargs[key] = float(value)
            else:
                raise ValueError(
                    f"unknown fault parameter {key!r} in {text!r}; expected "
                    + ", ".join(_INT_PARAMS + _FLOAT_PARAMS)
                )
    return FaultRule(point, action.strip(), **kwargs)


class FaultPlan:
    """An ordered set of :class:`FaultRule` (one chaos scenario)."""

    def __init__(self, rules: List[FaultRule]):
        self.rules = list(rules)

    @classmethod
    def parse(cls, spec: str, strict: bool = False) -> "FaultPlan":
        """Parse a full ``REPRO_FAULTS`` spec.

        ``strict=True`` additionally rejects point names absent from the
        registered catalog (wildcards are checked against prefixes) —
        the ``python -m repro.chaos check`` path; the environment path
        stays lenient so a plan can name points of a newer build.
        """
        rules = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            rule = parse_rule(clause)
            if strict:
                from repro.chaos.points import CATALOG

                if rule.point.endswith(".*"):
                    prefix = rule.point[:-1]
                    if not any(name.startswith(prefix) for name in CATALOG):
                        raise ValueError(
                            f"wildcard {rule.point!r} matches no registered "
                            "fault point"
                        )
                elif rule.point not in CATALOG:
                    raise ValueError(
                        f"unknown fault point {rule.point!r}; see "
                        "'python -m repro.chaos list'"
                    )
            rules.append(rule)
        if not rules:
            raise ValueError("fault plan is empty")
        return cls(rules)

    def spec(self) -> str:
        return ";".join(rule.spec() for rule in self.rules)


class ChaosEngine:
    """Evaluates fault points against an installed :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.firings: List[Dict[str, Any]] = []
        self.counts: Dict[str, int] = {}

    # ----------------------------------------------------------- evaluate
    def evaluate(self, point: str, payload: Any, child: Optional[int],
                 ctx: Dict[str, Any]) -> Any:
        # Reentrancy guard: the engine publishes its own firings through
        # the telemetry sink, whose publish() is itself a fault point.
        if getattr(self._tls, "busy", False):
            return payload
        to_fire: List[FaultRule] = []
        with self._lock:
            for rule in self.plan.rules:
                if rule.matches(point) and rule.should_fire():
                    to_fire.append(rule)
                    self.counts[point] = self.counts.get(point, 0) + 1
        for rule in to_fire:
            payload = self._act(rule, point, payload, child, ctx)
        return payload

    def _act(self, rule: FaultRule, point: str, payload: Any,
             child: Optional[int], ctx: Dict[str, Any]) -> Any:
        record = {
            "point": point,
            "action": rule.action,
            "ts": time.time(),
            "pid": os.getpid(),
        }
        if child is not None:
            record["child"] = child
        if ctx:
            record["ctx"] = {k: str(v) for k, v in ctx.items()}
        with self._lock:
            self.firings.append(record)
            if len(self.firings) > MAX_FIRING_LOG:
                del self.firings[: len(self.firings) - MAX_FIRING_LOG]
        self._publish(point, rule, record)
        action = rule.action
        if action == "raise":
            raise ChaosFault(point, action)
        if action == "raise-io":
            raise OSError(errno.EIO, f"injected I/O error at {point!r}")
        if action == "enospc":
            raise OSError(errno.ENOSPC,
                          f"injected disk-full error at {point!r}")
        if action == "delay":
            time.sleep(max(0.0, rule.ms) / 1000.0)
            return payload
        if action == "corrupt":
            with self._lock:
                return _corrupt(payload, rule._rng)
        if action == "kill":
            os.kill(child if child is not None else os.getpid(),
                    signal.SIGKILL)
            # A self-kill never returns; for a child kill the caller's
            # next read observes the death.
            return payload
        if action == "exit":
            os._exit(70)
        return payload  # pragma: no cover - exhaustive above

    def _publish(self, point: str, rule: FaultRule,
                 record: Dict[str, Any]) -> None:
        """Emit the ``fault:<point>`` telemetry event (reentrancy-guarded)."""
        self._tls.busy = True
        try:
            from repro.telemetry.sink import active_sink

            sink = active_sink()
            if sink is not None:
                fields = {"action": rule.action, "seed": rule.seed,
                          "fired": rule.fired}
                if "child" in record:
                    fields["child"] = record["child"]
                if "ctx" in record:
                    fields.update(record["ctx"])
                sink.publish("fault", point, fields=fields)
        except Exception:  # noqa: BLE001 - telemetry must not mask the fault
            pass
        finally:
            self._tls.busy = False

    # ------------------------------------------------------------ queries
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "firings": sum(self.counts.values()),
                "by_point": dict(self.counts),
                "rules": [rule.to_json() for rule in self.plan.rules],
            }


def _corrupt(payload: Any, rng: random.Random) -> Any:
    """A torn write: truncate at a seeded offset, then append garbage."""
    if isinstance(payload, str):
        cut = rng.randrange(0, max(1, len(payload)))
        return payload[:cut] + CORRUPT_MARKER
    if isinstance(payload, (bytes, bytearray)):
        cut = rng.randrange(0, max(1, len(payload)))
        return bytes(payload[:cut]) + CORRUPT_MARKER.encode()
    return payload  # non-bytes payloads pass through unmangled


# =====================================================================
# The process-active engine (same lazy pattern as telemetry.sink)
# =====================================================================

_UNSET = object()
_ACTIVE: Any = _UNSET
_ACTIVE_LOCK = threading.Lock()


def plan_from_env() -> Optional[FaultPlan]:
    """Parse ``REPRO_FAULTS``; None when unset.  A malformed spec is
    reported on stderr and treated as *no plan* — a typo must not take
    the daemon down at import time."""
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    try:
        return FaultPlan.parse(spec)
    except ValueError as err:
        import sys

        print(f"repro.chaos: ignoring malformed REPRO_FAULTS: {err}",
              file=sys.stderr)
        return None


def active_engine() -> Optional[ChaosEngine]:
    """The process-active engine, or None when chaos is off.  Lazy and
    cached: the first call consults ``REPRO_FAULTS``; afterwards this is
    a global read."""
    global _ACTIVE
    engine = _ACTIVE
    if engine is _UNSET:
        with _ACTIVE_LOCK:
            if _ACTIVE is _UNSET:
                plan = plan_from_env()
                _ACTIVE = ChaosEngine(plan) if plan is not None else None
            engine = _ACTIVE
    return engine


def install_plan(plan: Optional[FaultPlan]) -> Optional[ChaosEngine]:
    """Install ``plan`` as the process-active engine (None disables
    chaos); returns the new engine (None when disabled)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = ChaosEngine(plan) if plan is not None else None
        return _ACTIVE


def uninstall_engine() -> None:
    """Forget the active engine *and* the cached env resolution, so the
    next :func:`active_engine` re-consults ``REPRO_FAULTS``."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = _UNSET


def faultpoint(name: str, payload: Any = None, child: Optional[int] = None,
               **ctx: Any) -> Any:
    """Evaluate the named fault point.

    Returns ``payload`` (possibly corrupted by a ``corrupt`` rule), or
    raises / sleeps / kills according to the matching rules.  With no
    active engine this is a near-free passthrough.
    """
    engine = active_engine()
    if engine is None:
        return payload
    return engine.evaluate(name, payload, child, ctx)
