"""CLI entry point: ``python -m repro.chaos``.

Subcommands::

    list                     print the fault-point catalog, grouped by layer
    check SPEC               validate a REPRO_FAULTS spec (strict: catalog-checked)
    run --schedule NAME      run a named chaos schedule against a live daemon
"""

from __future__ import annotations

import argparse
import json
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="deterministic fault injection for the repro stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="print the registered fault points")
    p_list.add_argument("--count", action="store_true",
                        help="print only the number of registered points")

    p_check = sub.add_parser(
        "check", help="validate a REPRO_FAULTS spec against the catalog")
    p_check.add_argument("spec", help="e.g. 'progcache.disk_write:raise-io@hit=2'")

    p_run = sub.add_parser("run", help="run a named seeded chaos schedule")
    p_run.add_argument("--schedule", required=True,
                       help="one of the named schedules (see --list-schedules)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--requests", type=int, default=80)
    p_run.add_argument("--threads", type=int, default=4)
    p_run.add_argument("--workers", type=int, default=2)
    p_run.add_argument("--cache-root", default=None, metavar="DIR")
    p_run.add_argument("--output", default=None, metavar="JSON",
                       help="write the full report here")
    return parser


def cmd_list(args) -> int:
    from repro.chaos.points import CATALOG, LAYERS

    if args.count:
        print(len(CATALOG))
        return 0
    width = max(len(name) for name in CATALOG)
    for layer in LAYERS:
        names = sorted(n for n, pt in CATALOG.items() if pt.layer == layer)
        if not names:
            continue
        print(f"[{layer}]")
        for name in names:
            point = CATALOG[name]
            print(f"  {name:<{width}}  {point.module:<28} {point.description}")
    print(f"{len(CATALOG)} fault points across {len(LAYERS)} layers")
    return 0


def cmd_check(args) -> int:
    from repro.chaos.engine import FaultPlan

    try:
        plan = FaultPlan.parse(args.spec, strict=True)
    except ValueError as err:
        print(f"invalid: {err}", file=sys.stderr)
        return 1
    for rule in plan.rules:
        print(rule.spec())
    return 0


def cmd_run(args) -> int:
    from repro.chaos.schedules import SCHEDULES, run_schedule

    if args.schedule not in SCHEDULES:
        print(f"unknown schedule {args.schedule!r}; available: "
              + ", ".join(sorted(SCHEDULES)), file=sys.stderr)
        return 2
    report = run_schedule(
        args.schedule,
        seed=args.seed,
        requests=args.requests,
        threads=args.threads,
        workers=args.workers,
        cache_root=args.cache_root,
        output=args.output,
    )
    summary = {key: report.get(key) for key in
               ("schedule", "seed", "fired", "by_point", "pool",
                "drain_clean", "fsck", "passed")}
    print(json.dumps(summary, indent=2, sort_keys=True))
    if not report["passed"]:
        for failure in report["failures"][:20]:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(f"CHAOS SEED: {args.seed}", file=sys.stderr)
        print(f"reproduce with: python -m repro.chaos run "
              f"--schedule {args.schedule} --seed {args.seed}",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "check":
        return cmd_check(args)
    return cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
