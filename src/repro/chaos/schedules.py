"""Named chaos schedules and the invariant harness that runs them.

A *schedule* is a seeded :class:`~repro.chaos.engine.FaultPlan` builder
— given one integer seed it produces a full ``REPRO_FAULTS`` spec with
every rule's stream seed derived from it, so a failing run is
reproducible from ``(schedule, seed)`` alone.

:func:`run_schedule` boots a real :class:`~repro.serve.daemon.SDFGServer`
(worker subprocesses and all) with the plan installed both in-process
and in the environment (workers inherit ``os.environ``, so their fault
points activate too), drives it with the mixed-load driver in chaos
mode, and then checks the global invariants the chaos layer promises:

* every request got a *structured* response (ok, or an error/rejection
  carrying a diagnostic code) — nothing hung past the client deadline;
* the fired faults were observable: the engine snapshot and/or the
  daemon's telemetry sink carry ``fault:*`` evidence;
* the worker pool healed back to its configured size;
* a graceful drain finished with zero abandoned in-flight requests;
* the integrity sweep (:func:`~repro.serve.fsck.fsck_sweep`) repairs
  whatever the faults tore, and a second sweep is clean.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import zlib
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.engine import (
    FaultPlan,
    active_engine,
    install_plan,
    uninstall_engine,
)


def _sub_seed(schedule: str, seed: int, index: int) -> int:
    """A per-rule stream seed derived from the schedule seed."""
    return zlib.crc32(f"{schedule}:{index}:{int(seed)}".encode()) & 0x7FFFFFFF


def _cache_torn_write(seed: int) -> str:
    """Torn and failing cache I/O: corrupt entries on the way to disk,
    sporadic read errors on the way back.  Exercises quarantine-on-read,
    write-failure tolerance, and the fsck repair path."""
    s = lambda i: _sub_seed("cache-torn-write", seed, i)  # noqa: E731
    return ";".join([
        f"progcache.disk_write:corrupt@p=0.5,seed={s(0)}",
        f"tuningcache.disk_write:corrupt@p=0.5,seed={s(1)}",
        f"progcache.disk_read:raise-io@p=0.15,seed={s(2)}",
    ])


def _worker_kill_storm(seed: int) -> str:
    """Workers die mid-request and mid-spawn; crash-bundle writes fail
    too.  Exercises death detection, respawn, replay, pool healing, and
    bundle-write tolerance."""
    s = lambda i: _sub_seed("worker-kill-storm", seed, i)  # noqa: E731
    return ";".join([
        f"worker.request:kill@p=0.2,seed={s(0)}",
        f"pool.worker_spawn:kill@p=0.1,seed={s(1)}",
        f"pool.crash_bundle:raise-io@p=0.3,seed={s(2)}",
    ])


def _slow_io(seed: int) -> str:
    """Everything is slow but nothing is broken: latency injection at
    cache writes, frame reads, and worker response writes.  Exercises
    deadlines, the client-side timeout, and drain under load."""
    s = lambda i: _sub_seed("slow-io", seed, i)  # noqa: E731
    return ";".join([
        f"progcache.disk_write:delay@p=0.3,ms=40,seed={s(0)}",
        f"daemon.frame_read:delay@p=0.2,ms=30,seed={s(1)}",
        f"worker.response_write:delay@p=0.2,ms=30,seed={s(2)}",
    ])


#: name -> seed -> ``REPRO_FAULTS`` spec
SCHEDULES: Dict[str, Callable[[int], str]] = {
    "cache-torn-write": _cache_torn_write,
    "worker-kill-storm": _worker_kill_storm,
    "slow-io": _slow_io,
}


def build_spec(schedule: str, seed: int) -> str:
    try:
        builder = SCHEDULES[schedule]
    except KeyError:
        raise ValueError(
            f"unknown chaos schedule {schedule!r}; expected one of "
            + ", ".join(sorted(SCHEDULES))
        ) from None
    return builder(int(seed))


def _fd_count() -> Optional[int]:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def run_schedule(
    schedule: str,
    seed: int = 0,
    requests: int = 80,
    threads: int = 4,
    workers: int = 2,
    cache_root: Optional[str] = None,
    read_timeout: float = 60.0,
    output: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one named schedule against a live daemon; returns the report.

    The report's ``passed`` is True iff every invariant held; on failure
    ``failures`` lists what broke and ``seed`` reproduces the run.
    """
    from repro.runtime.watchdog import RetryPolicy
    from repro.serve.admission import TenantPolicy
    from repro.serve.daemon import SDFGServer, ServeConfig
    from repro.serve.fsck import fsck_sweep
    from repro.serve.loadtest import run_loadtest

    spec = build_spec(schedule, seed)
    plan = FaultPlan.parse(spec, strict=True)

    failures: List[str] = []
    tmp_root = None
    if cache_root is None:
        tmp_root = tempfile.mkdtemp(prefix="repro_chaos_")
        cache_root = os.path.join(tmp_root, "cache")
    crash_root = os.path.join(
        tmp_root or os.path.dirname(os.path.abspath(cache_root)),
        "crashes",
    )

    saved_env = {
        key: os.environ.get(key)
        for key in ("REPRO_FAULTS", "REPRO_CRASH_DIR")
    }
    os.environ["REPRO_FAULTS"] = spec        # workers inherit os.environ
    os.environ["REPRO_CRASH_DIR"] = crash_root
    install_plan(plan)                       # the daemon side, in-process

    fds_before = _fd_count()
    server = None
    stopped = False
    report: Dict[str, Any] = {}
    try:
        server = SDFGServer(ServeConfig(
            workers=workers,
            cache_root=cache_root,
            health_interval=0.5,
            fsck_on_start=False,  # this run *creates* the mess; sweep after
            default_policy=TenantPolicy(
                max_inflight=max(8, threads * 2),
                # Keep the storm stormy: a conservatively low breaker
                # threshold would open after a few injected worker kills
                # and starve the schedule of traffic.
                breaker_threshold=1000,
                breaker_cooldown=1.0,
            ),
            retry=RetryPolicy(retries=1, backoff=0.02, jitter=0.5),
        )).start()

        drive = run_loadtest(
            socket_path=server.config.socket_path,
            requests=requests,
            threads=threads,
            chaos=True,
            read_timeout=read_timeout,
        )
        failures.extend(drive.get("failures", []))

        # ---- invariant: fired faults were observable -----------------
        engine = active_engine()
        snap = engine.snapshot() if engine is not None else {"firings": 0}
        sink_faults = 0
        if server.sink is not None:
            events, _, _ = server.sink.drain(0)
            sink_faults = sum(1 for e in events if e.kind == "fault")
        fired = snap["firings"] + sink_faults
        if fired == 0:
            failures.append(
                f"schedule {schedule!r} (seed {seed}) fired no faults: "
                "nothing was tested"
            )

        # ---- invariant: the pool healed back to size -----------------
        deadline = time.monotonic() + 20.0
        pool_stats = server.pool.stats()
        while (pool_stats["alive"] != pool_stats["size"]
               and time.monotonic() < deadline):
            time.sleep(0.25)
            pool_stats = server.pool.stats()
        if pool_stats["alive"] != pool_stats["size"]:
            failures.append(
                f"worker pool did not heal to its configured size: "
                f"{pool_stats['alive']}/{pool_stats['size']} alive 20s "
                "after the drive (fewer = dead capacity, more = a leak)"
            )

        # ---- invariant: graceful drain is clean ----------------------
        # Faults off first: the drain and the sweep verify *recovery*.
        uninstall_engine()
        os.environ.pop("REPRO_FAULTS", None)
        drained = server.drain(grace=10.0)
        stopped = True
        if not drained:
            failures.append("graceful drain abandoned in-flight requests")

        # ---- invariant: fsck repairs, then reports clean -------------
        first = fsck_sweep(cache_root=cache_root, crash_root=crash_root)
        second = fsck_sweep(cache_root=cache_root, crash_root=crash_root)
        if not second["clean"]:
            failures.append(
                f"fsck not clean after repair pass: {second!r}"
            )

        # ---- soft invariant: fd usage returned to baseline -----------
        fds_after = _fd_count()
        if (fds_before is not None and fds_after is not None
                and fds_after > fds_before + 16):
            failures.append(
                f"fd leak: {fds_before} open before the run, "
                f"{fds_after} after"
            )

        report = {
            "schedule": schedule,
            "seed": int(seed),
            "spec": spec,
            "requests": requests,
            "threads": threads,
            "workers": workers,
            "fired": fired,
            "fired_in_process": snap["firings"],
            "fired_in_telemetry": sink_faults,
            "by_point": snap.get("by_point", {}),
            "loadtest": {
                key: drive.get(key)
                for key in ("requests", "healthy", "throughput_rps", "passed")
            },
            "pool": pool_stats,
            "drain_clean": server.drained_clean,
            "fsck": {"repairs": first["repairs"], "clean": second["clean"]},
            "fds": {"before": fds_before, "after": fds_after},
            "failures": failures,
            "passed": not failures,
        }
    finally:
        uninstall_engine()
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        if server is not None and not stopped:
            server.stop()
        if tmp_root is not None:
            shutil.rmtree(tmp_root, ignore_errors=True)

    if output:
        with open(output, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
    return report
