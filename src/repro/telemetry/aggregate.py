"""Windowed aggregation of the telemetry stream.

The aggregator drains a :class:`~repro.telemetry.sink.TelemetrySink`
and folds events into fixed-width wall-clock windows.  Each window
keeps:

* per-kernel execution-time samples (bounded; percentiles computed on
  demand) keyed by SDFG name;
* cache hit/miss/store counters per cache name (``progcache``,
  ``tuning``, ``symcache:<fn>``, the workers' warm-artifact LRU);
* per-tenant request / ok / rejected / error / shed counts;
* the breaker-state timeline (``(ts, key, old, new)`` transitions);
* top-N hot spots by summed timer duration and by memlet volume;
* the number of events lost to ring overflow (``dropped``).

Windows rotate by event timestamp, not by call time, so a snapshot is
deterministic given the stream.  Events timestamped before the oldest
retained window (clock skew, late worker propagation) are folded into
the oldest window and counted as ``skewed`` rather than silently
dropped or crashing the rotation.

Everything here is consumer-side: cost is paid by whoever asks for a
snapshot (the ``metrics`` endpoint, the CLI), never by the hot path.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.sink import TelemetryEvent, TelemetrySink

#: Per-kernel, per-window sample cap.  Past this the sample list keeps
#: every k-th sample (decimation) — counts and sums stay exact, the
#: percentile basis is thinned.
MAX_SAMPLES = 2048

#: Hot-spot table cap per window.
MAX_HOTSPOTS = 256

#: Breaker-timeline cap per window.
MAX_TRANSITIONS = 256


def percentile(samples: List[float], q: float) -> Optional[float]:
    """Linear-interpolation percentile (numpy's default), pure Python.

    A single sample is every percentile of itself; an empty list has
    none.  ``q`` is in [0, 100].
    """
    if not samples:
        return None
    data = sorted(samples)
    if len(data) == 1:
        return float(data[0])
    pos = (len(data) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class _KernelStats:
    """Bounded sample accumulator for one kernel in one window."""

    __slots__ = ("count", "total", "max", "samples", "_stride", "warm", "cold")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.samples: List[float] = []
        self._stride = 1
        self.warm = 0
        self.cold = 0

    def add(self, value: float, warm: Optional[bool]) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        if warm is True:
            self.warm += 1
        elif warm is False:
            self.cold += 1
        if self.count % self._stride == 0:
            self.samples.append(value)
            if len(self.samples) >= MAX_SAMPLES:
                # Decimate: keep every other retained sample, double the
                # stride for future ones.  Percentiles stay representative.
                self.samples = self.samples[::2]
                self._stride *= 2

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else None,
            "max": self.max if self.count else None,
            "p50": percentile(self.samples, 50),
            "p95": percentile(self.samples, 95),
            "p99": percentile(self.samples, 99),
            "warm": self.warm,
            "cold": self.cold,
            "samples": len(self.samples),
        }


class _Window:
    """One aggregation window (all fields fold-in only)."""

    __slots__ = ("start", "width", "kernels", "caches", "tenants",
                 "breakers", "hotspot_time", "hotspot_volume",
                 "tuning", "exemplar", "events", "dropped", "skewed")

    def __init__(self, start: float, width: float):
        self.start = start
        self.width = width
        self.kernels: Dict[str, _KernelStats] = {}
        self.caches: Dict[str, Dict[str, int]] = {}
        self.tenants: Dict[str, Dict[str, int]] = {}
        self.breakers: List[Tuple[float, str, str, str]] = []
        self.hotspot_time: Dict[str, float] = {}
        self.hotspot_volume: Dict[str, int] = {}
        #: Per-label tuning counters (``xform:<name>``, ``cutout:<label>``):
        #: numeric event fields summed, timed values under ``seconds``.
        self.tuning: Dict[str, Dict[str, float]] = {}
        #: Slowest traced request of the window: the full instrumentation
        #: tree of the worst ``trace`` event, kept whole for debugging.
        self.exemplar: Optional[Dict[str, Any]] = None
        self.events = 0
        self.dropped = 0
        self.skewed = 0

    # ---------------------------------------------------------------- folds
    def _tenant(self, name: str) -> Dict[str, int]:
        bucket = self.tenants.get(name)
        if bucket is None:
            bucket = self.tenants[name] = {
                "requests": 0, "ok": 0, "rejected": 0, "errors": 0, "shed": 0,
            }
        return bucket

    def fold(self, ev: TelemetryEvent) -> None:
        self.events += 1
        kind, label, value = ev.kind, ev.label, ev.value
        fields = ev.fields or {}
        if kind == "kernel":
            if value is not None:
                stats = self.kernels.get(label)
                if stats is None:
                    stats = self.kernels[label] = _KernelStats()
                stats.add(float(value), fields.get("warm"))
        elif kind == "request":
            bucket = self._tenant(str(fields.get("tenant", "default")))
            bucket["requests"] += 1
            status = fields.get("status")
            if status == "ok":
                bucket["ok"] += 1
            elif status == "rejected":
                bucket["rejected"] += 1
            else:
                bucket["errors"] += 1
            if fields.get("shed"):
                bucket["shed"] += 1
        elif kind == "cache":
            counters = self.caches.get(label)
            if counters is None:
                counters = self.caches[label] = {}
            event = str(fields.get("event", "hit"))
            counters[event] = counters.get(event, 0) + int(fields.get("n", 1))
        elif kind == "breaker":
            if len(self.breakers) < MAX_TRANSITIONS:
                self.breakers.append(
                    (ev.ts, label, str(fields.get("old", "?")),
                     str(fields.get("new", "?")))
                )
        elif kind == "tuning":
            bucket = self.tuning.get(label)
            if bucket is None:
                bucket = self.tuning[label] = {"events": 0, "seconds": 0.0}
            bucket["events"] += 1
            if value is not None:
                bucket["seconds"] += float(value)
            for key, val in fields.items():
                if isinstance(val, bool) or not isinstance(val, (int, float)):
                    continue
                bucket[key] = bucket.get(key, 0) + val
        elif kind == "trace":
            if value is not None and (
                self.exemplar is None
                or float(value) > self.exemplar.get("seconds", 0.0)
            ):
                self.exemplar = {
                    "kernel": label,
                    "seconds": float(value),
                    "ts": ev.ts,
                    "tenant": fields.get("tenant"),
                    "backend": fields.get("backend"),
                    "report": fields.get("report"),
                }
        elif kind == "drop":
            self.dropped += int(value or 0)
        # Timer/volume hot spots: any timed or volume-carrying event
        # (map/tasklet/state scopes from the instrumentation recorder,
        # compile phases, kernels) competes for the top-N tables.
        # ``trace`` mirrors an already-folded kernel timing and would
        # double-count it.
        if value is not None and kind not in ("drop", "request", "trace"):
            key = f"{kind}:{label}"
            if len(self.hotspot_time) < MAX_HOTSPOTS or key in self.hotspot_time:
                self.hotspot_time[key] = self.hotspot_time.get(key, 0.0) + float(value)
        volume = fields.get("volume_bytes")
        if volume:
            key = f"{kind}:{label}"
            if len(self.hotspot_volume) < MAX_HOTSPOTS or key in self.hotspot_volume:
                self.hotspot_volume[key] = (
                    self.hotspot_volume.get(key, 0) + int(volume)
                )

    # ------------------------------------------------------------- summaries
    def summary(self, top: int = 10) -> Dict[str, Any]:
        caches = {}
        for name, counters in sorted(self.caches.items()):
            hits = counters.get("hit", 0)
            misses = counters.get("miss", 0)
            total = hits + misses
            caches[name] = dict(counters)
            caches[name]["hit_rate"] = round(hits / total, 6) if total else None
        return {
            "start": self.start,
            "end": self.start + self.width,
            "events": self.events,
            "dropped": self.dropped,
            "skewed": self.skewed,
            "kernels": {
                name: stats.summary()
                for name, stats in sorted(self.kernels.items())
            },
            "caches": caches,
            "tuning": {k: dict(v) for k, v in sorted(self.tuning.items())},
            "exemplar": dict(self.exemplar) if self.exemplar else None,
            "tenants": {t: dict(b) for t, b in sorted(self.tenants.items())},
            "breaker_transitions": [
                [round(ts, 6), key, old, new]
                for ts, key, old, new in self.breakers
            ],
            "hotspots": {
                "by_time": [
                    {"element": k, "seconds": round(v, 9)}
                    for k, v in sorted(self.hotspot_time.items(),
                                       key=lambda kv: -kv[1])[:top]
                ],
                "by_volume": [
                    {"element": k, "bytes": v}
                    for k, v in sorted(self.hotspot_volume.items(),
                                       key=lambda kv: -kv[1])[:top]
                ],
            },
        }


class WindowedAggregator:
    """Folds a sink's stream into rotating time windows.

    ``collect()`` drains whatever is new and files it; ``snapshot()``
    collects and returns the JSON summary.  Both are thread-safe (the
    daemon serves ``metrics`` from concurrent connection handlers).
    """

    def __init__(
        self,
        sink: TelemetrySink,
        window_seconds: float = 60.0,
        max_windows: int = 15,
    ):
        self.sink = sink
        self.window_seconds = max(1e-3, float(window_seconds))
        self.max_windows = max(1, int(max_windows))
        self._cursor = 0
        self._windows: "Dict[int, _Window]" = {}  # window index -> window
        self._lock = threading.Lock()
        self.total_events = 0
        self.total_dropped = 0
        self.total_skewed = 0
        #: Breaker keys' *current* state (survives window rotation).
        self.breaker_states: Dict[str, str] = {}

    # -------------------------------------------------------------- folding
    def _index(self, ts: float) -> int:
        return int(ts // self.window_seconds)

    def _window_for(self, ts: float) -> Tuple[_Window, bool]:
        """The window owning ``ts``; second slot is True when the event
        is skewed (older than everything retained)."""
        idx = self._index(ts)
        win = self._windows.get(idx)
        if win is not None:
            return win, False
        if self._windows and idx < min(self._windows):
            # Late event from before the retention horizon: fold into
            # the oldest retained window, flagged as skewed.
            return self._windows[min(self._windows)], True
        win = self._windows[idx] = _Window(
            idx * self.window_seconds, self.window_seconds
        )
        while len(self._windows) > self.max_windows:
            del self._windows[min(self._windows)]
        return win, False

    def collect(self) -> int:
        """Drain and fold everything new; returns the event count."""
        with self._lock:
            events, self._cursor, dropped = self.sink.drain(self._cursor)
            if dropped:
                self.total_dropped += dropped
            for ev in events:
                win, skewed = self._window_for(ev.ts)
                win.fold(ev)
                if skewed:
                    win.skewed += 1
                    self.total_skewed += 1
                if ev.kind == "drop":
                    self.total_dropped += int(ev.value or 0)
                elif ev.kind == "breaker" and ev.fields:
                    self.breaker_states[ev.label] = str(
                        ev.fields.get("new", "?")
                    )
            self.total_events += len(events)
            # Note ring-level drops on the window carrying the newest data.
            if dropped and self._windows:
                self._windows[max(self._windows)].dropped += dropped
            return len(events)

    # ------------------------------------------------------------ snapshots
    def snapshot(self, top: int = 10) -> Dict[str, Any]:
        """Collect, then summarize every retained window (newest first)
        plus cross-window merged kernel stats (what the regression
        detector compares against baselines)."""
        self.collect()
        with self._lock:
            windows = [
                self._windows[idx].summary(top=top)
                for idx in sorted(self._windows, reverse=True)
            ]
            merged: Dict[str, _KernelStats] = {}
            for idx in self._windows:
                for name, stats in self._windows[idx].kernels.items():
                    acc = merged.get(name)
                    if acc is None:
                        acc = merged[name] = _KernelStats()
                    acc.count += stats.count
                    acc.total += stats.total
                    acc.max = max(acc.max, stats.max)
                    acc.warm += stats.warm
                    acc.cold += stats.cold
                    acc.samples.extend(stats.samples)
            tuning: Dict[str, Dict[str, float]] = {}
            exemplar: Optional[Dict[str, Any]] = None
            for idx in self._windows:
                win = self._windows[idx]
                for label, counters in win.tuning.items():
                    bucket = tuning.setdefault(label, {})
                    for key, val in counters.items():
                        bucket[key] = bucket.get(key, 0) + val
                if win.exemplar is not None and (
                    exemplar is None
                    or win.exemplar.get("seconds", 0.0)
                    > exemplar.get("seconds", 0.0)
                ):
                    exemplar = win.exemplar
            return {
                "window_seconds": self.window_seconds,
                "windows": windows,
                "kernels": {
                    name: stats.summary() for name, stats in sorted(merged.items())
                },
                "tuning": {k: dict(v) for k, v in sorted(tuning.items())},
                "exemplar": dict(exemplar) if exemplar else None,
                "totals": {
                    "events": self.total_events,
                    "dropped": self.total_dropped,
                    "skewed": self.total_skewed,
                    "windows": len(windows),
                },
                "breaker_states": dict(sorted(self.breaker_states.items())),
                "sink": self.sink.stats(),
            }


def merge_tenant_counters(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, int]]:
    """Cross-window per-tenant totals of a :meth:`snapshot` payload
    (used by the CLI dashboard and the CI traffic assertions)."""
    totals: Dict[str, Dict[str, int]] = {}
    for window in snapshot.get("windows", ()):
        for tenant, counters in window.get("tenants", {}).items():
            bucket = totals.setdefault(
                tenant, {"requests": 0, "ok": 0, "rejected": 0,
                         "errors": 0, "shed": 0}
            )
            for key, val in counters.items():
                bucket[key] = bucket.get(key, 0) + int(val)
    return totals


def merge_cache_counters(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Cross-window cache counters with recomputed hit rates."""
    totals: Dict[str, Dict[str, Any]] = {}
    for window in snapshot.get("windows", ()):
        for name, counters in window.get("caches", {}).items():
            bucket = totals.setdefault(name, {})
            for key, val in counters.items():
                if key == "hit_rate" or val is None:
                    continue
                bucket[key] = bucket.get(key, 0) + int(val)
    for name, bucket in totals.items():
        hits = bucket.get("hit", 0)
        misses = bucket.get("miss", 0)
        denom = hits + misses
        bucket["hit_rate"] = round(hits / denom, 6) if denom else None
    return totals
