"""Streaming telemetry for the serve fleet (sink → aggregator → detector).

PR 2's :class:`~repro.instrumentation.report.InstrumentationReport` is
per-run and in-memory — the right shape for a benchmark, the wrong one
for a daemon that serves traffic for days.  This package provides the
continuous counterpart:

* :mod:`repro.telemetry.sink` — a bounded ring-buffer event sink that
  the instrumentation recorder, the program/tuning/symbolic caches, the
  watchdog circuit breakers, and the serve layer's admission controller
  all publish into.  Publishing is a single locked ring write (a couple
  of microseconds); overflow overwrites the oldest events and is
  *counted*, never blocking a hot path.
* :mod:`repro.telemetry.aggregate` — a windowed aggregator folding the
  stream into time-windowed summaries: per-kernel latency percentiles,
  cache hit rates, breaker-state timelines, per-tenant request/shed/
  error counts, and top-N hot spots by timer and memlet volume.
* :mod:`repro.telemetry.regression` — a drift detector comparing
  windowed kernel timings against stored ``BENCH_*.json`` baselines and
  reporting ``W901 PerfDrift`` / ``W902 MissingBaseline`` structured
  diagnostics.
* ``python -m repro.telemetry`` — ``watch`` (live dashboard),
  ``snapshot`` (one aggregate as JSON), and ``check`` (baseline
  comparison with ``--fail-on-drift``, wired into CI).

Enable process-local collection with ``REPRO_TELEMETRY=1`` (the serve
daemon enables it for itself and its workers by default); everything is
a no-op otherwise.
"""

from __future__ import annotations

from repro.telemetry.aggregate import WindowedAggregator
from repro.telemetry.regression import (
    PerfDrift,
    check_drift,
    load_baselines,
)
from repro.telemetry.sink import (
    TelemetryEvent,
    TelemetrySink,
    active_sink,
    install_sink,
    telemetry_enabled,
    uninstall_sink,
)

__all__ = [
    "PerfDrift",
    "TelemetryEvent",
    "TelemetrySink",
    "WindowedAggregator",
    "active_sink",
    "check_drift",
    "install_sink",
    "load_baselines",
    "telemetry_enabled",
    "uninstall_sink",
]
