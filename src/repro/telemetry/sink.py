"""Bounded ring-buffer telemetry sink (the fleet's event bus).

Producers on hot paths — the instrumentation recorder, the program and
tuning caches, the watchdog circuit breakers, the serve layer — call
:meth:`TelemetrySink.publish`.  A publish is one ring-slot write under a
lock whose critical section is a couple of list operations: a few
microseconds, independent of how far behind any consumer is.  The sink
never blocks and never grows; when producers outrun the consumer the
oldest events are overwritten and the loss is **counted** (per-consumer,
via the drain cursor arithmetic) rather than silently absorbed.

Consumers (the windowed aggregator, the daemon's ``metrics`` endpoint,
the worker→supervisor propagation) call :meth:`drain` with the cursor
returned by their previous drain; they get every event still in the
ring past that cursor plus the exact number they missed.

A process has at most one *active* sink (:func:`active_sink`), installed
explicitly (:func:`install_sink` — the serve daemon and its workers do
this) or implicitly by setting ``REPRO_TELEMETRY=1`` in the environment.
With no active sink every producer-side hook is a ``None`` check.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.chaos.engine import faultpoint

#: Default ring capacity.  4096 events outlast several aggregation
#: windows of serve traffic; one event is one small tuple (~200 bytes).
DEFAULT_CAPACITY = 4096


class TelemetryEvent(NamedTuple):
    """One published event.

    ``kind``/``label`` follow the instrumentation-recorder taxonomy
    (``kernel``, ``request``, ``cache``, ``breaker``, ``admission``,
    ``worker``, ``phase``, plus the IR-element kinds); ``value`` is the
    event's scalar measurement (seconds for timers, None otherwise) and
    ``fields`` carries everything else (tenant, status, counters...).
    """

    seq: int
    ts: float
    kind: str
    label: str
    value: Optional[float]
    fields: Optional[Dict[str, Any]]

    def to_json(self) -> List[Any]:
        """Compact wire form (used for worker → supervisor propagation)."""
        return [round(self.ts, 6), self.kind, self.label, self.value, self.fields]

    @staticmethod
    def fields_from_json(obj: Any) -> Optional[Dict[str, Any]]:
        return obj if isinstance(obj, dict) else None


class TelemetrySink:
    """Fixed-capacity ring of :class:`TelemetryEvent` with drop counting."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(1, int(capacity))
        self._ring: List[Optional[TelemetryEvent]] = [None] * self.capacity
        self._seq = 0  # total events ever published (monotonic)
        self._lock = threading.Lock()

    # ------------------------------------------------------------ producing
    def publish(
        self,
        kind: str,
        label: str,
        value: Optional[float] = None,
        ts: Optional[float] = None,
        fields: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Append one event; returns its sequence number.

        ``ts`` defaults to the wall clock *now*; propagated events (from
        a worker process) carry their original timestamps so windowing
        stays faithful across the fleet.
        """
        # The engine guards against recursion here: its own `fault:*`
        # event publications skip fault-point evaluation.
        faultpoint("telemetry.publish", kind=kind)
        if ts is None:
            ts = time.time()
        with self._lock:
            seq = self._seq
            self._ring[seq % self.capacity] = TelemetryEvent(
                seq, ts, kind, label, value, fields
            )
            self._seq = seq + 1
        return seq

    # ------------------------------------------------------------ consuming
    def drain(
        self, cursor: int = 0, limit: Optional[int] = None
    ) -> Tuple[List[TelemetryEvent], int, int]:
        """Events published at or after ``cursor`` that are still in the
        ring, as ``(events, next_cursor, dropped)``.

        ``dropped`` is the number of events the consumer can never see:
        published after its cursor but already overwritten.  Pass the
        returned ``next_cursor`` to the next drain.  ``limit`` caps the
        batch (oldest first; the rest stay for the next drain).
        """
        faultpoint("telemetry.drain")
        with self._lock:
            seq = self._seq
            oldest = max(0, seq - self.capacity)
            start = max(cursor, oldest)
            dropped = start - cursor if cursor < start else 0
            end = seq if limit is None else min(seq, start + max(0, int(limit)))
            events = [self._ring[i % self.capacity] for i in range(start, end)]
        return events, end, dropped

    # -------------------------------------------------------------- queries
    @property
    def seq(self) -> int:
        """Total number of events ever published."""
        with self._lock:
            return self._seq

    def stats(self) -> Dict[str, int]:
        with self._lock:
            seq = self._seq
        return {
            "capacity": self.capacity,
            "published": seq,
            "resident": min(seq, self.capacity),
        }


# =====================================================================
# The process-active sink
# =====================================================================

#: Sentinel: "not yet resolved" (distinct from "resolved to None").
_UNSET = object()
_ACTIVE: Any = _UNSET
_ACTIVE_LOCK = threading.Lock()


def telemetry_enabled() -> bool:
    """True when ``REPRO_TELEMETRY`` asks for implicit collection."""
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() in (
        "1", "true", "on", "yes",
    )


def active_sink() -> Optional[TelemetrySink]:
    """The process-active sink, or None when telemetry is off.

    Resolution is lazy and cached: the first call consults
    ``REPRO_TELEMETRY`` (creating a default-capacity sink when set);
    afterwards this is a global read — cheap enough for hot paths.
    """
    global _ACTIVE
    sink = _ACTIVE
    if sink is _UNSET:
        with _ACTIVE_LOCK:
            if _ACTIVE is _UNSET:
                _ACTIVE = TelemetrySink() if telemetry_enabled() else None
            sink = _ACTIVE
    return sink


def install_sink(sink: Optional[TelemetrySink]) -> Optional[TelemetrySink]:
    """Install ``sink`` as the process-active sink; returns the previous
    one (which may be None).  Pass the previous value to a later
    ``install_sink`` to restore it (tests, embedded servers)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = None if _ACTIVE is _UNSET else _ACTIVE
        _ACTIVE = sink
    return previous


def uninstall_sink() -> None:
    """Forget the active sink *and* the cached env resolution, so the
    next :func:`active_sink` re-consults ``REPRO_TELEMETRY``."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = _UNSET
