"""Telemetry CLI: live dashboard, snapshots, and regression checks.

::

    python -m repro.telemetry snapshot --socket /tmp/repro.sock --json
    python -m repro.telemetry watch    --socket /tmp/repro.sock
    python -m repro.telemetry check    --socket /tmp/repro.sock \\
        --baselines benchmarks/baselines --fail-on-drift

``snapshot`` fetches one aggregate from a live daemon's ``metrics``
endpoint; ``watch`` refreshes it as a text dashboard; ``check`` compares
the merged kernel timings against stored ``BENCH_*.json`` baselines and
prints ``W901`` / ``W902`` diagnostics.  ``check`` also accepts
``--snapshot FILE`` to run offline against a saved ``snapshot --json``
payload (the CI job does both).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from repro.telemetry.aggregate import (
    merge_cache_counters,
    merge_tenant_counters,
)
from repro.telemetry.regression import (
    DEFAULT_MIN_SAMPLES,
    DEFAULT_THRESHOLD,
    check_drift,
    load_baselines,
)


# ------------------------------------------------------------------ fetching
def fetch_snapshot(socket_path: str, timeout: float = 30.0) -> Dict[str, Any]:
    """One ``metrics`` round-trip against a live daemon."""
    from repro.serve.client import ServeClient, ServeError

    with ServeClient(socket_path=socket_path, timeout=timeout) as client:
        response = client.metrics()
    if response.get("status") != "ok":
        raise ServeError(response)
    metrics = response.get("metrics")
    if not isinstance(metrics, dict):
        raise RuntimeError("daemon returned no metrics payload "
                           "(telemetry disabled? start without --no-telemetry)")
    return metrics


def _load_snapshot(args: argparse.Namespace) -> Dict[str, Any]:
    if getattr(args, "snapshot", None):
        with open(args.snapshot) as f:
            return json.load(f)
    if not args.socket:
        raise SystemExit("pass --socket PATH (live daemon) or --snapshot FILE")
    return fetch_snapshot(args.socket, timeout=args.timeout)


# ----------------------------------------------------------------- rendering
def _fmt_ms(value: Optional[float]) -> str:
    return f"{value * 1e3:9.3f}" if isinstance(value, (int, float)) else "        -"


def render_dashboard(snapshot: Dict[str, Any], top: int = 10) -> str:
    """Plain-text dashboard of one aggregate snapshot."""
    lines: List[str] = []
    totals = snapshot.get("totals", {})
    sink = snapshot.get("sink", {})
    lines.append(
        f"telemetry: {totals.get('events', 0)} events in "
        f"{totals.get('windows', 0)} window(s) of "
        f"{snapshot.get('window_seconds', '?')}s | dropped "
        f"{totals.get('dropped', 0)} | skewed {totals.get('skewed', 0)} | "
        f"ring {sink.get('resident', 0)}/{sink.get('capacity', 0)}"
    )
    kernels = snapshot.get("kernels", {})
    if kernels:
        lines.append("")
        lines.append(f"{'kernel':<28} {'count':>6} {'p50 ms':>9} "
                     f"{'p95 ms':>9} {'p99 ms':>9} {'max ms':>9} {'warm':>5}")
        for name, stats in sorted(
            kernels.items(), key=lambda kv: -(kv[1].get("count") or 0)
        )[:top]:
            lines.append(
                f"{name:<28.28} {stats.get('count', 0):>6} "
                f"{_fmt_ms(stats.get('p50'))} {_fmt_ms(stats.get('p95'))} "
                f"{_fmt_ms(stats.get('p99'))} {_fmt_ms(stats.get('max'))} "
                f"{stats.get('warm', 0):>5}"
            )
    tenants = merge_tenant_counters(snapshot)
    if tenants:
        lines.append("")
        lines.append(f"{'tenant':<16} {'requests':>8} {'ok':>6} "
                     f"{'rejected':>8} {'errors':>6} {'shed':>5}")
        for tenant, counters in sorted(tenants.items()):
            lines.append(
                f"{tenant:<16.16} {counters.get('requests', 0):>8} "
                f"{counters.get('ok', 0):>6} {counters.get('rejected', 0):>8} "
                f"{counters.get('errors', 0):>6} {counters.get('shed', 0):>5}"
            )
    caches = merge_cache_counters(snapshot)
    if caches:
        lines.append("")
        lines.append(f"{'cache':<24} {'hit':>6} {'miss':>6} "
                     f"{'store':>6} {'hit rate':>8}")
        for name, counters in sorted(caches.items()):
            rate = counters.get("hit_rate")
            lines.append(
                f"{name:<24.24} {counters.get('hit', 0):>6} "
                f"{counters.get('miss', 0):>6} {counters.get('store', 0):>6} "
                f"{rate if rate is None else format(rate, '8.2%')}"
            )
    tuning = snapshot.get("tuning", {})
    if tuning:
        lines.append("")
        lines.append(f"{'tuning':<34} {'cand':>6} {'acc':>5} {'rej':>5} "
                     f"{'events':>6} {'sec':>10}")
        for label, counters in sorted(tuning.items()):
            lines.append(
                f"{label:<34.34} {int(counters.get('candidates', 0)):>6} "
                f"{int(counters.get('accepted', 0)):>5} "
                f"{int(counters.get('rejected', 0)):>5} "
                f"{int(counters.get('events', 0)):>6} "
                f"{counters.get('seconds', 0.0):>10.4f}"
            )
    exemplar = snapshot.get("exemplar")
    if exemplar:
        lines.append("")
        lines.append(
            f"slowest traced request: {exemplar.get('kernel', '?')} "
            f"{_fmt_ms(exemplar.get('seconds')).strip()} ms "
            f"(tenant {exemplar.get('tenant', '?')}, "
            f"backend {exemplar.get('backend', '?')})"
        )
        report = exemplar.get("report")
        if isinstance(report, dict):
            try:
                from repro.instrumentation import InstrumentationReport

                rendered = InstrumentationReport.from_json(report).render()
                for line in rendered.splitlines()[:12]:
                    lines.append(f"  {line}")
            except (ValueError, KeyError, TypeError):
                pass
    breakers = snapshot.get("breaker_states", {})
    if breakers:
        lines.append("")
        lines.append("breakers: " + ", ".join(
            f"{key}={state}" for key, state in sorted(breakers.items())
        ))
    windows = snapshot.get("windows", [])
    if windows:
        hot = windows[0].get("hotspots", {}).get("by_time", [])[:top]
        if hot:
            lines.append("")
            lines.append("hot spots (current window, by time):")
            for entry in hot:
                lines.append(
                    f"  {entry.get('element', '?'):<40.40} "
                    f"{_fmt_ms(entry.get('seconds'))} ms"
                )
    return "\n".join(lines)


# ---------------------------------------------------------------- subcommands
def cmd_snapshot(args: argparse.Namespace) -> int:
    snapshot = _load_snapshot(args)
    if args.json:
        json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(render_dashboard(snapshot, top=args.top))
    if args.assert_traffic:
        tenants = merge_tenant_counters(snapshot)
        requests = sum(c.get("requests", 0) for c in tenants.values())
        caches = merge_cache_counters(snapshot)
        hits = sum(c.get("hit", 0) for c in caches.values())
        problems = []
        if requests <= 0:
            problems.append("no per-tenant request counters")
        if hits <= 0:
            problems.append("no cache hits recorded")
        if not snapshot.get("kernels"):
            problems.append("no kernel timings recorded")
        if problems:
            print("assert-traffic FAILED: " + "; ".join(problems),
                  file=sys.stderr)
            return 1
        print(f"assert-traffic OK: {requests} request(s), {hits} cache "
              f"hit(s), {len(snapshot['kernels'])} kernel(s)",
              file=sys.stderr)
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    iteration = 0
    while True:
        iteration += 1
        try:
            snapshot = fetch_snapshot(args.socket, timeout=args.timeout)
        except (ConnectionError, OSError) as err:
            print(f"[watch] daemon unreachable: {err}", file=sys.stderr)
            return 1
        if not args.no_clear:
            sys.stdout.write("\x1b[2J\x1b[H")
        print(f"== repro.telemetry watch  (refresh {args.interval:g}s, "
              f"iteration {iteration}) ==")
        print(render_dashboard(snapshot, top=args.top))
        sys.stdout.flush()
        if args.iterations and iteration >= args.iterations:
            return 0
        time.sleep(args.interval)


def cmd_check(args: argparse.Namespace) -> int:
    snapshot = _load_snapshot(args)
    baselines = load_baselines(*args.baselines)
    report = check_drift(
        snapshot,
        baselines,
        threshold=args.threshold,
        min_samples=args.min_samples,
    )
    if args.json:
        json.dump(report.to_json(), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for diag in report.diagnostics():
            print(str(diag))
        print(
            f"check: {len(report.checked)} kernel(s) against "
            f"{len(baselines)} baseline(s) -> {len(report.drifts)} drift(s), "
            f"{len(report.missing)} missing baseline(s), "
            f"{len(report.skipped)} skipped (under --min-samples)"
        )
    failed = (report.drifts and args.fail_on_drift) or (
        report.missing and args.fail_on_missing
    )
    return 1 if failed else 0


# ----------------------------------------------------------------------- main
def _add_source_args(parser: argparse.ArgumentParser, snapshot_file: bool):
    parser.add_argument("--socket", help="daemon Unix socket path")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="socket timeout in seconds (default 30)")
    if snapshot_file:
        parser.add_argument("--snapshot", metavar="FILE",
                            help="read a saved `snapshot --json` payload "
                                 "instead of querying a daemon")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry",
        description="Fleet telemetry: snapshots, live dashboard, and "
                    "performance-regression checks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    snap = sub.add_parser("snapshot", help="fetch one aggregate snapshot")
    _add_source_args(snap, snapshot_file=True)
    snap.add_argument("--json", action="store_true",
                      help="print the raw snapshot JSON")
    snap.add_argument("--top", type=int, default=10,
                      help="rows per dashboard table (default 10)")
    snap.add_argument("--assert-traffic", action="store_true",
                      help="exit 1 unless the snapshot shows request, "
                           "cache-hit, and kernel activity (CI)")
    snap.set_defaults(func=cmd_snapshot)

    watch = sub.add_parser("watch", help="live text dashboard")
    _add_source_args(watch, snapshot_file=False)
    watch.add_argument("--interval", type=float, default=2.0,
                       help="refresh period in seconds (default 2)")
    watch.add_argument("--iterations", type=int, default=0,
                       help="stop after N refreshes (default: forever)")
    watch.add_argument("--top", type=int, default=10)
    watch.add_argument("--no-clear", action="store_true",
                       help="do not clear the screen between refreshes")
    watch.set_defaults(func=cmd_watch)

    check = sub.add_parser(
        "check", help="compare kernel timings against stored baselines"
    )
    _add_source_args(check, snapshot_file=True)
    check.add_argument("--baselines", nargs="+", required=True,
                       metavar="PATH",
                       help="BENCH_*.json files and/or directories of them")
    check.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       help="drift ratio that fires W901 "
                            f"(default {DEFAULT_THRESHOLD:g}x)")
    check.add_argument("--min-samples", type=int, default=DEFAULT_MIN_SAMPLES,
                       help="observations required before a kernel is "
                            f"judged (default {DEFAULT_MIN_SAMPLES})")
    check.add_argument("--fail-on-drift", action="store_true",
                       help="exit 1 when any W901 fires")
    check.add_argument("--fail-on-missing", action="store_true",
                       help="exit 1 when any observed kernel lacks a "
                            "baseline (W902)")
    check.add_argument("--json", action="store_true",
                       help="print the drift report as JSON")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
