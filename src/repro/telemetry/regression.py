"""Performance-regression detection against stored benchmark baselines.

The detector compares *observed* windowed kernel timings (from a
:meth:`~repro.telemetry.aggregate.WindowedAggregator.snapshot`, live or
saved) against *baseline* timings stored in ``BENCH_*.json`` files —
the serve benchmark's per-kernel percentiles and the fast-path
benchmark's flat metric map both load.  A kernel whose observed p50
exceeds ``threshold ×`` its baseline yields a ``W901`` structured
diagnostic carrying kernel, window, baseline, observed, and ratio; an
observed kernel with *no* stored baseline yields ``W902`` — a missing
baseline is a finding, never a silent pass.

Baseline resolution convention (see ``benchmarks/baselines/README.md``):
a directory of ``BENCH_*.json`` files, written there by benchmark runs
with ``REPRO_BENCH_REPORTS`` pointing at it; kernels resolve by name
across every file, first file (sorted) wins on duplicates.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.diagnostics import Diagnostic, Severity

#: Observed/baseline ratio past which a kernel counts as drifted.
DEFAULT_THRESHOLD = 1.5

#: Kernels with fewer observations than this are not judged (one noisy
#: sample is not a regression).
DEFAULT_MIN_SAMPLES = 3


@dataclass
class PerfDrift:
    """One kernel's timing drift past its baseline (code ``W901``)."""

    kernel: str
    baseline: float
    observed: float
    ratio: float
    threshold: float
    samples: int = 0
    window: Optional[str] = None
    source: Optional[str] = None

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(
            code="W901",
            severity=Severity.WARNING,
            message=(
                f"kernel {self.kernel!r} p50 drifted to {self.observed * 1e3:.3f}ms, "
                f"{self.ratio:.2f}x its baseline of {self.baseline * 1e3:.3f}ms "
                f"(threshold {self.threshold:g}x, {self.samples} samples"
                + (f", window {self.window}" if self.window else "")
                + (f", baseline from {self.source}" if self.source else "")
                + ")"
            ),
            data=self.kernel,
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "code": "W901",
            "kernel": self.kernel,
            "baseline": self.baseline,
            "observed": self.observed,
            "ratio": round(self.ratio, 6),
            "threshold": self.threshold,
            "samples": self.samples,
            "window": self.window,
            "source": self.source,
        }


@dataclass
class DriftReport:
    """Everything one ``check`` run found."""

    drifts: List[PerfDrift] = field(default_factory=list)
    missing: List[Diagnostic] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    def diagnostics(self) -> List[Diagnostic]:
        return [d.to_diagnostic() for d in self.drifts] + list(self.missing)

    def to_json(self) -> Dict[str, Any]:
        return {
            "drifts": [d.to_json() for d in self.drifts],
            "missing": [d.to_json() for d in self.missing],
            "checked": self.checked,
            "skipped": self.skipped,
        }


# ---------------------------------------------------------------- baselines
def _baselines_from_payload(obj: Any, source: str) -> Dict[str, Tuple[float, str]]:
    """Extract ``{kernel: (seconds, source)}`` from one BENCH payload.

    Two shapes load:

    * serve-style: a ``"kernels"`` object of per-kernel summaries whose
      ``p50`` (fallback ``mean``) is the baseline;
    * fast-path style: a flat object of numeric metrics, each metric
      name a baseline key.
    """
    out: Dict[str, Tuple[float, str]] = {}
    if not isinstance(obj, dict):
        return out
    kernels = obj.get("kernels")
    if isinstance(kernels, dict):
        for name, summary in kernels.items():
            if not isinstance(summary, dict):
                continue
            value = summary.get("p50")
            if value is None:
                value = summary.get("mean")
            if isinstance(value, (int, float)) and value > 0:
                out[str(name)] = (float(value), source)
        return out
    for name, value in obj.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool) and value > 0:
            out[str(name)] = (float(value), source)
    return out


def load_baselines(*paths: str) -> Dict[str, Tuple[float, str]]:
    """Load baselines from files and/or directories of ``BENCH_*.json``.

    Returns ``{kernel: (seconds, source_file)}``.  Unreadable or
    malformed files raise — a broken baseline store must be loud, not
    an accidental all-pass.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            found = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
            files.extend(found)
        else:
            files.append(path)
    baselines: Dict[str, Tuple[float, str]] = {}
    for path in files:
        with open(path) as f:
            payload = json.load(f)
        for kernel, entry in _baselines_from_payload(
            payload, os.path.basename(path)
        ).items():
            baselines.setdefault(kernel, entry)
    return baselines


# ------------------------------------------------------------------- checks
def observed_kernels(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """The merged per-kernel stats of an aggregator snapshot."""
    kernels = snapshot.get("kernels")
    return kernels if isinstance(kernels, dict) else {}


def check_drift(
    snapshot: Dict[str, Any],
    baselines: Dict[str, Tuple[float, str]],
    threshold: float = DEFAULT_THRESHOLD,
    min_samples: int = DEFAULT_MIN_SAMPLES,
    window: Optional[str] = None,
) -> DriftReport:
    """Compare a snapshot's kernels against baselines.

    Firing is strictly-greater-than: a kernel sitting *exactly* at
    ``threshold × baseline`` has not drifted past it.  Kernels with
    fewer than ``min_samples`` observations are listed as skipped.
    """
    report = DriftReport()
    threshold = float(threshold)
    for kernel, stats in sorted(observed_kernels(snapshot).items()):
        count = int(stats.get("count") or 0)
        observed = stats.get("p50")
        if observed is None:
            observed = stats.get("mean")
        if observed is None or count < max(1, int(min_samples)):
            report.skipped.append(kernel)
            continue
        entry = baselines.get(kernel)
        if entry is None:
            report.missing.append(Diagnostic(
                code="W902",
                severity=Severity.WARNING,
                message=(
                    f"kernel {kernel!r} has {count} observations but no "
                    "stored baseline; run the benchmark with "
                    "REPRO_BENCH_REPORTS pointing at the baselines "
                    "directory to record one"
                ),
                data=kernel,
            ))
            continue
        baseline, source = entry
        report.checked.append(kernel)
        ratio = float(observed) / baseline if baseline > 0 else float("inf")
        if ratio > threshold:
            report.drifts.append(PerfDrift(
                kernel=kernel,
                baseline=baseline,
                observed=float(observed),
                ratio=ratio,
                threshold=threshold,
                samples=count,
                window=window,
                source=source,
            ))
    return report
