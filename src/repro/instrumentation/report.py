"""Instrumentation reports: a JSON-serializable profile of one SDFG run.

The report is the system's performance-feedback artifact (paper §4.4:
instrumented results feed DIODE's optimization loop): a tree of
:class:`~repro.instrumentation.recorder.EventNode` aggregates with a
text renderer (per-element hot-spot table) and a differ for comparing
two runs (e.g. naive vs ``auto_optimize``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.instrumentation.recorder import EventNode

#: Schema version of the serialized report.
REPORT_SCHEMA_VERSION = 1


@dataclass
class InstrumentationReport:
    """Profile of one SDFG execution (or pipeline run)."""

    sdfg: str
    backend: str = ""
    events: List[EventNode] = field(default_factory=list)

    # ------------------------------------------------------------- queries
    def is_empty(self) -> bool:
        return not self.events

    def walk(self) -> Iterator[Tuple[str, int, EventNode]]:
        """Yield ``(path, depth, node)`` in pre-order; ``path`` joins
        ``kind:label`` segments with ``/`` and identifies a node across
        reports."""

        def go(node: EventNode, prefix: str, depth: int):
            path = f"{prefix}/{node.kind}:{node.label}" if prefix else f"{node.kind}:{node.label}"
            yield path, depth, node
            for c in node.children.values():
                yield from go(c, path, depth + 1)

        for ev in self.events:
            yield from go(ev, "", 0)

    def flat(self) -> Dict[str, EventNode]:
        return {path: node for path, _, node in self.walk()}

    def total_duration(self) -> float:
        return sum(ev.total_duration() for ev in self.events)

    def total_volume(self) -> int:
        return sum(
            node.volume_bytes or 0 for _, _, node in self.walk()
        )

    def hotspots(self, top: int = 10) -> List[Tuple[str, EventNode]]:
        """Elements ranked by own wall-clock time, descending."""
        timed = [
            (path, node)
            for path, _, node in self.walk()
            if node.duration is not None
        ]
        timed.sort(key=lambda it: it[1].duration, reverse=True)
        return timed[:top]

    def structure(self) -> tuple:
        """Duration-free projection used for cross-backend consistency."""
        return tuple(ev.structure() for ev in self.events)

    # -------------------------------------------------------------- render
    def render(self) -> str:
        """Per-element hot-spot table (indented by tree depth)."""
        total = self.total_duration()
        lines = [
            f"instrumentation report for {self.sdfg!r}"
            + (f" [{self.backend}]" if self.backend else ""),
            f"{'element':44s} {'type':13s} {'count':>7s} {'iter':>10s} "
            f"{'bytes':>12s} {'time [ms]':>10s} {'%':>6s}",
        ]
        for path, depth, node in self.walk():
            name = "  " * depth + f"{node.kind} {node.label}"
            dur = f"{node.duration * 1e3:10.3f}" if node.duration is not None else " " * 10
            pct = (
                f"{100.0 * node.duration / total:6.1f}"
                if node.duration is not None and total > 0
                else " " * 6
            )
            iters = f"{node.iterations:>10d}" if node.iterations is not None else " " * 10
            vol = f"{node.volume_bytes:>12d}" if node.volume_bytes is not None else " " * 12
            lines.append(
                f"{name:44.44s} {node.itype:13s} {node.count:7d} {iters} {vol} {dur} {pct}"
            )
        if not self.events:
            lines.append("  (no events recorded)")
        else:
            lines.append(
                f"total instrumented time: {total * 1e3:.3f} ms, "
                f"bytes moved: {self.total_volume()}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------- (de)ser
    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "sdfg": self.sdfg,
            "backend": self.backend,
            "events": [ev.to_json() for ev in self.events],
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "InstrumentationReport":
        if not isinstance(obj, dict) or "events" not in obj or "sdfg" not in obj:
            raise ValueError("not an instrumentation report (missing keys)")
        return InstrumentationReport(
            sdfg=obj["sdfg"],
            backend=obj.get("backend", ""),
            events=[EventNode.from_json(e) for e in obj["events"]],
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_json(), f, indent=2)

    @staticmethod
    def load(path: str) -> "InstrumentationReport":
        with open(path) as f:
            return InstrumentationReport.from_json(json.load(f))


# =====================================================================
# Report diffing (pre/post optimization comparison)
# =====================================================================


@dataclass
class DiffRow:
    path: str
    before: Optional[EventNode]
    after: Optional[EventNode]

    @property
    def delta(self) -> Optional[float]:
        if (
            self.before is None
            or self.after is None
            or self.before.duration is None
            or self.after.duration is None
        ):
            return None
        return self.after.duration - self.before.duration

    @property
    def speedup(self) -> Optional[float]:
        if self.delta is None or self.after.duration == 0:
            return None
        return self.before.duration / self.after.duration


def diff_reports(
    before: InstrumentationReport, after: InstrumentationReport
) -> List[DiffRow]:
    """Align two reports by event path.  Elements only present on one
    side (transformations rename/fuse scopes) appear with the other side
    ``None``."""
    a, b = before.flat(), after.flat()
    rows = [DiffRow(path, a[path], b.get(path)) for path in a]
    rows.extend(DiffRow(path, None, b[path]) for path in b if path not in a)
    rows.sort(key=lambda r: r.path)
    return rows


def render_diff(before: InstrumentationReport, after: InstrumentationReport) -> str:
    lines = [
        f"report diff: {before.sdfg!r} [{before.backend or '?'}] -> "
        f"{after.sdfg!r} [{after.backend or '?'}]",
        f"{'element':52s} {'before[ms]':>11s} {'after[ms]':>11s} "
        f"{'delta[ms]':>11s} {'speedup':>8s}",
    ]

    def ms(node: Optional[EventNode]) -> str:
        if node is None:
            return f"{'-':>11s}"
        if node.duration is None:
            return f"{'(untimed)':>11s}"
        return f"{node.duration * 1e3:11.3f}"

    for row in diff_reports(before, after):
        delta = f"{row.delta * 1e3:+11.3f}" if row.delta is not None else f"{'-':>11s}"
        speed = f"{row.speedup:7.2f}x" if row.speedup is not None else f"{'-':>8s}"
        lines.append(f"{row.path:52.52s} {ms(row.before)} {ms(row.after)} {delta} {speed}")
    tb, ta = before.total_duration(), after.total_duration()
    lines.append(
        f"total: {tb * 1e3:.3f} ms -> {ta * 1e3:.3f} ms "
        + (f"({tb / ta:.2f}x)" if ta > 0 else "")
    )
    return "\n".join(lines)
