"""Symbolic data-movement volumes for instrumented elements.

``MEMLET_VOLUME`` instrumentation reports *bytes moved across an
element's boundary*, derived from propagated memlet volumes
(:mod:`repro.sdfg.propagation`) rather than observed at runtime.  Both
executing backends evaluate the **same** symbolic expression — the
interpreter via :meth:`Expr.evaluate`, generated Python via
:func:`repro.codegen.common.pycode` — so reported byte counts are
identical by construction.

Skipped contributions (they have no well-defined static byte count):

* empty memlets (pure ordering dependencies),
* dynamic memlets (volume is only an upper bound),
* memlets on Stream containers (moved element count is a runtime
  property of the queue).
"""

from __future__ import annotations

from typing import Optional

from repro.symbolic import Add, Expr, Integer, Mul

# NOTE: repro.sdfg imports are deferred to call time — sdfg.nodes imports
# repro.instrumentation.types, so a module-level import here would cycle.


def _memlet_bytes(sdfg, memlet) -> Optional[Expr]:
    """Bytes moved by one memlet, or None when statically unknown."""
    from repro.sdfg.data import Stream

    if memlet.is_empty() or memlet.dynamic or memlet.data is None:
        return None
    desc = sdfg.arrays.get(memlet.data)
    if desc is None or isinstance(desc, Stream):
        return None
    return Mul.make(memlet.volume, Integer(desc.dtype.bytes))


def scope_volume_expr(sdfg, state, entry) -> Optional[Expr]:
    """Bytes crossing a map/consume scope boundary per scope execution.

    Sums the propagated memlets entering the entry node and leaving the
    matching exit node.  Returns None when nothing is statically
    countable (e.g. a pure-stream consume scope).
    """
    exit_ = state.exit_node(entry)
    total: Optional[Expr] = None
    for edge in list(state.in_edges(entry)) + list(state.out_edges(exit_)):
        term = _memlet_bytes(sdfg, edge.data)
        if term is None:
            continue
        total = term if total is None else Add.make(total, term)
    return total


def tasklet_volume_expr(sdfg, state, node) -> Optional[Expr]:
    """Bytes touched by one tasklet firing (sum over adjacent memlets)."""
    total: Optional[Expr] = None
    for edge in list(state.in_edges(node)) + list(state.out_edges(node)):
        term = _memlet_bytes(sdfg, edge.data)
        if term is None:
            continue
        total = term if total is None else Add.make(total, term)
    return total


def state_volume_expr(sdfg, state) -> Optional[Expr]:
    """Bytes touching top-level data containers in one state execution.

    Counts each edge adjacent to a top-level (outside any scope)
    AccessNode once; edges internal to scopes are already summarized by
    the propagated scope-boundary memlets.
    """
    from repro.sdfg.nodes import AccessNode

    sd = state.scope_dict()
    seen = set()
    total: Optional[Expr] = None
    for node in state.nodes():
        if not isinstance(node, AccessNode) or sd.get(node) is not None:
            continue
        for edge in list(state.in_edges(node)) + list(state.out_edges(node)):
            if id(edge) in seen:
                continue
            seen.add(id(edge))
            term = _memlet_bytes(sdfg, edge.data)
            if term is None:
                continue
            total = term if total is None else Add.make(total, term)
    return total


def evaluate_volume(expr: Optional[Expr], bindings) -> Optional[int]:
    """Runtime evaluation used by the interpreter; mirrors the
    ``_instr_eval`` guard emitted into generated Python modules (returns
    None when a referenced symbol is unbound)."""
    if expr is None:
        return None
    try:
        return int(expr.evaluate(dict(bindings)))
    except Exception:
        return None
