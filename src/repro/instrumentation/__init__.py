"""SDFG instrumentation: timers, counters, and data-movement volumes.

The paper's toolchain injects instrumentation into generated code so
performance reports can feed the optimization loop (§4.4, §5).  This
package provides:

* :class:`InstrumentationType` — per-element tags (SDFG, states,
  map/consume scopes, tasklets), persisted by the serializer;
* :class:`InstrumentationRecorder` — the shared event bus that the
  interpreter, generated Python modules, the compilation driver, and
  the guarded optimizer all report into;
* :class:`InstrumentationReport` — the JSON-serializable profile tree,
  with a hot-spot renderer and a pre/post-optimization differ
  (``python -m repro.report``).

Set ``REPRO_PROFILE=1`` to time every top-level SDFG execution even
when nothing is explicitly instrumented.
"""

from __future__ import annotations

import os

from repro.instrumentation.recorder import EventNode, InstrumentationRecorder, KINDS
from repro.instrumentation.report import (
    InstrumentationReport,
    diff_reports,
    render_diff,
)
from repro.instrumentation.types import InstrumentationType
from repro.instrumentation.volume import (
    evaluate_volume,
    scope_volume_expr,
    state_volume_expr,
    tasklet_volume_expr,
)

__all__ = [
    "EventNode",
    "InstrumentationRecorder",
    "InstrumentationReport",
    "InstrumentationType",
    "KINDS",
    "diff_reports",
    "render_diff",
    "evaluate_volume",
    "scope_volume_expr",
    "state_volume_expr",
    "tasklet_volume_expr",
    "has_instrumentation",
    "instrument_map_scopes",
    "profiling_enabled",
]


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE`` requests whole-SDFG timing by default."""
    return os.environ.get("REPRO_PROFILE", "") not in ("", "0", "false", "off")


def has_instrumentation(sdfg) -> bool:
    """True if the SDFG or any element (including nested) is instrumented."""
    from repro.sdfg.nodes import (
        ConsumeEntry,
        MapEntry,
        NestedSDFG,
        Tasklet,
    )

    if sdfg.instrument != InstrumentationType.NONE:
        return True
    for state in sdfg.nodes():
        if state.instrument != InstrumentationType.NONE:
            return True
        for node in state.nodes():
            if isinstance(node, MapEntry):
                if node.map.instrument != InstrumentationType.NONE:
                    return True
            elif isinstance(node, ConsumeEntry):
                if node.consume.instrument != InstrumentationType.NONE:
                    return True
            elif isinstance(node, Tasklet):
                if node.instrument != InstrumentationType.NONE:
                    return True
            elif isinstance(node, NestedSDFG):
                if has_instrumentation(node.sdfg):
                    return True
    return False


def instrument_map_scopes(
    sdfg, itype: InstrumentationType = InstrumentationType.TIMER
) -> int:
    """Tag every map/consume scope (including nested SDFGs); returns the
    number of scopes tagged.  Convenience used by the report CLI and the
    benchmark harness."""
    from repro.sdfg.nodes import ConsumeEntry, MapEntry, NestedSDFG

    n = 0
    for state in sdfg.nodes():
        for node in state.nodes():
            if isinstance(node, MapEntry):
                node.map.instrument = itype
                n += 1
            elif isinstance(node, ConsumeEntry):
                node.consume.instrument = itype
                n += 1
            elif isinstance(node, NestedSDFG):
                n += instrument_map_scopes(node.sdfg, itype)
    return n
