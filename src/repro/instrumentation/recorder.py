"""The instrumentation event bus.

Executing backends, the compilation pipeline, and the guarded optimizer
all report into one :class:`InstrumentationRecorder`.  Events form an
*aggregated profile tree*: ``enter``/``exit`` pairs push and pop a
stack, and repeated executions of the same element (same kind + label
under the same parent) merge into one :class:`EventNode`, summing
durations, counts, iterations, and bytes moved.  The resulting tree is
deterministic — two backends that visit the same elements in the same
nesting produce structurally identical trees, which is what the
backend-consistency tests assert.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.instrumentation.types import InstrumentationType
from repro.telemetry.sink import active_sink

#: Event kinds, part of the report schema: IR elements and pipeline phases.
KINDS = ("sdfg", "state", "map", "consume", "tasklet", "transformation",
         "compile", "phase", "tuning", "cache", "sanitizer", "watchdog",
         "serve", "breaker")


class EventNode:
    """One aggregated entry of the profile tree."""

    __slots__ = ("kind", "label", "itype", "count", "duration", "iterations",
                 "volume_bytes", "children")

    def __init__(self, kind: str, label: str, itype: str = "TIMER"):
        self.kind = kind
        self.label = label
        self.itype = itype
        #: Number of enter/exit pairs merged into this node.
        self.count: int = 0
        #: Summed wall-clock seconds (None when the type records no time).
        self.duration: Optional[float] = None
        #: Summed iteration counts (map scopes).
        self.iterations: Optional[int] = None
        #: Summed bytes moved across the element boundary.
        self.volume_bytes: Optional[int] = None
        self.children: Dict[Tuple[str, str], "EventNode"] = {}

    def child(self, kind: str, label: str, itype: str) -> "EventNode":
        key = (kind, label)
        node = self.children.get(key)
        if node is None:
            node = EventNode(kind, label, itype)
            self.children[key] = node
        return node

    # ------------------------------------------------------------ merging
    def add(
        self,
        duration: Optional[float] = None,
        iterations: Optional[int] = None,
        volume_bytes: Optional[int] = None,
        count: int = 1,
    ) -> None:
        self.count += count
        if duration is not None:
            self.duration = (self.duration or 0.0) + float(duration)
        if iterations is not None:
            self.iterations = (self.iterations or 0) + int(iterations)
        if volume_bytes is not None:
            self.volume_bytes = (self.volume_bytes or 0) + int(volume_bytes)

    def merge(self, other: "EventNode") -> None:
        """Fold another node's measurements (and subtree) into this one."""
        self.add(
            duration=other.duration,
            iterations=other.iterations,
            volume_bytes=other.volume_bytes,
            count=other.count,
        )
        for child in other.children.values():
            self.child(child.kind, child.label, child.itype).merge(child)

    # ------------------------------------------------------------- queries
    def total_duration(self) -> float:
        """This node's duration, or the sum of its children's when it has
        no clock of its own."""
        if self.duration is not None:
            return self.duration
        return sum(c.total_duration() for c in self.children.values())

    def structure(self) -> tuple:
        """Backend-independent projection: everything except wall-clock."""
        return (
            self.kind,
            self.label,
            self.itype,
            self.count,
            self.iterations,
            self.volume_bytes,
            tuple(c.structure() for c in self.children.values()),
        )

    # -------------------------------------------------------------- (de)ser
    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "label": self.label,
            "itype": self.itype,
            "count": self.count,
            "duration": self.duration,
            "iterations": self.iterations,
            "volume_bytes": self.volume_bytes,
            "children": [c.to_json() for c in self.children.values()],
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "EventNode":
        node = EventNode(obj["kind"], obj["label"], obj.get("itype", "TIMER"))
        node.count = int(obj.get("count", 0))
        node.duration = obj.get("duration")
        node.iterations = obj.get("iterations")
        node.volume_bytes = obj.get("volume_bytes")
        for c in obj.get("children", ()):
            child = EventNode.from_json(c)
            node.children[(child.kind, child.label)] = child
        return node

    def __repr__(self) -> str:
        return f"EventNode({self.kind}:{self.label}, count={self.count})"


class InstrumentationRecorder:
    """Collects enter/exit events into an aggregated profile tree.

    The recorder is the shared event bus: the interpreter, generated
    Python modules, the compilation driver, and the guarded optimizer
    all call the same three methods.  Generated code receives the
    recorder as the ``__instr`` argument of its entry function.

    The recorder is thread-safe: each thread gets its own enter/exit
    stack (rooted at the shared tree), and mutation of the shared
    :class:`EventNode` tree is serialized by a lock whose critical
    section is a dict lookup plus a few additions.  Concurrent serve
    workers and the daemon's connection threads can therefore report
    into one recorder without corrupting counts.

    When a telemetry sink is active (see :mod:`repro.telemetry.sink`),
    every *timed* exit/event is also forwarded to it, so phase timings
    and IR-element hot spots stream into the fleet aggregator.  Pure
    counters (cache hits, admission decisions) are published at their
    call sites, which know the proper labels.
    """

    def __init__(self):
        self._root = EventNode("root", "")
        self._lock = threading.Lock()
        self._tls = threading.local()

    def _frames(self) -> Tuple[List[EventNode], List[Optional[float]]]:
        """This thread's (stack, starts) pair, created on first use."""
        tls = self._tls
        stack = getattr(tls, "stack", None)
        if stack is None:
            stack = tls.stack = [self._root]
            tls.starts = [None]
        return stack, tls.starts

    # ----------------------------------------------------------- recording
    def enter(self, kind: str, label: str, itype: str = "TIMER") -> EventNode:
        """Open a nested event; must be paired with :meth:`exit`."""
        stack, starts = self._frames()
        with self._lock:
            node = stack[-1].child(kind, label, itype)
        stack.append(node)
        timed = InstrumentationType[itype].records_time()
        starts.append(time.perf_counter() if timed else None)
        return node

    def exit(
        self,
        iterations: Optional[int] = None,
        volume: Optional[int] = None,
    ) -> None:
        """Close the innermost open event, folding in its measurements."""
        stack, starts = self._frames()
        if len(stack) <= 1:
            raise RuntimeError("InstrumentationRecorder.exit without enter")
        node = stack.pop()
        start = starts.pop()
        duration = time.perf_counter() - start if start is not None else None
        with self._lock:
            node.add(duration=duration, iterations=iterations,
                     volume_bytes=volume)
        if duration is not None:
            sink = active_sink()
            if sink is not None:
                sink.publish(
                    node.kind, node.label, duration,
                    fields={"volume_bytes": volume} if volume else None,
                )

    def event(
        self,
        kind: str,
        label: str,
        itype: str = "TIMER",
        duration: Optional[float] = None,
        iterations: Optional[int] = None,
        volume: Optional[int] = None,
    ) -> EventNode:
        """Record a leaf event with pre-measured values (pipeline phases)."""
        stack, _ = self._frames()
        with self._lock:
            node = stack[-1].child(kind, label, itype)
            node.add(duration=duration, iterations=iterations,
                     volume_bytes=volume)
        if duration is not None:
            sink = active_sink()
            if sink is not None:
                sink.publish(
                    kind, label, duration,
                    fields={"volume_bytes": volume} if volume else None,
                )
        return node

    def absorb(self, node: EventNode) -> None:
        """Graft an externally-built event tree under the current node
        (used to splice a compile pipeline's local tree into a caller's
        recorder)."""
        stack, _ = self._frames()
        with self._lock:
            stack[-1].child(node.kind, node.label, node.itype).merge(node)

    # ------------------------------------------------------------- queries
    @property
    def root(self) -> EventNode:
        return self._root

    def is_balanced(self) -> bool:
        """True when *this thread* has no open enter/exit pair."""
        stack, _ = self._frames()
        return len(stack) == 1

    def report(self, sdfg: str, backend: str = ""):
        """Snapshot the collected tree into an immutable report."""
        from repro.instrumentation.report import InstrumentationReport

        with self._lock:
            events = list(self._root.children.values())
        return InstrumentationReport(
            sdfg=sdfg,
            backend=backend,
            events=events,
        )
