"""Instrumentation types attachable to SDFG elements (paper §4.4/§5).

The paper's toolchain injects timers and counters into generated code to
feed performance reports and DIODE's optimization loop.  Here every
instrumentable IR element (the SDFG itself, states, map/consume scopes,
tasklets) carries an :class:`InstrumentationType` that both executing
backends honor:

* ``TIMER`` — wall-clock duration of every execution of the element,
  plus everything the cheaper types record (execution count, iteration
  count, memlet volume).  The most informative and most intrusive type.
* ``COUNTER`` — execution and iteration counts only; no clock calls.
* ``MEMLET_VOLUME`` — statically-derived bytes moved across the
  element's boundary (from propagated memlet volumes), accumulated per
  execution.  Identical across backends by construction, since both
  evaluate the same symbolic expression.
* ``NONE`` — not instrumented (the default everywhere).
"""

from __future__ import annotations

import enum


class InstrumentationType(enum.Enum):
    """What to record about an SDFG element's executions."""

    NONE = "NONE"
    TIMER = "TIMER"
    COUNTER = "COUNTER"
    MEMLET_VOLUME = "MEMLET_VOLUME"

    @staticmethod
    def from_name(name: str) -> "InstrumentationType":
        return InstrumentationType[name]

    def records_time(self) -> bool:
        return self is InstrumentationType.TIMER

    def records_volume(self) -> bool:
        return self in (InstrumentationType.TIMER, InstrumentationType.MEMLET_VOLUME)

    def records_iterations(self) -> bool:
        return self in (InstrumentationType.TIMER, InstrumentationType.COUNTER)
