"""Command-line front end for instrumentation reports.

Usage (``python -m repro.report``):

* ``python -m repro.report report.json`` — render a saved report as the
  per-element hot-spot table;
* ``python -m repro.report --diff naive.json optimized.json`` — align
  two reports by event path and show per-element deltas/speedups;
* ``python -m repro.report --polybench gemm [--optimize] [--save f]`` —
  run one PolyBench kernel with whole-SDFG timing plus per-map
  TIMER instrumentation, then render (and optionally save) its report.

``--check-nonempty`` makes the command fail (exit code 1) when a report
has no events or does not parse — CI uses this to assert that the
instrumentation pipeline actually produced data.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.instrumentation import (
    InstrumentationReport,
    InstrumentationType,
    instrument_map_scopes,
    render_diff,
)


def load_report(path: str) -> InstrumentationReport:
    """Load and schema-check one report file; raises ValueError on
    malformed input (including non-JSON files)."""
    try:
        with open(path) as f:
            obj = json.load(f)
    except json.JSONDecodeError as err:
        raise ValueError(f"{path}: not valid JSON ({err})") from err
    return InstrumentationReport.from_json(obj)


def run_polybench(
    name: str, optimize: bool = False, backend: str = "python",
    sanitize: bool = False,
) -> InstrumentationReport:
    """Run one PolyBench kernel instrumented and return its report.

    The kernel SDFG gets whole-SDFG timing plus a TIMER on every map and
    consume scope (so the hot-spot table shows per-scope time,
    iterations, and bytes moved).  With ``optimize=True`` the
    ``auto_optimize`` schedule runs first — saving both variants and
    diffing them shows where the transformations moved the time.  With
    ``sanitize=True`` the run executes under the dynamic memlet
    sanitizer in collect mode; findings are rendered after the table.
    """
    from repro.codegen.compiler import compile_sdfg
    from repro.transformations.auto import auto_optimize
    from repro.workloads.polybench import get

    kernel = get(name)
    sdfg = kernel.make_sdfg()
    if optimize:
        auto_optimize(sdfg)
    sdfg.instrument = InstrumentationType.TIMER
    instrument_map_scopes(sdfg, InstrumentationType.TIMER)
    compiled = compile_sdfg(
        sdfg, backend=backend, sanitize="collect" if sanitize else None
    )
    kernel.run_sdfg(kernel.data(), compiled=compiled)
    report = compiled.last_report
    if report is None:  # defensive: instrumented runs always attach one
        report = InstrumentationReport(sdfg=sdfg.name, backend=compiled.backend)
    if sanitize:
        print(render_findings(compiled.last_findings), file=sys.stderr)
    return report


def render_findings(findings) -> str:
    """Human-readable sanitizer summary: per-code counts, then each
    finding's code, location, and message."""
    if not findings:
        return "sanitizer: no findings"
    counts: dict = {}
    for f in findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    lines = [
        "sanitizer: "
        + ", ".join(f"{code} x{n}" for code, n in sorted(counts.items()))
    ]
    for f in findings:
        lines.append(f"  {f.code} at {f.location()}: {f.message}")
    return "\n".join(lines)


def _check(report: InstrumentationReport, origin: str) -> int:
    if report.is_empty():
        print(f"error: report from {origin} contains no events", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Render, diff, and generate SDFG instrumentation reports.",
    )
    parser.add_argument(
        "reports", nargs="*", help="saved report JSON files to render"
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("BEFORE", "AFTER"),
        help="diff two saved reports (e.g. naive vs auto-optimized)",
    )
    parser.add_argument(
        "--polybench",
        metavar="KERNEL",
        help="run one PolyBench kernel instrumented and report on it",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="run auto_optimize before compiling (--polybench only)",
    )
    parser.add_argument(
        "--backend",
        default="python",
        help="execution backend for --polybench (default: python)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the dynamic memlet sanitizer (collect mode) and "
        "print a findings summary (--polybench only)",
    )
    parser.add_argument(
        "--save", metavar="FILE", help="save the generated report as JSON"
    )
    parser.add_argument(
        "--check-nonempty",
        action="store_true",
        help="exit with status 1 when a report is empty or malformed",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list available PolyBench kernel names and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        from repro.workloads.polybench import all_kernels

        print("\n".join(all_kernels()))
        return 0

    status = 0
    did_something = False

    if args.polybench:
        did_something = True
        report = run_polybench(
            args.polybench, optimize=args.optimize, backend=args.backend,
            sanitize=args.sanitize,
        )
        if args.save:
            report.save(args.save)
            print(f"saved report to {args.save}", file=sys.stderr)
        print(report.render())
        if args.check_nonempty:
            status |= _check(report, f"polybench kernel {args.polybench!r}")

    if args.diff:
        did_something = True
        try:
            before, after = (load_report(p) for p in args.diff)
        except (OSError, ValueError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
        print(render_diff(before, after))

    for path in args.reports:
        did_something = True
        try:
            report = load_report(path)
        except (OSError, ValueError) as err:
            print(f"error: {err}", file=sys.stderr)
            status = 1
            continue
        print(report.render())
        if args.check_nonempty:
            status |= _check(report, path)

    if not did_something:
        parser.print_usage()
        return 2
    return status


if __name__ == "__main__":
    raise SystemExit(main())
