"""Parse Python-syntax expression strings into symbolic expression trees.

Memlet subsets, map ranges, and interstate-edge conditions are written as
strings (``"i + 1"``, ``"0:N:2"``, ``"fsz > 0 and d < T"``).  This module
turns them into :class:`repro.symbolic.expr.Expr` objects using the
standard :mod:`ast` parser, supporting exactly the operator subset the IR
defines — anything else raises :class:`SymbolicSyntaxError`.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.symbolic import expr as E
from repro.symbolic import memo


class SymbolicSyntaxError(ValueError):
    """Raised for expression syntax outside the supported subset."""


_FUNCS = {
    "min": E.Min.make,
    "max": E.Max.make,
    "abs": E.Abs.make,
    "ceil": E.CeilDiv.make,
    "ceiling": E.CeilDiv.make,
    "int_ceil": E.CeilDiv.make,
    "int_floor": E.FloorDiv.make,
}


def parse_expr(text: str, local_symbols: Mapping[str, E.Expr] | None = None) -> E.Expr:
    """Parse ``text`` into an expression.

    ``local_symbols`` optionally maps names to pre-existing expressions
    (e.g. map parameters); unknown names become fresh :class:`Symbol`.
    """
    if not isinstance(text, str):
        raise TypeError(f"expected str, got {type(text).__name__}")
    # Parsed expressions are interned: the same (text, local symbols) pair
    # always yields the same immutable Expr object.
    try:
        key = (text.strip(), tuple(sorted((local_symbols or {}).items())))
    except TypeError:
        return _parse_uncached(text, local_symbols)
    return memo.memoized("parse", key, lambda: _parse_uncached(text, local_symbols))


def _parse_uncached(
    text: str, local_symbols: Mapping[str, E.Expr] | None = None
) -> E.Expr:
    try:
        tree = ast.parse(text.strip(), mode="eval")
    except SyntaxError as err:
        raise SymbolicSyntaxError(f"cannot parse expression {text!r}: {err}") from err
    return _convert(tree.body, dict(local_symbols or {}))


def _convert(node: ast.AST, env: Mapping[str, E.Expr]) -> E.Expr:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return E.TRUE if node.value else E.FALSE
        if isinstance(node.value, int):
            return E.Integer(node.value)
        if isinstance(node.value, float):
            return E.sympify(node.value)
        raise SymbolicSyntaxError(f"unsupported literal {node.value!r}")

    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        return E.Symbol(node.id)

    if isinstance(node, ast.UnaryOp):
        val = _convert(node.operand, env)
        if isinstance(node.op, ast.USub):
            return -val
        if isinstance(node.op, ast.UAdd):
            return val
        if isinstance(node.op, ast.Not):
            return E.Not.make(val)  # type: ignore[arg-type]
        raise SymbolicSyntaxError(f"unsupported unary operator {ast.dump(node.op)}")

    if isinstance(node, ast.BinOp):
        a = _convert(node.left, env)
        b = _convert(node.right, env)
        if isinstance(node.op, ast.Add):
            return a + b
        if isinstance(node.op, ast.Sub):
            return a - b
        if isinstance(node.op, ast.Mult):
            return a * b
        if isinstance(node.op, ast.Div):
            return a / b
        if isinstance(node.op, ast.FloorDiv):
            return a // b
        if isinstance(node.op, ast.Mod):
            return a % b
        if isinstance(node.op, ast.Pow):
            return a**b
        raise SymbolicSyntaxError(f"unsupported binary operator {ast.dump(node.op)}")

    if isinstance(node, ast.Compare):
        if len(node.ops) != 1:
            # Chained comparisons decompose into a conjunction.
            parts = []
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                parts.append(
                    _compare(_convert(left, env), op, _convert(right, env))
                )
                left = right
            return E.And.make(*parts)
        return _compare(
            _convert(node.left, env), node.ops[0], _convert(node.comparators[0], env)
        )

    if isinstance(node, ast.BoolOp):
        vals = [_convert(v, env) for v in node.values]
        if isinstance(node.op, ast.And):
            return E.And.make(*vals)  # type: ignore[arg-type]
        return E.Or.make(*vals)  # type: ignore[arg-type]

    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) or node.func.id not in _FUNCS:
            raise SymbolicSyntaxError(
                f"unsupported function call in symbolic expression: {ast.dump(node.func)}"
            )
        args = [_convert(a, env) for a in node.args]
        return _FUNCS[node.func.id](*args)

    if isinstance(node, ast.IfExp):
        # Conditional expressions are folded only if the test is constant.
        test = _convert(node.test, env)
        if test == E.TRUE:
            return _convert(node.body, env)
        if test == E.FALSE:
            return _convert(node.orelse, env)
        raise SymbolicSyntaxError("symbolic conditional expressions must be decidable")

    raise SymbolicSyntaxError(f"unsupported syntax: {ast.dump(node)}")


def _compare(a: E.Expr, op: ast.cmpop, b: E.Expr) -> E.Expr:
    if isinstance(op, ast.Eq):
        return E.Eq.make(a, b)
    if isinstance(op, ast.NotEq):
        return E.Ne.make(a, b)
    if isinstance(op, ast.Lt):
        return E.Lt.make(a, b)
    if isinstance(op, ast.LtE):
        return E.Le.make(a, b)
    if isinstance(op, ast.Gt):
        return E.Gt.make(a, b)
    if isinstance(op, ast.GtE):
        return E.Ge.make(a, b)
    raise SymbolicSyntaxError(f"unsupported comparison {ast.dump(op)}")
