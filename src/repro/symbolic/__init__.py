"""Symbolic integer/real arithmetic substrate.

The SDFG IR is *parametric*: array shapes, map ranges, and memlet subsets
are symbolic integer expressions (paper section 2.1, "Parametric
Dimensions").  The original DaCe implementation extends SymPy; this
reproduction implements its own small, deterministic symbolic engine that
covers exactly what the IR needs:

* an immutable expression tree with canonicalizing constructors
  (:mod:`repro.symbolic.expr`),
* a parser from Python-syntax strings (:mod:`repro.symbolic.parser`),
* symbolic integer range sets and multi-dimensional subsets used by
  memlets and map scopes (:mod:`repro.symbolic.sets`).

Determinism matters: expression ordering is structural, never based on
``id()`` or hash randomization, so code generation and graph printing are
reproducible run-to-run.
"""

from repro.symbolic.expr import (
    Abs,
    Add,
    And,
    BoolExpr,
    CeilDiv,
    Eq,
    Expr,
    FloorDiv,
    Ge,
    Gt,
    Integer,
    Le,
    Lt,
    Max,
    Min,
    Mod,
    Mul,
    Ne,
    Not,
    Or,
    Pow,
    Real,
    Symbol,
    simplify,
    sympify,
    symbols,
)
from repro.symbolic.memo import clear as clear_caches
from repro.symbolic.memo import snapshot as cache_snapshot
from repro.symbolic.memo import stats as cache_stats
from repro.symbolic.parser import parse_expr
from repro.symbolic.sets import Indices, Range, Subset

__all__ = [
    "Abs",
    "Add",
    "And",
    "BoolExpr",
    "CeilDiv",
    "Eq",
    "Expr",
    "FloorDiv",
    "Ge",
    "Gt",
    "Indices",
    "Integer",
    "Le",
    "Lt",
    "Max",
    "Min",
    "Mod",
    "Mul",
    "Ne",
    "Not",
    "Or",
    "Pow",
    "Range",
    "Real",
    "Subset",
    "Symbol",
    "cache_snapshot",
    "cache_stats",
    "clear_caches",
    "parse_expr",
    "simplify",
    "symbols",
    "sympify",
]
