"""Shared memoization substrate for the symbolic engine (hot-path PR).

Expressions are immutable and hashable, so results of pure functions over
them — parsing, substitution, canonical simplification, subset images,
memlet-volume propagation — can be cached on structural identity.  Each
named cache is a plain dict with wholesale clearing when it grows past
:data:`MAX_ENTRIES` (the working set of a compile rebuilds immediately,
and clearing wholesale avoids LRU bookkeeping on the hot path).

Hit/miss counters are **monotonic for the lifetime of the process**:
:func:`clear` drops cached values but, by default, keeps the counters, so
instrumentation consumers can rely on them never decreasing.  The
compilation pipeline snapshots them around each compile and emits the
deltas as ``symcache`` instrumentation events.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

#: Per-cache entry cap; a full cache is cleared wholesale rather than
#: LRU-evicted (cheap, and the working set rebuilds immediately).
MAX_ENTRIES = 1 << 16

_CACHES: Dict[str, Dict[Any, Any]] = {}
_HITS: Dict[str, int] = {}
_MISSES: Dict[str, int] = {}


def memoized(name: str, key: Any, compute: Callable[[], Any]) -> Any:
    """Return the cached value for ``key`` in cache ``name``, computing
    (and storing) it on a miss.  Unhashable keys bypass the cache and
    count as misses."""
    cache = _CACHES.get(name)
    if cache is None:
        cache = _CACHES[name] = {}
        _HITS.setdefault(name, 0)
        _MISSES.setdefault(name, 0)
    try:
        value = cache[key]
    except KeyError:
        _MISSES[name] += 1
        value = compute()
        if len(cache) >= MAX_ENTRIES:
            cache.clear()
        cache[key] = value
        return value
    except TypeError:  # unhashable key component — bypass, don't fail
        _MISSES[name] += 1
        return compute()
    _HITS[name] += 1
    return value


def stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/entry counts per named cache (counters are monotonic)."""
    names = set(_HITS) | set(_MISSES) | set(_CACHES)
    return {
        n: {
            "hits": _HITS.get(n, 0),
            "misses": _MISSES.get(n, 0),
            "entries": len(_CACHES.get(n, ())),
        }
        for n in sorted(names)
    }


def snapshot() -> Dict[str, Tuple[int, int]]:
    """Cheap ``{name: (hits, misses)}`` snapshot for delta reporting."""
    return {n: (_HITS.get(n, 0), _MISSES.get(n, 0)) for n in set(_HITS) | set(_MISSES)}


def clear(reset_counters: bool = False) -> None:
    """Drop all cached values.  Counters survive unless explicitly reset
    so that instrumentation sees them as monotonic."""
    for cache in _CACHES.values():
        cache.clear()
    if reset_counters:
        for counters in (_HITS, _MISSES):
            for name in counters:
                counters[name] = 0
