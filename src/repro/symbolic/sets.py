"""Symbolic integer range sets: the substrate under memlet subsets.

A :class:`Range` is a strided, half-open interval ``start:end:step`` with
an optional ``tile`` width (the paper's ``start:end:stride:tilesize``,
normalized to half-open bounds).  A :class:`Subset` is one Range per array
dimension.  Subsets support the operations the IR needs:

* ``num_elements`` — symbolic data-movement volume (drives memlets),
* ``covers`` / ``intersects`` — containment tests for validation and
  transformation applicability,
* ``offset`` / ``compose`` — reindexing when memlets traverse scopes,
* ``image`` — the image of a subset under a map parameter sweeping its
  range, used by memlet propagation (paper §4.3 step ❶).

Containment of *symbolic* bounds is undecidable in general; ``covers``
uses exact affine reasoning where possible and a deterministic
multi-point probing fallback (symbols assumed positive, as in DaCe),
returning ``False`` when unsure — conservative for every caller.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.symbolic.expr import (
    Add,
    CeilDiv,
    Expr,
    Integer,
    Max,
    Min,
    Mul,
    Symbol,
    sympify,
)

ExprLike = Union[int, str, Expr]

#: Deterministic probe values used when affine reasoning cannot decide a
#: sign question.  Distinct primes avoid accidental coincidences such as
#: ``N == M`` or ``N == 2*M`` holding at the probe point.
_PROBE_VALUES = (101, 257, 1021, 4099, 65537)


def linear_coefficient(e: Expr, sym: Symbol) -> Optional[Expr]:
    """Return ``c`` if ``e`` is linear in ``sym`` (``e = c*sym + d``), else None."""
    d1 = (e.subs({sym: Symbol(sym.name)})).subs({sym: 1}) - e.subs({sym: 0})
    d2 = e.subs({sym: 2}) - e.subs({sym: 1})
    if d1 == d2:
        return d1
    return None


def decide_nonnegative(e: Expr, positive_symbols: bool = True) -> Optional[bool]:
    """Best-effort decision of ``e >= 0`` under the all-symbols-positive model.

    Returns True/False when confident, None when genuinely undecidable.
    """
    if isinstance(e, Integer):
        return e.value >= 0
    if not e.free_symbols:
        try:
            return e.evaluate({}) >= 0
        except Exception:
            return None
    syms = sorted(e.free_symbols, key=lambda s: s.name)
    n = len(syms)
    results = []
    # Vary both magnitude and relative ordering of symbols across probes so
    # that order-dependent signs (N - M) are detected as undecidable.
    patterns = (
        lambda idx: idx,  # ascending
        lambda idx: n - 1 - idx,  # descending
        lambda idx: (idx * 2 + 1) % (n + 1),  # shuffled
    )
    for base in _PROBE_VALUES:
        for pattern in patterns:
            bindings = {s.name: base + 13 * pattern(idx) for idx, s in enumerate(syms)}
            try:
                results.append(e.evaluate(bindings) >= 0)
            except Exception:
                return None
    if all(results):
        return True
    if not any(results):
        return False
    return None


class Range:
    """Half-open strided interval ``start:end:step`` with tile width.

    ``tile > 1`` means each index denotes a block of ``tile`` consecutive
    elements (used by :class:`~repro.transformations`' Vectorization).
    """

    __slots__ = ("start", "end", "step", "tile")

    def __init__(
        self,
        start: ExprLike,
        end: ExprLike,
        step: ExprLike = 1,
        tile: ExprLike = 1,
    ):
        self.start = sympify(start)
        self.end = sympify(end)
        self.step = sympify(step)
        self.tile = sympify(tile)
        if self.step == Integer(0):
            raise ValueError("range step must be nonzero")

    @staticmethod
    def point(index: ExprLike) -> "Range":
        """Single-element range ``[index, index+1)``."""
        idx = sympify(index)
        return Range(idx, idx + 1)

    def is_point(self) -> bool:
        return bool((self.end - self.start) == Integer(1)) and self.tile == Integer(1)

    def size(self) -> Expr:
        """Number of iterated indices: ``ceil((end - start) / step)``."""
        return CeilDiv.make(self.end - self.start, self.step)

    def num_elements(self) -> Expr:
        return Mul.make(self.size(), self.tile)

    def subs(self, mapping: Mapping) -> "Range":
        return Range(
            self.start.subs(mapping),
            self.end.subs(mapping),
            self.step.subs(mapping),
            self.tile.subs(mapping),
        )

    @property
    def free_symbols(self) -> frozenset:
        return (
            self.start.free_symbols
            | self.end.free_symbols
            | self.step.free_symbols
            | self.tile.free_symbols
        )

    def evaluate(self, bindings: Mapping[str, int] | None = None) -> range:
        """Concrete Python range under symbol bindings."""
        return range(
            int(self.start.evaluate(bindings)),
            int(self.end.evaluate(bindings)),
            int(self.step.evaluate(bindings)),
        )

    def min_element(self) -> Expr:
        return self.start

    def max_element(self) -> Expr:
        """Largest index touched (inclusive), accounting for stride and tile."""
        n = self.size()
        last = self.start + (n - 1) * self.step
        return last + self.tile - 1

    def covers(self, other: "Range") -> bool:
        """True if every element of ``other`` lies inside this range's span.

        Span-based (ignores stride holes), which is the conservative
        direction for data-dependency analysis: a superset span never
        under-reports movement.
        """
        lo_ok = decide_nonnegative(other.min_element() - self.min_element())
        hi_ok = decide_nonnegative(self.max_element() - other.max_element())
        return bool(lo_ok) and bool(hi_ok)

    def union_bb(self, other: "Range") -> "Range":
        """Bounding-box union (stride collapses to 1 unless equal)."""
        start = Min.make(self.start, other.start)
        end = Max.make(self.end, other.end)
        step = self.step if self.step == other.step else Integer(1)
        tile = self.tile if self.tile == other.tile else Integer(1)
        # A bounding box with a stride would claim holes it cannot prove.
        if not (self.start == other.start and self.end == other.end):
            step = Integer(1)
        return Range(start, end, step, tile)

    def offset_by(self, delta: ExprLike) -> "Range":
        d = sympify(delta)
        return Range(self.start + d, self.end + d, self.step, self.tile)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        return (
            self.start == other.start
            and self.end == other.end
            and self.step == other.step
            and self.tile == other.tile
        )

    def __hash__(self) -> int:
        return hash((self.start, self.end, self.step, self.tile))

    def __str__(self) -> str:
        if self.is_point():
            return str(self.start)
        s = f"{self.start}:{self.end}"
        if self.step != Integer(1) or self.tile != Integer(1):
            s += f":{self.step}"
        if self.tile != Integer(1):
            s += f":{self.tile}"
        return s

    def __repr__(self) -> str:
        return f"Range({self})"


class Subset:
    """A multi-dimensional subset: one :class:`Range` per dimension."""

    __slots__ = ("ranges",)

    def __init__(self, ranges: Iterable[Range]):
        self.ranges = tuple(ranges)

    # -- constructors --------------------------------------------------------
    @staticmethod
    def from_string(text: str) -> "Subset":
        """Parse ``"0:N, k, 2*i:2*i+2"`` into a subset."""
        dims = _split_toplevel_commas(text)
        ranges = []
        for dim in dims:
            parts = _split_toplevel_colons(dim)
            if len(parts) == 1:
                ranges.append(Range.point(sympify(parts[0])))
            elif len(parts) == 2:
                ranges.append(Range(sympify(parts[0]), sympify(parts[1])))
            elif len(parts) == 3:
                ranges.append(
                    Range(sympify(parts[0]), sympify(parts[1]), sympify(parts[2]))
                )
            elif len(parts) == 4:
                ranges.append(
                    Range(
                        sympify(parts[0]),
                        sympify(parts[1]),
                        sympify(parts[2]),
                        sympify(parts[3]),
                    )
                )
            else:
                raise ValueError(f"malformed range {dim!r}")
        return Subset(ranges)

    @staticmethod
    def from_array(shape: Sequence[ExprLike]) -> "Subset":
        """The full subset ``[0:d0, 0:d1, ...]`` of an array shape."""
        return Subset([Range(0, sympify(d)) for d in shape])

    @staticmethod
    def from_indices(indices: Sequence[ExprLike]) -> "Subset":
        return Subset([Range.point(i) for i in indices])

    # -- basic queries --------------------------------------------------------
    @property
    def dims(self) -> int:
        return len(self.ranges)

    def is_point(self) -> bool:
        return all(r.is_point() for r in self.ranges)

    def num_elements(self) -> Expr:
        out: Expr = Integer(1)
        for r in self.ranges:
            out = Mul.make(out, r.num_elements())
        return out

    def size(self) -> List[Expr]:
        return [r.num_elements() for r in self.ranges]

    def min_element(self) -> List[Expr]:
        return [r.min_element() for r in self.ranges]

    def max_element(self) -> List[Expr]:
        return [r.max_element() for r in self.ranges]

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for r in self.ranges:
            out |= r.free_symbols
        return out

    # -- transformations -------------------------------------------------------
    def subs(self, mapping: Mapping) -> "Subset":
        return Subset(r.subs(mapping) for r in self.ranges)

    def offset(self, origin: "Subset", negative: bool = True) -> "Subset":
        """Translate by another subset's minimum (re-indexing to ``origin``).

        ``negative=True`` subtracts (make relative); False adds back.
        """
        if origin.dims != self.dims:
            raise ValueError("dimensionality mismatch in offset")
        out = []
        for r, o in zip(self.ranges, origin.ranges):
            d = o.min_element()
            out.append(r.offset_by(-d if negative else d))
        return Subset(out)

    def compose(self, inner: "Subset") -> "Subset":
        """Resolve ``inner`` (relative coordinates) within this subset."""
        if inner.dims != self.dims:
            raise ValueError("dimensionality mismatch in compose")
        out = []
        for o, i in zip(self.ranges, inner.ranges):
            start = o.start + i.start * o.step
            end = o.start + i.end * o.step
            step = o.step * i.step
            out.append(Range(start, end, step, i.tile))
        return Subset(out)

    def covers(self, other: "Subset") -> bool:
        if other.dims != self.dims:
            return False
        return all(a.covers(b) for a, b in zip(self.ranges, other.ranges))

    def intersects(self, other: "Subset") -> Optional[bool]:
        """Bounding-box overlap test; None when symbolically undecidable."""
        if other.dims != self.dims:
            return False
        overall: Optional[bool] = True
        for a, b in zip(self.ranges, other.ranges):
            # Disjoint iff a.max < b.min or b.max < a.min.
            left = decide_nonnegative(b.min_element() - a.max_element() - 1)
            right = decide_nonnegative(a.min_element() - b.max_element() - 1)
            if left is True or right is True:
                return False
            if left is None or right is None:
                overall = None
        return overall

    def union_bb(self, other: "Subset") -> "Subset":
        if other.dims != self.dims:
            raise ValueError("dimensionality mismatch in union")
        return Subset(a.union_bb(b) for a, b in zip(self.ranges, other.ranges))

    def image(self, params: Mapping[str, Range]) -> "Subset":
        """Image of the subset as each parameter sweeps its range.

        For each dimension expression linear in a parameter the exact
        bounds are the expression evaluated at the parameter's first/last
        value (monotone in each variable); nonlinear dimensions fall back
        to Min/Max envelopes over the parameter endpoints.

        Subsets and ranges are immutable, so results are memoized on
        (subset, parameter ranges) identity.
        """
        from repro.symbolic import memo

        try:
            key = (self, tuple(sorted(params.items())))
        except TypeError:
            return self._image(params)
        return memo.memoized("image", key, lambda: self._image(params))

    def _image(self, params: Mapping[str, Range]) -> "Subset":
        out = []
        for r in self.ranges:
            lo, hi_incl = r.min_element(), r.max_element()
            step: Expr = r.step
            for pname, prange in params.items():
                sym = Symbol(pname)
                if sym not in (lo.free_symbols | hi_incl.free_symbols):
                    continue
                first = prange.start
                n = prange.size()
                last = prange.start + (n - 1) * prange.step
                lo = _sweep_min(lo, sym, first, last)
                hi_incl = _sweep_max(hi_incl, sym, first, last)
                step = Integer(1)  # union over iterations collapses strides
            out.append(Range(lo, hi_incl + 1, step, r.tile))
        return Subset(out)

    # -- concrete evaluation ----------------------------------------------------
    def evaluate(self, bindings: Mapping[str, int] | None = None) -> Tuple[slice, ...]:
        """Concrete tuple of slices for NumPy indexing."""
        out = []
        for r in self.ranges:
            start = int(r.start.evaluate(bindings))
            end = int(r.end.evaluate(bindings))
            step = int(r.step.evaluate(bindings))
            out.append(slice(start, end, step))
        return tuple(out)

    def evaluate_indices(self, bindings: Mapping[str, int] | None = None) -> Tuple[int, ...]:
        """Concrete element index (requires a point subset)."""
        out = []
        for r in self.ranges:
            if int(r.end.evaluate(bindings)) - int(r.start.evaluate(bindings)) != 1:
                raise ValueError(f"subset {self} is not a point")
            out.append(int(r.start.evaluate(bindings)))
        return tuple(out)

    # -- dunder ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Range]:
        return iter(self.ranges)

    def __len__(self) -> int:
        return len(self.ranges)

    def __getitem__(self, i: int) -> Range:
        return self.ranges[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subset):
            return NotImplemented
        return self.ranges == other.ranges

    def __hash__(self) -> int:
        return hash(self.ranges)

    def __str__(self) -> str:
        return ", ".join(str(r) for r in self.ranges)

    def __repr__(self) -> str:
        return f"Subset[{self}]"


def Indices(indices: Sequence[ExprLike]) -> Subset:
    """Convenience constructor for exact-point subsets."""
    return Subset.from_indices(indices)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _sweep_min(e: Expr, sym: Symbol, first: Expr, last: Expr) -> Expr:
    c = linear_coefficient(e, sym)
    if c is not None:
        sign = decide_nonnegative(c)
        if sign is True:
            return e.subs({sym: first})
        if sign is False:
            return e.subs({sym: last})
    return Min.make(e.subs({sym: first}), e.subs({sym: last}))


def _sweep_max(e: Expr, sym: Symbol, first: Expr, last: Expr) -> Expr:
    c = linear_coefficient(e, sym)
    if c is not None:
        sign = decide_nonnegative(c)
        if sign is True:
            return e.subs({sym: last})
        if sign is False:
            return e.subs({sym: first})
    return Max.make(e.subs({sym: first}), e.subs({sym: last}))


def _split_toplevel(text: str, sep: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    cur: List[str] = []
    for ch in text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == sep and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    parts.append("".join(cur).strip())
    return [p for p in parts if p]


def _split_toplevel_commas(text: str) -> List[str]:
    return _split_toplevel(text, ",")


def _split_toplevel_colons(text: str) -> List[str]:
    return _split_toplevel(text, ":")
