"""Immutable symbolic expression tree with canonicalizing constructors.

Expressions are built through operator overloading (``N * 2 + 1``) or the
factory classmethods (``Add.make``, ``Mul.make``, ...).  Construction
performs light canonicalization — constant folding, flattening,
like-term collection, and a deterministic structural ordering — which is
enough for the IR's needs (deciding equality of subset bounds, computing
data-movement volumes, and evaluating under concrete symbol bindings).

The engine deliberately distinguishes *integer* semantics: ``/`` on
expressions is exact division when it divides evenly and stays a
:class:`FloorDiv` otherwise, matching how array index arithmetic behaves
in generated code.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Callable, Dict, Iterable, Mapping, Sequence, Tuple, Union

from repro.symbolic import memo

Numeric = Union[int, float, Fraction]

#: Order classes for deterministic sorting of commutative arguments.
_CLASS_ORDER = {
    "Integer": 0,
    "Real": 1,
    "Symbol": 2,
    "Pow": 3,
    "Mul": 4,
    "Add": 5,
    "FloorDiv": 6,
    "CeilDiv": 7,
    "Mod": 8,
    "Min": 9,
    "Max": 10,
    "Abs": 11,
}


def _sort_key(e: "Expr") -> Tuple[int, str]:
    return (_CLASS_ORDER.get(type(e).__name__, 99), str(e))


class Expr:
    """Base class of all symbolic expressions.

    Instances are immutable and hashable; equality is structural.

    Immutability is what makes the hot-path caches sound: the hash, the
    rendered string, and the free-symbol set are each computed once and
    stored on the instance, and :meth:`subs` results are memoized on
    structural identity in :mod:`repro.symbolic.memo`.
    """

    __slots__ = ("_hash", "_str", "_free")

    # -- construction helpers ------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return Add.make(self, sympify(other))

    def __radd__(self, other: Any) -> "Expr":
        return Add.make(sympify(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return Add.make(self, Mul.make(Integer(-1), sympify(other)))

    def __rsub__(self, other: Any) -> "Expr":
        return Add.make(sympify(other), Mul.make(Integer(-1), self))

    def __mul__(self, other: Any) -> "Expr":
        return Mul.make(self, sympify(other))

    def __rmul__(self, other: Any) -> "Expr":
        return Mul.make(sympify(other), self)

    def __neg__(self) -> "Expr":
        return Mul.make(Integer(-1), self)

    def __pos__(self) -> "Expr":
        return self

    def __pow__(self, other: Any) -> "Expr":
        return Pow.make(self, sympify(other))

    def __truediv__(self, other: Any) -> "Expr":
        return _divide(self, sympify(other))

    def __rtruediv__(self, other: Any) -> "Expr":
        return _divide(sympify(other), self)

    def __floordiv__(self, other: Any) -> "Expr":
        return FloorDiv.make(self, sympify(other))

    def __rfloordiv__(self, other: Any) -> "Expr":
        return FloorDiv.make(sympify(other), self)

    def __mod__(self, other: Any) -> "Expr":
        return Mod.make(self, sympify(other))

    def __rmod__(self, other: Any) -> "Expr":
        return Mod.make(sympify(other), self)

    # Rich comparisons build boolean expression nodes; use ``structurally_equal``
    # (or ``==`` which we keep structural) for graph bookkeeping.
    def eq(self, other: Any) -> "BoolExpr":
        return Eq.make(self, sympify(other))

    def ne(self, other: Any) -> "BoolExpr":
        return Ne.make(self, sympify(other))

    def __lt__(self, other: Any) -> "BoolExpr":
        return Lt.make(self, sympify(other))

    def __le__(self, other: Any) -> "BoolExpr":
        return Le.make(self, sympify(other))

    def __gt__(self, other: Any) -> "BoolExpr":
        return Gt.make(self, sympify(other))

    def __ge__(self, other: Any) -> "BoolExpr":
        return Ge.make(self, sympify(other))

    # -- structural equality / hashing --------------------------------------
    def _key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, (int, float)):
            other = sympify(other)
        if not isinstance(other, Expr):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash((type(self).__name__,) + self._key())
            object.__setattr__(self, "_hash", h)
        return h

    def __bool__(self) -> bool:
        raise TypeError(
            f"truth value of symbolic expression {self!s} is ambiguous; "
            "use .evaluate() with concrete bindings"
        )

    # -- core protocol -------------------------------------------------------
    @property
    def free_symbols(self) -> frozenset:
        """Set of :class:`Symbol` objects occurring in the expression
        (computed once per instance, then cached)."""
        fs = getattr(self, "_free", None)
        if fs is None:
            fs = self._free_symbols()
            object.__setattr__(self, "_free", fs)
        return fs

    def _free_symbols(self) -> frozenset:
        raise NotImplementedError

    def subs(self, mapping: Mapping[Any, Any]) -> "Expr":
        """Substitute symbols (by object or name) with expressions/values.

        Results are memoized on (expression, normalized mapping) identity;
        closed expressions short-circuit to ``self``.
        """
        if not mapping or not self.free_symbols:
            return self
        try:
            key = (self, _mapping_key(mapping))
        except (TypeError, ValueError):  # unhashable/odd mapping — bypass
            return self._subs(mapping)
        return memo.memoized("subs", key, lambda: self._subs(mapping))

    def _subs(self, mapping: Mapping[Any, Any]) -> "Expr":
        raise NotImplementedError

    def __str__(self) -> str:
        s = getattr(self, "_str", None)
        if s is None:
            s = self._to_str()
            object.__setattr__(self, "_str", s)
        return s

    def _to_str(self) -> str:
        raise NotImplementedError

    # Expressions are immutable: copies are the object itself.  (This also
    # keeps interned Symbols/Integers unique under copy.deepcopy.)
    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, _memo) -> "Expr":
        return self

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        """Evaluate to a concrete number; raises ``KeyError`` on free symbols."""
        raise NotImplementedError

    def is_constant(self) -> bool:
        return not self.free_symbols

    def as_int(self) -> int:
        """Evaluate a constant expression to a Python int."""
        v = self.evaluate({})
        iv = int(v)
        if iv != v:
            raise ValueError(f"{self} does not evaluate to an integer (got {v})")
        return iv

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self!s}>"


#: Small-integer interning window (covers the constants the IR churns on).
_SMALL_INT_MIN, _SMALL_INT_MAX = -64, 1024


class Integer(Expr):
    """Integer literal.  Small values are interned."""

    __slots__ = ("value",)
    _interned: Dict[int, "Integer"] = {}

    def __new__(cls, value: int = 0):
        if cls is Integer and isinstance(value, int):
            cached = Integer._interned.get(value)
            if cached is not None:
                return cached
        return object.__new__(cls)

    def __init__(self, value: int):
        v = int(value)
        object.__setattr__(self, "value", v)
        if type(self) is Integer and _SMALL_INT_MIN <= v <= _SMALL_INT_MAX:
            Integer._interned.setdefault(v, self)

    def _key(self) -> Tuple:
        return (self.value,)

    def _free_symbols(self) -> frozenset:
        return frozenset()

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return self

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        return self.value

    def _to_str(self) -> str:
        return str(self.value)

    def __setattr__(self, *a):  # immutability guard
        raise AttributeError("Integer is immutable")


class Real(Expr):
    """Floating-point literal (rare in the IR; used by WCR identities)."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        object.__setattr__(self, "value", float(value))

    def _key(self) -> Tuple:
        return (self.value,)

    def _free_symbols(self) -> frozenset:
        return frozenset()

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return self

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        return self.value

    def _to_str(self) -> str:
        return repr(self.value)

    def __setattr__(self, *a):
        raise AttributeError("Real is immutable")


class Symbol(Expr):
    """A named scalar unknown (array size, map parameter, loop variable).

    Symbols are interned by name: ``Symbol("N") is Symbol("N")``.
    """

    __slots__ = ("name",)
    _interned: Dict[str, "Symbol"] = {}

    def __new__(cls, name: str = ""):
        if cls is Symbol and isinstance(name, str):
            cached = Symbol._interned.get(name)
            if cached is not None:
                return cached
        return object.__new__(cls)

    def __init__(self, name: str):
        if not name or not (name[0].isalpha() or name[0] == "_"):
            raise ValueError(f"invalid symbol name: {name!r}")
        object.__setattr__(self, "name", name)
        if type(self) is Symbol:
            if len(Symbol._interned) > 4096:  # unbounded-name backstop
                Symbol._interned.clear()
            Symbol._interned.setdefault(name, self)

    def _key(self) -> Tuple:
        return (self.name,)

    def _free_symbols(self) -> frozenset:
        return frozenset((self,))

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        for key, val in mapping.items():
            kname = key.name if isinstance(key, Symbol) else key
            if kname == self.name:
                return sympify(val)
        return self

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        if bindings is None or self.name not in bindings:
            raise KeyError(f"unbound symbol {self.name!r}")
        return bindings[self.name]

    def _to_str(self) -> str:
        return self.name

    def __setattr__(self, *a):
        raise AttributeError("Symbol is immutable")


def symbols(names: str) -> Tuple[Symbol, ...]:
    """Create several symbols at once: ``M, N, K = symbols('M N K')``."""
    return tuple(Symbol(n) for n in names.replace(",", " ").split())


class _NAry(Expr):
    """Shared machinery for commutative n-ary operators (Add/Mul/Min/Max)."""

    __slots__ = ("args",)

    def __init__(self, args: Tuple[Expr, ...]):
        object.__setattr__(self, "args", tuple(args))

    def _key(self) -> Tuple:
        return self.args

    def _free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for a in self.args:
            out |= a.free_symbols
        return out

    def __setattr__(self, *a):
        raise AttributeError(f"{type(self).__name__} is immutable")


class Add(_NAry):
    """Canonical sum: constants folded, like terms collected, args sorted."""

    __slots__ = ()

    @staticmethod
    def make(*args: Expr) -> Expr:
        terms: Dict[Expr, Fraction] = {}
        const = Fraction(0)
        has_float = False
        stack = list(args)
        while stack:
            a = stack.pop()
            if isinstance(a, Add):
                stack.extend(a.args)
            elif isinstance(a, Integer):
                const += a.value
            elif isinstance(a, Real):
                const += Fraction(a.value).limit_denominator(10**12)
                has_float = True
            else:
                coeff, rest = _split_coeff(a)
                terms[rest] = terms.get(rest, Fraction(0)) + coeff
        out = []
        for rest in sorted(terms, key=_sort_key):
            c = terms[rest]
            if c == 0:
                continue
            out.append(_coeff_times(c, rest))
        if const != 0 or not out:
            out.insert(0, _const_expr(const, has_float))
        if len(out) == 1:
            return out[0]
        return Add(tuple(out))

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return Add.make(*(a.subs(mapping) for a in self.args))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        return sum(a.evaluate(bindings) for a in self.args)

    def _to_str(self) -> str:
        parts = []
        for i, a in enumerate(self.args):
            s = str(a)
            if i > 0 and not s.startswith("-"):
                parts.append("+")
            parts.append(s)
        return " ".join(parts).replace("+ -", "- ")


class Mul(_NAry):
    """Canonical product: constants folded, powers of equal bases merged."""

    __slots__ = ()

    @staticmethod
    def make(*args: Expr) -> Expr:
        coeff = Fraction(1)
        has_float = False
        powers: Dict[Expr, Expr] = {}
        stack = list(args)
        while stack:
            a = stack.pop()
            if isinstance(a, Mul):
                stack.extend(a.args)
            elif isinstance(a, Integer):
                coeff *= a.value
            elif isinstance(a, Real):
                coeff *= Fraction(a.value).limit_denominator(10**12)
                has_float = True
            else:
                base, exp = (a.base, a.exp) if isinstance(a, Pow) else (a, Integer(1))
                if base in powers:
                    powers[base] = Add.make(powers[base], exp)
                else:
                    powers[base] = exp
        if coeff == 0:
            return Integer(0)
        out = []
        for base in sorted(powers, key=_sort_key):
            p = Pow.make(base, powers[base])
            if p != Integer(1):
                out.append(p)
        if not out:
            return _const_expr(coeff, has_float)
        # Distribute a constant coefficient over a sum so that terms built
        # via subtraction (c1 + x) - (c2 + x) cancel structurally.
        if len(out) == 1 and isinstance(out[0], Add):
            c = _const_expr(coeff, has_float)
            return Add.make(*(Mul.make(c, t) for t in out[0].args))
        if coeff != 1:
            out.insert(0, _const_expr(coeff, has_float))
        if len(out) == 1:
            return out[0]
        return Mul(tuple(out))

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return Mul.make(*(a.subs(mapping) for a in self.args))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        r: Numeric = 1
        for a in self.args:
            r *= a.evaluate(bindings)
        return r

    def _to_str(self) -> str:
        def paren(a: Expr) -> str:
            s = str(a)
            # Parenthesize any infix operand of lower precedence.
            return f"({s})" if isinstance(a, (Add, FloorDiv, Mod)) else s

        # Render a leading -1 coefficient as a sign.
        args = self.args
        if isinstance(args[0], Integer) and args[0].value == -1 and len(args) > 1:
            return "-" + "*".join(paren(a) for a in args[1:])
        return "*".join(paren(a) for a in args)


class Pow(Expr):
    __slots__ = ("base", "exp")

    def __init__(self, base: Expr, exp: Expr):
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "exp", exp)

    @staticmethod
    def make(base: Expr, exp: Expr) -> Expr:
        if exp == Integer(0):
            return Integer(1)
        if exp == Integer(1):
            return base
        if base == Integer(1):
            return Integer(1)
        if isinstance(base, Integer) and isinstance(exp, Integer) and exp.value >= 0:
            return Integer(base.value**exp.value)
        return Pow(base, exp)

    def _key(self) -> Tuple:
        return (self.base, self.exp)

    def _free_symbols(self) -> frozenset:
        return self.base.free_symbols | self.exp.free_symbols

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return Pow.make(self.base.subs(mapping), self.exp.subs(mapping))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        return self.base.evaluate(bindings) ** self.exp.evaluate(bindings)

    def _to_str(self) -> str:
        def paren(e: Expr) -> str:
            s = str(e)
            if isinstance(e, Symbol) or (isinstance(e, Integer) and e.value >= 0):
                return s
            if isinstance(e, (Min, Max, Abs, CeilDiv)):
                return s  # already function-call syntax
            return f"({s})"

        return f"{paren(self.base)}**{paren(self.exp)}"

    def __setattr__(self, *a):
        raise AttributeError("Pow is immutable")


class _BinOp(Expr):
    """Shared machinery for non-commutative binary integer operators."""

    __slots__ = ("a", "b")
    _symbol = "?"
    _pyfunc: Callable[[Numeric, Numeric], Numeric] = staticmethod(lambda a, b: a)

    def __init__(self, a: Expr, b: Expr):
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    def _key(self) -> Tuple:
        return (self.a, self.b)

    def _free_symbols(self) -> frozenset:
        return self.a.free_symbols | self.b.free_symbols

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return type(self).make(self.a.subs(mapping), self.b.subs(mapping))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        return type(self)._pyfunc(self.a.evaluate(bindings), self.b.evaluate(bindings))

    def _to_str(self) -> str:
        return f"{type(self)._render(self.a, self.b)}"

    @classmethod
    def _render(cls, a: Expr, b: Expr) -> str:
        def paren(x: Expr) -> str:
            s = str(x)
            return f"({s})" if not isinstance(x, (Integer, Symbol, Pow)) else s

        return f"{paren(a)} {cls._symbol} {paren(b)}"

    def __setattr__(self, *a):
        raise AttributeError(f"{type(self).__name__} is immutable")


class FloorDiv(_BinOp):
    """``a // b`` with Python floor semantics."""

    __slots__ = ()
    _symbol = "//"
    _pyfunc = staticmethod(lambda a, b: a // b)

    @staticmethod
    def make(a: Expr, b: Expr) -> Expr:
        if b == Integer(1):
            return a
        if isinstance(a, Integer) and isinstance(b, Integer) and b.value != 0:
            return Integer(a.value // b.value)
        if a == Integer(0):
            return Integer(0)
        # (c*x) // c == x for positive integer constant c dividing all coefficients
        if isinstance(b, Integer) and b.value > 0:
            q = _try_exact_div(a, b.value)
            if q is not None:
                return q
        if a == b:
            return Integer(1)
        return FloorDiv(a, b)


class CeilDiv(_BinOp):
    """``ceil(a / b)``; used pervasively for range sizes and tiling."""

    __slots__ = ()
    _symbol = "/^"
    _pyfunc = staticmethod(lambda a, b: -((-a) // b))

    @staticmethod
    def make(a: Expr, b: Expr) -> Expr:
        if b == Integer(1):
            return a
        if isinstance(a, Integer) and isinstance(b, Integer) and b.value != 0:
            return Integer(-((-a.value) // b.value))
        if a == Integer(0):
            return Integer(0)
        if isinstance(b, Integer) and b.value > 0:
            q = _try_exact_div(a, b.value)
            if q is not None:
                return q
        if a == b:
            return Integer(1)
        return CeilDiv(a, b)

    def _to_str(self) -> str:
        return f"ceil({self.a}, {self.b})"


class Mod(_BinOp):
    __slots__ = ()
    _symbol = "%"
    _pyfunc = staticmethod(lambda a, b: a % b)

    @staticmethod
    def make(a: Expr, b: Expr) -> Expr:
        if b == Integer(1):
            return Integer(0)
        if isinstance(a, Integer) and isinstance(b, Integer) and b.value != 0:
            return Integer(a.value % b.value)
        if a == b:
            return Integer(0)
        if isinstance(b, Integer) and b.value > 0 and _try_exact_div(a, b.value) is not None:
            return Integer(0)
        return Mod(a, b)


class Min(_NAry):
    __slots__ = ()

    @staticmethod
    def make(*args: Expr) -> Expr:
        flat: list = []
        consts: list = []
        for a in args:
            if isinstance(a, Min):
                flat.extend(a.args)
            elif isinstance(a, (Integer, Real)):
                consts.append(a)
            else:
                flat.append(a)
        if consts:
            flat.append(_const_expr(Fraction(min(c.value for c in consts)).limit_denominator(10**12),
                                    any(isinstance(c, Real) for c in consts)))
        uniq = sorted(set(flat), key=_sort_key)
        if len(uniq) == 1:
            return uniq[0]
        return Min(tuple(uniq))

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return Min.make(*(a.subs(mapping) for a in self.args))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        return min(a.evaluate(bindings) for a in self.args)

    def _to_str(self) -> str:
        return "min(" + ", ".join(str(a) for a in self.args) + ")"


class Max(_NAry):
    __slots__ = ()

    @staticmethod
    def make(*args: Expr) -> Expr:
        flat: list = []
        consts: list = []
        for a in args:
            if isinstance(a, Max):
                flat.extend(a.args)
            elif isinstance(a, (Integer, Real)):
                consts.append(a)
            else:
                flat.append(a)
        if consts:
            flat.append(_const_expr(Fraction(max(c.value for c in consts)).limit_denominator(10**12),
                                    any(isinstance(c, Real) for c in consts)))
        uniq = sorted(set(flat), key=_sort_key)
        if len(uniq) == 1:
            return uniq[0]
        return Max(tuple(uniq))

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return Max.make(*(a.subs(mapping) for a in self.args))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        return max(a.evaluate(bindings) for a in self.args)

    def _to_str(self) -> str:
        return "max(" + ", ".join(str(a) for a in self.args) + ")"


class Abs(Expr):
    __slots__ = ("arg",)

    def __init__(self, arg: Expr):
        object.__setattr__(self, "arg", arg)

    @staticmethod
    def make(arg: Expr) -> Expr:
        if isinstance(arg, Integer):
            return Integer(abs(arg.value))
        if isinstance(arg, Real):
            return Real(abs(arg.value))
        return Abs(arg)

    def _key(self) -> Tuple:
        return (self.arg,)

    def _free_symbols(self) -> frozenset:
        return self.arg.free_symbols

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return Abs.make(self.arg.subs(mapping))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> Numeric:
        return abs(self.arg.evaluate(bindings))

    def _to_str(self) -> str:
        return f"abs({self.arg})"

    def __setattr__(self, *a):
        raise AttributeError("Abs is immutable")


# ---------------------------------------------------------------------------
# Boolean expressions (interstate edge conditions, consume quiescence)
# ---------------------------------------------------------------------------


class BoolExpr(Expr):
    """Base of boolean-valued expressions."""

    __slots__ = ()

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> bool:  # type: ignore[override]
        raise NotImplementedError


class BoolConst(BoolExpr):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))

    def _key(self) -> Tuple:
        return (self.value,)

    def _free_symbols(self) -> frozenset:
        return frozenset()

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return self

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> bool:
        return self.value

    def _to_str(self) -> str:
        return "True" if self.value else "False"

    def __setattr__(self, *a):
        raise AttributeError("BoolConst is immutable")


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class _Relational(BoolExpr):
    __slots__ = ("a", "b")
    _symbol = "?"
    _pyfunc: Callable[[Numeric, Numeric], bool] = staticmethod(lambda a, b: False)

    def __init__(self, a: Expr, b: Expr):
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    @classmethod
    def make(cls, a: Expr, b: Expr) -> BoolExpr:
        diff = Add.make(a, Mul.make(Integer(-1), b))
        if isinstance(diff, (Integer, Real)):
            return BoolConst(cls._pyfunc(diff.value, 0))
        return cls(a, b)

    def _key(self) -> Tuple:
        return (self.a, self.b)

    def _free_symbols(self) -> frozenset:
        return self.a.free_symbols | self.b.free_symbols

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return type(self).make(self.a.subs(mapping), self.b.subs(mapping))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> bool:
        return type(self)._pyfunc(self.a.evaluate(bindings), self.b.evaluate(bindings))

    def _to_str(self) -> str:
        return f"{self.a} {type(self)._symbol} {self.b}"

    def __setattr__(self, *a):
        raise AttributeError(f"{type(self).__name__} is immutable")


class Eq(_Relational):
    __slots__ = ()
    _symbol = "=="
    _pyfunc = staticmethod(lambda a, b: a == b)


class Ne(_Relational):
    __slots__ = ()
    _symbol = "!="
    _pyfunc = staticmethod(lambda a, b: a != b)


class Lt(_Relational):
    __slots__ = ()
    _symbol = "<"
    _pyfunc = staticmethod(lambda a, b: a < b)


class Le(_Relational):
    __slots__ = ()
    _symbol = "<="
    _pyfunc = staticmethod(lambda a, b: a <= b)


class Gt(_Relational):
    __slots__ = ()
    _symbol = ">"
    _pyfunc = staticmethod(lambda a, b: a > b)


class Ge(_Relational):
    __slots__ = ()
    _symbol = ">="
    _pyfunc = staticmethod(lambda a, b: a >= b)


class And(BoolExpr):
    __slots__ = ("args",)

    def __init__(self, args: Tuple[BoolExpr, ...]):
        object.__setattr__(self, "args", tuple(args))

    @staticmethod
    def make(*args: BoolExpr) -> BoolExpr:
        flat: list = []
        for a in args:
            if isinstance(a, And):
                flat.extend(a.args)
            elif isinstance(a, BoolConst):
                if not a.value:
                    return FALSE
            else:
                flat.append(a)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        return And(tuple(flat))

    def _key(self) -> Tuple:
        return self.args

    def _free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for a in self.args:
            out |= a.free_symbols
        return out

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return And.make(*(a.subs(mapping) for a in self.args))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> bool:
        return all(a.evaluate(bindings) for a in self.args)

    def _to_str(self) -> str:
        return " and ".join(f"({a})" for a in self.args)

    def __setattr__(self, *a):
        raise AttributeError("And is immutable")


class Or(BoolExpr):
    __slots__ = ("args",)

    def __init__(self, args: Tuple[BoolExpr, ...]):
        object.__setattr__(self, "args", tuple(args))

    @staticmethod
    def make(*args: BoolExpr) -> BoolExpr:
        flat: list = []
        for a in args:
            if isinstance(a, Or):
                flat.extend(a.args)
            elif isinstance(a, BoolConst):
                if a.value:
                    return TRUE
            else:
                flat.append(a)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        return Or(tuple(flat))

    def _key(self) -> Tuple:
        return self.args

    def _free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for a in self.args:
            out |= a.free_symbols
        return out

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return Or.make(*(a.subs(mapping) for a in self.args))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> bool:
        return any(a.evaluate(bindings) for a in self.args)

    def _to_str(self) -> str:
        return " or ".join(f"({a})" for a in self.args)

    def __setattr__(self, *a):
        raise AttributeError("Or is immutable")


class Not(BoolExpr):
    __slots__ = ("arg",)

    def __init__(self, arg: BoolExpr):
        object.__setattr__(self, "arg", arg)

    @staticmethod
    def make(arg: BoolExpr) -> BoolExpr:
        if isinstance(arg, BoolConst):
            return BoolConst(not arg.value)
        if isinstance(arg, Not):
            return arg.arg
        # Negate relationals directly for readability.
        neg = {Eq: Ne, Ne: Eq, Lt: Ge, Le: Gt, Gt: Le, Ge: Lt}
        for cls, ncls in neg.items():
            if type(arg) is cls:
                return ncls.make(arg.a, arg.b)
        return Not(arg)

    def _key(self) -> Tuple:
        return (self.arg,)

    def _free_symbols(self) -> frozenset:
        return self.arg.free_symbols

    def _subs(self, mapping: Mapping[Any, Any]) -> Expr:
        return Not.make(self.arg.subs(mapping))

    def evaluate(self, bindings: Mapping[str, Numeric] | None = None) -> bool:
        return not self.arg.evaluate(bindings)

    def _to_str(self) -> str:
        return f"not ({self.arg})"

    def __setattr__(self, *a):
        raise AttributeError("Not is immutable")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _const_expr(c: Fraction, as_float: bool) -> Expr:
    if not as_float and c.denominator == 1:
        return Integer(c.numerator)
    return Real(float(c))


def _split_coeff(e: Expr) -> Tuple[Fraction, Expr]:
    """Split ``e`` into (rational coefficient, remaining factor)."""
    if isinstance(e, Mul):
        head = e.args[0]
        if isinstance(head, Integer):
            rest = Mul.make(*e.args[1:]) if len(e.args) > 2 else e.args[1]
            return Fraction(head.value), rest
        if isinstance(head, Real):
            rest = Mul.make(*e.args[1:]) if len(e.args) > 2 else e.args[1]
            return Fraction(head.value).limit_denominator(10**12), rest
    return Fraction(1), e


def _coeff_times(c: Fraction, rest: Expr) -> Expr:
    if c == 1:
        return rest
    return Mul.make(_const_expr(c, False), rest)


def _try_exact_div(e: Expr, d: int) -> Expr | None:
    """Return e/d if d exactly divides every additive term's coefficient."""
    if isinstance(e, Integer):
        return Integer(e.value // d) if e.value % d == 0 else None
    if isinstance(e, Add):
        parts = []
        for t in e.args:
            q = _try_exact_div(t, d)
            if q is None:
                return None
            parts.append(q)
        return Add.make(*parts)
    coeff, rest = _split_coeff(e)
    if coeff.denominator == 1 and coeff.numerator % d == 0:
        return _coeff_times(coeff / d, rest)
    return None


def _divide(a: Expr, b: Expr) -> Expr:
    """``a / b``: exact symbolic division when possible, FloorDiv otherwise."""
    if b == Integer(0):
        raise ZeroDivisionError("symbolic division by zero")
    if b == Integer(1):
        return a
    if isinstance(a, (Integer, Real)) and isinstance(b, (Integer, Real)):
        if isinstance(a, Integer) and isinstance(b, Integer) and a.value % b.value == 0:
            return Integer(a.value // b.value)
        return Real(a.evaluate({}) / b.evaluate({}))
    if isinstance(b, Integer):
        q = _try_exact_div(a, b.value)
        if q is not None:
            return q
    if a == b:
        return Integer(1)
    # Try multiplicative cancellation (N**2 / N -> N); only accept results
    # where every inverse factor cancelled away, keeping integer semantics.
    q = Mul.make(a, Pow.make(b, Integer(-1)))
    if not _has_negative_pow(q):
        return q
    return FloorDiv.make(a, b)


def _has_negative_pow(e: Expr) -> bool:
    if isinstance(e, Pow):
        exp = e.exp
        if isinstance(exp, Integer) and exp.value < 0:
            return True
        return _has_negative_pow(e.base) or _has_negative_pow(exp)
    if isinstance(e, _NAry):
        return any(_has_negative_pow(a) for a in e.args)
    if isinstance(e, _BinOp):
        return _has_negative_pow(e.a) or _has_negative_pow(e.b)
    return False


def sympify(x: Any) -> Expr:
    """Coerce ints, floats, strings, bools, and Exprs into expressions."""
    if isinstance(x, Expr):
        return x
    if isinstance(x, bool):
        return TRUE if x else FALSE
    if isinstance(x, (int,)):
        return Integer(x)
    if isinstance(x, float):
        if x == int(x) and abs(x) < 2**53:
            return Integer(int(x))
        return Real(x)
    if isinstance(x, str):
        from repro.symbolic.parser import parse_expr

        return parse_expr(x)
    raise TypeError(f"cannot convert {type(x).__name__} to symbolic expression")


def evaluate_to_int(x: Any, bindings: Mapping[str, Numeric] | None = None) -> int:
    """Evaluate any expression-like to an int under ``bindings``."""
    e = sympify(x)
    v = e.evaluate(bindings or {})
    return int(v)


def _mapping_key(mapping: Mapping[Any, Any]) -> Tuple:
    """Normalize a substitution mapping into a hashable, order-independent
    key: symbol keys become names, values are sympified, entries sorted."""
    items = []
    for k, v in mapping.items():
        kname = k.name if isinstance(k, Symbol) else k
        if not isinstance(v, Expr):
            v = sympify(v)
        items.append((kname, v))
    items.sort(key=lambda kv: kv[0])
    return tuple(items)


def simplify(x: Any) -> Expr:
    """Canonicalize an expression bottom-up through the ``make``
    constructors (constant folding, flattening, like-term collection).

    Construction already canonicalizes, so this is close to a no-op for
    freshly built trees; it matters for deserialized or hand-assembled
    nodes, and its results are memoized on structural identity so repeated
    pipeline passes over the same expressions are O(1).
    """
    e = sympify(x)
    return memo.memoized("simplify", e, lambda: _simplify(e))


def _simplify(e: Expr) -> Expr:
    if isinstance(e, (Integer, Real, Symbol, BoolConst)):
        return e
    if isinstance(e, (Add, Mul, Min, Max)):
        return type(e).make(*(simplify(a) for a in e.args))
    if isinstance(e, Pow):
        return Pow.make(simplify(e.base), simplify(e.exp))
    if isinstance(e, _BinOp):
        return type(e).make(simplify(e.a), simplify(e.b))
    if isinstance(e, _Relational):
        return type(e).make(simplify(e.a), simplify(e.b))
    if isinstance(e, (And, Or)):
        return type(e).make(*(simplify(a) for a in e.args))
    if isinstance(e, Not):
        return Not.make(simplify(e.arg))
    if isinstance(e, Abs):
        return Abs.make(simplify(e.arg))
    return e
