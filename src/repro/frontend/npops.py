"""NumPy-operator expansion and the ``@replaces`` extension registry.

The frontend "implements an extensible subset of operators from numpy on
[multi-dimensional] arrays to ease the use of linear algebra operators"
(paper §2.1).  ``A @ B`` expands into the map-reduce matrix-multiply
dataflow of Fig. 9b; elementwise operators expand into maps; reductions
into Reduce nodes.  Users extend the set with ``@replaces("numpy.xxx")``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sdfg import Memlet, dtypes
from repro.symbolic import Expr, sympify

#: Registered dataflow implementations for function calls, keyed by the
#: fully-qualified name used at the call site.
_REPLACEMENTS: Dict[str, Callable] = {}


def replaces(*names: str):
    """Register a dataflow implementation for an unimplemented function.

    The decorated builder receives ``(ctx, state, result, *args)`` where
    ``ctx`` is the active parser, ``result`` is the output container name
    (or None to let the builder allocate one), and ``args`` are container
    names or constants.  It returns the output container name.
    """

    def deco(fn: Callable):
        for n in names:
            _REPLACEMENTS[n] = fn
        return fn

    return deco


def lookup(name: str) -> Optional[Callable]:
    return _REPLACEMENTS.get(name)


# ---------------------------------------------------------------------------
# Built-in expansions
# ---------------------------------------------------------------------------


def expand_matmul(ctx, state, a: str, b: str, out: Optional[str]) -> str:
    """``A @ B`` → the Fig. 9b dataflow: a parallel multiplication map
    into a transient 3-D tensor, reduced over the contraction axis.

    Deliberately the *naive* form — the paper's Case Study I starts here
    and MapReduceFusion + tiling chains optimize it.
    """
    sdfg = ctx.sdfg
    adesc, bdesc = sdfg.arrays[a], sdfg.arrays[b]
    if adesc.dims != 2 or bdesc.dims != 2:
        raise NotImplementedError("matmul expansion requires 2-D operands")
    M, K = adesc.shape
    K2, N = bdesc.shape
    dtype = adesc.dtype
    if out is None:
        out, _ = sdfg.add_transient("_mm_out", (M, N), dtype)
    tmp, _ = sdfg.add_transient("_mm_tmp", (M, N, K), dtype)
    t, me, mx = state.add_mapped_tasklet(
        "_MatMult_",
        {"__i": f"0:{M}", "__j": f"0:{N}", "__k": f"0:{K}"},
        inputs={
            "__a": Memlet.simple(a, "__i, __k"),
            "__b": Memlet.simple(b, "__k, __j"),
        },
        code="__o = __a * __b",
        outputs={"__o": Memlet.simple(tmp, "__i, __j, __k")},
        input_nodes={a: ctx.read_node(state, a), b: ctx.read_node(state, b)},
    )
    tmp_node = state.out_edges(mx)[0].dst
    red = state.add_reduce("sum", axes=(2,), label="_MMReduce_")
    state.add_edge(
        tmp_node, red, Memlet.simple(tmp, f"0:{M}, 0:{N}, 0:{K}"), None, "IN_1"
    )
    out_node = ctx.write_node(state, out)
    state.add_edge(red, out_node, Memlet.simple(out, f"0:{M}, 0:{N}"), "OUT_1", None)
    return out


_BINOP_CODE = {
    "+": "__o = __a + __b",
    "-": "__o = __a - __b",
    "*": "__o = __a * __b",
    "/": "__o = __a / __b",
    "**": "__o = __a ** __b",
}


def expand_elementwise_binop(ctx, state, op: str, a: str, b, out: Optional[str]) -> str:
    """Elementwise array-(array|scalar) arithmetic as a Map."""
    sdfg = ctx.sdfg
    adesc = sdfg.arrays[a]
    shape = adesc.shape
    params = {f"__i{d}": f"0:{s}" for d, s in enumerate(shape)}
    idx = ", ".join(params.keys())
    inputs = {"__a": Memlet.simple(a, idx)}
    input_nodes = {a: ctx.read_node(state, a)}
    if isinstance(b, str) and b in sdfg.arrays:
        bdesc = sdfg.arrays[b]
        if tuple(bdesc.shape) == tuple(shape):
            inputs["__b"] = Memlet.simple(b, idx)
        elif bdesc.total_size() == sympify(1):
            inputs["__b"] = Memlet.simple(b, ", ".join("0" for _ in bdesc.shape))
        else:
            raise NotImplementedError(
                "broadcasting beyond same-shape/scalar is not supported"
            )
        input_nodes[b] = ctx.read_node(state, b)
        code = _BINOP_CODE[op]
    else:
        code = _BINOP_CODE[op].replace("__b", repr(b))
    if out is None:
        out, _ = sdfg.add_transient("_ew_out", shape, adesc.dtype)
    state.add_mapped_tasklet(
        f"_ew_{_OPNAMES[op]}_",
        params,
        inputs=inputs,
        code=code,
        outputs={"__o": Memlet.simple(out, idx)},
        input_nodes=input_nodes,
        output_nodes={out: ctx.write_node(state, out)},
    )
    return out


_OPNAMES = {"+": "add", "-": "sub", "*": "mul", "/": "div", "**": "pow"}

_UNARY_CODE = {
    "exp": "__o = math.exp(__a)",
    "sqrt": "__o = math.sqrt(__a)",
    "log": "__o = math.log(__a)",
    "sin": "__o = math.sin(__a)",
    "cos": "__o = math.cos(__a)",
    "abs": "__o = abs(__a)",
    "neg": "__o = -__a",
    "conj": "__o = np.conj(__a)",
}


def expand_elementwise_unary(ctx, state, fn: str, a: str, out: Optional[str]) -> str:
    sdfg = ctx.sdfg
    adesc = sdfg.arrays[a]
    params = {f"__i{d}": f"0:{s}" for d, s in enumerate(adesc.shape)}
    idx = ", ".join(params.keys())
    if out is None:
        out, _ = sdfg.add_transient(f"_u{fn}_out", adesc.shape, adesc.dtype)
    state.add_mapped_tasklet(
        f"_u_{fn}_",
        params,
        inputs={"__a": Memlet.simple(a, idx)},
        code=_UNARY_CODE[fn],
        outputs={"__o": Memlet.simple(out, idx)},
        input_nodes={a: ctx.read_node(state, a)},
        output_nodes={out: ctx.write_node(state, out)},
    )
    return out


def expand_reduce(
    ctx, state, wcr_alias: str, a: str, axis: Optional[int], out: Optional[str]
) -> str:
    """np.sum/min/max/prod → a Reduce library node."""
    sdfg = ctx.sdfg
    adesc = sdfg.arrays[a]
    if axis is None:
        axes = tuple(range(adesc.dims))
        out_shape = (1,)
    else:
        axes = (axis,)
        out_shape = tuple(
            s for d, s in enumerate(adesc.shape) if d != axis
        ) or (1,)
    if out is None:
        out, _ = sdfg.add_transient("_red_out", out_shape, adesc.dtype)
    red = state.add_reduce(wcr_alias, axes=axes)
    in_node = ctx.read_node(state, a)
    full = ", ".join(f"0:{s}" for s in adesc.shape)
    state.add_edge(in_node, red, Memlet.simple(a, full), None, "IN_1")
    out_node = ctx.write_node(state, out)
    out_full = ", ".join(f"0:{s}" for s in sdfg.arrays[out].shape)
    state.add_edge(red, out_node, Memlet.simple(out, out_full), "OUT_1", None)
    return out


# Default registrations for the supported numpy call forms.
@replaces("numpy.sum", "np.sum")
def _np_sum(ctx, state, result, a, axis=None):
    return expand_reduce(ctx, state, "sum", a, axis, result)


@replaces("numpy.min", "np.min", "numpy.amin")
def _np_min(ctx, state, result, a, axis=None):
    return expand_reduce(ctx, state, "min", a, axis, result)


@replaces("numpy.max", "np.max", "numpy.amax")
def _np_max(ctx, state, result, a, axis=None):
    return expand_reduce(ctx, state, "max", a, axis, result)


@replaces("numpy.exp", "np.exp", "math.exp")
def _np_exp(ctx, state, result, a):
    return expand_elementwise_unary(ctx, state, "exp", a, result)


@replaces("numpy.sqrt", "np.sqrt", "math.sqrt")
def _np_sqrt(ctx, state, result, a):
    return expand_elementwise_unary(ctx, state, "sqrt", a, result)
