"""The ``@program`` decorator and the syntactic sentinels of the
Python frontend (``rp.map``, ``rp.tasklet``, ``rp.dyn``)."""

from __future__ import annotations

import functools
import inspect
from typing import Any, Callable, Dict, Optional

from repro.symbolic import Symbol


def symbol(name: str) -> Symbol:
    """Declare a symbolic size (paper §2.1 'Parametric Dimensions')."""
    return Symbol(name)


class MapRange:
    """Sentinel enabling ``for i, j in rp.map[0:N, 0:M]`` syntax.

    The subscript is never evaluated at runtime: the frontend recognizes
    the construct in the AST.  Iterating a ``MapRange`` outside a parsed
    program raises to catch accidental plain-Python execution.
    """

    def __getitem__(self, item) -> "MapRange":
        return self

    def __iter__(self):
        raise TypeError(
            "rp.map is a frontend construct; call the @rp.program function "
            "through the DaCe runtime instead of plain Python"
        )


map = MapRange()  # noqa: A001


class _TaskletSentinel:
    """Sentinel enabling ``with rp.tasklet:`` blocks (parsed, not run)."""

    def __call__(self, language=None, code_global: str = ""):
        return self

    def __enter__(self):
        raise TypeError(
            "rp.tasklet blocks only exist inside @rp.program functions"
        )

    def __exit__(self, *args):
        return False


tasklet = _TaskletSentinel()


class _Dyn:
    """Sentinel for dynamic (runtime-determined) memlet volumes."""

    def __repr__(self) -> str:
        return "dyn"


dyn = _Dyn()


class DaceProgram:
    """A parsed data-centric program: SDFG factory + cached compilation."""

    def __init__(self, f: Callable, auto_strict: bool = False):
        self.f = f
        self.name = f.__name__
        self.signature = inspect.signature(f)
        self.auto_strict = auto_strict
        self._sdfg = None
        self._compiled: Dict[str, Any] = {}
        functools.update_wrapper(self, f)

    def to_sdfg(self, simplify: Optional[bool] = None):
        """Parse the function into a fresh SDFG (cached)."""
        if self._sdfg is None:
            from repro.frontend.astparser import parse_program

            self._sdfg = parse_program(self.f)
            if simplify if simplify is not None else self.auto_strict:
                self._sdfg.apply_strict_transformations()
        return self._sdfg

    def compile(self, backend: str = "python"):
        if backend not in self._compiled:
            self._compiled[backend] = self.to_sdfg().compile(backend=backend)
        return self._compiled[backend]

    def __call__(self, *args, **kwargs):
        bound = self.signature.bind(*args, **kwargs)
        return self.compile()(**bound.arguments)

    def __repr__(self) -> str:
        return f"DaceProgram({self.name})"


def program(f: Optional[Callable] = None, *, auto_strict: bool = False):
    """Decorator turning a strongly-typed Python function into a
    data-centric program (paper Fig. 2a)."""
    if f is None:
        return lambda fn: DaceProgram(fn, auto_strict=auto_strict)
    return DaceProgram(f, auto_strict=auto_strict)
