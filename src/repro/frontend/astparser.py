"""Restricted-Python-to-SDFG parser (paper §2.1).

Supported constructs and their lowerings:

=====================================  =====================================
Python                                 SDFG
=====================================  =====================================
``for i in rp.map[a:b]``               Map scope
``with rp.tasklet:`` + ``<<``/``>>``   Tasklet with explicit memlets
``x[i] = f(a[i], ...)`` in a map       implicit Tasklet (memlets inferred)
``x[i] += v`` in a map                 write-conflict-resolution memlet
``a[b[i]]``                            indirection subgraph (App. F style)
``for t in range(...)``                guarded loop in the state machine
``while cond`` / ``if cond``           state machine with conditions
``C = A @ B``                          Fig. 9b map + reduce dataflow
``C = A + B`` etc.                     elementwise map
``C = np.sum(A, axis=k)``              Reduce library node
``tmp: rp.float64[N, M]``              transient container declaration
=====================================  =====================================

Unsupported Python (dictionaries, dynamic lists, exceptions, recursion)
raises :class:`FrontendError` with the offending line — matching the
paper's behavior of raising on unsupported syntax.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.frontend import npops
from repro.frontend.decorators import MapRange, _Dyn, _TaskletSentinel
from repro.sdfg import SDFG, InterstateEdge, Memlet, dtypes
from repro.sdfg.data import Array, Data, Scalar, Stream
from repro.sdfg.dtypes import Language, typeclass
from repro.sdfg.nodes import AccessNode, EntryNode, ExitNode
from repro.symbolic import Expr, Subset, Symbol, parse_expr
from repro.symbolic.expr import Not


class FrontendError(Exception):
    """Raised on Python constructs outside the supported subset."""

    def __init__(self, message: str, node: Optional[ast.AST] = None):
        if node is not None and hasattr(node, "lineno"):
            message = f"line {node.lineno}: {message}"
        super().__init__(message)


def parse_program(f) -> SDFG:
    """Parse a decorated function into an SDFG."""
    source = textwrap.dedent(inspect.getsource(f))
    tree = ast.parse(source)
    fndef = tree.body[0]
    if not isinstance(fndef, ast.FunctionDef):
        raise FrontendError("expected a function definition")
    env: Dict[str, Any] = dict(vars(__import__("builtins")))
    env.update(f.__globals__)
    if f.__closure__:
        for name, cell in zip(f.__code__.co_freevars, f.__closure__):
            try:
                env[name] = cell.cell_contents
            except ValueError:
                pass
    parser = ProgramParser(f.__name__, env)
    parser.parse_signature(fndef, getattr(f, "__annotations__", {}))
    parser.parse_body(fndef.body)
    sdfg = parser.sdfg
    sdfg.validate()
    sdfg.propagate()
    return sdfg


class ProgramParser:
    def __init__(self, name: str, env: Dict[str, Any]):
        self.sdfg = SDFG(name)
        self.env = env
        self.cur: Optional[Any] = None  # current SDFGState
        #: Map-scope stack: list of (MapEntry, MapExit).
        self.scopes: List[Tuple] = []
        #: Per-state access-node bookkeeping for dataflow ordering.
        self._reads: Dict[Tuple[int, str], AccessNode] = {}
        self._writes: Dict[Tuple[int, str], AccessNode] = {}
        #: Alias from Python variable names to container names.
        self.aliases: Dict[str, str] = {}
        self._tmp_counter = 0

    # ------------------------------------------------------------- utilities
    def resolve(self, name: str) -> str:
        return self.aliases.get(name, name)

    def state(self):
        if self.cur is None:
            self.cur = self.sdfg.add_state("init")
        return self.cur

    def new_chained_state(self, label: str):
        prev = self.cur
        st = self.sdfg.add_state(label)
        if prev is not None:
            self.sdfg.add_edge(prev, st, InterstateEdge())
        self.cur = st
        return st

    def fresh_state(self, label: str):
        return self.sdfg.add_state(label)

    def read_node(self, state, name: str) -> AccessNode:
        name = self.resolve(name)
        key = (id(state), name)
        if key in self._writes:
            return self._writes[key]
        if key not in self._reads:
            self._reads[key] = state.add_read(name)
        return self._reads[key]

    def write_node(self, state, name: str) -> AccessNode:
        """Write target for the *current statement*.

        Consecutive writer statements get fresh access nodes chained by
        ordering edges, serializing writes (and making later reads see
        earlier writes) exactly as the DaCe frontend does.
        """
        name = self.resolve(name)
        key = (id(state), name)
        cur = self._writes.get(key)
        if cur is None:
            node = state.add_write(name)
            self._writes[key] = node
            return node
        if not state.in_edges(cur):
            return cur  # not yet written through; reuse
        node = state.add_write(name)
        state.add_nedge(cur, node)
        self._writes[key] = node
        return node

    def _tmp_name(self, base: str) -> str:
        self._tmp_counter += 1
        return f"__tmp{self._tmp_counter}_{base}"

    def _eval_static(self, node: ast.AST):
        """Evaluate an annotation/sentinel expression against the closure."""
        code = compile(ast.Expression(body=node), "<annotation>", "eval")
        return eval(code, dict(self.env))

    def _is_sentinel(self, node: ast.AST, cls) -> bool:
        try:
            return isinstance(self._eval_static(node), cls)
        except Exception:
            return False

    # ------------------------------------------------------------- signature
    def parse_signature(
        self, fndef: ast.FunctionDef, annotations: Optional[Dict[str, Any]] = None
    ) -> None:
        annotations = annotations or {}
        for arg in fndef.args.args:
            if arg.arg in annotations:
                ann = annotations[arg.arg]
                if isinstance(ann, str):
                    # PEP 563 stringized annotations: evaluate lazily.
                    ann = eval(ann, dict(self.env))  # noqa: S307
            elif arg.annotation is not None:
                ann = self._eval_static(arg.annotation)
            else:
                raise FrontendError(
                    f"argument {arg.arg!r} needs a type annotation "
                    "(DaCe programs are strongly typed)",
                    arg,
                )
            if isinstance(ann, Data):
                self.sdfg.add_datadesc(arg.arg, ann.clone())
                for s in ann.free_symbols:
                    self.sdfg.symbols.setdefault(s.name, dtypes.int64)
            elif isinstance(ann, typeclass):
                if ann.is_integer():
                    # Integer scalars become symbols (sizes, trip counts).
                    self.sdfg.add_symbol(arg.arg, ann)
                else:
                    self.sdfg.add_scalar(arg.arg, ann)
            else:
                raise FrontendError(
                    f"unsupported annotation for {arg.arg!r}: {ann!r}", arg
                )

    # ------------------------------------------------------------------ body
    def parse_body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.parse_statement(stmt)
        if self.cur is None and self.sdfg.number_of_nodes() == 0:
            self.sdfg.add_state("empty")

    def parse_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.For):
            self._parse_for(stmt)
        elif isinstance(stmt, ast.While):
            self._parse_while(stmt)
        elif isinstance(stmt, ast.If):
            self._parse_if(stmt)
        elif isinstance(stmt, ast.With):
            self._parse_tasklet_with(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._parse_annassign(stmt)
        elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
            self._parse_assign(stmt)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            pass  # docstring
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                raise FrontendError(
                    "DaCe programs return data through array arguments", stmt
                )
        else:
            raise FrontendError(
                f"unsupported statement {type(stmt).__name__}", stmt
            )

    # ------------------------------------------------------------------ maps
    def _parse_for(self, stmt: ast.For) -> None:
        if isinstance(stmt.iter, ast.Subscript) and self._is_sentinel(
            stmt.iter.value, MapRange
        ):
            self._parse_map(stmt)
            return
        if (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
        ):
            if self.scopes:
                raise FrontendError(
                    "sequential loops inside map scopes require a nested "
                    "SDFG; restructure or use the builder API",
                    stmt,
                )
            self._parse_range_loop(stmt)
            return
        raise FrontendError(
            "for-loops must iterate rp.map[...] or range(...)", stmt
        )

    def _parse_map(self, stmt: ast.For) -> None:
        if isinstance(stmt.target, ast.Tuple):
            params = [t.id for t in stmt.target.elts]  # type: ignore[attr-defined]
        else:
            params = [stmt.target.id]  # type: ignore[attr-defined]
        # Data-dependent range bounds (paper Fig. 4/16: A_row[i]:A_row[i+1])
        # become dynamic input connectors on the map entry.
        range_inputs: Dict[str, Memlet] = {}
        slice_ast = self._rewrite_range_reads(stmt.iter.slice, range_inputs)  # type: ignore[attr-defined]
        ndrange = self._subset_str(slice_ast)
        dims = [d for d in ndrange.split("|")]
        if len(dims) != len(params):
            raise FrontendError(
                f"map has {len(params)} parameters but {len(dims)} ranges", stmt
            )
        state = self.state()
        entry, exit_ = state.add_map(
            f"map_{params[0]}_{stmt.lineno}", dict(zip(params, dims))
        )
        outer_entries = [e for e, _ in self.scopes]
        for conn, memlet in range_inputs.items():
            entry.add_in_connector(conn)
            src = self.read_node(state, memlet.data)
            state.add_memlet_path(
                src, *outer_entries, entry, memlet=memlet, dst_conn=conn
            )
        self.scopes.append((entry, exit_))
        try:
            for s in stmt.body:
                if isinstance(s, ast.For):
                    self._parse_for(s)
                elif isinstance(s, ast.With):
                    self._parse_tasklet_with(s)
                elif isinstance(s, (ast.Assign, ast.AugAssign)):
                    self._parse_assign(s)
                elif isinstance(s, ast.Pass):
                    pass
                else:
                    raise FrontendError(
                        f"unsupported statement in map scope: "
                        f"{type(s).__name__}",
                        s,
                    )
        finally:
            self.scopes.pop()
        # A map whose entry stayed unconnected gets an ordering edge so the
        # scope remains well-formed.
        if state.in_degree(entry) == 0 and state.out_degree(entry) == 0:
            state.remove_node(entry)
            state.remove_node(exit_)

    def _rewrite_range_reads(self, slc: ast.expr, inputs: Dict[str, Memlet]) -> ast.expr:
        """Replace array reads in map range bounds with connector names."""
        parser = self

        class Rewriter(ast.NodeTransformer):
            def visit_Subscript(self, sub: ast.Subscript):
                if (
                    isinstance(sub.value, ast.Name)
                    and parser.resolve(sub.value.id) in parser.sdfg.arrays
                ):
                    data = parser.resolve(sub.value.id)
                    subset = parser._subset_str(sub.slice).replace("|", ", ")
                    conn = f"__rng{len(inputs)}"
                    inputs[conn] = Memlet(data=data, subset=subset, volume=1)
                    return ast.copy_location(
                        ast.Name(id=conn, ctx=ast.Load()), sub
                    )
                return self.generic_visit(sub)

        # Only rewrite inside slice bounds; a bare tuple of slices is fine.
        return ast.fix_missing_locations(Rewriter().visit(slc))

    # ------------------------------------------------------------ interstate
    def _parse_range_loop(self, stmt: ast.For) -> None:
        if not isinstance(stmt.target, ast.Name):
            raise FrontendError("loop variable must be a plain name", stmt)
        var = stmt.target.id
        args = [self._code(a) for a in stmt.iter.args]  # type: ignore[attr-defined]
        if len(args) == 1:
            init, cond_end, step = "0", args[0], "1"
        elif len(args) == 2:
            init, cond_end, step = args[0], args[1], "1"
        else:
            init, cond_end, step = args
        before = self.state()
        guard = self.fresh_state(f"{var}_guard")
        self.sdfg.add_edge(before, guard, InterstateEdge(assignments={var: init}))
        body_first = self.fresh_state(f"{var}_body")
        descending = False
        try:
            descending = int(str(step)) < 0
        except ValueError:
            descending = str(step).lstrip().startswith("-")
        cond = f"{var} > {cond_end}" if descending else f"{var} < {cond_end}"
        self.sdfg.add_edge(guard, body_first, InterstateEdge(condition=cond))
        self.cur = body_first
        for s in stmt.body:
            self.parse_statement(s)
        body_last = self.cur
        self.sdfg.add_edge(
            body_last, guard, InterstateEdge(assignments={var: f"{var} + {step}"})
        )
        after = self.fresh_state(f"{var}_end")
        self.sdfg.add_edge(
            guard, after, InterstateEdge(condition=Not.make(parse_expr(cond)))
        )
        self.cur = after

    def _parse_while(self, stmt: ast.While) -> None:
        if self.scopes:
            raise FrontendError("while inside map scopes is unsupported", stmt)
        cond = self._condition_code(stmt.test)
        before = self.state()
        guard = self.fresh_state("while_guard")
        self.sdfg.add_edge(before, guard, InterstateEdge())
        body_first = self.fresh_state("while_body")
        self.sdfg.add_edge(guard, body_first, InterstateEdge(condition=cond))
        self.cur = body_first
        for s in stmt.body:
            self.parse_statement(s)
        self.sdfg.add_edge(self.cur, guard, InterstateEdge())
        after = self.fresh_state("while_end")
        self.sdfg.add_edge(
            guard, after, InterstateEdge(condition=Not.make(parse_expr(cond)))
        )
        self.cur = after

    def _parse_if(self, stmt: ast.If) -> None:
        if self.scopes:
            raise FrontendError(
                "data-dependent branches inside maps require a nested SDFG",
                stmt,
            )
        cond_src = self._condition_code(stmt.test)
        cond = parse_expr(cond_src)
        before = self.state()
        then_first = self.fresh_state("if_body")
        self.sdfg.add_edge(before, then_first, InterstateEdge(condition=cond))
        self.cur = then_first
        for s in stmt.body:
            self.parse_statement(s)
        then_last = self.cur
        join = self.fresh_state("if_join")
        self.sdfg.add_edge(then_last, join, InterstateEdge())
        if stmt.orelse:
            else_first = self.fresh_state("else_body")
            self.sdfg.add_edge(
                before, else_first, InterstateEdge(condition=Not.make(cond))
            )
            self.cur = else_first
            for s in stmt.orelse:
                self.parse_statement(s)
            self.sdfg.add_edge(self.cur, join, InterstateEdge())
        else:
            self.sdfg.add_edge(before, join, InterstateEdge(condition=Not.make(cond)))
        self.cur = join

    # -------------------------------------------------------------- tasklets
    def _parse_tasklet_with(self, stmt: ast.With) -> None:
        item = stmt.items[0].context_expr
        language = Language.Python
        code_global = ""
        if isinstance(item, ast.Call):
            target = item.func
            for kw in item.keywords:
                if kw.arg == "language":
                    lang = self._eval_static(kw.value)
                    language = lang if isinstance(lang, Language) else Language.CPP
                elif kw.arg == "code_global":
                    code_global = ast.literal_eval(kw.value)
        else:
            target = item
        if not self._is_sentinel(target, _TaskletSentinel):
            raise FrontendError("with-blocks must use rp.tasklet", stmt)
        inputs: Dict[str, Memlet] = {}
        outputs: Dict[str, Memlet] = {}
        direct_inputs: Dict[str, Any] = {}
        code_stmts: List[str] = []
        for s in stmt.body:
            # Indirect reads (x[A_col[j]], Appendix F) expand into an
            # indirection subgraph feeding the tasklet a scalar transient.
            ind = self._try_indirect_decl(s)
            if ind is not None:
                conn, acc_node, memlet = ind
                direct_inputs[conn] = (acc_node, memlet)
                continue
            memlet_decl = self._try_memlet_decl(s)
            if memlet_decl is not None:
                conn, memlet, is_input = memlet_decl
                (inputs if is_input else outputs)[conn] = memlet
            elif isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant):
                if isinstance(s.value.value, str) and language == Language.CPP:
                    code_stmts.append(textwrap.dedent(s.value.value))
            else:
                code_stmts.append(ast.unparse(s))
        code = "\n".join(code_stmts)
        state = self.state()
        all_in = list(inputs) + list(direct_inputs)
        tasklet = state.add_tasklet(
            f"tasklet_{stmt.lineno}", all_in, outputs.keys(), code,
            language=language, code_global=code_global,
        )
        self._wire_tasklet(state, tasklet, inputs, outputs)
        for conn, (acc, memlet) in direct_inputs.items():
            state.add_edge(acc, tasklet, memlet, None, conn)

    def _try_memlet_decl(self, s: ast.stmt):
        """Recognize ``conn << container[subset]`` / ``conn >> ...``."""
        if not isinstance(s, ast.Expr) or not isinstance(s.value, ast.BinOp):
            return None
        op = s.value.op
        if not isinstance(op, (ast.LShift, ast.RShift)):
            return None
        is_input = isinstance(op, ast.LShift)
        conn_node = s.value.left
        src = s.value.right
        if not isinstance(conn_node, ast.Name):
            raise FrontendError("memlet local must be a plain name", s)
        memlet = self._parse_memlet_expr(src)
        return conn_node.id, memlet, is_input

    def _try_indirect_decl(self, s: ast.stmt):
        """Recognize ``conn << arr[index-with-array-reads]`` and build the
        Appendix F indirection subgraph.  Returns (conn, access, memlet)."""
        if not isinstance(s, ast.Expr) or not isinstance(s.value, ast.BinOp):
            return None
        if not isinstance(s.value.op, ast.LShift):
            return None
        conn_node, src = s.value.left, s.value.right
        if not isinstance(conn_node, ast.Name) or not isinstance(src, ast.Subscript):
            return None
        base = src.value
        if isinstance(base, ast.Call):
            base = base.func
        if not isinstance(base, ast.Name):
            return None
        data = self.resolve(base.id)
        if data not in self.sdfg.arrays:
            return None
        indirect = any(
            isinstance(inner, ast.Subscript)
            and isinstance(inner.value, ast.Name)
            and self.resolve(inner.value.id) in self.sdfg.arrays
            for inner in ast.walk(src.slice)
        )
        if not indirect:
            return None
        conn = conn_node.id
        state = self.state()
        desc = self.sdfg.arrays[data]
        inner_inputs: Dict[str, Memlet] = {}
        new_slice = self._rewrite_reads(src.slice, inner_inputs, s)
        idx = self._subset_str(new_slice).replace("|", ", ")
        inner_inputs["__arr"] = Memlet(
            data=data,
            subset=", ".join(f"0:{d}" for d in desc.shape),
            volume=1,
            dynamic=True,
        )
        tname, _ = self.sdfg.add_transient(f"__ind_{conn}", (1,), desc.dtype)
        ind_tasklet = state.add_tasklet(
            f"indirection_{conn}",
            inner_inputs.keys(),
            ["__val"],
            f"__val = __arr[{idx}]",
        )
        self._wire_tasklet(state, ind_tasklet, inner_inputs, {})
        acc = state.add_access(tname)
        state.add_edge(ind_tasklet, acc, Memlet.simple(tname, "0"), "__val", None)
        return conn, acc, Memlet.simple(tname, "0")

    def _parse_memlet_expr(self, node: ast.expr) -> Memlet:
        """Parse the right-hand side of a memlet declaration (Fig. 3)."""
        subset_str: Optional[str] = None
        volume = None
        dynamic = False
        wcr = None
        base = node
        if isinstance(base, ast.Subscript):
            subset_str = self._subset_str(base.slice).replace("|", ", ")
            base = base.value
        if isinstance(base, ast.Call):
            args = base.args
            if args:
                first = args[0]
                if self._is_sentinel(first, _Dyn) or (
                    isinstance(first, ast.Name) and first.id == "dyn"
                ):
                    dynamic = True
                    volume = 1
                elif isinstance(first, ast.Constant) and first.value == -1:
                    dynamic = True
                    volume = 1
                else:
                    volume = self._code(first)
            if len(args) > 1:
                wcr = self._parse_wcr(args[1])
            base = base.func
        if not isinstance(base, ast.Name):
            raise FrontendError(f"cannot parse memlet container {ast.dump(base)}")
        data = self.resolve(base.id)
        if data not in self.sdfg.arrays:
            raise FrontendError(f"memlet references unknown container {data!r}", node)
        desc = self.sdfg.arrays[data]
        if subset_str is None:
            if isinstance(desc, Stream):
                subset_str = ", ".join("0" for _ in desc.shape)
                dynamic = True
            else:
                subset_str = ", ".join(f"0:{s}" for s in desc.shape)
        if isinstance(desc, Stream):
            dynamic = True
            volume = volume or 1
        return Memlet(
            data=data, subset=subset_str, volume=volume, dynamic=dynamic, wcr=wcr
        )

    def _parse_wcr(self, node: ast.expr) -> str:
        if isinstance(node, ast.Lambda):
            return ast.unparse(node)
        name = ast.unparse(node)
        tail = name.rsplit(".", 1)[-1]
        if tail in ("sum", "product", "min", "max"):
            return tail
        raise FrontendError(f"unsupported WCR specification {name!r}", node)

    def _wire_tasklet(self, state, tasklet, inputs, outputs) -> None:
        entries = [e for e, _ in self.scopes]
        exits = [x for _, x in reversed(self.scopes)]
        for conn, memlet in inputs.items():
            src = self.read_node(state, memlet.data)
            path = [src] + entries + [tasklet]
            state.add_memlet_path(*path, memlet=memlet, dst_conn=conn)
        if not inputs and entries:
            state.add_nedge(entries[-1], tasklet)
        for conn, memlet in outputs.items():
            dst = self.write_node(state, memlet.data)
            path = [tasklet] + exits + [dst]
            state.add_memlet_path(*path, memlet=memlet, src_conn=conn)
        if not outputs and exits:
            state.add_nedge(tasklet, exits[0])

    # ----------------------------------------------------- assignments (maps)
    def _parse_assign(self, stmt) -> None:
        if self.scopes:
            self._implicit_tasklet(stmt)
            return
        # Point-element assignments at state level (A[i, j] = expr) become
        # single-execution implicit tasklets (common in solver kernels).
        target = stmt.target if isinstance(stmt, ast.AugAssign) else stmt.targets[0]
        if isinstance(target, ast.Subscript) and self._is_point_target(target):
            self._implicit_tasklet(stmt)
            return
        self._parse_toplevel_assign(stmt)

    def _is_point_target(self, target: ast.Subscript) -> bool:
        if not isinstance(target.value, ast.Name):
            return False
        if self.resolve(target.value.id) not in self.sdfg.arrays:
            return False
        slc = target.slice
        elts = slc.elts if isinstance(slc, ast.Tuple) else [slc]
        return not any(isinstance(e, ast.Slice) for e in elts)

    def _implicit_tasklet(self, stmt) -> None:
        """``C[i, j] = f(A[i, k], ...)`` inside a map becomes a tasklet."""
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise FrontendError("chained assignment unsupported", stmt)
            target, value, wcr = stmt.targets[0], stmt.value, None
        else:  # AugAssign
            target, value = stmt.target, stmt.value
            wcr = {
                ast.Add: "sum",
                ast.Mult: "product",
            }.get(type(stmt.op))
            if wcr is None:
                raise FrontendError(
                    "only += and *= map to conflict resolution", stmt
                )
        if not isinstance(target, ast.Subscript):
            raise FrontendError(
                "assignments in maps must write array elements", stmt
            )
        inputs: Dict[str, Memlet] = {}
        self._conn_count = 0
        new_value = self._rewrite_reads(value, inputs, stmt)
        out_memlet = self._target_memlet(target, wcr, stmt)
        code = f"__out = {ast.unparse(new_value)}"
        state = self.state()
        tasklet = state.add_tasklet(
            f"assign_{stmt.lineno}", inputs.keys(), ["__out"], code
        )
        self._wire_tasklet(state, tasklet, inputs, {"__out": out_memlet})

    def _rewrite_reads(self, node: ast.expr, inputs: Dict[str, Memlet], ctx) -> ast.expr:
        """Replace array reads with connector names, collecting memlets.

        Indirect accesses (``x[col[j]]``, Appendix F) produce a full-range
        dynamic memlet plus in-code indexing of the connector.
        """
        parser = self

        class Rewriter(ast.NodeTransformer):
            def visit_Subscript(self, sub: ast.Subscript):
                if not (
                    isinstance(sub.value, ast.Name)
                    and parser.resolve(sub.value.id) in parser.sdfg.arrays
                ):
                    return self.generic_visit(sub)
                data = parser.resolve(sub.value.id)
                # Does the subset reference other arrays (indirection)?
                indirect = any(
                    isinstance(inner, ast.Subscript)
                    and isinstance(inner.value, ast.Name)
                    and parser.resolve(inner.value.id) in parser.sdfg.arrays
                    for inner in ast.walk(sub.slice)
                )
                if indirect:
                    # Bind the whole container; keep (rewritten) indexing in
                    # the code. Inner reads become their own connectors.
                    new_slice = self.visit(sub.slice)
                    conn = parser._fresh_conn(inputs)
                    desc = parser.sdfg.arrays[data]
                    inputs[conn] = Memlet(
                        data=data,
                        subset=", ".join(f"0:{s}" for s in desc.shape),
                        volume=1,
                        dynamic=True,
                    )
                    return ast.copy_location(
                        ast.Subscript(
                            value=ast.Name(id=conn, ctx=ast.Load()),
                            slice=new_slice,
                            ctx=ast.Load(),
                        ),
                        sub,
                    )
                subset = parser._subset_str(sub.slice).replace("|", ", ")
                memlet = Memlet(data=data, subset=subset)
                # Reuse a connector for an identical read.
                for conn, m in inputs.items():
                    if m == memlet:
                        return ast.copy_location(
                            ast.Name(id=conn, ctx=ast.Load()), sub
                        )
                conn = parser._fresh_conn(inputs)
                inputs[conn] = memlet
                return ast.copy_location(ast.Name(id=conn, ctx=ast.Load()), sub)

        new = Rewriter().visit(node)
        return ast.fix_missing_locations(new)

    def _fresh_conn(self, inputs) -> str:
        conn = f"__in{len(inputs)}"
        while conn in inputs:
            conn += "_"
        return conn

    def _target_memlet(self, target: ast.Subscript, wcr, ctx) -> Memlet:
        if not isinstance(target.value, ast.Name):
            raise FrontendError("unsupported assignment target", ctx)
        data = self.resolve(target.value.id)
        if data not in self.sdfg.arrays:
            raise FrontendError(f"write to unknown container {data!r}", ctx)
        indirect = any(
            isinstance(inner, ast.Subscript)
            and isinstance(inner.value, ast.Name)
            and self.resolve(inner.value.id) in self.sdfg.arrays
            for inner in ast.walk(target.slice)
        )
        if indirect:
            raise FrontendError(
                "indirect writes need an explicit tasklet with a dynamic "
                "memlet",
                ctx,
            )
        subset = self._subset_str(target.slice).replace("|", ", ")
        return Memlet(data=data, subset=subset, wcr=wcr)

    # ------------------------------------------------- top-level assignments
    def _parse_toplevel_assign(self, stmt) -> None:
        if isinstance(stmt, ast.AugAssign):
            # x += y at state level: expand to x = x + y elementwise.
            binop = ast.BinOp(
                left=stmt.target, op=stmt.op, right=stmt.value
            )
            ast.fix_missing_locations(binop)
            stmt = ast.Assign(targets=[stmt.target], value=binop)
            ast.fix_missing_locations(stmt)
        target = stmt.targets[0]
        if isinstance(target, ast.Subscript):
            self._toplevel_subscript_assign(target, stmt.value, stmt)
            return
        if not isinstance(target, ast.Name):
            raise FrontendError("unsupported assignment target", stmt)
        tname = target.id
        out = self.resolve(tname) if tname in self.aliases or tname in self.sdfg.arrays else None
        result = self._eval_array_expr(stmt.value, out=out, stmt=stmt)
        if out is None:
            if not isinstance(result, str):
                raise FrontendError(
                    "scalar state-level assignments are not supported; "
                    "declare a container first",
                    stmt,
                )
            self.aliases[tname] = result
        elif isinstance(result, str) and result != out:
            # Copy result into the declared output container.
            state = self.state()
            src = self.read_node(state, result)
            dst = self.write_node(state, out)
            state.add_edge(
                src, dst, Memlet.from_array(result, self.sdfg.arrays[result]),
                None, None,
            )

    def _toplevel_subscript_assign(self, target: ast.Subscript, value, stmt) -> None:
        """Slice copies: ``B[a:b] = A[c:d]`` and constant fills."""
        if not isinstance(target.value, ast.Name):
            raise FrontendError("unsupported assignment target", stmt)
        data = self.resolve(target.value.id)
        dsub = self._subset_str(target.slice).replace("|", ", ")
        state = self.state()
        if isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
            src_name = self.resolve(value.value.id)
            if src_name in self.sdfg.arrays:
                ssub = self._subset_str(value.slice).replace("|", ", ")
                src = self.read_node(state, src_name)
                dst = self.write_node(state, data)
                state.add_edge(
                    src, dst,
                    Memlet(data=src_name, subset=ssub, other_subset=dsub),
                    None, None,
                )
                return
        if isinstance(value, ast.Constant):
            # Fill with a constant through a map.
            subset = Subset.from_string(dsub)
            params = {}
            idx_parts = []
            for d, rng in enumerate(subset.ranges):
                if rng.is_point():
                    idx_parts.append(str(rng.start))
                else:
                    p = f"__f{d}"
                    params[p] = f"{rng.start}:{rng.end}:{rng.step}"
                    idx_parts.append(p)
            state.add_mapped_tasklet(
                f"fill_{stmt.lineno}",
                params or {"__f0": "0:1"},
                inputs={},
                code=f"__out = {value.value!r}",
                outputs={"__out": Memlet.simple(data, ", ".join(idx_parts))},
                output_nodes={data: self.write_node(state, data)},
            )
            return
        if isinstance(value, ast.Name):
            src_name = self.resolve(value.id)
            if src_name in self.sdfg.arrays:
                desc = self.sdfg.arrays[src_name]
                src = self.read_node(state, src_name)
                dst = self.write_node(state, data)
                state.add_edge(
                    src, dst,
                    Memlet(
                        data=src_name,
                        subset=", ".join(f"0:{s}" for s in desc.shape),
                        other_subset=dsub,
                    ),
                    None, None,
                )
                return
        raise FrontendError("unsupported slice assignment form", stmt)

    def _eval_array_expr(self, node: ast.expr, out: Optional[str], stmt):
        """Evaluate a whole-array expression, returning a container name
        (or a Python constant for pure scalars)."""
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            name = self.resolve(node.id)
            if name in self.sdfg.arrays:
                return name
            if node.id in self.env and isinstance(self.env[node.id], (int, float)):
                return self.env[node.id]
            raise FrontendError(f"unknown name {node.id!r}", stmt)
        if isinstance(node, ast.BinOp):
            left = self._eval_array_expr(node.left, None, stmt)
            right = self._eval_array_expr(node.right, None, stmt)
            state = self.state()
            if isinstance(node.op, ast.MatMult):
                return npops.expand_matmul(self, state, left, right, out)
            opmap = {
                ast.Add: "+",
                ast.Sub: "-",
                ast.Mult: "*",
                ast.Div: "/",
                ast.Pow: "**",
            }
            op = opmap.get(type(node.op))
            if op is None:
                raise FrontendError("unsupported array operator", stmt)
            if isinstance(left, str):
                return npops.expand_elementwise_binop(self, state, op, left, right, out)
            if isinstance(right, str):
                # Scalar op array: commute where possible.
                if op in ("+", "*"):
                    return npops.expand_elementwise_binop(
                        self, state, op, right, left, out
                    )
                raise FrontendError(
                    "scalar-minus/divide-array expansion unsupported", stmt
                )
            return eval(f"{left!r} {op} {right!r}")  # constant folding
        if isinstance(node, ast.Call):
            fname = ast.unparse(node.func)
            impl = npops.lookup(fname)
            if impl is None:
                raise FrontendError(
                    f"no dataflow implementation registered for {fname!r}; "
                    "add one with @replaces (falling back to Python is "
                    "unsupported in this reproduction)",
                    stmt,
                )
            args = [self._eval_array_expr(a, None, stmt) for a in node.args]
            kwargs = {}
            for kw in node.keywords:
                kwargs[kw.arg] = ast.literal_eval(kw.value)
            return impl(self, self.state(), out, *args, **kwargs)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            val = self._eval_array_expr(node.operand, None, stmt)
            if isinstance(val, str):
                return npops.expand_elementwise_unary(self, self.state(), "neg", val, out)
            return -val
        raise FrontendError(
            f"unsupported array expression {type(node).__name__}", stmt
        )

    # ----------------------------------------------------------- annotations
    def _parse_annassign(self, stmt: ast.AnnAssign) -> None:
        if not isinstance(stmt.target, ast.Name):
            raise FrontendError("unsupported annotated target", stmt)
        ann = self._eval_static(stmt.annotation)
        name = stmt.target.id
        if isinstance(ann, Data):
            desc = ann.clone()
            desc.transient = True
            self.sdfg.add_datadesc(name, desc)
        elif isinstance(ann, typeclass):
            self.sdfg.add_scalar(name, ann, transient=True)
        else:
            raise FrontendError(f"unsupported declaration {ann!r}", stmt)
        if stmt.value is not None:
            assign = ast.Assign(targets=[stmt.target], value=stmt.value)
            ast.fix_missing_locations(assign)
            assign.lineno = stmt.lineno
            self._parse_assign(assign)

    # ------------------------------------------------------------- rendering
    def _code(self, node: ast.expr) -> str:
        return ast.unparse(node)

    def _condition_code(self, node: ast.expr) -> str:
        """Render an interstate condition, mapping single-element container
        reads (``v[0]``) to the container name the runtime binds."""
        parser = self

        class Rewriter(ast.NodeTransformer):
            def visit_Subscript(self, sub: ast.Subscript):
                if (
                    isinstance(sub.value, ast.Name)
                    and parser.resolve(sub.value.id) in parser.sdfg.arrays
                ):
                    data = parser.resolve(sub.value.id)
                    desc = parser.sdfg.arrays[data]
                    from repro.symbolic import Integer

                    if all(s == Integer(1) for s in desc.shape):
                        return ast.copy_location(
                            ast.Name(id=data, ctx=ast.Load()), sub
                        )
                    raise FrontendError(
                        "conditions may only read single-element containers "
                        f"(got {data!r})",
                        sub,
                    )
                return self.generic_visit(sub)

        return ast.unparse(ast.fix_missing_locations(Rewriter().visit(node)))

    def _subset_str(self, slc: ast.expr) -> str:
        """Render a subscript slice as '|'-separated dimension strings."""
        elts = slc.elts if isinstance(slc, ast.Tuple) else [slc]
        dims = []
        for e in elts:
            if isinstance(e, ast.Slice):
                lo = ast.unparse(e.lower) if e.lower is not None else "0"
                hi = ast.unparse(e.upper) if e.upper is not None else None
                if hi is None:
                    raise FrontendError("open-ended slices unsupported", e)
                part = f"{lo}:{hi}"
                if e.step is not None:
                    part += f":{ast.unparse(e.step)}"
                dims.append(part)
            else:
                dims.append(ast.unparse(e))
        return "|".join(dims)
