"""Language frontends: restricted Python → SDFG (paper §2.1).

The decorator-based Python interface is the primary frontend::

    import repro as rp

    @rp.program
    def laplace(A: rp.float64[2, N], T: rp.int64):
        for t in range(T):
            for i in rp.map[1:N-1]:
                with rp.tasklet:
                    w << A[t % 2, i-1:i+2]
                    out >> A[(t+1) % 2, i]
                    out = w[0] - 2*w[1] + w[2]

Programs are strongly-typed decorated functions; ``rp.map`` ranges
become Map scopes, ``with rp.tasklet`` blocks become Tasklets with
explicit memlets (``<<`` in, ``>>`` out, Fig. 3 anatomy), plain loops
and branches become the state machine, and a NumPy operator subset
(``@``, ``+``, ``-``, ``*``, ``/``) expands into library dataflow.

The low-level builder API for DSL authors is the SDFG/SDFGState method
surface itself (see :mod:`repro.sdfg.state`); :mod:`repro.frontend.npops`
hosts the ``@replaces`` extension registry for new operators.
"""

from repro.frontend.decorators import (
    DaceProgram,
    MapRange,
    dyn,
    map,  # noqa: A001  (intentional: rp.map mirrors dace.map)
    program,
    symbol,
    tasklet,
)
from repro.frontend.npops import replaces

__all__ = [
    "DaceProgram",
    "MapRange",
    "dyn",
    "map",
    "program",
    "replaces",
    "symbol",
    "tasklet",
]
