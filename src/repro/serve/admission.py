"""Per-tenant admission control and graceful load degradation.

PR 5 gave *backends* circuit breakers; a multi-tenant service needs the
same reflex per **tenant**: the caller whose kernels keep segfaulting or
blowing deadlines must be rejected fast — before consuming a worker —
while every other tenant stays unaffected.  Three gates run, cheapest
first, on every compile/execute request:

1. **circuit breaker** (``R807``) — consecutive contained failures
   (worker death ``E201``, watchdog ``R805``) open the tenant's breaker;
   open → fast rejection with ``retry_after``; after the cooldown
   exactly one request is admitted as the half-open probe (losers keep
   getting ``R807``), and its outcome closes or re-opens the breaker.
2. **in-flight cap** (``R806``) — at most ``max_inflight`` concurrent
   requests per tenant; the cap bounds how much of the pool one tenant
   can hold.
3. **deadline budget** (``R808``) — each tenant gets
   ``budget_seconds`` of worker wall-clock per rolling
   ``budget_window``; heavy users are throttled once the window fills,
   with ``retry_after`` pointing at the oldest spend's expiry.

Rejections are *cheap* by construction: a few dict lookups under one
lock, no sockets, no workers, no compilation — the 429 path.

:class:`LoadShedder` handles overload that admission lets through:
rather than hard-failing a healthy tenant because the pool is busy, it
degrades request *quality* in documented steps (shed sanitizer and
instrumentation overhead first, then force the cheaper backend tiers
down the cpp → python → interpreter chain), attaching a ``W801``
diagnostic so clients can see what they lost.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.chaos import faultpoint
from repro.diagnostics import DiagnosticError, Severity, make_diagnostic
from repro.instrumentation import InstrumentationRecorder
from repro.runtime.watchdog import CircuitBreakerRegistry
from repro.telemetry.sink import TelemetrySink

#: Failure codes that charge a tenant's circuit breaker.  Validation
#: errors and admission rejections do NOT: a tenant sending an invalid
#: SDFG gets a precise error, not an open breaker.
BREAKER_CODES = ("E201", "R805")


class TenantPolicy:
    """Static limits applied to one tenant (or the default for all)."""

    __slots__ = ("max_inflight", "deadline_cap", "budget_seconds",
                 "budget_window", "breaker_threshold", "breaker_cooldown")

    def __init__(
        self,
        max_inflight: int = 8,
        deadline_cap: Optional[float] = 30.0,
        budget_seconds: Optional[float] = None,
        budget_window: float = 60.0,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
    ):
        self.max_inflight = max(1, int(max_inflight))
        self.deadline_cap = deadline_cap
        self.budget_seconds = budget_seconds
        self.budget_window = max(1e-3, float(budget_window))
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_cooldown = max(0.0, float(breaker_cooldown))


class AdmissionError(DiagnosticError):
    """A request was rejected at admission (codes ``R806``–``R808``)."""

    def __init__(self, code: str, message: str, tenant: str,
                 retry_after: Optional[float] = None):
        super().__init__(make_diagnostic(code, message, Severity.ERROR, data=tenant))
        self.tenant = tenant
        self.retry_after = retry_after


class Ticket:
    """One admitted request; must be settled exactly once."""

    __slots__ = ("controller", "tenant", "admitted_at", "_settled")

    def __init__(self, controller: "AdmissionController", tenant: str):
        self.controller = controller
        self.tenant = tenant
        self.admitted_at = time.monotonic()
        self._settled = False

    def complete(self, cost_seconds: float = 0.0,
                 failure_code: Optional[str] = None) -> None:
        """Settle the request: release the in-flight slot, charge the
        budget, and feed the breaker (``failure_code`` in
        :data:`BREAKER_CODES` counts as a strike; anything else — or
        None — counts as a success)."""
        if self._settled:
            return
        self._settled = True
        self.controller._settle(self.tenant, cost_seconds, failure_code)


class _TenantState:
    __slots__ = ("inflight", "spend", "admitted", "rejected", "failures", "ok")

    def __init__(self):
        self.inflight = 0
        #: Rolling (timestamp, cost_seconds) ledger of completed work.
        self.spend: Deque[Tuple[float, float]] = deque()
        self.admitted = 0
        self.rejected = 0
        self.failures = 0
        self.ok = 0


class AdmissionController:
    """Thread-safe per-tenant gate in front of the worker pool."""

    def __init__(
        self,
        default_policy: Optional[TenantPolicy] = None,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        recorder: Optional[InstrumentationRecorder] = None,
        sink: Optional[TelemetrySink] = None,
    ):
        self.default_policy = default_policy or TenantPolicy()
        self.policies = dict(policies or {})
        self.recorder = recorder or InstrumentationRecorder()
        self.sink = sink
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}
        self.breakers = CircuitBreakerRegistry(
            threshold=self.default_policy.breaker_threshold,
            cooldown=self.default_policy.breaker_cooldown,
        )
        # Honor per-tenant breaker knobs: a TenantPolicy in `policies`
        # with its own threshold/cooldown overrides the default.
        self.breakers.set_limit_resolver(
            lambda tenant: (
                self.policy(tenant).breaker_threshold,
                self.policy(tenant).breaker_cooldown,
            )
        )
        # Mirror every breaker transition onto the instrumentation bus:
        # dashboards (and the half-open tests) watch these events.
        self.breakers.on_transition(self._on_breaker_transition)

    def _on_breaker_transition(self, tenant: str, old: str, new: str) -> None:
        self.recorder.event(
            "breaker", f"{tenant}:{old}->{new}", itype="COUNTER", iterations=1
        )
        if self.sink is not None:
            self.sink.publish("breaker", tenant,
                              fields={"old": old, "new": new})

    def _publish_decision(self, tenant: str, decision: str,
                          code: Optional[str] = None) -> None:
        if self.sink is not None:
            self.sink.publish("admission", tenant,
                              fields={"event": decision, "code": code})

    def policy(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, self.default_policy)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    # ----------------------------------------------------------- admission
    def admit(self, tenant: str, deadline: Optional[float] = None) -> Ticket:
        """Run the three gates; returns a :class:`Ticket` or raises
        :class:`AdmissionError` (the fast-rejection path)."""
        # An engine fault here (not a policy rejection) must surface as
        # the daemon's structured E204, never as a dropped request.
        faultpoint("admission.admit", tenant=tenant)
        policy = self.policy(tenant)
        now = time.monotonic()
        with self._lock:
            state = self._state(tenant)

            # Gate 1: circuit breaker (cheapest; also the single-probe
            # half-open admission).  If this caller is admitted as the
            # half-open probe but a *later* gate rejects it, the probe
            # must be rolled back — no Ticket exists, so nothing would
            # ever settle it and the breaker would be stuck HALF_OPEN.
            pre_state = self.breakers.state(tenant)
            if self.breakers.is_open(tenant):
                state.rejected += 1
                self.recorder.event("serve", f"reject[{tenant}]:R807",
                                    itype="COUNTER", iterations=1)
                self._publish_decision(tenant, "reject", "R807")
                retry_after = self.breakers.cooldown_remaining(tenant)
                raise AdmissionError(
                    "R807",
                    f"tenant {tenant!r} circuit breaker is open after "
                    f"{self.breakers.failures(tenant)} consecutive failures "
                    f"(last: {self.breakers.last_code(tenant)}); "
                    f"retry in {retry_after:.1f}s",
                    tenant=tenant,
                    retry_after=retry_after,
                )

            became_probe = (
                pre_state != "half_open"
                and self.breakers.state(tenant) == "half_open"
            )

            # Gate 2: concurrent in-flight cap.
            if state.inflight >= policy.max_inflight:
                if became_probe:
                    self.breakers.abort_probe(tenant)
                state.rejected += 1
                self.recorder.event("serve", f"reject[{tenant}]:R806",
                                    itype="COUNTER", iterations=1)
                self._publish_decision(tenant, "reject", "R806")
                raise AdmissionError(
                    "R806",
                    f"tenant {tenant!r} already has {state.inflight} requests "
                    f"in flight (cap {policy.max_inflight})",
                    tenant=tenant,
                    retry_after=0.05,
                )

            # Gate 3: rolling deadline budget.
            if policy.budget_seconds is not None:
                horizon = now - policy.budget_window
                spend = state.spend
                while spend and spend[0][0] < horizon:
                    spend.popleft()
                spent = sum(cost for _, cost in spend)
                if spent >= policy.budget_seconds:
                    if became_probe:
                        self.breakers.abort_probe(tenant)
                    state.rejected += 1
                    self.recorder.event("serve", f"reject[{tenant}]:R808",
                                        itype="COUNTER", iterations=1)
                    self._publish_decision(tenant, "reject", "R808")
                    retry_after = (
                        spend[0][0] + policy.budget_window - now if spend else 0.0
                    )
                    raise AdmissionError(
                        "R808",
                        f"tenant {tenant!r} spent {spent:.3f}s of its "
                        f"{policy.budget_seconds:g}s budget in the last "
                        f"{policy.budget_window:g}s window",
                        tenant=tenant,
                        retry_after=max(0.0, retry_after),
                    )

            state.inflight += 1
            state.admitted += 1
            self.recorder.event("serve", f"admit[{tenant}]",
                                itype="COUNTER", iterations=1)
            self._publish_decision(tenant, "admit")
            return Ticket(self, tenant)

    def clamp_deadline(self, tenant: str, requested: Optional[float]) -> Optional[float]:
        """Apply the tenant's deadline cap (the cap is also the default
        when the request names none)."""
        cap = self.policy(tenant).deadline_cap
        if requested is None:
            return cap
        try:
            value = float(requested)
        except (TypeError, ValueError):
            return cap
        if not math.isfinite(value) or value <= 0:
            # Protocol validation already rejects these; never let a
            # NaN/Infinity survive into worker timeouts regardless.
            return cap
        return value if cap is None else min(value, cap)

    def _settle(self, tenant: str, cost_seconds: float,
                failure_code: Optional[str]) -> None:
        failed = failure_code in BREAKER_CODES
        with self._lock:
            state = self._state(tenant)
            state.inflight = max(0, state.inflight - 1)
            state.spend.append((time.monotonic(), max(0.0, float(cost_seconds))))
            if failed:
                state.failures += 1
            else:
                state.ok += 1
        if failed:
            self.breakers.record_failure(tenant, code=failure_code)
            self.recorder.event("serve", f"failure[{tenant}]:{failure_code}",
                                itype="COUNTER", iterations=1)
        else:
            self.breakers.record_success(tenant)

    # --------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            tenants = {
                name: {
                    "inflight": s.inflight,
                    "admitted": s.admitted,
                    "rejected": s.rejected,
                    "failures": s.failures,
                    "ok": s.ok,
                    "breaker": self.breakers.state(name),
                    "window_spend": round(sum(c for _, c in s.spend), 6),
                }
                for name, s in self._tenants.items()
            }
        return {"tenants": tenants}


# =====================================================================
# Load shedding
# =====================================================================

#: Ordered degradation steps: ``(threshold_in_multiples_of_pool_size,
#: description)``.  Level 0 is full service.
SHED_LEVELS = (
    "full service",
    "sanitizer and instrumentation shed",
    "backend forced to python (no native compile)",
    "backend forced to interpreter",
)


class LoadShedder:
    """Degrade request *quality* before request *availability*.

    The level is a pure function of instantaneous pressure (in-flight
    requests vs. pool capacity), so it recovers the moment load drops:

    * level 1 — pressure > 1x capacity: drop ``sanitize`` and profiling
      from requests (the guards cost integer-factor overhead);
    * level 2 — pressure > 2x capacity: force the ``python`` backend so
      no request pays a native cold compile;
    * level 3 — pressure > 3x capacity: force the ``interpreter`` tier —
      slow, but allocation-light and always available.

    Shedding never rejects: that is admission's job.  Every shed is
    recorded on the response as a ``W801`` diagnostic.
    """

    def __init__(self, capacity: int,
                 recorder: Optional[InstrumentationRecorder] = None):
        self.capacity = max(1, int(capacity))
        self.recorder = recorder
        self._lock = threading.Lock()
        self._pressure = 0
        self.sheds = 0

    # Pressure tracking: the daemon brackets every admitted request.
    def enter(self) -> None:
        with self._lock:
            self._pressure += 1

    def exit(self) -> None:
        with self._lock:
            self._pressure = max(0, self._pressure - 1)

    @property
    def pressure(self) -> int:
        with self._lock:
            return self._pressure

    def level(self) -> int:
        return min(len(SHED_LEVELS) - 1, max(0, (self.pressure - 1) // self.capacity))

    def apply(self, job: Dict[str, Any]) -> Tuple[Dict[str, Any], List[str]]:
        """Return ``(possibly-modified job, list of shed descriptions)``."""
        level = self.level()
        if level <= 0:
            return job, []
        shed: List[str] = []
        job = dict(job)
        if level >= 1:
            if job.get("sanitize"):
                job["sanitize"] = None
                shed.append("sanitize")
            if job.get("profile"):
                job["profile"] = False
                shed.append("profile")
        if level >= 2 and job.get("backend", "python") == "cpp":
            job["backend"] = "python"
            shed.append("backend:cpp->python")
        if level >= 3 and job.get("backend", "python") != "interpreter":
            job["backend"] = "interpreter"
            shed.append("backend->interpreter")
        if shed:
            with self._lock:
                self.sheds += 1
            if self.recorder is not None:
                self.recorder.event("serve", f"shed[level={level}]",
                                    itype="COUNTER", iterations=1)
        return job, shed
