"""The long-lived compile-and-execute daemon (``python -m repro.serve``).

Accepts newline-JSON requests from many concurrent clients over a local
socket (Unix domain by default, TCP on request), authenticates nothing —
it is a *local* service — but trusts nobody: every request passes
admission control before it may touch a worker, every worker is
expendable, and every failure maps to a stable diagnostic code.

Failure matrix (see DESIGN §11 for the full table):

=====================  =============  ===================================
event                   code           client-visible outcome
=====================  =============  ===================================
malformed request       ``E202``       ``status=error`` immediately
unknown program key     ``E203``       ``status=error``; resend with sdfg
worker SIGSEGV/OOM      ``E201``       replayed; ``error`` after retries
deadline (cooperative)  ``R805``       ``status=error``, worker survives
deadline (hang)         ``R805``       worker killed + respawned
breaker open            ``R807``       ``status=rejected`` + retry_after
in-flight cap           ``R806``       ``status=rejected`` + retry_after
budget exhausted        ``R808``       ``status=rejected`` + retry_after
overload                ``W801``       served, with shed options listed
=====================  =============  ===================================

The daemon itself must never exit on a request's account: connection
handlers catch everything, the pool contains worker death, and admission
contains tenant abuse.
"""

from __future__ import annotations

import os
import socket
import tempfile
import threading
import time
from typing import Any, Dict, Optional

from repro.chaos import ChaosFault, active_engine, faultpoint
from repro.instrumentation import InstrumentationRecorder
from repro.runtime.isolation import crash_dir
from repro.runtime.watchdog import RetryPolicy
from repro.serve import protocol
from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    LoadShedder,
    TenantPolicy,
)
from repro.serve.pool import WorkerPool
from repro.telemetry.aggregate import WindowedAggregator
from repro.telemetry.sink import TelemetrySink


class ServeConfig:
    """Everything the daemon needs, with test-friendly defaults."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        tcp: Optional[tuple] = None,
        workers: int = 2,
        recycle_after: int = 200,
        memory_budget_kb: Optional[int] = None,
        cache_root: Optional[str] = None,
        default_policy: Optional[TenantPolicy] = None,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        retry: Optional[RetryPolicy] = None,
        fault_injection: bool = False,
        allow_shutdown: bool = True,
        health_interval: float = 10.0,
        telemetry: bool = True,
        telemetry_window: float = 60.0,
        telemetry_capacity: int = 4096,
        telemetry_windows: int = 15,
        drain_grace: float = 10.0,
        fsck_on_start: bool = True,
    ):
        self.socket_path = socket_path
        self.tcp = tcp
        self.workers = max(1, int(workers))
        self.recycle_after = recycle_after
        self.memory_budget_kb = memory_budget_kb
        self.cache_root = cache_root
        self.default_policy = default_policy or TenantPolicy()
        self.policies = policies or {}
        self.retry = retry
        self.fault_injection = fault_injection
        self.allow_shutdown = allow_shutdown
        self.health_interval = health_interval
        self.telemetry = telemetry
        self.telemetry_window = max(1e-3, float(telemetry_window))
        self.telemetry_capacity = max(64, int(telemetry_capacity))
        self.telemetry_windows = max(1, int(telemetry_windows))
        self.drain_grace = max(0.0, float(drain_grace))
        self.fsck_on_start = fsck_on_start

    def resolve_address(self) -> tuple:
        """(family, address) — Unix socket unless TCP was requested."""
        if self.tcp is not None:
            return (socket.AF_INET, (self.tcp[0], int(self.tcp[1])))
        path = self.socket_path
        if not path:
            path = os.path.join(
                tempfile.mkdtemp(prefix="repro_serve_"), "serve.sock"
            )
            self.socket_path = path
        return (socket.AF_UNIX, path)


class SDFGServer:
    """Threaded accept loop + per-connection request handlers."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.recorder = InstrumentationRecorder()
        # The fleet event bus: daemon-side producers (admission, pool,
        # request accounting) publish into this sink explicitly, and the
        # workers' process-local sinks are propagated into it by the
        # pool, so one aggregator sees the whole fleet.
        self.sink: Optional[TelemetrySink] = None
        self.aggregator: Optional[WindowedAggregator] = None
        if self.config.telemetry:
            self.sink = TelemetrySink(capacity=self.config.telemetry_capacity)
            self.aggregator = WindowedAggregator(
                self.sink,
                window_seconds=self.config.telemetry_window,
                max_windows=self.config.telemetry_windows,
            )
        self.admission = AdmissionController(
            default_policy=self.config.default_policy,
            policies=self.config.policies,
            recorder=self.recorder,
            sink=self.sink,
        )
        self.pool = WorkerPool(
            size=self.config.workers,
            cache_root=self.config.cache_root,
            recycle_after=self.config.recycle_after,
            memory_budget_kb=self.config.memory_budget_kb,
            retry=self.config.retry,
            fault_injection=self.config.fault_injection,
            sink=self.sink,
        )
        self.shedder = LoadShedder(capacity=self.config.workers,
                                   recorder=self.recorder)
        self.started = time.monotonic()
        self._listener: Optional[socket.socket] = None
        self._threads: list = []
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._wake = threading.Event()
        self._inflight_cv = threading.Condition()
        self._inflight_jobs = 0
        #: Set by :meth:`drain`: True when every in-flight request
        #: completed inside the grace window, False when some were
        #: abandoned, None when the server was stopped without draining.
        self.drained_clean: Optional[bool] = None
        self.fsck_report: Optional[Dict[str, Any]] = None
        self._requests = {"total": 0, "ok": 0, "rejected": 0, "errors": 0}
        self._req_lock = threading.Lock()
        self.address: Optional[Any] = None

    # ---------------------------------------------------------- lifecycle
    def start(self) -> "SDFGServer":
        family, address = self.config.resolve_address()
        if self.config.fsck_on_start:
            # Integrity sweep before any traffic: quarantine torn cache
            # entries and stale crash bundles a previous crash left.
            try:
                from repro.serve.fsck import fsck_sweep

                self.fsck_report = fsck_sweep(
                    cache_root=self.config.cache_root,
                    crash_root=crash_dir(),
                )
                if self.sink is not None and not self.fsck_report["clean"]:
                    self.sink.publish(
                        "lifecycle", "fsck",
                        fields={"repairs": self.fsck_report["repairs"]},
                    )
            except Exception:  # noqa: BLE001 - the sweep must not block boot
                self.fsck_report = None
        self.pool.start()
        listener = socket.socket(family, socket.SOCK_STREAM)
        listener.settimeout(0.5)
        if family == socket.AF_UNIX:
            try:
                os.unlink(address)
            except OSError:
                pass
        else:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(address)
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname() if family != socket.AF_UNIX else address
        accept = threading.Thread(target=self._accept_loop, daemon=True,
                                  name="serve-accept")
        accept.start()
        self._threads.append(accept)
        keeper = threading.Thread(target=self._housekeeping_loop, daemon=True,
                                  name="serve-housekeeping")
        keeper.start()
        self._threads.append(keeper)
        return self

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.pool.close()
        if self.config.socket_path:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    def request_shutdown(self, grace: Optional[float] = None) -> None:
        """Begin a graceful drain (signal handlers, the shutdown op).

        Idempotent and non-blocking: the drain itself runs on a
        dedicated thread so a connection handler (or a signal frame) is
        never the thread waiting on its own request to finish.
        """
        with self._inflight_cv:
            if self._draining.is_set() or self._stop.is_set():
                return
            self._draining.set()
        self._wake.set()
        threading.Thread(
            target=self.drain, args=(grace,), daemon=True, name="serve-drain"
        ).start()

    def drain(self, grace: Optional[float] = None) -> bool:
        """Stop accepting, wait (bounded) for in-flight work, then stop.

        Returns True when nothing was dropped: every request that had
        been admitted before the drain began got its response.
        """
        grace = self.config.drain_grace if grace is None else max(0.0, grace)
        with self._inflight_cv:
            self._draining.set()
        # New connections stop here; established connections live on so
        # in-flight responses (and R809 rejections) can be written.
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        deadline = time.monotonic() + grace
        with self._inflight_cv:
            while self._inflight_jobs > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._inflight_cv.wait(min(remaining, 0.2))
            abandoned = self._inflight_jobs
        self.drained_clean = abandoned == 0
        if self.sink is not None:
            self.sink.publish(
                "lifecycle", "drain",
                fields={"clean": self.drained_clean, "abandoned": abandoned},
            )
        self.stop()
        return self.drained_clean

    def __enter__(self) -> "SDFGServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the CLI entry point's main loop).

        A ``KeyboardInterrupt`` (or anything that called
        :meth:`request_shutdown`) drains gracefully rather than dropping
        in-flight requests on the floor.
        """
        try:
            while not self._stop.is_set():
                self._wake.wait(0.2)
                self._wake.clear()
        except KeyboardInterrupt:
            self.drain()
        finally:
            if not self._stop.is_set():
                self.stop()

    # -------------------------------------------------------------- loops
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            handler = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            handler.start()

    def _housekeeping_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval):
            try:
                self.pool.health_check()
            except Exception:  # noqa: BLE001 - housekeeping must not die
                continue

    # -------------------------------------------------------- connections
    def _handle_connection(self, conn: socket.socket) -> None:
        conn.settimeout(None)
        stream = conn.makefile("rw", encoding="utf-8", newline="\n")
        try:
            while not self._stop.is_set():
                try:
                    faultpoint("daemon.frame_read")
                    request = protocol.recv_message(stream)
                except protocol.ProtocolError as err:
                    protocol.send_message(
                        stream, protocol.error_response(err.code, str(err))
                    )
                    continue
                except ChaosFault as err:
                    # The read path itself failed; the frame (if any) is
                    # unrecoverable — answer structurally and keep the
                    # connection.
                    protocol.send_message(
                        stream, protocol.error_response("E204", str(err))
                    )
                    continue
                if request is None:
                    return
                response = self._dispatch(request)
                if "id" in request:
                    response["id"] = request["id"]
                try:
                    faultpoint("daemon.frame_write")
                except ChaosFault:
                    # Simulated dead client socket: drop the connection
                    # exactly as a genuine EPIPE would.
                    return
                protocol.send_message(stream, response)
                if request.get("op") == "shutdown" and response.get("status") == "ok":
                    self.request_shutdown()
                    return
        except (OSError, ValueError):
            return  # client went away; never the daemon's problem
        finally:
            try:
                stream.close()
                conn.close()
            except OSError:
                pass

    # ----------------------------------------------------------- dispatch
    def _count(self, status: str) -> None:
        with self._req_lock:
            self._requests["total"] += 1
            if status == "ok":
                self._requests["ok"] += 1
            elif status == "rejected":
                self._requests["rejected"] += 1
            else:
                self._requests["errors"] += 1

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            request = protocol.validate_request(request)
        except protocol.ProtocolError as err:
            self._count("error")
            return protocol.error_response(err.code, str(err))
        op = request["op"]
        try:
            if op == "ping":
                self._count("ok")
                return protocol.ok_response(op="pong", uptime=self.uptime())
            if op == "stats":
                self._count("ok")  # before the snapshot: stats count themselves
                return protocol.ok_response(op="stats", **self.stats())
            if op == "metrics":
                if self.aggregator is None:
                    self._count("error")
                    return protocol.error_response(
                        "E202", "telemetry is disabled on this server"
                    )
                self._count("ok")
                return protocol.ok_response(
                    op="metrics", metrics=self.aggregator.snapshot()
                )
            if op == "shutdown":
                if not self.config.allow_shutdown:
                    self._count("error")
                    return protocol.error_response(
                        "E202", "shutdown is disabled on this server"
                    )
                self._count("ok")
                return protocol.ok_response(op="shutdown")
            # Job ops (compile/execute): refused once draining; counted
            # in-flight otherwise so the drain can wait for them.  The
            # check and the increment share the condition's lock, so a
            # request is either visibly in flight or R809-rejected —
            # never silently dropped mid-drain.
            with self._inflight_cv:
                if self._draining.is_set():
                    self._count("rejected")
                    return protocol.rejected_response(
                        "R809",
                        "server is draining: no new work is being "
                        "accepted; retry against a live instance",
                        retry_after=1.0,
                    )
                self._inflight_jobs += 1
            try:
                return self._serve_job(request)
            finally:
                with self._inflight_cv:
                    self._inflight_jobs -= 1
                    self._inflight_cv.notify_all()
        except Exception as err:  # noqa: BLE001 - the daemon never dies for a request
            self._count("error")
            return protocol.error_response(
                "E204", f"internal error: {type(err).__name__}: {err}"
            )

    def _publish_request(self, op: str, tenant: str, status: str,
                         code: Optional[str] = None, shed: bool = False) -> None:
        if self.sink is not None:
            self.sink.publish(
                "request", op,
                fields={"tenant": tenant, "status": status, "code": code,
                        "shed": shed},
            )

    def _serve_job(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = request.get("tenant", "default")
        deadline = self.admission.clamp_deadline(tenant, request.get("deadline"))

        # Gate: fast rejection without touching the pool.
        try:
            ticket = self.admission.admit(tenant, deadline)
        except AdmissionError as err:
            self._count("rejected")
            self._publish_request(request["op"], tenant, "rejected",
                                  code=err.code)
            return protocol.rejected_response(
                err.code, str(err), retry_after=err.retry_after, tenant=tenant
            )

        job = {
            "op": request["op"],
            "tenant": tenant,
            "backend": request.get("backend", "python"),
            "sdfg": request.get("sdfg"),
            "program": request.get("program"),
            "arrays": request.get("arrays"),
            "symbols": request.get("symbols"),
            "sanitize": request.get("sanitize"),
            "parallel": request.get("parallel"),
            "deadline": deadline,
            "memory_budget": request.get("memory_budget"),
        }
        if request.get("inject_fault"):
            job["inject_fault"] = request["inject_fault"]
            if request.get("hang_seconds"):
                job["hang_seconds"] = request["hang_seconds"]
        job = {k: v for k, v in job.items() if v is not None}

        self.shedder.enter()
        start = time.monotonic()
        try:
            job, shed = self.shedder.apply(job)
            response = self.pool.submit(job)
        finally:
            self.shedder.exit()
            cost = time.monotonic() - start
            failure_code = (
                response.get("code")
                if "response" in locals() and response.get("status") != "ok"
                else None
            )
            ticket.complete(cost_seconds=cost, failure_code=failure_code)

        response["tenant"] = tenant
        if shed:
            response["shed"] = shed
            response.setdefault("warnings", []).append(
                {
                    "code": "W801",
                    "severity": "WARNING",
                    "message": "service degraded under load: shed "
                    + ", ".join(shed),
                }
            )
        self._count(response.get("status", "error"))
        self._publish_request(
            request["op"], tenant, response.get("status", "error"),
            code=response.get("code"), shed=bool(shed),
        )
        return response

    # --------------------------------------------------------------- info
    def uptime(self) -> float:
        return round(time.monotonic() - self.started, 6)

    def stats(self) -> Dict[str, Any]:
        with self._req_lock:
            requests = dict(self._requests)
        engine = active_engine()
        return {
            "uptime": self.uptime(),
            "draining": self._draining.is_set(),
            "chaos": engine.snapshot() if engine is not None else None,
            "fsck": self.fsck_report,
            "requests": requests,
            "pool": self.pool.stats(),
            "admission": self.admission.stats(),
            "degrade_level": self.shedder.level(),
            "pressure": self.shedder.pressure,
            "sheds": self.shedder.sheds,
            "breaker_transitions": [
                list(t) for t in self.admission.breakers.transitions[-50:]
            ],
            "telemetry": self.sink.stats() if self.sink is not None else None,
        }
