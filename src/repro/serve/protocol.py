"""Wire protocol of the compile-and-execute service.

Requests and responses are newline-delimited JSON objects ("JSON
lines"): trivially debuggable with ``socat``, dependency-free, and safe
to pipeline.  Arrays travel as base64-encoded contiguous buffers with
explicit dtype/shape so the receiving side can validate the payload
*before* allocating from it.

Every fault surfaces as a structured payload carrying a stable
diagnostic code (see :mod:`repro.diagnostics`):

========= ============================================================
status     meaning
========= ============================================================
``ok``     the request was served; results attached
``error``  the request was admitted but failed (``E2xx``/``R805``/V-codes)
``rejected`` admission control refused it fast (``R806``–``R808``) —
           the 429 of this protocol; ``retry_after`` says when to come back
========= ============================================================
"""

from __future__ import annotations

import base64
import json
import math
from typing import Any, Dict, IO, Optional

import numpy as np

from repro.diagnostics import DiagnosticError, Severity, make_diagnostic

#: Protocol schema version; servers reject mismatched clients with E202.
PROTOCOL_VERSION = 1

#: Upper bound on one serialized message; oversized requests are a
#: denial-of-service vector, not a workload.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Operations a client may request.
OPS = ("ping", "stats", "metrics", "compile", "execute", "shutdown")


class ProtocolError(DiagnosticError):
    """Malformed or oversized message (code ``E202``)."""

    def __init__(self, message: str, code: str = "E202"):
        super().__init__(make_diagnostic(code, message, Severity.ERROR))


# ---------------------------------------------------------------- arrays
def encode_array(arr: np.ndarray) -> Dict[str, Any]:
    """JSON-safe encoding of one ndarray (dtype ‖ shape ‖ raw buffer)."""
    arr = np.asarray(arr)
    # NB: ascontiguousarray promotes 0-d to shape (1,); keep arr.shape.
    contiguous = np.ascontiguousarray(arr)
    return {
        "dtype": str(contiguous.dtype),
        "shape": list(arr.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(obj: Any) -> np.ndarray:
    """Decode and *validate* one array payload.

    The byte count must match dtype x shape exactly — a short buffer
    must never materialize as an array that reads out of bounds.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(f"array payload must be an object, got {type(obj).__name__}")
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(d) for d in obj["shape"])
        raw = base64.b64decode(obj["data"])
    except (KeyError, TypeError, ValueError) as err:
        raise ProtocolError(f"malformed array payload: {err}") from err
    if any(d < 0 for d in shape):
        raise ProtocolError(f"negative dimension in array shape {shape}")
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
    if len(raw) != expected:
        raise ProtocolError(
            f"array payload size mismatch: {len(raw)} bytes for "
            f"dtype {dtype} shape {shape} (expected {expected})"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def encode_arrays(arrays: Dict[str, np.ndarray]) -> Dict[str, Any]:
    return {name: encode_array(arr) for name, arr in arrays.items()}


def decode_arrays(obj: Any) -> Dict[str, np.ndarray]:
    if not isinstance(obj, dict):
        raise ProtocolError("'arrays' must be an object of name -> payload")
    return {str(name): decode_array(payload) for name, payload in obj.items()}


def decode_symbols(obj: Any) -> Dict[str, int]:
    if obj is None:
        return {}
    if not isinstance(obj, dict):
        raise ProtocolError("'symbols' must be an object of name -> int")
    out = {}
    for name, value in obj.items():
        try:
            out[str(name)] = int(value)
        except (TypeError, ValueError) as err:
            raise ProtocolError(f"symbol {name!r} is not an integer: {value!r}") from err
    return out


# --------------------------------------------------------------- framing
def send_message(stream: IO[str], obj: Dict[str, Any]) -> None:
    """Write one message (compact JSON + newline) and flush."""
    line = json.dumps(obj, separators=(",", ":"), sort_keys=True)
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds limit of {MAX_MESSAGE_BYTES}"
        )
    stream.write(line)
    stream.write("\n")
    stream.flush()


def recv_message(stream: IO[str]) -> Optional[Dict[str, Any]]:
    """Read one message; None on clean EOF; ``ProtocolError`` on junk."""
    line = stream.readline(MAX_MESSAGE_BYTES + 2)
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"incoming message exceeds limit of {MAX_MESSAGE_BYTES} bytes"
        )
    line = line.strip()
    if not line:
        return None
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as err:
        raise ProtocolError(f"message is not valid JSON: {err}") from err
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# -------------------------------------------------------------- payloads
def ok_response(**fields: Any) -> Dict[str, Any]:
    payload = {"status": "ok", "v": PROTOCOL_VERSION}
    payload.update(fields)
    return payload


def error_response(code: str, message: str, **fields: Any) -> Dict[str, Any]:
    payload = {
        "status": "error",
        "v": PROTOCOL_VERSION,
        "code": code,
        "message": message,
    }
    payload.update(fields)
    return payload


def rejected_response(
    code: str, message: str, retry_after: Optional[float] = None, **fields: Any
) -> Dict[str, Any]:
    """Fast admission rejection — the service-level 429."""
    payload = {
        "status": "rejected",
        "v": PROTOCOL_VERSION,
        "code": code,
        "message": message,
    }
    if retry_after is not None:
        payload["retry_after"] = round(float(retry_after), 6)
    payload.update(fields)
    return payload


def validate_request(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Shape-check an incoming request; raises ``ProtocolError``."""
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    if obj.get("v", PROTOCOL_VERSION) != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: client v{obj.get('v')}, "
            f"server v{PROTOCOL_VERSION}"
        )
    tenant = obj.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 128:
        raise ProtocolError(f"invalid tenant {tenant!r}")
    if op in ("compile", "execute"):
        if obj.get("sdfg") is None and not obj.get("program"):
            raise ProtocolError(f"{op} request needs 'sdfg' and/or 'program'")
        if obj.get("sdfg") is not None and not isinstance(obj["sdfg"], dict):
            raise ProtocolError("'sdfg' must be a serialized SDFG object")
        backend = obj.get("backend", "python")
        if backend not in ("python", "cpp", "interpreter"):
            raise ProtocolError(f"unknown backend {backend!r}")
        deadline = obj.get("deadline")
        if deadline is not None:
            # NaN/Infinity must be rejected here: json.loads accepts
            # them, NaN compares False against everything (so a plain
            # `<= 0` check passes it), and a NaN timeout downstream
            # blows up select() after a worker was already checked out.
            try:
                value = float(deadline)
                if not math.isfinite(value) or value <= 0:
                    raise ValueError
            except (TypeError, ValueError):
                raise ProtocolError(f"invalid deadline {deadline!r}") from None
        sanitize = obj.get("sanitize")
        if sanitize not in (None, False, True, "raise", "collect"):
            raise ProtocolError(f"invalid sanitize mode {sanitize!r}")
    return obj
