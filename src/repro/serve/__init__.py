"""Fault-tolerant multi-tenant compile-and-execute service.

The SDFG model's promise is *compile once, invoke many times* — which
only pays off operationally if the runtime that holds the warm programs
survives hostile inputs, crashing generated code, and concurrent load.
This package turns every prior subsystem into a supervised service
component:

* :mod:`repro.serve.protocol` — newline-delimited JSON over a local
  socket, arrays as base64-encoded buffers, structured diagnostic codes
  on every error (``E202``/``E203``/``R806``–``R808``).
* :mod:`repro.serve.worker` — the persistent worker process: compiles
  and executes SDFGs in-process (it *is* the crash-isolation boundary,
  generalizing the spawn-per-call harness of
  :mod:`repro.runtime.isolation` to a warm pool), keeping per-tenant
  program caches hot across requests.
* :mod:`repro.serve.pool` — the supervisor: spawn/health-check/recycle
  workers, contain SIGSEGV/OOM death, respawn and replay the victim
  request with jittered backoff.
* :mod:`repro.serve.admission` — per-tenant admission control: max
  in-flight, rolling deadline budgets, circuit breakers with
  single-probe half-open semantics, and load shedding that degrades
  sanitize/instrumentation and backend tiers before failing anyone.
* :mod:`repro.serve.daemon` — the long-lived server
  (``python -m repro.serve``) gluing the above together.
* :mod:`repro.serve.client` — a minimal blocking client.
* :mod:`repro.serve.loadtest` — the mixed cold/warm load driver used by
  CI and ``benchmarks/test_serve_bench.py`` (writes ``BENCH_serve.json``).
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    LoadShedder,
    TenantPolicy,
)
from repro.serve.client import ServeClient
from repro.serve.daemon import SDFGServer, ServeConfig
from repro.serve.pool import WorkerPool

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "LoadShedder",
    "TenantPolicy",
    "ServeClient",
    "SDFGServer",
    "ServeConfig",
    "WorkerPool",
]
