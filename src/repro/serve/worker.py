"""The persistent service worker (``python -m repro.serve.worker``).

One worker is one long-lived process owning the *unsafe* half of the
service: it validates, compiles, and executes tenant SDFGs **in
process** — it is the crash-isolation boundary, generalizing the
spawn-per-call harness of :mod:`repro.runtime.isolation` into a warm
pool member.  If generated code segfaults, the worker dies and the pool
supervisor (:mod:`repro.serve.pool`) respawns it and replays the
request; the daemon never executes tenant code itself.

Because the worker survives across requests it keeps state the
spawn-per-call harness could not:

* an LRU of fully-built :class:`~repro.codegen.compiler.CompiledSDFG`
  artifacts keyed by ``(content_hash, backend, tenant, sanitize)`` — a
  warm execute skips compile *and* ``exec`` *and* argument re-validation
  (the marshaling plan lives on the artifact);
* per-tenant :class:`~repro.codegen.progcache.ProgramCache` tiers
  (disk-backed under ``--cache-root``) so a recycled worker's
  replacement warms up from disk instead of from scratch.

Protocol: JSON lines on stdin/stdout (see :mod:`repro.serve.protocol`).
The worker re-points ``sys.stdout`` at stderr right after startup so a
stray ``print`` in tasklet code can never corrupt the protocol stream.

Fault injection (``inject_fault`` request field) is honored only when
the supervisor sets ``REPRO_SERVE_FAULT_INJECTION=1`` — it exists so the
fault-tolerance suite and the CI load test can force genuine worker
deaths (``SIGSEGV``) and hangs without depending on a host C++ compiler.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, TextIO

from repro.chaos import ChaosFault, faultpoint
from repro.diagnostics import DiagnosticError
from repro.serve import protocol
from repro.telemetry.sink import active_sink

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

#: Max fully-built artifacts kept hot in one worker.
MAX_PROGRAMS = 32


def _rss_kb() -> Optional[int]:
    """Peak resident set size in KiB (None where unavailable), including
    any live parallel-tier fork workers this process spawned — they are
    separate processes the supervisor's recycling budget would otherwise
    never see."""
    if resource is None:
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    rss = int(usage // 1024) if sys.platform == "darwin" else int(usage)
    from repro.runtime.parallel import live_pool_rss_kb

    return rss + live_pool_rss_kb()


def fault_injection_enabled() -> bool:
    return os.environ.get("REPRO_SERVE_FAULT_INJECTION", "").strip().lower() in (
        "1", "true", "on", "yes",
    )


class WorkerRuntime:
    """Request dispatcher holding the warm state of one worker."""

    def __init__(self, cache_root: Optional[str] = None):
        self.cache_root = cache_root
        #: (content_hash, backend, tenant, sanitize) -> CompiledSDFG
        self._programs: "OrderedDict[tuple, Any]" = OrderedDict()
        self._mem_caches: Dict[str, Any] = {}
        self.served = 0
        self.started = time.monotonic()
        #: Drain cursor into this process's telemetry sink (the delta
        #: since the last response is attached to the next one).
        self._telemetry_cursor = 0

    # ----------------------------------------------------------- caches
    def _tenant_cache(self, tenant: str):
        from repro.codegen.progcache import ProgramCache, namespaced_cache

        if self.cache_root:
            return namespaced_cache(self.cache_root, tenant)
        cache = self._mem_caches.get(tenant)
        if cache is None:
            cache = self._mem_caches[tenant] = ProgramCache()
        return cache

    def _remember(self, key: tuple, compiled: Any) -> None:
        self._programs[key] = compiled
        self._programs.move_to_end(key)
        while len(self._programs) > MAX_PROGRAMS:
            _, evicted = self._programs.popitem(last=False)
            # The artifact may own a parallel worker pool; eviction is
            # the end of its life here, so tear the pool down instead of
            # leaking threads/fork children until GC gets around to it.
            try:
                evicted.close()
            except Exception:  # noqa: BLE001 - eviction must not fail a request
                pass

    # ---------------------------------------------------------- faults
    @staticmethod
    def _maybe_inject_fault(job: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        fault = job.get("inject_fault")
        if not fault:
            return None
        if not fault_injection_enabled():
            return protocol.error_response(
                "E202",
                "fault injection requested but REPRO_SERVE_FAULT_INJECTION "
                "is not set on this worker",
            )
        if fault == "segv":
            # A genuine fatal signal: the same death mode as a wild
            # pointer in generated native code.
            os.kill(os.getpid(), signal.SIGSEGV)
        elif fault == "exit":
            os._exit(70)
        elif fault == "hang":
            time.sleep(float(job.get("hang_seconds", 3600.0)))
        return protocol.error_response("E202", f"unknown inject_fault {fault!r}")

    # --------------------------------------------------------- handlers
    def handle(self, job: Dict[str, Any]) -> Dict[str, Any]:
        op = job.get("op")
        if op == "ping":
            from repro.runtime.parallel import live_pool_count, live_worker_pids

            return protocol.ok_response(
                op="pong", served=self.served, rss_kb=_rss_kb(),
                uptime=round(time.monotonic() - self.started, 6),
                pools=live_pool_count(),
                pool_workers=len(live_worker_pids()),
            )
        if op == "shutdown":
            return protocol.ok_response(op="shutdown")
        if op in ("compile", "execute"):
            injected = self._maybe_inject_fault(job)
            if injected is not None:
                return injected
            try:
                response = self._compile_or_execute(job)
            except DiagnosticError as err:
                response = protocol.error_response(
                    err.code, str(err), op=op, served=self.served, rss_kb=_rss_kb()
                )
            except (TypeError, ValueError, KeyError) as err:
                # Bad arguments / malformed SDFG JSON: the request is at
                # fault, not the worker.
                response = protocol.error_response(
                    "E202", f"{type(err).__name__}: {err}", op=op,
                    served=self.served, rss_kb=_rss_kb(),
                )
            except Exception as err:  # noqa: BLE001 - the worker must not die quietly
                response = protocol.error_response(
                    "E204", f"{type(err).__name__}: {err}", op=op,
                    served=self.served, rss_kb=_rss_kb(),
                )
            return self._attach_telemetry(response)
        return protocol.error_response("E202", f"unknown worker op {op!r}")

    def _attach_telemetry(self, response: Dict[str, Any]) -> Dict[str, Any]:
        """Attach this process's telemetry delta to the response so the
        supervisor can republish it into the fleet sink."""
        sink = active_sink()
        if sink is None:
            return response
        events, self._telemetry_cursor, dropped = sink.drain(
            self._telemetry_cursor
        )
        if events:
            response["telemetry"] = [ev.to_json() for ev in events]
        if dropped:
            response["telemetry_dropped"] = dropped
        return response

    def _compile_or_execute(self, job: Dict[str, Any]) -> Dict[str, Any]:
        from repro.codegen.compiler import compile_sdfg
        from repro.sdfg.serialize import content_hash, sdfg_from_json

        op = job["op"]
        tenant = str(job.get("tenant", "default"))
        backend = job.get("backend", "python")
        sanitize = job.get("sanitize") or None
        if sanitize is True:
            sanitize = "raise"
        from repro.runtime.parallel import ParallelConfig

        parallel = ParallelConfig.parse(job.get("parallel"))

        sdfg_json = job.get("sdfg")
        program = job.get("program")
        if program is None and sdfg_json is None:
            return protocol.error_response("E202", "request carries neither 'sdfg' nor 'program'")

        sdfg = None
        if program is None:
            sdfg = sdfg_from_json(sdfg_json)
            program = content_hash(sdfg)
        key = (
            program,
            backend,
            tenant,
            sanitize or "",
            parallel.key_fragment() if parallel is not None else "",
        )

        compiled = self._programs.get(key)
        warm = compiled is not None
        sink = active_sink()
        if sink is not None:
            sink.publish("cache", "artifacts",
                         fields={"event": "hit" if warm else "miss", "n": 1})
        if warm:
            self._programs.move_to_end(key)
        else:
            if sdfg is None and sdfg_json is None:
                # Execute-by-key from a client whose compile landed on a
                # different (or recycled) worker: ask it to resend.
                return protocol.error_response(
                    "E203",
                    f"program {program[:16]}… is not resident in this worker; "
                    "resend the request with the 'sdfg' body",
                    program=program,
                )
            if sdfg is None:
                sdfg = sdfg_from_json(sdfg_json)
            compiled = compile_sdfg(
                sdfg,
                backend=backend,
                cache=self._tenant_cache(tenant),
                sanitize=sanitize,
                isolate=False,  # this worker IS the isolation boundary
                cache_namespace=tenant,
                # An explicit request field wins (including an explicit
                # "off"); absent, the worker's REPRO_PARALLEL applies.
                parallel=(parallel or False) if "parallel" in job else None,
            )
            self._remember(key, compiled)

        self.served += 1
        base = dict(
            op=op,
            program=program,
            warm=warm,
            cache_hit=bool(getattr(compiled, "cache_hit", False)),
            backend=compiled.backend,
            served=self.served,
            rss_kb=_rss_kb(),
        )
        if op == "compile":
            return protocol.ok_response(**base)

        arrays = protocol.decode_arrays(job.get("arrays") or {})
        symbols = protocol.decode_symbols(job.get("symbols"))
        deadline = job.get("deadline")
        compiled.deadline = float(deadline) if deadline else None
        budget = job.get("memory_budget")
        compiled.memory_budget = int(budget) if budget else None
        compiled.sanitize = sanitize

        start = time.perf_counter()
        compiled(**arrays, **symbols)
        runtime = time.perf_counter() - start

        if sink is not None:
            kernel = getattr(getattr(compiled, "sdfg", None), "name", None)
            sink.publish(
                "kernel", kernel or str(program)[:16], runtime,
                fields={"backend": compiled.backend, "warm": warm,
                        "tenant": tenant},
            )
            # Exemplar trace: ship the full instrumentation tree so the
            # aggregator can retain the slowest request per window.
            report = getattr(compiled, "last_report", None)
            if report is not None and not report.is_empty():
                sink.publish(
                    "trace", kernel or str(program)[:16], runtime,
                    fields={"report": report.to_json(), "tenant": tenant,
                            "backend": compiled.backend},
                )

        findings = [
            f.to_json() if hasattr(f, "to_json") else str(f)
            for f in (compiled.last_findings or [])
        ]
        return protocol.ok_response(
            arrays=protocol.encode_arrays(arrays),
            runtime=round(runtime, 9),
            degradation=[
                {k: v for k, v in hop.items() if k != "message"}
                for hop in compiled.degradation
            ],
            findings=findings,
            **dict(base, backend=compiled.backend),
        )


# =====================================================================
# Entry point
# =====================================================================


def send_response(proto_out: TextIO, job: Dict[str, Any],
                  response: Dict[str, Any]) -> None:
    """Send one response, never letting an oversized payload kill us.

    A result can legitimately exceed ``MAX_MESSAGE_BYTES`` even when the
    request did not (e.g. a slim execute-by-program request whose output
    arrays inflate past the frame cap).  Dying here would make the
    supervisor replay the identical request into an identical death —
    answer with a compact structured error instead.
    """
    if "id" in job:
        response["id"] = job["id"]
    # Dying while writing a response is a real worker death mode (the
    # supervisor sees EOF, bundles, respawns, replays) — let kill/exit/
    # raise rules here propagate rather than answering structurally.
    faultpoint("worker.response_write", op=job.get("op"))
    try:
        protocol.send_message(proto_out, response)
    except protocol.ProtocolError as err:
        fallback = protocol.error_response(
            "E204",
            f"response for op {job.get('op')!r} exceeds the protocol frame "
            f"limit and was dropped ({err}); reduce the request's output "
            "size",
            op=job.get("op"),
            rss_kb=_rss_kb(),
        )
        if "id" in job:
            fallback["id"] = job["id"]
        protocol.send_message(proto_out, fallback)


def _protect_protocol_stream() -> TextIO:
    """Claim fd 1 for the protocol; stray prints go to stderr."""
    proto = os.fdopen(os.dup(1), "w", encoding="utf-8", newline="\n")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    return proto


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.worker",
        description="repro service worker (spawned by the pool supervisor)",
    )
    parser.add_argument("--cache-root", default=None,
                        help="root directory for per-tenant disk program caches")
    args = parser.parse_args(argv)

    proto_out = _protect_protocol_stream()
    runtime = WorkerRuntime(cache_root=args.cache_root)
    protocol.send_message(proto_out, {"ready": True, "pid": os.getpid()})

    stdin = sys.stdin
    while True:
        try:
            job = protocol.recv_message(stdin)
        except protocol.ProtocolError as err:
            protocol.send_message(
                proto_out, protocol.error_response(err.code, str(err))
            )
            continue
        if job is None:  # supervisor closed our stdin: clean retirement
            return 0
        try:
            # `kill`/`exit` rules die here (mid-request worker death,
            # contained by the supervisor); `raise`/`raise-io`/`delay`
            # surface as a structured error on the live worker.
            faultpoint("worker.request", op=job.get("op"))
        except (ChaosFault, OSError) as err:
            send_response(
                proto_out, job,
                protocol.error_response(
                    "E204", f"injected fault on request receipt: {err}",
                    op=job.get("op"),
                ),
            )
            continue
        response = runtime.handle(job)
        send_response(proto_out, job, response)
        if job.get("op") == "shutdown":
            return 0


if __name__ == "__main__":
    raise SystemExit(main())
