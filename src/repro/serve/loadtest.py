"""Load / fault-tolerance driver for the service (CI + benchmarks).

Drives an :class:`~repro.serve.daemon.SDFGServer` — embedded by default,
or an already-running one via ``--socket`` — with a mix of:

* **warm** requests: every thread executes the same scale kernel, so all
  but the first hit per worker are served from the warm artifact LRU;
* **cold** requests: each one a never-seen-before program (distinct
  tasklet constant), forcing the full validate→compile→execute path;
* **fault** requests (optional): ``inject_fault: segv`` from a dedicated
  tenant, killing a pool worker mid-request;
* **deadline** requests (optional): an unbounded interstate loop from a
  dedicated tenant, which only the cooperative watchdog can end.

The run *fails* (nonzero exit) if any healthy request fails, if a fault
escapes its tenant, or if the daemon stops answering pings.  Latency
percentiles land in ``BENCH_serve.json``-style output.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.serve.client import ServeClient, ServeTimeout


# ------------------------------------------------------------- kernels
def scale_sdfg(mult: float = 2.0, name: str = "serve_scale", work: int = 1):
    """``A[i] *= mult`` — the workhorse request kernel.

    ``work > 1`` pads the tasklet with value-preserving ``b = b * 1.0``
    statements: the result is unchanged (drivers still verify
    ``a * mult``), but each element costs ``work`` multiplies.  The CI
    telemetry job uses this to inject a genuine slowdown that the
    perf-drift detector must catch.  (Statements, not one long
    expression — a deep BinOp chain would overflow the interpreter's
    recursion limit.)
    """
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG(name)
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state()
    code = f"b = a * {float(mult)!r}"
    code += "\nb = b * 1.0" * max(0, int(work) - 1)
    st.add_mapped_tasklet(
        "s",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code=code,
        outputs={"b": Memlet.simple("A", "i")},
    )
    return sdfg


def runaway_sdfg():
    """An interstate loop that never advances: only a watchdog deadline
    (R805) can end it."""
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG("serve_runaway")
    sdfg.add_array("A", ("N",), dtypes.float64)
    body = sdfg.add_state("body")
    body.add_mapped_tasklet(
        "touch",
        {"k": "0:1"},
        inputs={"a": Memlet.simple("A", "0")},
        code="b = a + 1.0",
        outputs={"b": Memlet.simple("A", "0")},
    )
    before = sdfg.add_state("init", is_start=True)
    sdfg.add_loop(before, body, None, "it", 0, "it < N", "it")  # it never grows
    return sdfg


def percentile(samples: List[float], q: float) -> Optional[float]:
    if not samples:
        return None
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


# ------------------------------------------------------------ the drive
class LoadtestResult:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.records: List[Dict[str, Any]] = []
        self.failures: List[str] = []

    def add(self, kind: str, tenant: str, status: str, code: Optional[str],
            latency: float, **extra: Any) -> None:
        with self.lock:
            self.records.append(
                {"kind": kind, "tenant": tenant, "status": status,
                 "code": code, "latency": latency, **extra}
            )

    def fail(self, message: str) -> None:
        with self.lock:
            self.failures.append(message)


def _drive_thread(
    index: int,
    connect,
    plan: List[Dict[str, Any]],
    result: LoadtestResult,
    chaos: bool = False,
) -> None:
    try:
        client = connect()
    except OSError as err:
        result.fail(f"thread {index}: could not connect: {err}")
        return
    rng = np.random.default_rng(1000 + index)
    with client:
        for step in plan:
            kind = step["kind"]
            tenant = step["tenant"]
            start = time.monotonic()
            try:
                if kind in ("warm", "cold"):
                    n = int(step.get("n", 64))
                    a = rng.random(n)
                    expect = a * step["mult"]
                    resp = client.execute(
                        step["sdfg"], arrays={"A": a}, symbols={"N": n},
                        tenant=tenant, strict=False, deadline=20.0,
                    )
                    if resp.get("status") != "ok":
                        # Under a chaos schedule structured failures are
                        # *expected*; the invariant is that every answer
                        # is structured (has a code), and every ok
                        # answer is numerically correct.
                        if not (chaos and resp.get("code")):
                            result.fail(
                                f"{kind} request for {tenant} failed: "
                                f"{resp.get('code')} {resp.get('message')}"
                            )
                    elif not np.allclose(resp["arrays"]["A"], expect):
                        result.fail(f"{kind} request for {tenant}: wrong results")
                elif kind == "fault":
                    resp = client.execute(
                        step["sdfg"], arrays={}, symbols={"N": 1},
                        tenant=tenant, strict=False, deadline=10.0,
                        inject_fault="segv",
                    )
                    if resp.get("status") == "ok":
                        result.fail(
                            f"fault request for {tenant} reported ok; "
                            "the injected crash was lost"
                        )
                elif kind == "deadline":
                    resp = client.execute(
                        step["sdfg"], arrays={"A": np.zeros(4)},
                        symbols={"N": 4}, tenant=tenant, strict=False,
                        deadline=step.get("deadline", 0.5),
                    )
                    if resp.get("status") == "ok":
                        result.fail(
                            f"deadline request for {tenant} reported ok; "
                            "the watchdog never fired"
                        )
                else:  # pragma: no cover - defensive
                    continue
            except ServeTimeout as err:
                # The client-side deadline is the hang detector: a
                # request the daemon never answered is always a failure,
                # chaos schedule or not.
                result.fail(f"{kind} request for {tenant}: {err}")
                return
            except (OSError, ConnectionError) as err:
                result.fail(f"{kind} request for {tenant}: connection died: {err}")
                return
            result.add(
                kind, tenant, resp.get("status", "error"),
                resp.get("code"), time.monotonic() - start,
                kernel=step.get("kernel"),
                runtime=resp.get("runtime"),
                warm=resp.get("warm"),
                cache_hit=resp.get("cache_hit"),
                shed=bool(resp.get("shed")),
            )


def run_loadtest(
    socket_path: Optional[str] = None,
    requests: int = 200,
    threads: int = 4,
    tenants: tuple = ("alice", "bob"),
    cold_every: int = 10,
    faults: int = 0,
    fault_tenant: str = "mallory",
    deadline_faults: int = 0,
    deadline_tenant: str = "slowpoke",
    workers: int = 2,
    warm_n: int = 64,
    warm_work: int = 1,
    output: Optional[str] = None,
    chaos: bool = False,
    read_timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Run the drive; returns the report dict (see module docstring)."""
    server = None
    if socket_path is None:
        from repro.runtime.watchdog import RetryPolicy
        from repro.serve.admission import TenantPolicy
        from repro.serve.daemon import SDFGServer, ServeConfig

        server = SDFGServer(ServeConfig(
            workers=workers,
            fault_injection=faults > 0,
            default_policy=TenantPolicy(
                max_inflight=max(8, threads * 2),
                breaker_threshold=3,
                breaker_cooldown=5.0,
            ),
            retry=RetryPolicy(retries=1, backoff=0.02, jitter=0.5),
        )).start()
        socket_path = server.config.socket_path

    result = LoadtestResult()
    try:
        # Build the request plans up front so threads stay in lockstep
        # with nothing but the service between them and the answer.
        warm = {
            t: scale_sdfg(2.0, name=f"warm_{t}", work=warm_work).to_json()
            for t in tenants
        }
        hog = runaway_sdfg().to_json() if deadline_faults else None
        crash = scale_sdfg(3.0, name="crash_vehicle").to_json() if faults else None
        cold_ids = itertools.count(1)

        plans: List[List[Dict[str, Any]]] = [[] for _ in range(threads)]
        for i in range(requests):
            tenant = tenants[i % len(tenants)]
            if cold_every and i % cold_every == cold_every - 1:
                k = next(cold_ids)
                mult = 1.0 + (k % 97) / 97.0
                step = {
                    "kind": "cold", "tenant": tenant, "mult": mult,
                    "kernel": f"cold_{k}",
                    "sdfg": scale_sdfg(mult, name=f"cold_{k}").to_json(),
                }
            else:
                step = {"kind": "warm", "tenant": tenant, "mult": 2.0,
                        "kernel": f"warm_{tenant}", "n": warm_n,
                        "sdfg": warm[tenant]}
            plans[i % threads].append(step)
        # Faults interleave with healthy traffic: insert mid-plan so the
        # pool takes hits while warm requests are in flight.
        for j in range(faults):
            plan = plans[j % threads]
            plan.insert(len(plan) // 2,
                        {"kind": "fault", "tenant": fault_tenant, "sdfg": crash})
        for j in range(deadline_faults):
            plan = plans[j % threads]
            plan.insert(len(plan) // 2,
                        {"kind": "deadline", "tenant": deadline_tenant,
                         "sdfg": hog, "deadline": 0.5})

        connect = lambda: ServeClient(  # noqa: E731
            socket_path=socket_path, read_timeout=read_timeout)
        started = time.monotonic()
        pool = [
            threading.Thread(target=_drive_thread,
                             args=(i, connect, plans[i], result, chaos),
                             daemon=True)
            for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=600.0)
            if t.is_alive():
                result.fail("driver thread hung")
        wall = time.monotonic() - started

        # The daemon must still be alive and answering.
        stats: Dict[str, Any] = {}
        try:
            with connect() as probe:
                pong = probe.ping()
                if pong.get("status") != "ok":
                    result.fail(f"post-run ping failed: {pong}")
                stats = probe.stats()
        except (OSError, ConnectionError) as err:
            result.fail(f"daemon unreachable after the run: {err}")
    finally:
        if server is not None:
            server.stop()

    by_kind: Dict[str, List[float]] = {}
    for rec in result.records:
        by_kind.setdefault(rec["kind"], []).append(rec["latency"])
    healthy = [r for r in result.records if r["kind"] in ("warm", "cold")]

    # Per-kernel worker-reported runtimes (the execute wall clock inside
    # the worker, i.e. the same measurement the telemetry aggregator
    # windows) — these are the baseline fields `repro.telemetry check`
    # compares live traffic against.  One-shot cold kernels are omitted:
    # a single sample is not a baseline.
    by_kernel: Dict[str, List[float]] = {}
    for rec in healthy:
        if rec["status"] == "ok" and rec.get("kernel") and rec.get("runtime") is not None:
            by_kernel.setdefault(rec["kernel"], []).append(float(rec["runtime"]))
    kernels = {
        name: {
            "count": len(samples),
            "mean": sum(samples) / len(samples),
            "p50": percentile(samples, 50),
            "p95": percentile(samples, 95),
            "p99": percentile(samples, 99),
        }
        for name, samples in sorted(by_kernel.items())
        if len(samples) >= 2
    }
    artifact_hits = sum(1 for r in healthy if r.get("warm"))
    progcache_hits = sum(1 for r in healthy if r.get("cache_hit"))
    report = {
        "bench": "serve",
        "requests": len(result.records),
        "threads": threads,
        "workers": workers,
        "wall_seconds": round(wall, 6),
        "throughput_rps": round(len(result.records) / wall, 3) if wall else None,
        "healthy": {
            "total": len(healthy),
            "ok": sum(1 for r in healthy if r["status"] == "ok"),
            "errors": sum(1 for r in healthy if r["status"] == "error"),
            "rejected": sum(1 for r in healthy if r["status"] == "rejected"),
            "shed": sum(1 for r in healthy if r.get("shed")),
        },
        "cache": {
            "artifact_hits": artifact_hits,
            "artifact_hit_rate": (
                round(artifact_hits / len(healthy), 6) if healthy else None
            ),
            "progcache_hits": progcache_hits,
        },
        "kernels": kernels,
        "faults": {
            "injected": faults,
            "deadline": deadline_faults,
            "codes": sorted(
                {r["code"] for r in result.records
                 if r["kind"] in ("fault", "deadline") and r["code"]}
            ),
        },
        "latency": {
            kind: {
                "count": len(samples),
                "p50": percentile(samples, 50),
                "p99": percentile(samples, 99),
                "max": max(samples),
            }
            for kind, samples in sorted(by_kind.items())
        },
        "pool": (stats or {}).get("pool"),
        "admission": (stats or {}).get("admission"),
        "failures": result.failures,
        "passed": not result.failures,
    }
    if output:
        with open(output, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
    return report


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadtest",
        description="drive the compile-and-execute service with mixed load",
    )
    parser.add_argument("--socket", default=None,
                        help="target an already-running daemon (default: embed one)")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size for the embedded daemon")
    parser.add_argument("--cold-every", type=int, default=10,
                        help="every Nth request is a never-seen program")
    parser.add_argument("--faults", type=int, default=0,
                        help="forced-SIGSEGV requests from tenant 'mallory'")
    parser.add_argument("--deadline-faults", type=int, default=0,
                        help="runaway-loop requests from tenant 'slowpoke'")
    parser.add_argument("--warm-n", type=int, default=64, metavar="N",
                        help="array size of the warm kernels (default 64)")
    parser.add_argument("--warm-work", type=int, default=1, metavar="W",
                        help="value-preserving work multiplier inside the "
                             "warm kernels (default 1; CI uses this to "
                             "inject a slowdown)")
    parser.add_argument("--output", default=None, metavar="JSON",
                        help="write the report here (BENCH_serve.json)")
    args = parser.parse_args(argv)

    report = run_loadtest(
        socket_path=args.socket,
        requests=args.requests,
        threads=args.threads,
        workers=args.workers,
        cold_every=args.cold_every,
        faults=args.faults,
        deadline_faults=args.deadline_faults,
        warm_n=args.warm_n,
        warm_work=args.warm_work,
        output=args.output,
    )
    summary = {k: report[k] for k in
               ("requests", "wall_seconds", "throughput_rps", "healthy",
                "cache", "kernels", "faults", "latency", "passed")}
    print(json.dumps(summary, indent=2, sort_keys=True))
    if not report["passed"]:
        for failure in report["failures"][:20]:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
