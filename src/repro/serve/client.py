"""Blocking client for the compile-and-execute service.

Usage::

    with ServeClient(socket_path="/tmp/repro.sock", tenant="alice") as c:
        c.compile(sdfg)                      # warm the service
        out = c.execute(sdfg, arrays={"A": a, "B": b}, symbols={"N": 64})
        a[:] = out["arrays"]["A"]            # results travel by value

The client is deliberately thin: one socket, one request in flight,
structured responses passed through verbatim.  The only smarts it has is
the ``E203`` dance — if an execute-by-key lands on a worker that does
not hold the program (fresh respawn, recycled worker), the client
transparently resends the request with the full SDFG body attached.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Dict, Optional

import numpy as np

from repro.serve import protocol


class ServeError(RuntimeError):
    """Raised by the strict helpers when the service reports a failure."""

    def __init__(self, response: Dict[str, Any]):
        self.response = response
        self.code = response.get("code")
        self.retry_after = response.get("retry_after")
        super().__init__(
            f"[{self.code or response.get('status')}] "
            f"{response.get('message', 'service request failed')}"
        )


class ServeTimeout(ServeError):
    """A client-side socket deadline expired (code ``E205``).

    The *request* may still be executing on the daemon — only this
    client gave up waiting — so the fault is retryable, but this
    connection is unusable (a late response would desynchronize the
    request/response pairing); open a fresh :class:`ServeClient`.
    """

    def __init__(self, phase: str, seconds: Optional[float]):
        bound = f"{seconds:g}s" if seconds is not None else "its"
        super().__init__({
            "status": "error",
            "code": "E205",
            "retryable": True,
            "message": f"client-side {phase} deadline of {bound} expired; "
                       "the daemon may still be processing the request",
        })


class ServeClient:
    """One connection to an :class:`~repro.serve.daemon.SDFGServer`."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        tcp: Optional[tuple] = None,
        tenant: str = "default",
        timeout: Optional[float] = 60.0,
        read_timeout: Optional[float] = None,
    ):
        """``timeout`` bounds the *connect*; ``read_timeout`` (default
        off) bounds each response wait, so a wedged daemon cannot block
        the caller forever — it raises a retryable ``E205``
        :class:`ServeTimeout` instead."""
        if (socket_path is None) == (tcp is None):
            raise ValueError("pass exactly one of socket_path= or tcp=")
        self.tenant = tenant
        self.read_timeout = read_timeout
        self._broken = False
        self._ids = itertools.count(1)
        try:
            if socket_path is not None:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(socket_path)
            else:
                self._sock = socket.create_connection(
                    (tcp[0], int(tcp[1])), timeout=timeout
                )
        except TimeoutError as err:
            raise ServeTimeout("connect", timeout) from err
        self._sock.settimeout(read_timeout)
        self._stream = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    # ------------------------------------------------------------ plumbing
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw request and block for its response."""
        if self._broken:
            raise ConnectionError(
                "connection unusable after a client-side timeout (E205); "
                "open a new ServeClient"
            )
        payload = dict(payload)
        payload.setdefault("v", protocol.PROTOCOL_VERSION)
        payload.setdefault("tenant", self.tenant)
        payload.setdefault("id", next(self._ids))
        try:
            protocol.send_message(self._stream, payload)
            response = protocol.recv_message(self._stream)
        except (socket.timeout, TimeoutError) as err:
            # A late response would pair with the *next* request; the
            # connection is done.
            self._broken = True
            raise ServeTimeout("read", self.read_timeout) from err
        if response is None:
            raise ConnectionError("server closed the connection")
        return response

    def close(self) -> None:
        try:
            self._stream.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ protocol
    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def metrics(self) -> Dict[str, Any]:
        """One telemetry aggregate snapshot (``metrics`` field of the
        response); errors when the server runs with telemetry off."""
        return self.request({"op": "metrics"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def _job(self, op: str, sdfg=None, **options: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": op}
        if sdfg is not None:
            payload["sdfg"] = (
                sdfg if isinstance(sdfg, dict) else sdfg.to_json()
            )
        for key, value in options.items():
            if value is not None:
                payload[key] = value
        return payload

    def compile(
        self,
        sdfg: Any,
        backend: str = "python",
        sanitize: Any = None,
        strict: bool = True,
        **options: Any,
    ) -> Dict[str, Any]:
        """Compile ``sdfg`` on the service; returns the response payload.

        The response's ``program`` field is the content hash — pass it as
        ``program=`` to :meth:`execute` to skip re-serializing the SDFG.
        """
        response = self.request(
            self._job("compile", sdfg, backend=backend, sanitize=sanitize,
                      **options)
        )
        if strict and response.get("status") != "ok":
            raise ServeError(response)
        return response

    def execute(
        self,
        sdfg: Any = None,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        symbols: Optional[Dict[str, int]] = None,
        program: Optional[str] = None,
        backend: str = "python",
        deadline: Optional[float] = None,
        sanitize: Any = None,
        strict: bool = True,
        decode: bool = True,
        **options: Any,
    ) -> Dict[str, Any]:
        """Execute on the service; arrays travel by value both ways.

        On ``E203`` (program not resident — e.g. the worker that compiled
        it died and was respawned) the request is resent once with the
        full SDFG body, provided ``sdfg`` was given.
        """
        payload = self._job(
            "execute",
            None if program else sdfg,
            program=program,
            backend=backend,
            deadline=deadline,
            sanitize=sanitize,
            arrays=protocol.encode_arrays(arrays or {}),
            symbols=symbols,
            **options,
        )
        response = self.request(payload)
        if response.get("code") == "E203" and sdfg is not None:
            resend = dict(payload)
            resend["sdfg"] = sdfg if isinstance(sdfg, dict) else sdfg.to_json()
            resend.pop("id", None)
            response = self.request(resend)
            response["resent"] = True
        if strict and response.get("status") != "ok":
            raise ServeError(response)
        if decode and response.get("status") == "ok" and "arrays" in response:
            response["arrays"] = protocol.decode_arrays(response["arrays"])
        return response
