"""Startup integrity sweep (``python -m repro.serve --fsck``).

A crash — real or injected — can leave three kinds of debris behind:

* **torn cache entries**: a disk cache file that is not valid JSON or
  whose recorded key does not match its filename (a write that died
  between ``open`` and ``os.replace``, or a corruption injected by the
  chaos layer).  These are *quarantined* (moved into a ``.quarantine/``
  sibling) rather than deleted, so a real incident keeps its evidence;
* **orphaned temp files**: ``*.tmp.<pid>`` staging files whose writer
  died before the atomic rename.  Removed;
* **stale crash bundles**: bundle directories missing their
  ``manifest.json`` (the writer died mid-bundle — quarantined), plus
  any overflow beyond the global retention cap (rotated away, oldest
  first).

The daemon runs the sweep in :meth:`SDFGServer.start` before accepting
traffic; the CLI flag runs it standalone and exits 0 when the trees
were already clean, 3 when repairs were made.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Any, Dict, Optional

from repro.runtime.isolation import crash_dir, crash_keep

#: Quarantine subdirectory name (skipped by subsequent sweeps).
QUARANTINE = ".quarantine"


def _quarantine(path: str, qdir: str) -> bool:
    """Move ``path`` into ``qdir`` under a collision-free name."""
    try:
        os.makedirs(qdir, exist_ok=True)
        base = os.path.basename(path.rstrip(os.sep))
        target = os.path.join(qdir, base)
        n = 0
        while os.path.exists(target):
            n += 1
            target = os.path.join(qdir, f"{base}.{n}")
        os.replace(path, target)
        return True
    except OSError:
        return False


def _entry_is_sound(path: str) -> bool:
    """A disk cache entry parses and self-identifies correctly."""
    key = os.path.basename(path)[: -len(".json")]
    try:
        with open(path) as f:
            entry = json.load(f)
    except (OSError, ValueError):
        return False
    return isinstance(entry, dict) and entry.get("key") == key


def sweep_cache_tree(root: str) -> Dict[str, int]:
    """Sweep one cache root (program and tuning caches share the entry
    conventions: one ``<key>.json`` per entry, ``*.tmp.<pid>`` staging
    files, atomic renames)."""
    report = {"scanned": 0, "quarantined": 0, "tmp_removed": 0}
    if not os.path.isdir(root):
        return report
    for dirpath, dirnames, filenames in os.walk(root):
        # Never descend into quarantine: debris there is already handled.
        dirnames[:] = [d for d in dirnames if d != QUARANTINE]
        qdir = os.path.join(dirpath, QUARANTINE)
        for name in filenames:
            path = os.path.join(dirpath, name)
            if ".tmp." in name:
                try:
                    os.remove(path)
                    report["tmp_removed"] += 1
                except OSError:
                    pass
                continue
            if not name.endswith(".json"):
                continue
            report["scanned"] += 1
            if not _entry_is_sound(path) and _quarantine(path, qdir):
                report["quarantined"] += 1
    return report


def sweep_crash_tree(root: str, keep: Optional[int] = None) -> Dict[str, int]:
    """Quarantine torn bundles; rotate overflow past the retention cap."""
    keep = crash_keep() if keep is None else max(1, int(keep))
    report = {"scanned": 0, "quarantined": 0, "rotated": 0}
    if not os.path.isdir(root):
        return report
    qdir = os.path.join(root, QUARANTINE)
    bundles = []
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return report
    for name in names:
        if name == QUARANTINE:
            continue
        path = os.path.join(root, name)
        if not os.path.isdir(path):
            continue
        report["scanned"] += 1
        if not os.path.isfile(os.path.join(path, "manifest.json")):
            if _quarantine(path, qdir):
                report["quarantined"] += 1
            continue
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            mtime = 0.0
        bundles.append((mtime, path))
    # Global cap across processes: the per-process rotation in
    # write_crash_bundle bounds steady-state growth; this bounds what a
    # fleet of dead pids left behind.
    bundles.sort()
    for _, path in bundles[: max(0, len(bundles) - keep)]:
        shutil.rmtree(path, ignore_errors=True)
        report["rotated"] += 1
    return report


def fsck_sweep(
    cache_root: Optional[str] = None,
    crash_root: Optional[str] = None,
    keep_bundles: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the full sweep; returns a report with ``clean`` = True when
    nothing needed fixing."""
    cache = sweep_cache_tree(cache_root) if cache_root else {
        "scanned": 0, "quarantined": 0, "tmp_removed": 0,
    }
    crash = sweep_crash_tree(crash_root or crash_dir(), keep=keep_bundles)
    repairs = (
        cache["quarantined"] + cache["tmp_removed"]
        + crash["quarantined"] + crash["rotated"]
    )
    return {
        "cache": cache,
        "crash": crash,
        "repairs": repairs,
        "clean": repairs == 0,
    }
