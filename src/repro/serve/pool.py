"""Crash-isolated warm worker pool (the service's supervisor).

PR 5's :mod:`repro.runtime.isolation` contains crashes by spawning one
subprocess *per call* — correct, but ~10ms of spawn plus a full
cold-compile per request.  The pool generalizes that model: a fixed set
of **persistent** workers (:mod:`repro.serve.worker`) each own warm
compiled programs, and the supervisor in this module owns their
lifecycle:

* **health checks** — a ready handshake at spawn, on-demand pings;
* **recycling** — a worker is gracefully retired after ``recycle_after``
  requests or once its reported RSS crosses ``memory_budget_kb``
  (long-lived processes executing tenant code leak; bounded lifetimes
  turn that from an outage into a blip);
* **crash containment** — a worker dying mid-request (SIGSEGV from
  generated code, OOM kill) is detected by stream EOF, a repro bundle
  (job manifest + worker stderr) is written under ``REPRO_CRASH_DIR``,
  the worker is respawned, and the request is **replayed** with the
  jittered :class:`~repro.runtime.watchdog.RetryPolicy` backoff —
  replay is always semantically safe because workers mutate their own
  copies of the request arrays;
* **hang containment** — a worker that blows through the request's
  wall-clock backstop is killed and the caller gets a structured
  ``R805`` error (no replay: deadline violations are not retryable).

The pool never raises for request-level faults — every outcome is a
protocol response payload, so a noisy tenant cannot take the dispatch
thread down with it.
"""

from __future__ import annotations

import json
import math
import os
import select
import subprocess
import sys
import tempfile
import threading
import time
from queue import Empty, Queue
from typing import Any, Dict, List, Optional

from repro.chaos import ChaosFault, faultpoint
from repro.runtime.isolation import (
    _repo_pythonpath,
    _unique_bundle_dir,
    crash_dir,
    rotate_crash_bundles,
)
from repro.runtime.watchdog import RetryPolicy
from repro.serve import protocol
from repro.telemetry.sink import TelemetryEvent, TelemetrySink

#: Seconds granted to a worker for its ready handshake.
DEFAULT_SPAWN_TIMEOUT = 30.0

#: Backstop applied when a request carries no deadline of its own.
DEFAULT_REQUEST_TIMEOUT = 120.0


class WorkerDeath(Exception):
    """The worker process died mid-request (contained; retryable)."""

    def __init__(self, message: str, returncode: Optional[int] = None,
                 stderr_tail: str = "", bundle: Optional[str] = None):
        super().__init__(message)
        self.returncode = returncode
        self.stderr_tail = stderr_tail
        self.bundle = bundle


class WorkerTimeout(Exception):
    """The worker blew the wall-clock backstop (killed; not retryable)."""


class WorkerHandle:
    """One supervised worker subprocess and its protocol streams."""

    _seq = 0

    def __init__(self, cache_root: Optional[str], fault_injection: bool,
                 spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT,
                 sink: Optional[TelemetrySink] = None):
        WorkerHandle._seq += 1
        self.name = f"worker-{WorkerHandle._seq}"
        self.served = 0
        self.rss_kb: Optional[int] = None
        self.sink = sink
        self._rbuf = bytearray()
        self._stderr_file = tempfile.NamedTemporaryFile(
            mode="w+b", prefix="repro_worker_", suffix=".stderr", delete=False
        )
        cmd = [sys.executable, "-m", "repro.serve.worker"]
        if cache_root:
            cmd += ["--cache-root", cache_root]
        env = os.environ.copy()
        env["PYTHONPATH"] = _repo_pythonpath()
        env["PYTHONUNBUFFERED"] = "1"
        # The worker is the isolation boundary: no nested per-call
        # subprocess harness inside it.
        env["REPRO_ISOLATE"] = "0"
        if sink is not None:
            # Workers collect into their own process-local ring and
            # attach the delta to each response, so the fleet sink sees
            # worker-side kernel timings and cache traffic.
            env["REPRO_TELEMETRY"] = "1"
        if fault_injection:
            env["REPRO_SERVE_FAULT_INJECTION"] = "1"
        else:
            env.pop("REPRO_SERVE_FAULT_INJECTION", None)
        self.proc = subprocess.Popen(
            cmd,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=self._stderr_file,
            bufsize=0,
            env=env,
        )
        try:
            # `kill` here SIGKILLs the fresh child (spawn-then-die);
            # `raise`/`raise-io` model fork/exec level failures.  Either
            # way the death is contained as a WorkerDeath.
            faultpoint("pool.worker_spawn", child=self.proc.pid,
                       worker=self.name)
            ready = self._read_message(time.monotonic() + spawn_timeout)
        except (ChaosFault, OSError) as err:
            self.kill()
            raise WorkerDeath(
                f"{self.name} spawn aborted: {err}",
                returncode=self.proc.poll(),
                stderr_tail=self.stderr_tail(),
            ) from err
        if not (isinstance(ready, dict) and ready.get("ready")):
            self.kill()
            raise WorkerDeath(
                f"{self.name} failed its ready handshake",
                returncode=self.proc.poll(),
                stderr_tail=self.stderr_tail(),
            )
        self.pid = ready.get("pid", self.proc.pid)

    # ------------------------------------------------------------ streams
    def _read_message(self, deadline: Optional[float]) -> Dict[str, Any]:
        """Read one protocol line with a wall-clock deadline."""
        fd = self.proc.stdout.fileno()
        while True:
            nl = self._rbuf.find(b"\n")
            if nl >= 0:
                line = bytes(self._rbuf[:nl])
                del self._rbuf[: nl + 1]
                if not line.strip():
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as err:
                    raise WorkerDeath(
                        f"{self.name} wrote junk on its protocol stream: {err}",
                        returncode=self.proc.poll(),
                        stderr_tail=self.stderr_tail(),
                    ) from err
                return obj
            if len(self._rbuf) > protocol.MAX_MESSAGE_BYTES:
                raise WorkerDeath(
                    f"{self.name} response exceeds the message size limit",
                    returncode=self.proc.poll(),
                    stderr_tail=self.stderr_tail(),
                )
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise WorkerTimeout(f"{self.name} exceeded the request backstop")
            readable, _, _ = select.select(
                [fd], [], [], min(remaining, 1.0) if remaining is not None else 1.0
            )
            if not readable:
                continue
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                raise WorkerDeath(
                    f"{self.name} died (EOF on protocol stream)",
                    returncode=self._exit_code(),
                    stderr_tail=self.stderr_tail(),
                )
            self._rbuf.extend(chunk)

    def request(self, job: Dict[str, Any], timeout: Optional[float]) -> Dict[str, Any]:
        """Send one job and await its response."""
        line = json.dumps(job, separators=(",", ":"), sort_keys=True) + "\n"
        try:
            self.proc.stdin.write(line.encode("utf-8"))
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as err:
            raise WorkerDeath(
                f"{self.name} died before accepting the request",
                returncode=self._exit_code(),
                stderr_tail=self.stderr_tail(),
            ) from err
        deadline = None if timeout is None else time.monotonic() + timeout
        resp = self._read_message(deadline)
        self.served = int(resp.get("served", self.served) or self.served)
        if resp.get("rss_kb") is not None:
            self.rss_kb = int(resp["rss_kb"])
        self._propagate_telemetry(resp)
        return resp

    def _propagate_telemetry(self, resp: Dict[str, Any]) -> None:
        """Republish the worker's attached telemetry delta (original
        timestamps preserved) into the supervisor's fleet sink."""
        events = resp.pop("telemetry", None)
        if self.sink is None or not isinstance(events, list):
            return
        for item in events:
            if not (isinstance(item, list) and len(item) == 5):
                continue
            ts, kind, label, value, fields = item
            try:
                self.sink.publish(
                    str(kind), str(label),
                    None if value is None else float(value),
                    ts=float(ts),
                    fields=TelemetryEvent.fields_from_json(fields),
                )
            except (TypeError, ValueError):
                continue
        dropped = resp.pop("telemetry_dropped", None)
        if dropped:
            self.sink.publish("drop", self.name, float(dropped))

    def ping(self, timeout: float = 5.0) -> bool:
        try:
            resp = self.request({"op": "ping"}, timeout)
            return resp.get("status") == "ok"
        except (WorkerDeath, WorkerTimeout):
            return False

    # ---------------------------------------------------------- lifecycle
    def _exit_code(self, timeout: float = 2.0) -> Optional[int]:
        """The worker's exit status after a death was observed.

        EOF on the protocol stream can precede the exit status becoming
        visible (the pipe closes before the process is reaped), so a
        bare ``poll()`` here races to ``None``; wait briefly instead.
        """
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return self.proc.poll()

    def alive(self) -> bool:
        return self.proc.poll() is None

    def stop(self, grace: float = 2.0) -> None:
        """Graceful retirement: shutdown op, then EOF, then SIGKILL.

        The shutdown write itself is bounded: a wedged worker that has
        stopped draining its stdin would otherwise block *this* thread
        on a full pipe — the retirement deadline must cover the write,
        not just the wait.  The write goes through a non-blocking fd; if
        it cannot complete within ``grace`` the worker is killed.
        """
        if self.alive():
            if self._write_shutdown_op(grace):
                try:
                    self.proc.wait(timeout=grace)
                except subprocess.TimeoutExpired:
                    self.kill()
            else:
                self.kill()
        self._cleanup_stderr()

    def _write_shutdown_op(self, grace: float) -> bool:
        """Best-effort bounded write of the shutdown op + stdin close."""
        payload = b'{"op":"shutdown"}\n'
        deadline = time.monotonic() + max(0.0, grace)
        try:
            fd = self.proc.stdin.fileno()
            os.set_blocking(fd, False)
            view = memoryview(payload)
            while view:
                try:
                    written = os.write(fd, view)
                    view = view[written:]
                except BlockingIOError:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    select.select([], [fd], [], min(remaining, 0.1))
                except (BrokenPipeError, OSError):
                    break  # already dead or closing; EOF still follows
            self.proc.stdin.close()
            return True
        except (ValueError, OSError):
            try:
                self.proc.stdin.close()
            except (ValueError, OSError):
                pass
            return True

    def kill(self) -> None:
        try:
            self.proc.kill()
            self.proc.wait(timeout=5.0)
        except (OSError, subprocess.TimeoutExpired):
            pass
        self._cleanup_stderr()

    def stderr_tail(self, limit: int = 8192) -> str:
        try:
            self._stderr_file.flush()
            with open(self._stderr_file.name, "rb") as f:
                f.seek(0, os.SEEK_END)
                size = f.tell()
                f.seek(max(0, size - limit))
                return f.read().decode(errors="replace")
        except OSError:
            return ""

    def _cleanup_stderr(self) -> None:
        try:
            self._stderr_file.close()
            os.unlink(self._stderr_file.name)
        except OSError:
            pass


class WorkerPool:
    """Fixed-size pool of :class:`WorkerHandle` with supervised dispatch."""

    def __init__(
        self,
        size: int = 2,
        cache_root: Optional[str] = None,
        recycle_after: int = 200,
        memory_budget_kb: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        acquire_timeout: float = 30.0,
        fault_injection: bool = False,
        sink: Optional[TelemetrySink] = None,
    ):
        self.size = max(1, int(size))
        self.sink = sink
        self.cache_root = cache_root
        self.recycle_after = max(1, int(recycle_after))
        self.memory_budget_kb = memory_budget_kb
        #: Jitter is on by default here: N workers replaying against one
        #: flaky backend must not retry in lockstep.
        self.retry = retry if retry is not None else RetryPolicy(
            retries=1, backoff=0.05, jitter=0.5
        )
        self.acquire_timeout = acquire_timeout
        self.fault_injection = fault_injection
        self._idle: "Queue[WorkerHandle]" = Queue()
        self._lock = threading.Lock()
        self._workers: List[WorkerHandle] = []
        self._spawning = 0  # in-progress spawns (reserve a pool slot)
        self._closed = False
        self.stats_counters: Dict[str, int] = {
            "spawned": 0, "deaths": 0, "recycled": 0, "replays": 0,
            "timeouts": 0, "requests": 0, "saturated": 0,
        }
        self._in_flight = 0

    # ---------------------------------------------------------- lifecycle
    def start(self) -> "WorkerPool":
        # Tolerate a bounded number of failed spawns (chaos-killed or
        # genuinely flaky children) so one bad handshake cannot keep the
        # whole service from booting.
        failures = 0
        while True:
            with self._lock:
                if len(self._workers) >= self.size:
                    return self
            try:
                self._add_worker()
            except WorkerDeath:
                failures += 1
                if failures > self.size * 3 + 2:
                    raise

    def _publish_worker_event(self, handle: "WorkerHandle", event: str) -> None:
        if self.sink is not None:
            self.sink.publish("worker", handle.name, fields={"event": event})

    def _add_worker(self) -> None:
        # Reserve a slot first: a retire-path respawn and the health
        # check's heal loop can both observe a deficit concurrently, and
        # without the reservation each would fill it — growing the pool
        # past its configured size (a slow worker-process leak).
        with self._lock:
            if self._closed or len(self._workers) + self._spawning >= self.size:
                return
            self._spawning += 1
        try:
            handle = WorkerHandle(self.cache_root, self.fault_injection,
                                  sink=self.sink)
        except BaseException:
            with self._lock:
                self._spawning -= 1
            raise
        with self._lock:
            self._spawning -= 1
            self._workers.append(handle)
            self.stats_counters["spawned"] += 1
        self._publish_worker_event(handle, "spawn")
        self._idle.put(handle)

    def _retire(self, handle: WorkerHandle, *, kill: bool,
                counter: Optional[str] = None) -> None:
        with self._lock:
            if handle in self._workers:
                self._workers.remove(handle)
            if counter:
                self.stats_counters[counter] += 1
        if counter:
            self._publish_worker_event(
                handle, {"deaths": "death", "recycled": "recycle"}[counter]
            )
        if kill:
            handle.kill()
        else:
            handle.stop()
        if not self._closed:
            try:
                self._add_worker()
            except WorkerDeath:
                # The replacement failed its handshake; the next submit
                # that fails to acquire a worker will surface saturation.
                pass

    def close(self) -> None:
        self._closed = True
        with self._lock:
            workers = list(self._workers)
            self._workers.clear()
        for handle in workers:
            handle.stop()
        while True:
            try:
                self._idle.get_nowait()
            except Empty:
                break

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- health
    def health_check(self) -> int:
        """Ping every currently-idle worker; replace the unresponsive.
        Returns the number of workers replaced."""
        replaced = 0
        checked: List[WorkerHandle] = []
        while True:
            try:
                handle = self._idle.get_nowait()
            except Empty:
                break
            if handle.alive() and handle.ping():
                checked.append(handle)
            else:
                self._retire(handle, kill=True, counter="deaths")
                replaced += 1
        for handle in checked:
            self._idle.put(handle)
        # Heal the pool: failed respawns (in _retire, or chaos-killed
        # replacements) silently shrink it; top back up to size so a
        # fault storm cannot permanently reduce capacity.
        while True:
            with self._lock:
                deficit = self.size - len(self._workers) - self._spawning
            if deficit <= 0 or self._closed:
                break
            try:
                self._add_worker()
                replaced += 1
            except WorkerDeath:
                break  # still failing; the next health tick retries
        return replaced

    # ----------------------------------------------------------- dispatch
    def _checkout(self) -> Optional[WorkerHandle]:
        deadline = time.monotonic() + self.acquire_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                handle = self._idle.get(timeout=min(remaining, 1.0))
            except Empty:
                continue
            if not handle.alive():
                self._retire(handle, kill=True, counter="deaths")
                continue
            return handle

    def _checkin(self, handle: WorkerHandle) -> None:
        over_requests = handle.served >= self.recycle_after
        over_memory = (
            self.memory_budget_kb is not None
            and handle.rss_kb is not None
            and handle.rss_kb > self.memory_budget_kb
        )
        if over_requests or over_memory:
            self._retire(handle, kill=False, counter="recycled")
        else:
            self._idle.put(handle)

    def _write_crash_bundle(self, job: Dict[str, Any], death: WorkerDeath) -> Optional[str]:
        """Minimized repro bundle for a worker death (no array payloads)."""
        try:
            root = crash_dir()
            os.makedirs(root, exist_ok=True)
            # raise-io/enospc here: the bundle is lost but the death is
            # still surfaced to the caller (E201 without a bundle path).
            faultpoint("pool.crash_bundle", tenant=job.get("tenant"))
            stem = "".join(
                c if c.isalnum() or c in "-_." else "_"
                for c in str(job.get("tenant", "tenant"))
            ) or "tenant"
            bundle = _unique_bundle_dir(root, f"serve_{stem}")
            manifest = {
                "op": job.get("op"),
                "tenant": job.get("tenant"),
                "backend": job.get("backend", "python"),
                "program": job.get("program"),
                "returncode": death.returncode,
                "arrays": {
                    name: {"dtype": spec.get("dtype"), "shape": spec.get("shape")}
                    for name, spec in (job.get("arrays") or {}).items()
                    if isinstance(spec, dict)
                },
                "symbols": job.get("symbols") or {},
            }
            with open(os.path.join(bundle, "manifest.json"), "w") as f:
                json.dump(manifest, f, indent=2, sort_keys=True)
            if job.get("sdfg") is not None:
                with open(os.path.join(bundle, "sdfg.json"), "w") as f:
                    json.dump(job["sdfg"], f, indent=2, sort_keys=True)
            with open(os.path.join(bundle, "stderr.txt"), "w") as f:
                f.write(death.stderr_tail or "")
            rotate_crash_bundles(root)
            return bundle
        except (OSError, ChaosFault):
            return None

    def submit(self, job: Dict[str, Any], timeout: Optional[float] = None) -> Dict[str, Any]:
        """Dispatch one job; always returns a protocol response payload.

        Worker deaths are contained: bundle, respawn, replay (with
        jittered backoff) up to ``retry.retries`` times, then a
        structured ``E201`` error.  Backstop timeouts kill the worker
        and yield ``R805`` without replay.
        """
        if timeout is None:
            try:
                deadline = float(job.get("deadline") or 0.0)
            except (TypeError, ValueError):
                deadline = 0.0
            timeout = (
                deadline + 10.0
                if math.isfinite(deadline) and deadline > 0
                else DEFAULT_REQUEST_TIMEOUT
            )
        with self._lock:
            self.stats_counters["requests"] += 1
        # A fault here fails the dispatch before any worker is touched;
        # the daemon's catch-all turns it into a structured E204.
        faultpoint("pool.dispatch", tenant=job.get("tenant"),
                   op=job.get("op"))
        attempt = 0
        last_bundle: Optional[str] = None
        while True:
            handle = self._checkout()
            if handle is None:
                with self._lock:
                    self.stats_counters["saturated"] += 1
                return protocol.rejected_response(
                    "R806",
                    f"worker pool saturated: no worker became available "
                    f"within {self.acquire_timeout:g}s",
                    retry_after=self.acquire_timeout,
                )
            with self._lock:
                self._in_flight += 1
            try:
                resp = handle.request(job, timeout)
            except WorkerDeath as death:
                with self._lock:
                    self.stats_counters["deaths"] += 1
                self._publish_worker_event(handle, "death")
                last_bundle = self._write_crash_bundle(job, death) or last_bundle
                self._retire(handle, kill=True)
                if attempt < self.retry.retries:
                    time.sleep(self.retry.delay(attempt))
                    attempt += 1
                    with self._lock:
                        self.stats_counters["replays"] += 1
                    self._publish_worker_event(handle, "replay")
                    continue  # the finally clause settles _in_flight
                detail = (
                    f"killed by signal {-death.returncode}"
                    if death.returncode is not None and death.returncode < 0
                    else f"exit status {death.returncode}"
                )
                return protocol.error_response(
                    "E201",
                    f"worker died while executing the request ({detail}) "
                    f"after {attempt + 1} attempt(s)"
                    + (f"; repro bundle at {last_bundle}" if last_bundle else ""),
                    attempts=attempt + 1,
                    bundle=last_bundle,
                    returncode=death.returncode,
                    retryable=True,
                )
            except WorkerTimeout:
                with self._lock:
                    self.stats_counters["timeouts"] += 1
                self._publish_worker_event(handle, "timeout")
                self._retire(handle, kill=True)
                return protocol.error_response(
                    "R805",
                    f"request exceeded its {timeout:g}s wall-clock backstop; "
                    "the worker was killed",
                    attempts=attempt + 1,
                )
            except BaseException:
                # Anything unexpected (bug, KeyboardInterrupt, ...): the
                # worker's stream state is unknown and the handle is
                # checked out — retire it so it can never leak, then let
                # the caller see the real failure.
                self._retire(handle, kill=True, counter="deaths")
                raise
            else:
                self._checkin(handle)
                if attempt:
                    resp.setdefault("replays", attempt)
                return resp
            finally:
                with self._lock:
                    self._in_flight -= 1

    # -------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out = dict(self.stats_counters)
            out["size"] = self.size
            out["alive"] = sum(1 for w in self._workers if w.alive())
            out["in_flight"] = self._in_flight
        return out
