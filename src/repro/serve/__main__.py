"""CLI entry point: ``python -m repro.serve``."""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.runtime.watchdog import RetryPolicy
from repro.serve.admission import TenantPolicy
from repro.serve.daemon import SDFGServer, ServeConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="fault-tolerant multi-tenant SDFG compile-and-execute service",
    )
    where = parser.add_mutually_exclusive_group()
    where.add_argument("--socket", default=None, metavar="PATH",
                       help="Unix socket path (default: a fresh temp path, printed)")
    where.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="listen on TCP instead of a Unix socket")
    parser.add_argument("--workers", type=int, default=2,
                        help="size of the crash-isolated worker pool (default 2)")
    parser.add_argument("--recycle-after", type=int, default=200, metavar="N",
                        help="retire a worker after N requests (default 200)")
    parser.add_argument("--memory-budget-kb", type=int, default=None, metavar="KB",
                        help="retire a worker whose RSS exceeds this budget")
    parser.add_argument("--cache-root", default=None, metavar="DIR",
                        help="root directory for per-tenant disk program caches")
    parser.add_argument("--max-inflight", type=int, default=8,
                        help="per-tenant concurrent request cap (default 8)")
    parser.add_argument("--deadline-cap", type=float, default=30.0,
                        help="per-request deadline ceiling in seconds (default 30)")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        help="per-tenant rolling compute budget (default: unlimited)")
    parser.add_argument("--budget-window", type=float, default=60.0,
                        help="rolling budget window in seconds (default 60)")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        help="worker-killing failures before a tenant's breaker opens")
    parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                        help="seconds an open breaker rejects before a half-open probe")
    parser.add_argument("--retries", type=int, default=1,
                        help="replays of a request whose worker died (default 1)")
    parser.add_argument("--retry-backoff", type=float, default=0.05,
                        help="base replay backoff in seconds (default 0.05)")
    parser.add_argument("--retry-jitter", type=float, default=0.5,
                        help="backoff jitter fraction in [0,1] (default 0.5)")
    parser.add_argument("--fault-injection", action="store_true",
                        help="honor inject_fault requests (tests/CI only)")
    parser.add_argument("--no-shutdown-op", action="store_true",
                        help="refuse the 'shutdown' op (daemon stops on SIGTERM only)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="disable the telemetry sink and the 'metrics' op")
    parser.add_argument("--telemetry-window", type=float, default=60.0,
                        metavar="SECONDS",
                        help="telemetry aggregation window width (default 60)")
    parser.add_argument("--telemetry-capacity", type=int, default=4096,
                        metavar="EVENTS",
                        help="telemetry ring-buffer capacity (default 4096)")
    parser.add_argument("--drain-grace", type=float, default=10.0,
                        metavar="SECONDS",
                        help="seconds granted to in-flight requests on "
                             "SIGTERM/SIGINT before the daemon gives up "
                             "(default 10)")
    parser.add_argument("--fsck", action="store_true",
                        help="run the startup integrity sweep (quarantine "
                             "torn cache entries and stale crash bundles) "
                             "and exit: 0 = already clean, 3 = repairs made")
    return parser


def run_fsck(cache_root) -> int:
    from repro.runtime.isolation import crash_dir
    from repro.serve.fsck import fsck_sweep

    report = fsck_sweep(cache_root=cache_root, crash_root=crash_dir())
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["clean"] else 3


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.fsck:
        return run_fsck(args.cache_root)

    tcp = None
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        tcp = (host or "127.0.0.1", int(port))

    config = ServeConfig(
        socket_path=args.socket,
        tcp=tcp,
        workers=args.workers,
        recycle_after=args.recycle_after,
        memory_budget_kb=args.memory_budget_kb,
        cache_root=args.cache_root,
        default_policy=TenantPolicy(
            max_inflight=args.max_inflight,
            deadline_cap=args.deadline_cap,
            budget_seconds=args.budget_seconds,
            budget_window=args.budget_window,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
        ),
        retry=RetryPolicy(retries=args.retries, backoff=args.retry_backoff,
                          jitter=args.retry_jitter),
        fault_injection=args.fault_injection,
        allow_shutdown=not args.no_shutdown_op,
        telemetry=not args.no_telemetry,
        telemetry_window=args.telemetry_window,
        telemetry_capacity=args.telemetry_capacity,
        drain_grace=args.drain_grace,
    )

    server = SDFGServer(config)
    server.start()

    def _graceful(signum, frame):  # noqa: ARG001 - signal signature
        print(f"repro.serve: received signal {signum}; draining "
              f"(grace {config.drain_grace:g}s)", file=sys.stderr)
        sys.stderr.flush()
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)

    if config.socket_path:
        print(f"repro.serve listening on {config.socket_path}", file=sys.stderr)
    else:
        print(f"repro.serve listening on {server.address}", file=sys.stderr)
    sys.stderr.flush()
    server.serve_forever()
    if server.drained_clean is False:
        print("repro.serve: drain deadline expired with requests still "
              "in flight", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
