"""Runtime infrastructure: argument handling, reference interpreter,
machine models, and the analytic performance model.

The paper's "thin runtime infrastructure" (Fig. 1) corresponds to the
pieces here that support executing compiled SDFGs; additionally this
package hosts the *reference interpreter*, a direct implementation of
the operational semantics of Appendix A used to cross-validate the code
generators, the machine/performance models that stand in for the GPU and
FPGA hardware of the paper's evaluation (see DESIGN.md §1), and the
guarded-execution runtime: the dynamic memlet sanitizer (R801–R804), the
resource watchdog (R805 deadlines, memory budgets, retries, circuit
breakers), and the crash-isolation harness for native backends (E201).
"""

from repro.runtime.arguments import ArgumentError, infer_symbols, validate_arguments
from repro.runtime.interpreter import SDFGInterpreter
from repro.runtime.isolation import BackendCrashError
from repro.runtime.sanitizer import (
    GuardContext,
    GuardedView,
    Sanitizer,
    SanitizerError,
    sanitize_from_env,
)
from repro.runtime.streams import StreamArray, StreamError, StreamQueue
from repro.runtime.watchdog import (
    RetryPolicy,
    Watchdog,
    WatchdogViolation,
    reset_breakers,
)

__all__ = [
    "ArgumentError",
    "BackendCrashError",
    "GuardContext",
    "GuardedView",
    "RetryPolicy",
    "SDFGInterpreter",
    "Sanitizer",
    "SanitizerError",
    "StreamArray",
    "StreamError",
    "StreamQueue",
    "Watchdog",
    "WatchdogViolation",
    "infer_symbols",
    "reset_breakers",
    "sanitize_from_env",
    "validate_arguments",
]
