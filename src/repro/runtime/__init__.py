"""Runtime infrastructure: argument handling, reference interpreter,
machine models, and the analytic performance model.

The paper's "thin runtime infrastructure" (Fig. 1) corresponds to the
pieces here that support executing compiled SDFGs; additionally this
package hosts the *reference interpreter*, a direct implementation of
the operational semantics of Appendix A used to cross-validate the code
generators, and the machine/performance models that stand in for the
GPU and FPGA hardware of the paper's evaluation (see DESIGN.md §1).
"""

from repro.runtime.arguments import infer_symbols, validate_arguments
from repro.runtime.interpreter import SDFGInterpreter
from repro.runtime.streams import StreamQueue

__all__ = [
    "SDFGInterpreter",
    "StreamQueue",
    "infer_symbols",
    "validate_arguments",
]
