"""Dynamic memlet sanitizer: per-access guards for executing SDFGs.

Static validation (``V306`` bounds checks, the ``W501`` write-conflict
detector) is limited by what the symbolic layer can decide — containment
of *indirect* accesses like ``x[A_col[j]]`` is undecidable before
running.  The sanitizer is the dynamic complement: when enabled
(``compile_sdfg(..., sanitize=True)`` or ``REPRO_SANITIZE=1``), the
Python code generator and the reference interpreter route every memlet
access through a :class:`GuardContext`, which checks

* ``R801`` — out-of-bounds reads/writes, including indirect subscripts
  inside tasklet code (loaded array views are wrapped in
  :class:`GuardedView` so ``arr[idx]`` is checked element-exactly; note
  that *negative* indices are treated as out of bounds — silent numpy
  wraparound is precisely the bug class being hunted);
* ``R802`` — NaN/Inf produced at a tasklet output;
* ``R803`` — reads of never-written transient elements (a per-transient
  shadow bitmask tracks writes at element granularity);
* ``R804`` — runtime write conflicts: two map iterations writing the
  same element without a conflict-resolution function, detected with a
  shadow write-set per map execution (dynamic ``W501``).

Each finding is a structured :class:`~repro.diagnostics.Diagnostic`
carrying the exact element index, the memlet, and the SDFG location,
and is surfaced both as an exception (``mode="raise"``) or a collected
list (``mode="collect"``), and as ``sanitizer`` events on the
instrumentation recorder so ``repro.report`` can render summaries.

``python -m repro.runtime.sanitizer --kernels`` runs the fundamental
kernels under the sanitizer and checks agreement with unsanitized runs;
``--fault-matrix`` injects one bug per R-code and asserts each fires.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.diagnostics import Diagnostic, DiagnosticError, Severity

#: Upper bound on recorded findings (collect mode); further findings are
#: only counted, so a hot loop cannot flood memory with diagnostics.
MAX_FINDINGS = 1000


class SanitizerError(DiagnosticError):
    """A sanitizer finding in ``raise`` mode.

    Carries the structured diagnostic plus the exact element ``index``
    the access touched (a tuple of ints/slices), for precise reporting.
    """

    def __init__(self, diagnostic: Diagnostic, index: Optional[tuple] = None):
        super().__init__(diagnostic)
        self.index = index


def sanitize_from_env() -> Optional[str]:
    """Resolve ``REPRO_SANITIZE``: ``1``/``raise`` → raise mode,
    ``collect`` → collect mode, anything else/unset → off (None)."""
    raw = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    if raw in ("1", "true", "on", "raise"):
        return "raise"
    if raw == "collect":
        return "collect"
    return None


def _idx_tuple(idx: Any) -> tuple:
    return idx if isinstance(idx, tuple) else (idx,)


def _fmt_index(idx: Any) -> str:
    parts = []
    for i in _idx_tuple(idx):
        if isinstance(i, slice):
            parts.append(
                f"{'' if i.start is None else i.start}:"
                f"{'' if i.stop is None else i.stop}"
                + (f":{i.step}" if i.step not in (None, 1) else "")
            )
        else:
            parts.append(str(i))
    return "[" + ", ".join(parts) + "]"


def _clamp_index(shape: Tuple[int, ...], idx: Any) -> tuple:
    """Collect mode: map an out-of-bounds index to the nearest valid one
    so execution can continue past a recorded finding (numpy would raise
    on positive overflow and silently wrap on negative)."""
    tup = _idx_tuple(idx)[: len(shape)]
    out: List[Any] = []
    for i, dim in zip(tup, shape):
        dim = int(dim)
        hi = max(dim - 1, 0)
        if isinstance(i, slice):
            start = 0 if i.start is None else int(i.start)
            stop = dim if i.stop is None else int(i.stop)
            start = min(max(start, 0), dim)
            stop = min(max(stop, start), dim)
            out.append(slice(start, stop, i.step))
        elif isinstance(i, np.ndarray):
            out.append(np.clip(i, 0, hi))
        else:
            out.append(min(max(int(i), 0), hi))
    return tuple(out)


def _absolute_index(idx: tuple, rel: Tuple[int, ...]) -> tuple:
    """Map a coordinate relative to the selected view back to container
    coordinates (ints pass through, slices add ``start + r*step``)."""
    out: List[int] = []
    k = 0
    for i in idx:
        if isinstance(i, slice):
            start = 0 if i.start is None else int(i.start)
            step = 1 if i.step in (None, 0) else int(i.step)
            out.append(start + int(rel[k]) * step)
            k += 1
        else:
            out.append(int(i))
    return tuple(out)


class _Frame:
    """Shadow write-set for one execution of a map scope."""

    __slots__ = ("label", "iter", "writes")

    def __init__(self, label: str):
        self.label = label
        #: Current iteration identity (tuple of map parameter values).
        self.iter: Optional[tuple] = None
        #: (data, element) → iteration identity that last wrote it.
        self.writes: Dict[tuple, tuple] = {}


class Sanitizer:
    """Finding collector and check implementations.

    One instance lives per guarded call; ``mode`` is ``"raise"`` (first
    ERROR aborts execution with :class:`SanitizerError`) or
    ``"collect"`` (all findings are recorded and execution continues
    with numpy's native semantics).
    """

    def __init__(self, mode: str = "raise"):
        if mode not in ("raise", "collect"):
            raise ValueError(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        self.findings: List[Diagnostic] = []
        #: Per-code finding counts (includes findings beyond MAX_FINDINGS).
        self.counters: Dict[str, int] = {}
        #: Total number of checks performed (for overhead reporting).
        self.checks = 0
        #: Shadow write masks for transients, keyed ``<prefix>.<name>``.
        self.masks: Dict[str, np.ndarray] = {}
        #: Active map-scope write-set frames.
        self.frames: List[_Frame] = []
        self._seen: set = set()

    # --------------------------------------------------------------- findings
    def record(
        self,
        code: str,
        message: str,
        data: Optional[str] = None,
        loc: Optional[tuple] = None,
        index: Optional[tuple] = None,
    ) -> None:
        sdfg, state, node = loc if loc is not None else (None, None, None)
        diag = Diagnostic(
            code=code,
            severity=Severity.ERROR,
            message=message,
            sdfg=sdfg,
            state=state,
            node=node,
            data=data,
        )
        self.counters[code] = self.counters.get(code, 0) + 1
        key = (code, data, state, node, str(index))
        if key not in self._seen and len(self.findings) < MAX_FINDINGS:
            self._seen.add(key)
            self.findings.append(diag)
        if self.mode == "raise":
            raise SanitizerError(diag, index=index)

    # ----------------------------------------------------------------- checks
    def check_bounds(
        self,
        name: str,
        shape: Tuple[int, ...],
        idx: Any,
        memlet: str = "",
        loc: Optional[tuple] = None,
    ) -> bool:
        """R801: every index component must lie inside the container.

        Negative indices and out-of-extent slices are findings even
        though numpy would silently wrap/clamp them.  Returns True when
        every component is in bounds (collect-mode callers clamp or skip
        the access when False; raise mode never returns False).
        """
        self.checks += 1
        ok = True
        tup = _idx_tuple(idx)
        if len(tup) > len(shape):
            self.record(
                "R801",
                f"access {name}{_fmt_index(tup)} has rank {len(tup)} but "
                f"{name!r} has rank {len(shape)}"
                + (f" (memlet {memlet})" if memlet else ""),
                data=name, loc=loc, index=tup,
            )
            return False
        for d, (i, dim) in enumerate(zip(tup, shape)):
            dim = int(dim)
            if isinstance(i, slice):
                start = 0 if i.start is None else int(i.start)
                stop = dim if i.stop is None else int(i.stop)
                if start < 0 or stop > dim or start > stop:
                    ok = False
                    self.record(
                        "R801",
                        f"slice {start}:{stop} out of bounds for dimension "
                        f"{d} of {name!r} (extent {dim})"
                        + (f" via memlet {memlet}" if memlet else ""),
                        data=name, loc=loc, index=tup,
                    )
            elif isinstance(i, np.ndarray):
                bad = (i < 0) | (i >= dim)
                if bad.any():
                    ok = False
                    offender = int(np.asarray(i)[bad].flat[0])
                    self.record(
                        "R801",
                        f"indirect index {offender} out of bounds for "
                        f"dimension {d} of {name!r} (extent {dim})"
                        + (f" via memlet {memlet}" if memlet else ""),
                        data=name, loc=loc,
                        index=tuple(int(x) if not isinstance(x, (slice, np.ndarray)) else x for x in tup),
                    )
            else:
                ii = int(i)
                if ii < 0 or ii >= dim:
                    ok = False
                    exact = tuple(
                        int(x) if not isinstance(x, (slice, np.ndarray)) else x
                        for x in tup
                    )
                    self.record(
                        "R801",
                        f"index {ii} out of bounds for dimension {d} of "
                        f"{name!r} (extent {dim}), at element "
                        f"{name}{_fmt_index(exact)}"
                        + (f" via memlet {memlet}" if memlet else ""),
                        data=name, loc=loc, index=exact,
                    )
        return ok

    def check_finite(
        self,
        name: str,
        idx: Any,
        value: Any,
        memlet: str = "",
        loc: Optional[tuple] = None,
    ) -> None:
        """R802: tasklet outputs of float/complex kind must be finite."""
        self.checks += 1
        arr = np.asarray(value)
        if arr.dtype.kind not in "fc":
            return
        finite = np.isfinite(arr)
        if finite.all():
            return
        tup = _idx_tuple(idx)
        if arr.ndim == 0:
            exact = tuple(int(x) if not isinstance(x, slice) else x for x in tup)
            val = arr[()]
        else:
            rel = tuple(int(r) for r in np.argwhere(~finite)[0])
            exact = _absolute_index(tup, rel)
            val = arr[rel]
        self.record(
            "R802",
            f"non-finite value {val!r} written to {name}{_fmt_index(exact)}"
            + (f" via memlet {memlet}" if memlet else ""),
            data=name, loc=loc, index=exact,
        )

    # ------------------------------------------------------- transient shadow
    def register_transient(self, key: str, arr: np.ndarray) -> None:
        """(Re-)register a transient allocation: its shadow mask starts
        all-unwritten."""
        self.masks[key] = np.zeros(arr.shape, dtype=bool)

    def mark_written(self, key: str, idx: Any = None) -> None:
        mask = self.masks.get(key)
        if mask is None:
            return
        if idx is None:
            mask[...] = True
        else:
            mask[idx] = True

    def mask_for(self, key: Optional[str]) -> Optional[np.ndarray]:
        if key is None:
            return None
        return self.masks.get(key)

    def check_initialized(
        self,
        key: str,
        name: str,
        idx: Any,
        memlet: str = "",
        loc: Optional[tuple] = None,
    ) -> None:
        """R803: reading a transient element that was never written."""
        mask = self.masks.get(key)
        if mask is None:
            return
        self.checks += 1
        tup = _idx_tuple(idx)
        try:
            view = mask[tup]
        except IndexError:
            return  # bounds finding already recorded by check_bounds
        if isinstance(view, np.ndarray) and view.ndim > 0:
            if view.all():
                return
            rel = tuple(int(r) for r in np.argwhere(~view)[0])
            exact = _absolute_index(tup, rel)
        else:
            if bool(view):
                return
            exact = tuple(int(x) if not isinstance(x, slice) else x for x in tup)
        self.record(
            "R803",
            f"read of never-written transient element {name}{_fmt_index(exact)}"
            + (f" via memlet {memlet}" if memlet else ""),
            data=name, loc=loc, index=exact,
        )

    # ------------------------------------------------------- WCR write frames
    def map_enter(self, label: str) -> None:
        self.frames.append(_Frame(label))

    def map_iter(self, values: tuple) -> None:
        if self.frames:
            self.frames[-1].iter = values if isinstance(values, tuple) else (values,)

    def map_exit(self) -> None:
        if self.frames:
            self.frames.pop()

    def record_write(
        self,
        name: str,
        idx: Any,
        memlet: str = "",
        loc: Optional[tuple] = None,
    ) -> None:
        """R804: a *static, non-WCR* point write inside a map scope that
        lands on an element another iteration already wrote."""
        if not self.frames:
            return
        tup = _idx_tuple(idx)
        if any(isinstance(i, (slice, np.ndarray)) for i in tup):
            return  # only point writes are tracked
        self.checks += 1
        elem = tuple(int(i) for i in tup)
        iters = [f.iter if f.iter is not None else () for f in self.frames]
        for k, frame in enumerate(self.frames):
            ident = tuple(v for it in iters[k:] for v in it)
            prev = frame.writes.get((name, elem))
            if prev is None:
                frame.writes[(name, elem)] = ident
            elif prev != ident:
                frame.writes[(name, elem)] = ident
                self.record(
                    "R804",
                    f"write conflict on {name}{_fmt_index(elem)} in map "
                    f"{frame.label!r}: iterations {prev} and {ident} both "
                    "write it without conflict resolution"
                    + (f" (memlet {memlet})" if memlet else ""),
                    data=name, loc=loc, index=elem,
                )


class GuardedView(np.ndarray):
    """ndarray view that bounds-checks subscripts inside tasklet code.

    The frontend lowers indirect accesses (``x[A_col[j]]``) into tasklet
    code that subscripts a loaded slice view — wrapping that view makes
    the data-dependent subscript checkable.  Derived arrays (slices of
    slices, ufunc results) deliberately *lose* the guard: only the view
    a memlet load produced is checked, everything downstream behaves
    like a plain ndarray.
    """

    def __array_finalize__(self, obj):
        # Every construction path lands here; guards are only attached
        # explicitly by wrap(), so views/copies revert to plain behavior.
        self._san = None
        self._gname = None
        self._gmask = None
        self._gmemlet = ""
        self._gloc = None

    @staticmethod
    def wrap(
        arr: np.ndarray,
        san: Sanitizer,
        name: str,
        mask: Optional[np.ndarray],
        memlet: str = "",
        loc: Optional[tuple] = None,
    ) -> "GuardedView":
        view = arr.view(GuardedView)
        view._san = san
        view._gname = name
        view._gmask = mask
        view._gmemlet = memlet
        view._gloc = loc
        return view

    def __getitem__(self, idx):
        san = self._san
        if san is not None:
            ok = san.check_bounds(
                self._gname, self.shape, idx, self._gmemlet, self._gloc
            )
            if not ok:  # collect mode: continue on the nearest valid element
                idx = _clamp_index(self.shape, idx)
            mask = self._gmask
            if mask is not None:
                try:
                    sel = mask[idx]
                except IndexError:
                    sel = True  # bounds finding already recorded (collect mode)
                if not np.all(sel):
                    if isinstance(sel, np.ndarray) and sel.ndim > 0:
                        rel = tuple(int(r) for r in np.argwhere(~sel)[0])
                        exact = _absolute_index(_idx_tuple(idx), rel)
                    else:
                        exact = tuple(
                            int(x) if not isinstance(x, (slice, np.ndarray)) else x
                            for x in _idx_tuple(idx)
                        )
                    san.record(
                        "R803",
                        "read of never-written transient element "
                        f"{self._gname}{_fmt_index(exact)}"
                        + (f" via memlet {self._gmemlet}" if self._gmemlet else ""),
                        data=self._gname, loc=self._gloc, index=exact,
                    )
        return np.ndarray.__getitem__(self, idx)

    def __setitem__(self, idx, value):
        san = self._san
        if san is not None:
            ok = san.check_bounds(
                self._gname, self.shape, idx, self._gmemlet, self._gloc
            )
            san.check_finite(self._gname, idx, value, self._gmemlet, self._gloc)
            if not ok:
                return  # collect mode: drop the store, don't corrupt a neighbor
            mask = self._gmask
            if mask is not None:
                mask[idx] = True
        np.ndarray.__setitem__(self, idx, value)


class GuardContext:
    """Per-call bundle of sanitizer + watchdog threaded through a run.

    Generated entry functions receive it as ``__guard``; the interpreter
    holds it as ``self.guard``.  All methods are no-ops for whichever of
    the two policies is not armed.
    """

    __slots__ = ("sanitizer", "watchdog", "overhead")

    def __init__(self, sanitizer: Optional[Sanitizer] = None, watchdog=None):
        self.sanitizer = sanitizer
        self.watchdog = watchdog
        #: Accumulated seconds spent inside guard checks.
        self.overhead = 0.0

    # --------------------------------------------------------- memlet guards
    def load(
        self,
        name: str,
        container: np.ndarray,
        idx: Any,
        memlet: str = "",
        loc: Optional[tuple] = None,
        tkey: Optional[str] = None,
    ):
        """Guarded memlet read: bounds + init checks, then the access.

        Array results are wrapped in :class:`GuardedView` (with the
        shadow mask aligned to the same subset for transients) so
        data-dependent subscripts inside tasklet code stay checked.
        """
        san = self.sanitizer
        if san is None:
            return container[idx]
        t0 = time.perf_counter()
        ok = san.check_bounds(name, container.shape, idx, memlet, loc)
        if not ok:  # collect mode: continue on the nearest valid element
            idx = _clamp_index(container.shape, idx)
        if tkey is not None:
            san.check_initialized(tkey, name, idx, memlet, loc)
        value = container[idx]
        if isinstance(value, np.ndarray) and value.ndim > 0:
            mask = san.mask_for(tkey)
            if mask is not None:
                mask = mask[idx]
            value = GuardedView.wrap(value, san, name, mask, memlet, loc)
        self.overhead += time.perf_counter() - t0
        return value

    def pre_store(
        self,
        name: str,
        container: np.ndarray,
        idx: Any,
        value: Any,
        memlet: str = "",
        loc: Optional[tuple] = None,
        tkey: Optional[str] = None,
        wcr: bool = False,
        dynamic: bool = False,
    ) -> bool:
        """Guarded memlet write (checks only; the caller performs the
        store so WCR/ufunc semantics stay in one place).  Returns True
        when the store may proceed — in collect mode an out-of-bounds
        store is recorded and dropped (False) rather than corrupting a
        wrapped-around neighbor or aborting on numpy's IndexError."""
        san = self.sanitizer
        if san is None:
            return True
        t0 = time.perf_counter()
        ok = san.check_bounds(name, container.shape, idx, memlet, loc)
        san.check_finite(name, idx, value, memlet, loc)
        # Size-1 transients are the frontend's per-iteration scalar
        # scratch (indirection temps): rebinding them every iteration is
        # the idiom, not a write conflict.
        scratch = tkey is not None and container.size == 1
        if ok:
            if not wcr and not dynamic and not scratch:
                san.record_write(name, idx, memlet, loc)
            if tkey is not None:
                san.mark_written(tkey, idx)
        self.overhead += time.perf_counter() - t0
        return ok

    def mark_written(self, tkey: str, idx: Any = None) -> None:
        """Copies/reductions into a transient mark it written (whole
        container unless a subset is given — conservative for R803)."""
        if self.sanitizer is not None:
            self.sanitizer.mark_written(tkey, idx)

    # ----------------------------------------------------------- scope hooks
    def map_enter(self, label: str) -> None:
        if self.sanitizer is not None:
            self.sanitizer.map_enter(label)

    def map_iter(self, values: tuple) -> None:
        if self.sanitizer is not None:
            self.sanitizer.map_iter(values)
        if self.watchdog is not None:
            self.watchdog.checkpoint()

    def map_exit(self) -> None:
        if self.sanitizer is not None:
            self.sanitizer.map_exit()

    # ------------------------------------------------------- watchdog relays
    def checkpoint(self) -> None:
        if self.watchdog is not None:
            self.watchdog.checkpoint()

    def on_alloc(self, key: str, name: str, arr: np.ndarray) -> None:
        """Transient allocation: account memory, reset the shadow mask."""
        if self.watchdog is not None:
            self.watchdog.account_alloc(name, arr.nbytes)
        if self.sanitizer is not None:
            self.sanitizer.register_transient(key, arr)

    # -------------------------------------------------------------- reporting
    def finish(self, recorder=None, label: str = "") -> None:
        """Emit sanitizer/watchdog summary events onto the recorder."""
        if recorder is None:
            return
        san = self.sanitizer
        if san is not None:
            recorder.event("sanitizer", "checks", itype="COUNTER",
                           iterations=san.checks)
            recorder.event("sanitizer", "overhead", itype="TIMER",
                           duration=self.overhead, iterations=san.checks)
            for code in sorted(san.counters):
                recorder.event("sanitizer", code, itype="COUNTER",
                               iterations=san.counters[code])
        if self.watchdog is not None:
            recorder.event("watchdog", "checkpoints", itype="COUNTER",
                           iterations=self.watchdog.checkpoints)


# =====================================================================
# Seeded faults: one intentionally-broken SDFG per R-code.  Used by the
# fault-matrix tests and by ``python -m repro.runtime.sanitizer``.
# =====================================================================


def _fault_r801():
    """Indirect gather where one index points past the source array."""
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG("fault_r801")
    sdfg.add_array("X", ("N",), dtypes.float64)
    sdfg.add_array("I", ("N",), dtypes.int64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    st = sdfg.add_state("gather")
    st.add_mapped_tasklet(
        "gather",
        {"i": "0:N"},
        inputs={
            "idx": Memlet.simple("I", "i"),
            "arr": Memlet.simple("X", "0:N"),
        },
        code="out = arr[idx]",
        outputs={"out": Memlet.simple("B", "i")},
    )
    n = 6
    data = {
        "X": np.arange(n, dtype=np.float64),
        "I": np.array([0, 1, 2, n, 3, 4], dtype=np.int64),  # I[3] == N: OOB
        "B": np.zeros(n, dtype=np.float64),
        "N": n,
    }
    return sdfg, data, {"code": "R801", "data": "X", "index": (n,)}


def _fault_r802():
    """Multiply that overflows float64 to inf at one element."""
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG("fault_r802")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    st = sdfg.add_state("scale")
    st.add_mapped_tasklet(
        "scale",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a * 2.0",
        outputs={"b": Memlet.simple("B", "i")},
    )
    n = 5
    a = np.ones(n, dtype=np.float64)
    a[3] = 1e308  # 2e308 overflows to inf
    data = {"A": a, "B": np.zeros(n, dtype=np.float64), "N": n}
    return sdfg, data, {"code": "R802", "data": "B", "index": (3,)}


def _fault_r803():
    """Copies a transient to the output without ever writing it."""
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG("fault_r803")
    sdfg.add_array("B", ("N",), dtypes.float64)
    sdfg.add_transient("T", ("N",), dtypes.float64)
    st = sdfg.add_state("drain")
    st.add_mapped_tasklet(
        "drain",
        {"i": "0:N"},
        inputs={"t": Memlet.simple("T", "i")},
        code="b = t + 1.0",
        outputs={"b": Memlet.simple("B", "i")},
    )
    n = 4
    data = {"B": np.zeros(n, dtype=np.float64), "N": n}
    return sdfg, data, {"code": "R803", "data": "T", "index": (0,)}


def _fault_r804():
    """Every map iteration writes element 0 without a WCR function."""
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG("fault_r804")
    sdfg.add_array("A", ("N",), dtypes.float64)
    sdfg.add_array("B", ("N",), dtypes.float64)
    st = sdfg.add_state("clobber")
    st.add_mapped_tasklet(
        "clobber",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a",
        outputs={"b": Memlet.simple("B", "0")},
    )
    n = 4
    data = {
        "A": np.arange(n, dtype=np.float64),
        "B": np.zeros(n, dtype=np.float64),
        "N": n,
    }
    return sdfg, data, {"code": "R804", "data": "B", "index": (0,)}


def _fault_r805():
    """Interstate loop whose increment makes no progress: never ends."""
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG("fault_r805")
    sdfg.add_array("A", ("N",), dtypes.float64)
    body = sdfg.add_state("body")
    body.add_mapped_tasklet(
        "touch",
        {"k": "0:1"},
        inputs={"a": Memlet.simple("A", "0")},
        code="b = a + 1.0",
        outputs={"b": Memlet.simple("A", "0")},
    )
    before = sdfg.add_state("init", is_start=True)
    sdfg.add_loop(before, body, None, "it", 0, "it < N", "it")  # it never grows
    n = 4
    data = {"A": np.zeros(n, dtype=np.float64), "N": n}
    return sdfg, data, {"code": "R805", "data": None, "index": None}


#: R-code → builder returning ``(sdfg, kwargs, expectation)``.  The
#: expectation names the code that must fire, the container it must
#: point at, and the exact element index.
SEEDED_FAULTS = {
    "R801": _fault_r801,
    "R802": _fault_r802,
    "R803": _fault_r803,
    "R804": _fault_r804,
    "R805": _fault_r805,
}


# =====================================================================
# CLI: kernel fidelity sweep + fault matrix (used by the CI sanitize job)
# =====================================================================


def fundamental_kernel_cases():
    """``name → (sdfg_factory, data dict, extra scalar args, outputs)``
    for the five fundamental kernels, at sanitizer-friendly sizes."""
    from repro.workloads import kernels as wl

    spmv_data, _csr = wl.spmv_data(12, 3)
    return {
        "matmul": (wl.matmul_sdfg, wl.matmul_data(8), {}, ["C"]),
        "jacobi2d": (wl.jacobi2d_sdfg, wl.jacobi2d_data(8), {"T": 3}, ["A"]),
        "histogram": (wl.histogram_sdfg, wl.histogram_data(8, 10, bins=8),
                      {}, ["hist"]),
        "query": (wl.query_sdfg, wl.query_data(40), {}, ["out", "size"]),
        "spmv": (wl.spmv_sdfg, spmv_data, {}, ["b"]),
    }


def _run_kernels(backend: str = "python") -> int:
    """Run the fundamental kernels sanitized and unsanitized; assert
    zero findings and 1e-8 agreement.  Returns a process exit code."""
    import copy

    from repro.codegen.compiler import compile_sdfg

    failures = 0
    for name, (factory, data, extra, outputs) in fundamental_kernel_cases().items():
        ref_args = {**copy.deepcopy(data), **extra}
        san_args = {**copy.deepcopy(data), **extra}
        compile_sdfg(factory(), backend=backend)(**ref_args)
        guarded = compile_sdfg(factory(), backend=backend, sanitize="collect")
        guarded(**san_args)
        findings = guarded.last_findings or []
        ok = not findings
        for out in outputs:
            if not np.allclose(san_args[out], ref_args[out],
                               rtol=1e-8, atol=1e-8):
                ok = False
                print(f"FAIL {name}: output {out} diverges under sanitizer")
        for f in findings:
            print(f"FAIL {name}: unexpected finding {f}")
        print(f"{'ok  ' if ok else 'FAIL'} {name}: sanitized run matches "
              f"({len(findings)} findings)")
        failures += 0 if ok else 1
    return 1 if failures else 0


def _run_polybench(names, backend: str = "python") -> int:
    from repro.codegen.compiler import compile_sdfg
    from repro.workloads import polybench

    failures = 0
    for name in names:
        kernel = polybench.get(name)
        sdfg = kernel.make_sdfg()
        # Data builders seed their RNGs, so two calls yield identical inputs.
        ref_data = kernel.data()
        san_data = kernel.data()
        kernel.run_sdfg(ref_data, compiled=compile_sdfg(sdfg, backend=backend))
        guarded = compile_sdfg(kernel.make_sdfg(), backend=backend,
                               sanitize="collect")
        kernel.run_sdfg(san_data, compiled=guarded)
        findings = guarded.last_findings or []
        ok = not findings
        for out in kernel.outputs:
            if not np.allclose(san_data[out], ref_data[out], rtol=1e-8, atol=1e-8):
                ok = False
                print(f"FAIL {name}: output {out} diverges under sanitizer")
        for f in findings:
            print(f"FAIL {name}: unexpected finding {f}")
        print(f"{'ok  ' if ok else 'FAIL'} {name} ({len(findings)} findings)")
        failures += 0 if ok else 1
    return 1 if failures else 0


def _run_fault_matrix(backend: str = "python") -> int:
    from repro.codegen.compiler import compile_sdfg

    # Import the canonical classes: under ``python -m`` this module runs
    # as ``__main__``, so the local SanitizerError is a different class
    # object than the one the compiled pipeline raises.
    from repro.runtime.sanitizer import SanitizerError as _SanitizerError
    from repro.runtime.watchdog import WatchdogViolation

    failures = 0
    for code, builder in sorted(SEEDED_FAULTS.items()):
        sdfg, kwargs, expect = builder()
        try:
            if code == "R805":
                compiled = compile_sdfg(sdfg, backend=backend, deadline=0.5)
            else:
                compiled = compile_sdfg(sdfg, backend=backend, sanitize=True)
            compiled(**kwargs)
        except (_SanitizerError, WatchdogViolation) as err:
            got = err.code
            idx = getattr(err, "index", None)
            ok = got == expect["code"] and (
                expect["index"] is None or idx == expect["index"]
            )
            print(f"{'ok  ' if ok else 'FAIL'} {code}: fired {got} at "
                  f"index {idx} — {err.diagnostic.message}")
            failures += 0 if ok else 1
        else:
            print(f"FAIL {code}: no finding fired")
            failures += 1
    return 1 if failures else 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.sanitizer",
        description="Sanitizer fidelity sweep and seeded-fault matrix.",
    )
    parser.add_argument("--kernels", action="store_true",
                        help="run the fundamental kernels sanitized vs not")
    parser.add_argument("--polybench", nargs="*", metavar="NAME",
                        help="run the named Polybench kernels sanitized vs not")
    parser.add_argument("--fault-matrix", action="store_true",
                        help="inject one bug per R-code and assert it fires")
    parser.add_argument("--backend", default="python",
                        choices=("python", "interpreter"))
    args = parser.parse_args(argv)

    rc = 0
    ran = False
    if args.kernels:
        ran = True
        rc |= _run_kernels(args.backend)
    if args.polybench is not None:
        ran = True
        rc |= _run_polybench(args.polybench, args.backend)
    if args.fault_matrix:
        ran = True
        rc |= _run_fault_matrix(args.backend)
    if not ran:
        parser.print_help()
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
