"""Stream container runtime: arrays of concurrent FIFO queues (paper §3.1)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

from repro.diagnostics import DiagnosticError, Severity, make_diagnostic


class StreamError(DiagnosticError, IndexError):
    """Out-of-bounds stream access (code ``E101``).

    Subclasses ``IndexError`` so pre-existing ``except IndexError``
    call sites keep working, while carrying the structured diagnostic
    (stream name + SDFG location) the rest of the error layer expects.
    """

    def __init__(self, message: str, name: Optional[str] = None, location=None):
        sdfg = state = None
        if location is not None:
            sdfg, state = (tuple(location) + (None, None))[:2]
        super().__init__(
            make_diagnostic(
                "E101", message, Severity.ERROR, sdfg=sdfg, state=state, data=name
            )
        )


class StreamQueue:
    """One FIFO queue with optional bounded capacity.

    Tasklet code interacts with streams through this object: ``push``
    enqueues (the write direction of a stream memlet), ``pop`` dequeues.
    Assigning to a stream-bound output connector is equivalent to a
    single ``push``.
    """

    __slots__ = ("_q", "capacity")

    def __init__(self, capacity: int = 0, items: Optional[Iterable] = None):
        self._q: Deque = deque(items or ())
        self.capacity = capacity

    def push(self, *values) -> None:
        for v in values:
            if self.capacity and len(self._q) >= self.capacity:
                raise RuntimeError(
                    f"stream overflow (capacity {self.capacity}); on FPGA this "
                    "would deadlock the pipeline"
                )
            self._q.append(v)

    # DaCe-compatible aliases
    append = push
    write = push

    def pop(self):
        if not self._q:
            raise RuntimeError("pop from empty stream")
        return self._q.popleft()

    read = pop

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    def __iter__(self):
        return iter(self._q)

    def clear(self) -> None:
        self._q.clear()

    def __repr__(self) -> str:
        return f"StreamQueue(len={len(self._q)}, capacity={self.capacity})"


class StreamArray:
    """A multi-dimensional array of :class:`StreamQueue` (flattened).

    ``name`` and ``location`` (an ``(sdfg, state)`` pair) are optional
    provenance used to build structured :class:`StreamError` diagnostics
    instead of anonymous index errors.
    """

    def __init__(
        self,
        shape: Tuple[int, ...],
        capacity: int = 0,
        name: Optional[str] = None,
        location=None,
    ):
        self.shape = shape
        self.name = name
        self.location = location
        total = 1
        for s in shape:
            total *= int(s)
        self.queues: List[StreamQueue] = [StreamQueue(capacity) for _ in range(total)]

    def _flat_index(self, idx: Tuple[int, ...]) -> int:
        label = self.name or "stream"
        if len(idx) != len(self.shape):
            raise StreamError(
                f"index {idx} into stream '{label}' does not match its "
                f"shape {self.shape} ({len(idx)} components vs "
                f"{len(self.shape)} dimensions)",
                name=self.name,
                location=self.location,
            )
        flat = 0
        for dim, (x, s) in enumerate(zip(idx, self.shape)):
            x, s = int(x), int(s)
            # Negative indices are rejected rather than wrapped: flattened
            # stream addressing would silently alias a different queue.
            if x < 0 or x >= s:
                raise StreamError(
                    f"index {idx} into stream '{label}' is out of bounds "
                    f"in dimension {dim}: {x} not in [0, {s})",
                    name=self.name,
                    location=self.location,
                )
            flat = flat * s + x
        return flat

    def __getitem__(self, idx) -> StreamQueue:
        if not isinstance(idx, tuple):
            idx = (idx,)
        return self.queues[self._flat_index(idx)]

    def total_elements(self) -> int:
        return sum(len(q) for q in self.queues)

    def any_nonempty(self) -> bool:
        return any(self.queues)

    def __repr__(self) -> str:
        return f"StreamArray(shape={self.shape}, total={self.total_elements()})"
