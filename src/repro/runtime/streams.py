"""Stream container runtime: arrays of concurrent FIFO queues (paper §3.1)."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple


class StreamQueue:
    """One FIFO queue with optional bounded capacity.

    Tasklet code interacts with streams through this object: ``push``
    enqueues (the write direction of a stream memlet), ``pop`` dequeues.
    Assigning to a stream-bound output connector is equivalent to a
    single ``push``.
    """

    __slots__ = ("_q", "capacity")

    def __init__(self, capacity: int = 0, items: Optional[Iterable] = None):
        self._q: Deque = deque(items or ())
        self.capacity = capacity

    def push(self, *values) -> None:
        for v in values:
            if self.capacity and len(self._q) >= self.capacity:
                raise RuntimeError(
                    f"stream overflow (capacity {self.capacity}); on FPGA this "
                    "would deadlock the pipeline"
                )
            self._q.append(v)

    # DaCe-compatible aliases
    append = push
    write = push

    def pop(self):
        if not self._q:
            raise RuntimeError("pop from empty stream")
        return self._q.popleft()

    read = pop

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    def __iter__(self):
        return iter(self._q)

    def clear(self) -> None:
        self._q.clear()

    def __repr__(self) -> str:
        return f"StreamQueue(len={len(self._q)}, capacity={self.capacity})"


class StreamArray:
    """A multi-dimensional array of :class:`StreamQueue` (flattened)."""

    def __init__(self, shape: Tuple[int, ...], capacity: int = 0):
        self.shape = shape
        total = 1
        for s in shape:
            total *= int(s)
        self.queues: List[StreamQueue] = [StreamQueue(capacity) for _ in range(total)]

    def _flat_index(self, idx: Tuple[int, ...]) -> int:
        if len(idx) != len(self.shape):
            raise IndexError(f"stream index {idx} does not match shape {self.shape}")
        flat = 0
        for i, (x, s) in enumerate(zip(idx, self.shape)):
            flat = flat * int(s) + int(x)
        return flat

    def __getitem__(self, idx) -> StreamQueue:
        if not isinstance(idx, tuple):
            idx = (idx,)
        return self.queues[self._flat_index(idx)]

    def total_elements(self) -> int:
        return sum(len(q) for q in self.queues)

    def any_nonempty(self) -> bool:
        return any(self.queues)

    def __repr__(self) -> str:
        return f"StreamArray(shape={self.shape}, total={self.total_elements()})"
