"""Crash-isolated execution of gcc-compiled SDFG artifacts.

A generated-and-compiled shared object is untrusted native code: a
codegen bug (or hostile ``code_global``) can segfault, abort, or spin —
and a ``ctypes`` call into it takes the host Python process down with
it.  On the "serving heavy traffic" path that is unacceptable, so the
cpp backend executes through a *subprocess harness*:

* the parent serializes the call's arrays and a small argument manifest
  into a scratch directory and spawns ``python -m
  repro.runtime.isolation <workdir>``;
* the child loads the shared object, runs the entry point, and writes
  the (in-place mutated) arrays back out;
* if the child dies on a signal or non-zero exit, the parent captures a
  *minimized repro bundle* — canonical SDFG JSON, the argument manifest
  (shapes/dtypes/symbol values, no array payloads), and the child's
  stderr — under ``REPRO_CRASH_DIR`` (default ``.repro_crashes``) and
  raises :class:`BackendCrashError` (code ``E201``), which the compiler
  turns into a degradation hop to the python backend;
* if the child outlives the watchdog deadline it is killed and the
  parent raises a ``R805`` :class:`~repro.runtime.watchdog.WatchdogViolation`.

Isolation is on by default for the cpp backend and can be switched off
with ``REPRO_ISOLATE=0`` (e.g. for benchmarking, where the ~10ms
process spawn and array round-trip matter).
"""

from __future__ import annotations

import itertools
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from typing import Dict, List, Optional

import numpy as np

from repro.chaos import faultpoint
from repro.diagnostics import DiagnosticError, Severity, make_diagnostic


class BackendCrashError(DiagnosticError):
    """The isolated backend process died (code ``E201``).

    The crash was *contained*: the host process and the caller's arrays
    are intact (the child worked on copies), so the call is safe to
    retry or degrade.  ``bundle`` points at the repro bundle, if one was
    written.
    """

    def __init__(
        self,
        message: str,
        sdfg: Optional[str] = None,
        bundle: Optional[str] = None,
        returncode: Optional[int] = None,
    ):
        super().__init__(make_diagnostic("E201", message, Severity.ERROR, sdfg=sdfg))
        self.bundle = bundle
        self.returncode = returncode
        #: Inputs were not mutated; a retry is semantically safe.
        self.retryable = True


def isolate_from_env() -> bool:
    """``REPRO_ISOLATE`` knob; isolation defaults to on."""
    return os.environ.get("REPRO_ISOLATE", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def crash_dir() -> str:
    return os.environ.get("REPRO_CRASH_DIR", "").strip() or ".repro_crashes"


#: Default number of crash bundles each process keeps (newest first).
DEFAULT_CRASH_KEEP = 50


def crash_keep() -> int:
    """``REPRO_CRASH_KEEP`` knob: bundles retained per process."""
    raw = os.environ.get("REPRO_CRASH_KEEP", "").strip()
    try:
        return max(1, int(raw)) if raw else DEFAULT_CRASH_KEEP
    except ValueError:
        return DEFAULT_CRASH_KEEP


def rotate_crash_bundles(root: Optional[str] = None,
                         keep: Optional[int] = None) -> int:
    """Delete this process's oldest crash bundles beyond ``keep``.

    Bundle names embed the writer's pid and a monotonic sequence number
    (``<stem>_<pid>_<seq>``), so rotation is scoped to the calling
    process — a supervisor cleaning up after itself never deletes a
    sibling's fresh bundle.  Returns the number removed and publishes a
    ``crash:rotated`` telemetry event when any were.
    """
    root = root or crash_dir()
    keep = crash_keep() if keep is None else max(1, int(keep))
    tag = f"_{os.getpid()}_"
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    mine = []
    for name in names:
        if tag not in name:
            continue
        path = os.path.join(root, name)
        if not os.path.isdir(path):
            continue
        try:
            seq = int(name.rsplit("_", 1)[1])
        except (ValueError, IndexError):
            continue
        mine.append((seq, path))
    mine.sort()
    removed = 0
    for _, path in mine[: max(0, len(mine) - keep)]:
        shutil.rmtree(path, ignore_errors=True)
        removed += 1
    if removed:
        from repro.telemetry.sink import active_sink

        sink = active_sink()
        if sink is not None:
            sink.publish("crash", "rotated",
                         fields={"n": removed, "keep": keep})
    return removed


#: Monotonic per-process crash counter: bundle directory names are
#: ``<sdfg>_<pid>_<counter>`` so two workers (distinct pids) or two
#: crashes in one process (distinct counters) can never collide — and,
#: unlike ``mkdtemp``, the name deterministically identifies which
#: process crashed in what order, which the pool supervisor logs.
_BUNDLE_COUNTER = itertools.count()
_BUNDLE_LOCK = threading.Lock()


def _unique_bundle_dir(root: str, stem: str) -> str:
    """Create and return a collision-free per-crash directory."""
    while True:
        with _BUNDLE_LOCK:
            seq = next(_BUNDLE_COUNTER)
        path = os.path.join(root, f"{stem}_{os.getpid()}_{seq:06d}")
        try:
            os.makedirs(path, exist_ok=False)
            return path
        except FileExistsError:
            # A previous process run left this name behind; advance.
            continue


def write_crash_bundle(sdfg, manifest: Dict, stderr: str) -> Optional[str]:
    """Persist a minimized repro bundle; returns its path (None if the
    bundle itself could not be written — never masks the crash)."""
    try:
        from repro.sdfg.serialize import sdfg_to_json

        root = crash_dir()
        os.makedirs(root, exist_ok=True)
        faultpoint("isolation.bundle_write", sdfg=manifest.get("sdfg"))
        safe = "".join(
            c if c.isalnum() or c in "-_." else "_"
            for c in str(manifest.get("sdfg", "sdfg"))
        )
        bundle = _unique_bundle_dir(root, safe or "sdfg")
        with open(os.path.join(bundle, "sdfg.json"), "w") as f:
            json.dump(sdfg_to_json(sdfg, canonical=True), f, indent=2, sort_keys=True)
        slim = {k: v for k, v in manifest.items() if k != "lib"}
        with open(os.path.join(bundle, "manifest.json"), "w") as f:
            json.dump(slim, f, indent=2, sort_keys=True)
        with open(os.path.join(bundle, "stderr.txt"), "w") as f:
            f.write(stderr or "")
        rotate_crash_bundles(root)
        return bundle
    except OSError:
        return None


def _repo_pythonpath() -> str:
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    return src_root + (os.pathsep + existing if existing else "")


def run_isolated(
    sdfg,
    lib_path: str,
    arg_arrays: List[str],
    syms_order: List[str],
    arrays: Dict[str, np.ndarray],
    symbols: Dict[str, int],
    timeout: Optional[float] = None,
) -> None:
    """Execute one call of a compiled artifact in a child process.

    Mutates ``arrays`` in place on success, mirroring the direct ctypes
    path.  Raises :class:`BackendCrashError` on a contained crash and
    ``WatchdogViolation`` on a deadline kill.
    """
    from repro.runtime.watchdog import WatchdogViolation

    workdir = tempfile.mkdtemp(prefix=f"repro_iso_{sdfg.name}_")
    try:
        np.savez(
            os.path.join(workdir, "inputs.npz"),
            **{a: np.ascontiguousarray(arrays[a]) for a in arg_arrays},
        )
        manifest = {
            "sdfg": sdfg.name,
            "entry": sdfg.name,
            "lib": lib_path,
            "arrays": [
                {
                    "name": a,
                    "dtype": str(arrays[a].dtype),
                    "shape": list(arrays[a].shape),
                }
                for a in arg_arrays
            ],
            "symbols": {s: int(symbols[s]) for s in syms_order},
            "symbol_order": list(syms_order),
        }
        with open(os.path.join(workdir, "manifest.json"), "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)

        env = os.environ.copy()
        env["PYTHONPATH"] = _repo_pythonpath()
        cmd = [sys.executable, "-m", "repro.runtime.isolation", workdir]
        try:
            faultpoint("isolation.spawn", sdfg=sdfg.name)
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=timeout, env=env
            )
        except OSError as err:
            # Spawn failure (fork/exec denied, fd exhaustion): the call
            # never ran, arrays are untouched — a contained crash, not a
            # host-process error.
            raise BackendCrashError(
                f"isolated cpp backend could not be spawned: {err}",
                sdfg=sdfg.name,
            ) from err
        except subprocess.TimeoutExpired as err:
            stderr = err.stderr
            if isinstance(stderr, bytes):
                stderr = stderr.decode(errors="replace")
            raise WatchdogViolation(
                f"isolated cpp execution exceeded deadline of {timeout:g}s "
                "and was killed",
                sdfg=sdfg.name,
                kind="deadline",
            ) from err
        if proc.returncode != 0:
            bundle = write_crash_bundle(
                sdfg, manifest, (proc.stderr or "") + (proc.stdout or "")
            )
            detail = (
                f"killed by signal {-proc.returncode}"
                if proc.returncode < 0
                else f"exit status {proc.returncode}"
            )
            raise BackendCrashError(
                f"isolated cpp backend crashed ({detail})"
                + (f"; repro bundle at {bundle}" if bundle else ""),
                sdfg=sdfg.name,
                bundle=bundle,
                returncode=proc.returncode,
            )
        with np.load(os.path.join(workdir, "outputs.npz")) as out:
            for a in arg_arrays:
                np.copyto(arrays[a], out[a])
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# =====================================================================
# Child side: ``python -m repro.runtime.isolation <workdir>``
# =====================================================================


def _child_main(workdir: str) -> int:
    import ctypes

    from repro.codegen.cpp_gen import _CTYPE_MAP

    with open(os.path.join(workdir, "manifest.json")) as f:
        manifest = json.load(f)
    with np.load(os.path.join(workdir, "inputs.npz")) as data:
        arrays = {
            spec["name"]: np.ascontiguousarray(
                data[spec["name"]].astype(spec["dtype"], copy=False)
            )
            for spec in manifest["arrays"]
        }
    lib = ctypes.CDLL(manifest["lib"])
    fn = getattr(lib, manifest["entry"])
    fn.restype = None
    cargs = []
    for spec in manifest["arrays"]:
        ct = _CTYPE_MAP[spec["dtype"]]
        cargs.append(arrays[spec["name"]].ctypes.data_as(ctypes.POINTER(ct)))
    for s in manifest["symbol_order"]:
        cargs.append(ctypes.c_longlong(manifest["symbols"][s]))
    fn(*cargs)
    np.savez(os.path.join(workdir, "outputs.npz"), **arrays)
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: python -m repro.runtime.isolation <workdir>", file=sys.stderr)
        raise SystemExit(2)
    raise SystemExit(_child_main(sys.argv[1]))
