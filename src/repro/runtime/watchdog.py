"""Execution watchdog: deadlines, memory budgets, retry, circuit breaking.

The north star of "any SDFG either runs correctly or fails with a
precise, bounded, recoverable error" needs a *resource* story on top of
the sanitizer's *value* story: a submitted SDFG with an unbounded
interstate loop, or a backend that has started segfaulting, must not
take the host process (or the whole serving fleet) with it.  This
module provides the three policies:

* :class:`Watchdog` — a per-call wall-clock deadline and memory budget.
  Cancellation is *cooperative*: generated state machines, consume
  loops, and the interpreter call :meth:`Watchdog.checkpoint` at loop
  boundaries, and transient allocations are accounted against the
  budget.  A violation raises :class:`WatchdogViolation` carrying an
  ``R805`` diagnostic.
* :class:`RetryPolicy` — bounded retries with exponential backoff for
  failures that are known not to have corrupted the inputs (crashes
  contained by the subprocess harness, see
  :mod:`repro.runtime.isolation`).
* :class:`CircuitBreakerRegistry` — per-backend failure counting.  A
  backend that crashes or times out repeatedly is *opened*:
  ``compile_sdfg`` skips it with a recorded degradation hop instead of
  trying (and failing) again, until the cooldown elapses.

Knobs: ``REPRO_DEADLINE`` (seconds), ``REPRO_MEMORY_BUDGET`` (bytes),
``REPRO_RETRIES``, ``REPRO_RETRY_BACKOFF`` (seconds),
``REPRO_BREAKER_THRESHOLD``, ``REPRO_BREAKER_COOLDOWN`` (seconds).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from repro.diagnostics import DiagnosticError, Severity, make_diagnostic


class WatchdogViolation(DiagnosticError):
    """A deadline or memory budget was exceeded (code ``R805``)."""

    def __init__(self, message: str, sdfg=None, kind: str = "deadline"):
        diag = make_diagnostic("R805", message, Severity.ERROR, sdfg=sdfg)
        super().__init__(diag)
        #: ``"deadline"`` or ``"memory"``.
        self.kind = kind


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def deadline_from_env() -> Optional[float]:
    """Wall-clock deadline in seconds from ``REPRO_DEADLINE`` (None = off)."""
    return _env_float("REPRO_DEADLINE")


def memory_budget_from_env() -> Optional[int]:
    """Transient-memory budget in bytes from ``REPRO_MEMORY_BUDGET``."""
    val = _env_float("REPRO_MEMORY_BUDGET")
    return int(val) if val is not None else None


class Watchdog:
    """Cooperative per-call deadline and transient-memory budget.

    One instance is armed per ``CompiledSDFG.__call__`` / interpreter
    call.  ``checkpoint()`` is cheap (one monotonic clock read) and is
    called from state-machine transitions, consume-loop rounds, and —
    under the sanitizer — every map iteration.  ``account_alloc()`` adds
    a transient allocation to the running total.
    """

    __slots__ = ("deadline", "memory_budget", "sdfg_name", "start",
                 "allocated", "checkpoints", "violation")

    def __init__(
        self,
        deadline: Optional[float] = None,
        memory_budget: Optional[int] = None,
        sdfg_name: Optional[str] = None,
    ):
        self.deadline = deadline
        self.memory_budget = memory_budget
        self.sdfg_name = sdfg_name
        self.start = time.monotonic()
        self.allocated = 0
        self.checkpoints = 0
        #: The violation that fired, if any (kept for reporting).
        self.violation: Optional[WatchdogViolation] = None

    def arm(self) -> "Watchdog":
        """Reset the clock (called right before the entry runs)."""
        self.start = time.monotonic()
        return self

    def elapsed(self) -> float:
        return time.monotonic() - self.start

    def remaining(self) -> Optional[float]:
        """Seconds left until the deadline (None when no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def checkpoint(self) -> None:
        self.checkpoints += 1
        if self.deadline is not None and self.elapsed() > self.deadline:
            err = WatchdogViolation(
                f"execution exceeded deadline of {self.deadline:g}s "
                f"(elapsed {self.elapsed():.3f}s)",
                sdfg=self.sdfg_name,
                kind="deadline",
            )
            self.violation = err
            raise err

    def account_alloc(self, name: str, nbytes: int) -> None:
        self.allocated += int(nbytes)
        if self.memory_budget is not None and self.allocated > self.memory_budget:
            err = WatchdogViolation(
                f"transient allocation {name!r} ({int(nbytes)} bytes) exceeds "
                f"memory budget of {self.memory_budget} bytes "
                f"(total {self.allocated})",
                sdfg=self.sdfg_name,
                kind="memory",
            )
            self.violation = err
            raise err


class RetryPolicy:
    """Bounded retry with exponential backoff for contained failures."""

    __slots__ = ("retries", "backoff")

    def __init__(self, retries: int = 1, backoff: float = 0.05):
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))

    @staticmethod
    def from_env() -> "RetryPolicy":
        retries = _env_float("REPRO_RETRIES")
        backoff = _env_float("REPRO_RETRY_BACKOFF")
        return RetryPolicy(
            retries=int(retries) if retries is not None else 1,
            backoff=backoff if backoff is not None else 0.05,
        )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based): b * 2^n."""
        return self.backoff * (2 ** attempt)


class CircuitBreakerRegistry:
    """Per-backend failure counter with open/half-open semantics.

    ``record_failure`` counts call-time crashes and watchdog violations;
    once a backend accumulates ``threshold`` consecutive failures the
    breaker *opens* and ``is_open`` returns True until ``cooldown``
    seconds pass (after which one probe attempt is allowed again — a
    success closes the breaker via ``record_success``).
    """

    def __init__(self, threshold: Optional[int] = None, cooldown: Optional[float] = None):
        self._failures: Dict[str, int] = {}
        self._last_code: Dict[str, str] = {}
        self._opened_at: Dict[str, float] = {}
        self._threshold = threshold
        self._cooldown = cooldown

    @property
    def threshold(self) -> int:
        if self._threshold is not None:
            return self._threshold
        val = _env_float("REPRO_BREAKER_THRESHOLD")
        return int(val) if val is not None else 3

    @property
    def cooldown(self) -> float:
        if self._cooldown is not None:
            return self._cooldown
        val = _env_float("REPRO_BREAKER_COOLDOWN")
        return val if val is not None else 300.0

    def record_failure(self, backend: str, code: Optional[str] = None) -> None:
        n = self._failures.get(backend, 0) + 1
        self._failures[backend] = n
        if code:
            self._last_code[backend] = code
        if n >= self.threshold and backend not in self._opened_at:
            self._opened_at[backend] = time.monotonic()

    def record_success(self, backend: str) -> None:
        self._failures.pop(backend, None)
        self._opened_at.pop(backend, None)

    def failures(self, backend: str) -> int:
        return self._failures.get(backend, 0)

    def last_code(self, backend: str) -> Optional[str]:
        return self._last_code.get(backend)

    def is_open(self, backend: str) -> bool:
        opened = self._opened_at.get(backend)
        if opened is None:
            return False
        if time.monotonic() - opened > self.cooldown:
            # Half-open: allow one probe; re-open on the next failure.
            self._opened_at.pop(backend, None)
            self._failures[backend] = self.threshold - 1
            return False
        return True

    def reset(self) -> None:
        self._failures.clear()
        self._last_code.clear()
        self._opened_at.clear()


#: Process-wide breaker state consulted by ``compile_sdfg``.
BREAKERS = CircuitBreakerRegistry()


def reset_breakers() -> None:
    """Clear all circuit-breaker state (tests and long-lived hosts)."""
    BREAKERS.reset()
