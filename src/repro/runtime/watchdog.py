"""Execution watchdog: deadlines, memory budgets, retry, circuit breaking.

The north star of "any SDFG either runs correctly or fails with a
precise, bounded, recoverable error" needs a *resource* story on top of
the sanitizer's *value* story: a submitted SDFG with an unbounded
interstate loop, or a backend that has started segfaulting, must not
take the host process (or the whole serving fleet) with it.  This
module provides the three policies:

* :class:`Watchdog` — a per-call wall-clock deadline and memory budget.
  Cancellation is *cooperative*: generated state machines, consume
  loops, and the interpreter call :meth:`Watchdog.checkpoint` at loop
  boundaries, and transient allocations are accounted against the
  budget.  A violation raises :class:`WatchdogViolation` carrying an
  ``R805`` diagnostic.
* :class:`RetryPolicy` — bounded retries with exponential backoff for
  failures that are known not to have corrupted the inputs (crashes
  contained by the subprocess harness, see
  :mod:`repro.runtime.isolation`).
* :class:`CircuitBreakerRegistry` — per-backend failure counting.  A
  backend that crashes or times out repeatedly is *opened*:
  ``compile_sdfg`` skips it with a recorded degradation hop instead of
  trying (and failing) again, until the cooldown elapses.

Knobs: ``REPRO_DEADLINE`` (seconds), ``REPRO_MEMORY_BUDGET`` (bytes),
``REPRO_RETRIES``, ``REPRO_RETRY_BACKOFF`` (seconds),
``REPRO_RETRY_JITTER`` (fraction), ``REPRO_BREAKER_THRESHOLD``,
``REPRO_BREAKER_COOLDOWN`` (seconds).
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos import faultpoint
from repro.diagnostics import DiagnosticError, Severity, make_diagnostic
from repro.telemetry.sink import active_sink


class WatchdogViolation(DiagnosticError):
    """A deadline or memory budget was exceeded (code ``R805``)."""

    def __init__(self, message: str, sdfg=None, kind: str = "deadline"):
        diag = make_diagnostic("R805", message, Severity.ERROR, sdfg=sdfg)
        super().__init__(diag)
        #: ``"deadline"`` or ``"memory"``.
        self.kind = kind
        sink = active_sink()
        if sink is not None:
            sink.publish(
                "watchdog", str(sdfg) if sdfg else "",
                fields={"event": kind, "code": "R805"},
            )


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def deadline_from_env() -> Optional[float]:
    """Wall-clock deadline in seconds from ``REPRO_DEADLINE`` (None = off)."""
    return _env_float("REPRO_DEADLINE")


def memory_budget_from_env() -> Optional[int]:
    """Transient-memory budget in bytes from ``REPRO_MEMORY_BUDGET``."""
    val = _env_float("REPRO_MEMORY_BUDGET")
    return int(val) if val is not None else None


class Watchdog:
    """Cooperative per-call deadline and transient-memory budget.

    One instance is armed per ``CompiledSDFG.__call__`` / interpreter
    call.  ``checkpoint()`` is cheap (one monotonic clock read) and is
    called from state-machine transitions, consume-loop rounds, and —
    under the sanitizer — every map iteration.  ``account_alloc()`` adds
    a transient allocation to the running total.
    """

    __slots__ = ("deadline", "memory_budget", "sdfg_name", "start",
                 "allocated", "checkpoints", "violation")

    def __init__(
        self,
        deadline: Optional[float] = None,
        memory_budget: Optional[int] = None,
        sdfg_name: Optional[str] = None,
    ):
        self.deadline = deadline
        self.memory_budget = memory_budget
        self.sdfg_name = sdfg_name
        self.start = time.monotonic()
        self.allocated = 0
        self.checkpoints = 0
        #: The violation that fired, if any (kept for reporting).
        self.violation: Optional[WatchdogViolation] = None

    def arm(self) -> "Watchdog":
        """Reset the clock (called right before the entry runs)."""
        self.start = time.monotonic()
        return self

    def elapsed(self) -> float:
        return time.monotonic() - self.start

    def remaining(self) -> Optional[float]:
        """Seconds left until the deadline (None when no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def checkpoint(self) -> None:
        self.checkpoints += 1
        # A `delay` rule here models a slow kernel between cooperative
        # checkpoints — the resulting R805 is a *genuine* deadline trip.
        faultpoint("watchdog.checkpoint")
        if self.deadline is not None and self.elapsed() > self.deadline:
            err = WatchdogViolation(
                f"execution exceeded deadline of {self.deadline:g}s "
                f"(elapsed {self.elapsed():.3f}s)",
                sdfg=self.sdfg_name,
                kind="deadline",
            )
            self.violation = err
            raise err

    def account_alloc(self, name: str, nbytes: int) -> None:
        self.allocated += int(nbytes)
        if self.memory_budget is not None and self.allocated > self.memory_budget:
            err = WatchdogViolation(
                f"transient allocation {name!r} ({int(nbytes)} bytes) exceeds "
                f"memory budget of {self.memory_budget} bytes "
                f"(total {self.allocated})",
                sdfg=self.sdfg_name,
                kind="memory",
            )
            self.violation = err
            raise err


class RetryPolicy:
    """Bounded retry with (optionally jittered) exponential backoff.

    Without jitter the delay before retry ``n`` is ``backoff * 2^n``.
    ``jitter`` spreads that over ``[base*(1-j), base*(1+j)]`` uniformly
    so a *pool* of workers retrying the same flaky backend does not
    thundering-herd it with synchronized probes.  The RNG is injectable
    (``rng=random.Random(seed)``) so delay schedules stay deterministic
    in tests; each policy otherwise gets its own independently seeded
    generator.
    """

    __slots__ = ("retries", "backoff", "jitter", "rng")

    def __init__(
        self,
        retries: int = 1,
        backoff: float = 0.05,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.jitter = min(1.0, max(0.0, float(jitter)))
        self.rng = rng if rng is not None else random.Random()

    @staticmethod
    def from_env() -> "RetryPolicy":
        retries = _env_float("REPRO_RETRIES")
        backoff = _env_float("REPRO_RETRY_BACKOFF")
        jitter = _env_float("REPRO_RETRY_JITTER")
        return RetryPolicy(
            retries=int(retries) if retries is not None else 1,
            backoff=backoff if backoff is not None else 0.05,
            jitter=jitter if jitter is not None else 0.0,
        )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based).

        ``b * 2^n``, spread uniformly over ``[b*2^n*(1-j), b*2^n*(1+j)]``
        when ``jitter=j`` is set (mean is unchanged; never negative).
        """
        base = self.backoff * (2 ** attempt)
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        return base * (1.0 - self.jitter + 2.0 * self.jitter * self.rng.random())


#: Breaker states.  ``HALF_OPEN`` means the cooldown elapsed and exactly
#: one probe request has been admitted; until that probe resolves every
#: other caller is short-circuited as if the breaker were still open.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreakerRegistry:
    """Per-key (backend or tenant) failure counter with closed → open →
    half-open semantics.

    ``record_failure`` counts call-time crashes and watchdog violations;
    once a key accumulates ``threshold`` consecutive failures the
    breaker *opens* and ``is_open`` returns True until ``cooldown``
    seconds pass.  The first ``is_open`` call after the cooldown moves
    the breaker to *half-open* and admits that caller as the single
    probe (returns False); concurrent callers keep getting True until
    the probe resolves — ``record_success`` closes the breaker,
    ``record_failure`` re-opens it immediately.  All transitions are
    thread-safe and observable via :meth:`on_transition` listeners and
    the bounded :attr:`transitions` log.
    """

    def __init__(self, threshold: Optional[int] = None, cooldown: Optional[float] = None):
        self._lock = threading.RLock()
        self._failures: Dict[str, int] = {}
        self._last_code: Dict[str, str] = {}
        self._opened_at: Dict[str, float] = {}
        self._state: Dict[str, str] = {}
        self._probe_inflight: Dict[str, bool] = {}
        self._threshold = threshold
        self._cooldown = cooldown
        self._limit_resolver: Optional[
            Callable[[str], Tuple[Optional[int], Optional[float]]]
        ] = None
        self._listeners: List[Callable[[str, str, str], None]] = []
        #: Bounded log of ``(key, old_state, new_state)`` transitions.
        self.transitions: List[Tuple[str, str, str]] = []

    @property
    def threshold(self) -> int:
        if self._threshold is not None:
            return self._threshold
        val = _env_float("REPRO_BREAKER_THRESHOLD")
        return int(val) if val is not None else 3

    @property
    def cooldown(self) -> float:
        if self._cooldown is not None:
            return self._cooldown
        val = _env_float("REPRO_BREAKER_COOLDOWN")
        return val if val is not None else 300.0

    def set_limit_resolver(
        self, resolver: Callable[[str], Tuple[Optional[int], Optional[float]]]
    ) -> None:
        """Install a per-key ``(threshold, cooldown)`` resolver.

        The serve layer uses this to honor per-tenant breaker policy; a
        ``None`` in either slot falls back to the registry default."""
        with self._lock:
            self._limit_resolver = resolver

    def _threshold_for(self, key: str) -> int:
        if self._limit_resolver is not None:
            threshold, _ = self._limit_resolver(key)
            if threshold is not None:
                return max(1, int(threshold))
        return self.threshold

    def _cooldown_for(self, key: str) -> float:
        if self._limit_resolver is not None:
            _, cooldown = self._limit_resolver(key)
            if cooldown is not None:
                return max(0.0, float(cooldown))
        return self.cooldown

    # -------------------------------------------------------- observation
    def on_transition(self, listener: Callable[[str, str, str], None]) -> None:
        """Register a ``listener(key, old_state, new_state)`` callback
        (the serve layer mirrors transitions as instrumentation events)."""
        with self._lock:
            self._listeners.append(listener)

    def _transition(self, key: str, new_state: str) -> None:
        old = self._state.get(key, CLOSED)
        if old == new_state:
            return
        self._state[key] = new_state
        if len(self.transitions) < 10000:
            self.transitions.append((key, old, new_state))
        sink = active_sink()
        if sink is not None:
            sink.publish("breaker", key, fields={"old": old, "new": new_state})
        for listener in list(self._listeners):
            try:
                listener(key, old, new_state)
            except Exception:
                continue

    def state(self, key: str) -> str:
        """Current breaker state (without side effects on it)."""
        with self._lock:
            return self._state.get(key, CLOSED)

    # ----------------------------------------------------------- recording
    def record_failure(self, key: str, code: Optional[str] = None) -> None:
        with self._lock:
            if code:
                self._last_code[key] = code
            if self._state.get(key) == HALF_OPEN:
                # The probe failed: re-open immediately, full cooldown.
                self._probe_inflight.pop(key, None)
                self._failures[key] = self._failures.get(key, 0) + 1
                self._opened_at[key] = time.monotonic()
                self._transition(key, OPEN)
                return
            n = self._failures.get(key, 0) + 1
            self._failures[key] = n
            if n >= self._threshold_for(key) and key not in self._opened_at:
                self._opened_at[key] = time.monotonic()
                self._transition(key, OPEN)

    def record_success(self, key: str) -> None:
        with self._lock:
            self._failures.pop(key, None)
            self._opened_at.pop(key, None)
            self._probe_inflight.pop(key, None)
            self._transition(key, CLOSED)

    # ------------------------------------------------------------- queries
    def failures(self, key: str) -> int:
        with self._lock:
            return self._failures.get(key, 0)

    def last_code(self, key: str) -> Optional[str]:
        with self._lock:
            return self._last_code.get(key)

    def cooldown_remaining(self, key: str) -> float:
        """Seconds until an open breaker will admit a probe (0 if it
        already would, or is not open)."""
        with self._lock:
            opened = self._opened_at.get(key)
            if opened is None or self._state.get(key) != OPEN:
                return 0.0
            return max(0.0, self._cooldown_for(key) - (time.monotonic() - opened))

    def is_open(self, key: str) -> bool:
        """True when calls to ``key`` must be short-circuited.

        An elapsed cooldown admits exactly one caller as the half-open
        probe: that caller sees False, everyone else True until the
        probe resolves through ``record_success``/``record_failure``.
        """
        with self._lock:
            state = self._state.get(key, CLOSED)
            if state == CLOSED:
                return False
            if state == HALF_OPEN:
                # A probe is already in flight: short-circuit the losers.
                return bool(self._probe_inflight.get(key, False))
            opened = self._opened_at.get(key)
            if opened is None:  # defensive: open without a timestamp
                self._transition(key, CLOSED)
                return False
            if time.monotonic() - opened > self._cooldown_for(key):
                # This caller becomes the single half-open probe.
                self._opened_at.pop(key, None)
                self._failures[key] = max(0, self._threshold_for(key) - 1)
                self._probe_inflight[key] = True
                self._transition(key, HALF_OPEN)
                return False
            return True

    def abort_probe(self, key: str) -> None:
        """Roll back a half-open probe that never ran.

        The admitted probe caller can still be rejected downstream (the
        serve layer's in-flight cap or budget gate) before any work is
        attempted; without a rollback the breaker would be stuck in
        ``HALF_OPEN`` with a phantom probe forever.  The breaker returns
        to ``OPEN`` with its cooldown already elapsed, so the very next
        caller is re-admitted as a fresh probe.
        """
        with self._lock:
            if self._state.get(key) != HALF_OPEN:
                return
            self._probe_inflight.pop(key, None)
            self._opened_at[key] = time.monotonic() - self._cooldown_for(key) - 1e-3
            self._transition(key, OPEN)

    def reset(self) -> None:
        with self._lock:
            self._failures.clear()
            self._last_code.clear()
            self._opened_at.clear()
            self._state.clear()
            self._probe_inflight.clear()
            self.transitions.clear()


#: Process-wide breaker state consulted by ``compile_sdfg``.
BREAKERS = CircuitBreakerRegistry()


def reset_breakers() -> None:
    """Clear all circuit-breaker state (tests and long-lived hosts)."""
    BREAKERS.reset()
