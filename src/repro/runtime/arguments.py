"""Invocation-argument handling: symbol inference and validation.

DaCe programs are called with arrays whose concrete shapes determine the
symbolic sizes (``Laplace(A=a, T=500)`` binds ``N = 2033`` from ``A``'s
shape).  ``infer_symbols`` solves the symbolic shape expressions against
the provided arrays; ``validate_arguments`` checks dtypes and
consistency.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

import numpy as np

from repro.sdfg.data import Scalar, Stream
from repro.symbolic import Expr, Integer, Symbol
from repro.symbolic.sets import linear_coefficient


class ArgumentError(TypeError):
    """Raised on missing/inconsistent invocation arguments."""


def infer_symbols(sdfg, arrays: Mapping[str, np.ndarray], symbols: Mapping[str, int]) -> Dict[str, int]:
    """Infer free symbol values from concrete array shapes.

    Handles the two shapes that occur in practice: a bare symbol dimension
    (``N``) and an affine single-symbol dimension (``N + 1``, ``2*N``).
    Explicitly passed ``symbols`` take precedence; inconsistencies raise.
    """
    bound: Dict[str, int] = dict(symbols)
    for name, desc in sdfg.arrays.items():
        if name not in arrays or isinstance(desc, Stream):
            continue
        arr = arrays[name]
        shape = getattr(arr, "shape", None)
        if shape is None:
            continue
        if isinstance(desc, Scalar):
            continue
        if len(shape) != len(desc.shape):
            raise ArgumentError(
                f"argument {name!r} has rank {len(shape)}, "
                f"expected {len(desc.shape)}"
            )
        for concrete, symbolic in zip(shape, desc.shape):
            _unify(symbolic, int(concrete), bound, name)
    return bound


def _unify(expr: Expr, value: int, bound: Dict[str, int], argname: str) -> None:
    free = [s for s in expr.free_symbols if s.name not in bound]
    if not free:
        expected = expr.evaluate(bound)
        if int(expected) != value:
            raise ArgumentError(
                f"argument {argname!r}: dimension {expr} = {expected} "
                f"does not match provided size {value}"
            )
        return
    if len(free) > 1:
        return  # cannot solve multi-symbol dims; later args may bind them
    sym = free[0]
    coeff = linear_coefficient(expr, sym)
    if coeff is None or not coeff.is_constant():
        return
    c = coeff.as_int()
    d = expr.subs({sym: 0}).evaluate(bound)
    if c == 0:
        return
    num = value - int(d)
    if num % c != 0:
        raise ArgumentError(
            f"argument {argname!r}: cannot solve {expr} == {value} for {sym}"
        )
    bound[sym.name] = num // c


def validate_arguments(sdfg, arrays: Mapping[str, Any], symbols: Mapping[str, int]) -> None:
    """Check that every externally-visible container and free symbol is
    provided and type-consistent."""
    for name, desc in sdfg.arglist().items():
        if isinstance(desc, Stream):
            continue
        if name not in arrays:
            raise ArgumentError(f"missing argument {name!r}")
        arr = arrays[name]
        if isinstance(desc, Scalar):
            continue
        if not isinstance(arr, np.ndarray):
            raise ArgumentError(f"argument {name!r} must be a numpy array")
        if arr.dtype != desc.dtype.as_numpy():
            raise ArgumentError(
                f"argument {name!r} has dtype {arr.dtype}, "
                f"expected {desc.dtype.name}"
            )
    for sym in sorted(sdfg.free_symbols()):
        if sym not in symbols:
            raise ArgumentError(f"unbound symbol {sym!r}; pass it as a keyword")


def split_arguments(sdfg, kwargs: Mapping[str, Any]):
    """Split keyword arguments into (arrays, symbols), inferring symbols."""
    arrays: Dict[str, Any] = {}
    symbols: Dict[str, int] = {}
    for k, v in kwargs.items():
        if k in sdfg.arrays:
            arrays[k] = v
        elif isinstance(v, (int, np.integer)):
            symbols[k] = int(v)
        elif isinstance(v, float) and v == int(v):
            symbols[k] = int(v)
        else:
            raise ArgumentError(f"unexpected argument {k!r}")
    symbols = infer_symbols(sdfg, arrays, symbols)
    # Scalars may be passed as plain numbers; normalize to 0-d arrays here.
    for name, desc in sdfg.arrays.items():
        if isinstance(desc, Scalar) and name in arrays:
            val = arrays[name]
            if not isinstance(val, np.ndarray):
                arrays[name] = np.full((1,), val, dtype=desc.dtype.as_numpy())
    validate_arguments(sdfg, arrays, symbols)
    return arrays, symbols
