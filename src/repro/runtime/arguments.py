"""Invocation-argument handling: symbol inference and validation.

DaCe programs are called with arrays whose concrete shapes determine the
symbolic sizes (``Laplace(A=a, T=500)`` binds ``N = 2033`` from ``A``'s
shape).  ``infer_symbols`` solves the symbolic shape expressions against
the provided arrays; ``validate_arguments`` checks dtypes and
consistency.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

import numpy as np

from repro.chaos import faultpoint
from repro.sdfg.data import Scalar, Stream
from repro.symbolic import Expr, Integer, Symbol
from repro.symbolic.sets import linear_coefficient


class ArgumentError(TypeError):
    """Raised on missing/inconsistent invocation arguments."""


#: Sentinel distinguishing "argument absent" from any passable value.
_MISSING = object()


def infer_symbols(sdfg, arrays: Mapping[str, np.ndarray], symbols: Mapping[str, int]) -> Dict[str, int]:
    """Infer free symbol values from concrete array shapes.

    Handles the two shapes that occur in practice: a bare symbol dimension
    (``N``) and an affine single-symbol dimension (``N + 1``, ``2*N``).
    Explicitly passed ``symbols`` take precedence; inconsistencies raise.
    """
    bound: Dict[str, int] = dict(symbols)
    for name, desc in sdfg.arrays.items():
        if name not in arrays or isinstance(desc, Stream):
            continue
        arr = arrays[name]
        shape = getattr(arr, "shape", None)
        if shape is None:
            continue
        if isinstance(desc, Scalar):
            continue
        if len(shape) != len(desc.shape):
            raise ArgumentError(
                f"argument {name!r} has rank {len(shape)}, "
                f"expected {len(desc.shape)}"
            )
        for concrete, symbolic in zip(shape, desc.shape):
            _unify(symbolic, int(concrete), bound, name)
    return bound


def _unify(expr: Expr, value: int, bound: Dict[str, int], argname: str) -> None:
    free = [s for s in expr.free_symbols if s.name not in bound]
    if not free:
        expected = expr.evaluate(bound)
        if int(expected) != value:
            raise ArgumentError(
                f"argument {argname!r}: dimension {expr} = {expected} "
                f"does not match provided size {value}"
            )
        return
    if len(free) > 1:
        return  # cannot solve multi-symbol dims; later args may bind them
    sym = free[0]
    coeff = linear_coefficient(expr, sym)
    if coeff is None or not coeff.is_constant():
        return
    c = coeff.as_int()
    d = expr.subs({sym: 0}).evaluate(bound)
    if c == 0:
        return
    num = value - int(d)
    if num % c != 0:
        raise ArgumentError(
            f"argument {argname!r}: cannot solve {expr} == {value} for {sym}"
        )
    bound[sym.name] = num // c


def validate_arguments(sdfg, arrays: Mapping[str, Any], symbols: Mapping[str, int]) -> None:
    """Check that every externally-visible container and free symbol is
    provided and type-consistent."""
    for name, desc in sdfg.arglist().items():
        if isinstance(desc, Stream):
            continue
        if name not in arrays:
            raise ArgumentError(f"missing argument {name!r}")
        arr = arrays[name]
        if isinstance(desc, Scalar):
            continue
        if not isinstance(arr, np.ndarray):
            raise ArgumentError(f"argument {name!r} must be a numpy array")
        if arr.dtype != desc.dtype.as_numpy():
            raise ArgumentError(
                f"argument {name!r} has dtype {arr.dtype}, "
                f"expected {desc.dtype.name}"
            )
    for sym in sorted(sdfg.free_symbols()):
        if sym not in symbols:
            raise ArgumentError(f"unbound symbol {sym!r}; pass it as a keyword")


class MarshalingPlan:
    """Cached per-SDFG argument-marshaling recipe (execution fast path).

    ``CompiledSDFG.__call__`` re-splits, re-infers, and re-validates its
    keyword arguments on every invocation.  After the first (fully
    validated) call, the work is a pure function of the argument
    *signature*: which names are arrays, how scalars are wrapped, and how
    each symbol is obtained (passed explicitly, or solved from one array
    dimension).  This plan records those recipes so subsequent calls with
    the same signature marshal in O(#args) without re-running
    ``infer_symbols``/``validate_arguments``.

    The fast path still cheap-checks dtype and rank per array; any
    mismatch (or any surprise at all) returns ``None`` from
    :meth:`apply`, sending the call back through the slow, fully
    validated path.
    """

    __slots__ = ("key_set", "array_items", "symbol_recipes", "needs_slow")

    def __init__(self, key_set, array_items, symbol_recipes, needs_slow):
        self.key_set = key_set
        self.array_items = array_items
        self.symbol_recipes = symbol_recipes
        self.needs_slow = needs_slow

    @staticmethod
    def build(sdfg, kwargs, arrays, symbols) -> "MarshalingPlan":
        """Derive a plan from one successful ``split_arguments`` run."""
        key_set = frozenset(kwargs)
        needs_slow = False
        array_items = []
        for name in kwargs:
            desc = sdfg.arrays.get(name)
            if desc is None:
                continue
            if isinstance(desc, Stream):
                needs_slow = True  # streams keep full handling
                continue
            if isinstance(desc, Scalar):
                array_items.append((name, True, desc.dtype.as_numpy(), None, None))
            else:
                arr = arrays.get(name)
                if not isinstance(arr, np.ndarray):
                    needs_slow = True
                    continue
                array_items.append((name, False, None, arr.dtype, arr.ndim))

        symbol_recipes = []
        for sym in symbols:
            if sym in kwargs:
                symbol_recipes.append(("explicit", sym, None))
                continue
            recipe = MarshalingPlan._shape_recipe(sdfg, sym, kwargs)
            if recipe is None:
                needs_slow = True
            else:
                symbol_recipes.append(("shape", sym, recipe))
        return MarshalingPlan(key_set, array_items, symbol_recipes, needs_slow)

    @staticmethod
    def _shape_recipe(sdfg, sym: str, kwargs):
        """Find (array, dim, coeff, offset) so that
        ``sym = (array.shape[dim] - offset) // coeff``."""
        for name, desc in sdfg.arrays.items():
            if name not in kwargs or isinstance(desc, (Scalar, Stream)):
                continue
            for dim, expr in enumerate(desc.shape):
                free = expr.free_symbols
                if len(free) != 1 or next(iter(free)).name != sym:
                    continue
                s = next(iter(free))
                coeff = linear_coefficient(expr, s)
                if coeff is None or not coeff.is_constant():
                    continue
                c = coeff.as_int()
                if c == 0:
                    continue
                offset = expr.subs({s: 0})
                if not offset.is_constant():
                    continue
                return (name, dim, c, int(offset.evaluate({})))
        return None

    def matches(self, kwargs) -> bool:
        return not self.needs_slow and frozenset(kwargs) == self.key_set

    def apply(self, kwargs):
        """Marshal ``kwargs`` into (arrays, symbols) along the recorded
        recipes.

        *Signature drift* (a name missing, an array of a different
        dtype/rank, an unsolvable shape) returns ``None`` — the caller
        falls back to the slow, fully validated path.  Genuinely bad
        values (an unconvertible scalar or symbol) raise
        :class:`ArgumentError` with the argument name, instead of being
        swallowed by a blanket ``except`` that used to hide real bugs.
        """
        arrays: Dict[str, Any] = {}
        for name, is_scalar, scalar_dtype, exp_dtype, exp_ndim in self.array_items:
            v = kwargs.get(name, _MISSING)
            if v is _MISSING:
                return None  # signature drift: slow path re-validates
            if is_scalar:
                if not isinstance(v, np.ndarray):
                    try:
                        v = np.full((1,), v, dtype=scalar_dtype)
                    except (TypeError, ValueError) as err:
                        raise ArgumentError(
                            f"argument {name!r}: cannot convert "
                            f"{type(v).__name__} value {v!r} to scalar dtype "
                            f"{np.dtype(scalar_dtype).name}"
                        ) from err
            elif (
                not isinstance(v, np.ndarray)
                or v.dtype != exp_dtype
                or v.ndim != exp_ndim
            ):
                return None
            arrays[name] = v
        symbols: Dict[str, int] = {}
        for kind, sym, recipe in self.symbol_recipes:
            if kind == "explicit":
                v = kwargs.get(sym, _MISSING)
                if v is _MISSING:
                    return None
                try:
                    symbols[sym] = int(v)
                except (TypeError, ValueError) as err:
                    raise ArgumentError(
                        f"symbol {sym!r}: cannot convert "
                        f"{type(v).__name__} value {v!r} to an integer"
                    ) from err
            else:
                name, dim, c, offset = recipe
                arr = arrays.get(name)
                if not isinstance(arr, np.ndarray) or dim >= arr.ndim:
                    return None
                num = int(arr.shape[dim]) - offset
                if num % c != 0:
                    return None
                symbols[sym] = num // c
        return arrays, symbols


def split_arguments(sdfg, kwargs: Mapping[str, Any]):
    """Split keyword arguments into (arrays, symbols), inferring symbols."""
    faultpoint("arguments.marshal", sdfg=getattr(sdfg, "name", None))
    arrays: Dict[str, Any] = {}
    symbols: Dict[str, int] = {}
    for k, v in kwargs.items():
        if k in sdfg.arrays:
            arrays[k] = v
        elif isinstance(v, (int, np.integer)):
            symbols[k] = int(v)
        elif isinstance(v, float) and v == int(v):
            symbols[k] = int(v)
        else:
            raise ArgumentError(f"unexpected argument {k!r}")
    symbols = infer_symbols(sdfg, arrays, symbols)
    # Scalars may be passed as plain numbers; normalize to 0-d arrays here.
    for name, desc in sdfg.arrays.items():
        if isinstance(desc, Scalar) and name in arrays:
            val = arrays[name]
            if not isinstance(val, np.ndarray):
                arrays[name] = np.full((1,), val, dtype=desc.dtype.as_numpy())
    validate_arguments(sdfg, arrays, symbols)
    return arrays, symbols
