"""Analytic (roofline-style) performance model over SDFGs.

The model consumes exactly what SDFG analysis provides — propagated
memlet volumes (data movement) and tasklet operation counts (work) — and
a machine model, producing a simulated execution time.  It is the
substitute for the paper's GPU and FPGA hardware runs (DESIGN.md §1):
absolute numbers are estimates, but *relative* behavior (who wins, how
copies and launches dominate small kernels, how pipelining beats naive
HLS by orders of magnitude) follows from the same quantities the paper's
analysis is based on.

Main entry points::

    report = simulate(sdfg, machine="gpu", symbols={"N": 4096})
    report.time            # seconds
    report.flops, report.bytes_moved
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.runtime.machine import MACHINES, FPGAModel, MachineModel
from repro.sdfg.data import Stream
from repro.sdfg.dtypes import Language, StorageType
from repro.sdfg.nodes import (
    AccessNode,
    ConsumeEntry,
    EntryNode,
    ExitNode,
    MapEntry,
    NestedSDFG,
    Reduce,
    Tasklet,
)
from repro.graph import topological_sort

_GPU_STORAGE = {StorageType.GPU_Global, StorageType.GPU_Shared}
_HOST_STORAGE = {
    StorageType.Default,
    StorageType.CPU_Heap,
    StorageType.CPU_Pinned,
    StorageType.CPU_ThreadLocal,
}


def tasklet_flops(tasklet: Tasklet) -> int:
    """Arithmetic operation count of one tasklet execution (AST walk)."""
    if tasklet.language != Language.Python:
        return 2  # opaque external code: assume a multiply-add
    try:
        tree = ast.parse(tasklet.code)
    except SyntaxError:
        return 1
    flops = 0
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp):
            flops += 10 if isinstance(node.op, ast.Pow) else 1
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            flops += 1
        elif isinstance(node, ast.Call):
            flops += 10  # transcendental
        elif isinstance(node, ast.Compare):
            flops += len(node.ops)
    return max(flops, 1)


@dataclass
class ScopeCost:
    label: str
    iterations: float = 0.0
    flops: float = 0.0
    bytes_moved: float = 0.0
    random_access: bool = False
    kernel: bool = False  # launched as one device kernel
    pes: int = 1  # parallel processing elements (FPGA)
    double_buffered: bool = False


@dataclass
class SimReport:
    machine: str
    time: float = 0.0
    flops: float = 0.0
    bytes_moved: float = 0.0
    transfer_bytes: float = 0.0
    kernel_launches: int = 0
    breakdown: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def achieved_flops(self) -> float:
        return self.flops / self.time if self.time > 0 else 0.0

    def fraction_of_peak(self, machine: MachineModel) -> float:
        return self.achieved_flops / machine.peak_flops_dp

    def __repr__(self) -> str:
        return (
            f"SimReport({self.machine}: {self.time * 1e3:.3f} ms, "
            f"{self.flops / 1e9:.2f} Gflop, {self.bytes_moved / 1e9:.3f} GB)"
        )


class PerformanceModel:
    def __init__(self, sdfg, symbols: Dict[str, int]):
        sdfg.validate()
        sdfg.propagate()
        self.sdfg = sdfg
        self.symbols = dict(symbols)
        for k, v in sdfg.constants.items():
            self.symbols.setdefault(k, v)

    # ------------------------------------------------------------- execution
    def state_visit_counts(self, max_visits: int = 100_000) -> Dict[int, int]:
        """Walk the state machine concretely to count state executions.

        Symbol-governed loops evaluate exactly; data-dependent conditions
        (reading containers) are taken as false — each such state counts
        once, a deliberate lower bound.
        """
        counts: Dict[int, int] = {id(s): 0 for s in self.sdfg.nodes()}
        env = dict(self.symbols)
        state = self.sdfg.start_state
        visits = 0
        while state is not None and visits < max_visits:
            counts[id(state)] += 1
            visits += 1
            next_state = None
            for e in self.sdfg.out_edges(state):
                try:
                    taken = bool(e.data.condition.evaluate(env))
                except KeyError:
                    taken = False  # data-dependent: not taken
                if taken:
                    for k, v in e.data.assignments.items():
                        try:
                            env[k] = v.evaluate(env)
                        except KeyError:
                            env[k] = 0
                    next_state = e.dst
                    break
            state = next_state
        return counts

    # --------------------------------------------------------------- analysis
    def _eval(self, expr) -> float:
        try:
            return float(expr.evaluate(self.symbols))
        except KeyError:
            return 1.0  # unbound (data-dependent); count once

    def state_costs(self, state) -> Tuple[List[ScopeCost], float]:
        """Per-top-level-scope costs and host<->device transfer bytes."""
        costs: List[ScopeCost] = []
        transfer = 0.0
        sd = state.scope_dict()
        order = topological_sort(state)
        for node in order:
            if sd.get(node) is not None:
                continue
            if isinstance(node, MapEntry):
                costs.append(self._scope_cost(state, node, sd))
            elif isinstance(node, ConsumeEntry):
                cost = ScopeCost(label=node.consume.label)
                cost.iterations = self._eval(node.consume.num_pes)
                cost.flops = cost.iterations * 2
                costs.append(cost)
            elif isinstance(node, Tasklet):
                c = ScopeCost(label=node.name, iterations=1)
                c.flops = tasklet_flops(node)
                c.bytes_moved = self._edge_bytes(state, node)
                costs.append(c)
            elif isinstance(node, Reduce):
                in_e = state.in_edges(node)[0]
                vol = self._eval(in_e.data.volume)
                dt = self.sdfg.arrays[in_e.data.data].dtype.bytes
                c = ScopeCost(label=node.label, iterations=vol)
                c.flops = vol
                c.bytes_moved = vol * dt * 2
                costs.append(c)
            elif isinstance(node, NestedSDFG):
                inner = PerformanceModel(node.sdfg, self.symbols)
                for st in node.sdfg.nodes():
                    cs, tr = inner.state_costs(st)
                    costs.extend(cs)
                    transfer += tr
            elif isinstance(node, AccessNode):
                transfer += self._copy_transfer_bytes(state, node)
        return costs, transfer

    def _edge_bytes(self, state, node) -> float:
        total = 0.0
        for e in state.in_edges(node) + state.out_edges(node):
            if e.data.is_empty() or e.data.data not in self.sdfg.arrays:
                continue
            desc = self.sdfg.arrays[e.data.data]
            total += self._eval(e.data.volume) * desc.dtype.bytes
        return total

    def _scope_cost(self, state, entry: MapEntry, sd) -> ScopeCost:
        m = entry.map
        cost = ScopeCost(label=m.label, kernel=True)
        cost.iterations = self._eval(m.num_iterations())
        # Work: sum over tasklets in the scope (nested scopes multiply).
        exit_ = state.exit_node(entry)
        for node in state.scope_subgraph(entry, include_scope_nodes=False):
            if isinstance(node, Tasklet):
                iters = self._nested_iterations(state, node, sd, entry)
                cost.flops += tasklet_flops(node) * iters
            elif isinstance(node, AccessNode):
                desc = node.desc(self.sdfg)
                if getattr(desc, "double_buffered", False):
                    cost.double_buffered = True
        # Data: propagated boundary memlets.
        for e in state.in_edges(entry) + state.out_edges(exit_):
            if e.data.is_empty() or e.data.data not in self.sdfg.arrays:
                continue
            desc = self.sdfg.arrays[e.data.data]
            if isinstance(desc, Stream):
                continue
            cost.bytes_moved += self._eval(e.data.volume) * desc.dtype.bytes
            if e.data.dynamic:
                cost.random_access = True
        # Locality credit: a tiled scope whose per-tile footprint fits in
        # LLC re-reads from cache; approximate by discounting redundant
        # traffic down to one pass over the union footprint.
        for e in state.in_edges(entry):
            if e.data.is_empty() or e.data.subset is None:
                continue
            if e.data.data not in self.sdfg.arrays:
                continue
            desc = self.sdfg.arrays[e.data.data]
            if isinstance(desc, Stream):
                continue
            footprint = self._eval(e.data.subset.num_elements()) * desc.dtype.bytes
            volume = self._eval(e.data.volume) * desc.dtype.bytes
            if volume > footprint * 4:
                # Reuse exists; charge footprint once per sqrt(excess) as a
                # cache-aware middle ground between perfect and no reuse.
                cost.bytes_moved -= 0.75 * (volume - footprint)
        cost.pes = self._unrolled_pes(state, entry)
        return cost

    def _nested_iterations(self, state, node, sd, top_entry) -> float:
        iters = 1.0
        anc = sd.get(node)
        while anc is not None:
            if isinstance(anc, MapEntry):
                iters *= self._eval(anc.map.num_iterations())
            elif isinstance(anc, ConsumeEntry):
                iters *= self._eval(anc.consume.num_pes)
            anc = sd.get(anc)
        return iters

    def _unrolled_pes(self, state, entry: MapEntry) -> int:
        if entry.map.unroll or entry.map.schedule.name == "FPGA_Device":
            try:
                return int(self._eval(entry.map.num_iterations()))
            except Exception:
                return 1
        return 1

    def _copy_transfer_bytes(self, state, node: AccessNode) -> float:
        total = 0.0
        for e in state.in_edges(node):
            if e.data.is_empty() or not isinstance(e.src, AccessNode):
                continue
            src_desc = self.sdfg.arrays[e.src.data]
            dst_desc = self.sdfg.arrays[e.dst.data]
            if isinstance(src_desc, Stream) or isinstance(dst_desc, Stream):
                continue
            cross = (
                (src_desc.storage in _GPU_STORAGE) != (dst_desc.storage in _GPU_STORAGE)
            ) or (
                (src_desc.storage == StorageType.FPGA_Global)
                != (dst_desc.storage == StorageType.FPGA_Global)
            )
            if cross:
                total += self._eval(e.data.volume) * dst_desc.dtype.bytes
        return total


def simulate(
    sdfg,
    machine: Union[str, MachineModel, FPGAModel] = "cpu",
    symbols: Optional[Dict[str, int]] = None,
    naive_fpga: bool = False,
) -> SimReport:
    """Predict the SDFG's execution time on a machine model."""
    if isinstance(machine, str):
        machine_obj = MACHINES[machine]
        machine_name = machine
    else:
        machine_obj = machine
        machine_name = machine_obj.name
    model = PerformanceModel(sdfg, symbols or {})
    visits = model.state_visit_counts()
    report = SimReport(machine=machine_name)
    for state in sdfg.nodes():
        reps = max(visits[id(state)], 1) if visits[id(state)] else 0
        if reps == 0:
            continue
        costs, transfer = model.state_costs(state)
        state_time = 0.0
        for c in costs:
            if isinstance(machine_obj, FPGAModel):
                if naive_fpga:
                    t = machine_obj.time_naive(c.flops)
                else:
                    t = max(
                        machine_obj.time_pipelined(c.iterations, c.pes),
                        machine_obj.time_memory(c.bytes_moved),
                    )
            else:
                t_comp = machine_obj.time_compute(c.flops)
                t_mem = machine_obj.time_memory(c.bytes_moved, c.random_access)
                t = max(t_comp, t_mem)
                if c.kernel:
                    t += machine_obj.launch_latency
                    report.kernel_launches += reps
            state_time += t
            report.flops += c.flops * reps
            report.bytes_moved += c.bytes_moved * reps
            report.breakdown.append((f"{state.name}/{c.label}", t * reps))
        if isinstance(machine_obj, MachineModel):
            t_tr = machine_obj.time_transfer(transfer)
        else:
            t_tr = machine_obj.time_memory(transfer)
        report.transfer_bytes += transfer * reps
        state_time += t_tr
        if t_tr:
            report.breakdown.append((f"{state.name}/transfer", t_tr * reps))
        report.time += state_time * reps
    return report
