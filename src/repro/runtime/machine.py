"""Machine models of the paper's experimental platforms (§6 setup).

These descriptions parameterize the analytic performance model that
stands in for the GPU and FPGA hardware of the paper's testbed (see
DESIGN.md §1): an Intel Xeon E5-2650 v4 host, an NVIDIA Tesla P100 (and
the V100 of Table 3), and a Xilinx VCU1525 board with an XCVU9P FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class MachineModel:
    """Roofline-style description of one execution platform."""

    name: str
    #: Peak double-precision floating-point rate [flop/s].
    peak_flops_dp: float
    #: Peak single-precision rate [flop/s].
    peak_flops_sp: float
    #: Main-memory bandwidth [byte/s].
    mem_bandwidth: float
    #: Sustained fraction of peak compute a tuned kernel reaches.
    compute_efficiency: float = 0.85
    #: Sustained fraction of peak bandwidth for streaming access.
    bandwidth_efficiency: float = 0.80
    #: Fraction of bandwidth retained under irregular (gather) access.
    random_access_factor: float = 0.15
    #: Host link (PCIe) bandwidth [byte/s]; None for the host itself.
    pcie_bandwidth: Optional[float] = None
    #: Fixed cost of launching one kernel / one parallel region [s].
    launch_latency: float = 0.0
    #: Number of independent compute units (cores / SMs / SLRs).
    compute_units: int = 1
    #: Last-level cache capacity [bytes] (locality credit for tiling).
    llc_bytes: int = 0

    def time_compute(self, flops: float, single_precision: bool = False) -> float:
        peak = self.peak_flops_sp if single_precision else self.peak_flops_dp
        return flops / (peak * self.compute_efficiency) if flops else 0.0

    def time_memory(self, bytes_moved: float, random_access: bool = False) -> float:
        bw = self.mem_bandwidth * self.bandwidth_efficiency
        if random_access:
            bw *= self.random_access_factor
        return bytes_moved / bw if bytes_moved else 0.0

    def time_transfer(self, bytes_moved: float) -> float:
        if self.pcie_bandwidth is None or not bytes_moved:
            return 0.0
        return bytes_moved / self.pcie_bandwidth


@dataclass(frozen=True)
class FPGAModel:
    """Pipeline model of a reconfigurable device (paper §3.3/§6: Maps
    synthesize processing elements; Streams synthesize FIFOs)."""

    name: str
    clock_hz: float
    #: DSP slices (bounds the number of parallel floating-point PEs).
    dsp_slices: int
    #: DSPs consumed by one double-precision multiply-add PE.
    dsp_per_dp_op: int = 8
    #: On-chip memory [bytes] (BRAM+URAM), bounds local buffers.
    onchip_bytes: int = 43_000_000
    #: Off-chip DDR bandwidth [byte/s] across all banks.
    ddr_bandwidth: float = 76.8e9
    #: Initiation interval of a naively-scheduled (unpipelined) operation
    #: [cycles]: sequential HLS issues one op every II_naive cycles.
    ii_naive: int = 40
    #: Pipelined initiation interval [cycles/iteration].
    ii_pipelined: int = 1

    def time_naive(self, operations: float) -> float:
        """Unoptimized HLS: fully sequential, one op per II_naive cycles.

        This is the paper's 'naive HLS code' baseline, which SDFGs beat
        by up to five orders of magnitude (§1, §6.1)."""
        return operations * self.ii_naive / self.clock_hz

    def time_pipelined(self, iterations: float, num_pes: int = 1) -> float:
        """Pipelined (II=1) execution over ``num_pes`` parallel PEs."""
        pes = max(1, min(num_pes, self.max_parallel_pes()))
        return iterations * self.ii_pipelined / (self.clock_hz * pes)

    def time_memory(self, bytes_moved: float) -> float:
        return bytes_moved / self.ddr_bandwidth if bytes_moved else 0.0

    def max_parallel_pes(self) -> int:
        return max(1, self.dsp_slices // self.dsp_per_dp_op)


#: Intel Xeon E5-2650 v4: 12 cores @ 2.2 GHz, AVX2 FMA
#: (12 x 2.2e9 x 16 DP flop/cycle), 4-channel DDR4-2400.
XEON_E5_2650V4 = MachineModel(
    name="Intel Xeon E5-2650 v4",
    peak_flops_dp=422.4e9,
    peak_flops_sp=844.8e9,
    mem_bandwidth=76.8e9,
    compute_efficiency=0.80,
    bandwidth_efficiency=0.80,
    launch_latency=5e-6,  # OpenMP parallel region fork/join
    compute_units=12,
    llc_bytes=30 * 1024 * 1024,
)

#: NVIDIA Tesla P100 (16 GB HBM2, PCIe).
TESLA_P100 = MachineModel(
    name="NVIDIA Tesla P100",
    peak_flops_dp=4.7e12,
    peak_flops_sp=9.3e12,
    mem_bandwidth=732e9,
    compute_efficiency=0.80,
    bandwidth_efficiency=0.75,
    pcie_bandwidth=12.0e9,
    launch_latency=6e-6,
    compute_units=56,
    llc_bytes=4 * 1024 * 1024,
)

#: NVIDIA Tesla V100 (Table 3's second platform).
TESLA_V100 = MachineModel(
    name="NVIDIA Tesla V100",
    peak_flops_dp=7.8e12,
    peak_flops_sp=15.7e12,
    mem_bandwidth=900e9,
    compute_efficiency=0.80,
    bandwidth_efficiency=0.78,
    pcie_bandwidth=12.0e9,
    launch_latency=5e-6,
    compute_units=80,
    llc_bytes=6 * 1024 * 1024,
)

#: Xilinx XCVU9P on the VCU1525 board (4x DDR4-2400 banks).
XCVU9P = FPGAModel(
    name="Xilinx XCVU9P (VCU1525)",
    clock_hz=300e6,
    dsp_slices=6840,
    ddr_bandwidth=4 * 19.2e9,
)

MACHINES: Dict[str, object] = {
    "cpu": XEON_E5_2650V4,
    "gpu": TESLA_P100,
    "gpu_v100": TESLA_V100,
    "fpga": XCVU9P,
}
