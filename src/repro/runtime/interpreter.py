"""Reference interpreter: direct execution of SDFG operational semantics.

This is an executable transcription of the paper's Appendix A: states
execute by propagating data along dataflow edges in dependency order;
map scopes expand their symbolic ranges; consume scopes pop from streams
until quiescence; write-conflict-resolution memlets combine values; and
interstate transitions select the next state after each state completes.

The interpreter is intentionally simple and unoptimized — it is the
semantic ground truth that the code generators are validated against
(``tests/runtime/test_interpreter.py`` cross-checks both).
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.graph import topological_sort
from repro.instrumentation import (
    InstrumentationRecorder,
    InstrumentationType,
    has_instrumentation,
    profiling_enabled,
    scope_volume_expr,
    state_volume_expr,
    tasklet_volume_expr,
)
from repro.sdfg.data import Scalar, Stream
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    ConsumeEntry,
    ConsumeExit,
    EntryNode,
    ExitNode,
    MapEntry,
    MapExit,
    NestedSDFG,
    Node,
    Reduce,
    Tasklet,
)
from repro.sdfg.dtypes import Language
from repro.runtime.arguments import split_arguments
from repro.runtime.sanitizer import GuardedView, _clamp_index
from repro.runtime.streams import StreamArray, StreamQueue
from repro.symbolic import Expr


class InterpreterError(RuntimeError):
    pass


def _compile_wcr(wcr: str) -> Callable:
    return eval(wcr, {"min": min, "max": max, "math": math, "np": np})


class SDFGInterpreter:
    """Executes an SDFG directly on NumPy arrays."""

    def __init__(self, sdfg, validate: bool = True, recorder=None):
        self.sdfg = sdfg
        if validate:
            sdfg.validate()
        self._tasklet_code_cache: Dict[int, Any] = {}
        self._wcr_cache: Dict[str, Callable] = {}
        #: Shared event bus; set externally (CompiledSDFG, nested runs) or
        #: created per-call when the SDFG carries instrumentation.
        self.recorder = recorder
        #: Sanitizer/watchdog bundle; set externally (CompiledSDFG, nested
        #: runs).  Must be in place before ``_allocate`` so transient
        #: allocations register shadow masks and memory accounting.
        self.guard = None
        #: Report of the most recent standalone ``__call__``.
        self.last_report = None

    # ------------------------------------------------------------------ entry
    def __call__(self, **kwargs):
        arrays, symbols = split_arguments(self.sdfg, kwargs)
        mem = self._allocate(arrays, symbols)
        sym: Dict[str, Any] = dict(symbols)
        for k, v in self.sdfg.constants.items():
            sym.setdefault(k, v)
        own_recorder = self.recorder is None and (
            has_instrumentation(self.sdfg) or profiling_enabled()
        )
        if not own_recorder:
            self._run_state_machine(self.sdfg, mem, sym)
            return None
        self.recorder = InstrumentationRecorder()
        try:
            itype = self.sdfg.instrument
            if itype != InstrumentationType.NONE or profiling_enabled():
                name = itype.name if itype != InstrumentationType.NONE else "TIMER"
                self.recorder.enter("sdfg", self.sdfg.name, name)
                try:
                    self._run_state_machine(self.sdfg, mem, sym)
                finally:
                    self.recorder.exit()
            else:
                self._run_state_machine(self.sdfg, mem, sym)
            self.last_report = self.recorder.report(
                self.sdfg.name, backend="interpreter"
            )
        finally:
            self.recorder = None
        return None

    def run_on(self, mem: Dict[str, Any], sym: Dict[str, Any]) -> None:
        """Run on pre-bound memory (used for nested SDFGs)."""
        self._run_state_machine(self.sdfg, mem, sym)

    # ------------------------------------------------------------- allocation
    def _allocate(self, arrays: Mapping[str, np.ndarray], symbols: Mapping[str, int]):
        mem: Dict[str, Any] = {}
        loc = (self.sdfg.name, None)
        for name, desc in self.sdfg.arrays.items():
            if name in arrays:
                mem[name] = arrays[name]
                continue
            if not desc.transient:
                if isinstance(desc, Stream):
                    shape = tuple(int(s.evaluate(symbols)) for s in desc.shape)
                    mem[name] = StreamArray(
                        shape, int(desc.buffer_size.evaluate(symbols)),
                        name=name, location=loc,
                    )
                    continue
                raise InterpreterError(f"missing argument {name!r}")
            if isinstance(desc, Stream):
                shape = tuple(int(s.evaluate(symbols)) for s in desc.shape)
                mem[name] = StreamArray(
                    shape, int(desc.buffer_size.evaluate(symbols)),
                    name=name, location=loc,
                )
            else:
                shape = tuple(int(s.evaluate(symbols)) for s in desc.shape)
                mem[name] = np.zeros(shape, dtype=desc.dtype.as_numpy())
                if self.guard is not None:
                    self.guard.on_alloc(
                        f"{self.sdfg.name}.{name}", name, mem[name]
                    )
        return mem

    # ---------------------------------------------------------- state machine
    def _run_state_machine(self, sdfg, mem, sym) -> None:
        state = sdfg.start_state
        if state is None:
            return
        fuel = 10_000_000  # guards against non-terminating state machines
        while state is not None:
            fuel -= 1
            if fuel <= 0:
                raise InterpreterError("state machine exceeded execution budget")
            if self.guard is not None:
                self.guard.checkpoint()
            self._execute_state(sdfg, state, mem, sym)
            state = self._next_state(sdfg, state, mem, sym)

    def _condition_bindings(self, mem, sym) -> Dict[str, Any]:
        bindings = dict(sym)
        # Conditions may read scalar containers (data-dependent execution).
        for name, val in mem.items():
            if isinstance(val, np.ndarray) and val.size == 1:
                bindings.setdefault(name, val.reshape(-1)[0].item())
        return bindings

    def _next_state(self, sdfg, state, mem, sym):
        bindings = self._condition_bindings(mem, sym)
        for edge in sdfg.out_edges(state):
            try:
                taken = bool(edge.data.condition.evaluate(bindings))
            except KeyError as err:
                raise InterpreterError(
                    f"transition condition {edge.data.condition} references "
                    f"unbound name: {err}"
                ) from err
            if taken:
                for name, expr in edge.data.assignments.items():
                    sym[name] = expr.evaluate(bindings)
                return edge.dst
        return None

    # ---------------------------------------------------------- instrumentation
    @staticmethod
    def _instr_value(expr, bindings) -> Optional[int]:
        """Evaluate a symbolic instrumentation quantity; None when a
        referenced symbol is unbound (mirrors generated code's
        ``_instr_eval`` guard)."""
        if expr is None:
            return None
        try:
            return int(expr.evaluate({k: v for k, v in bindings.items()
                                      if isinstance(k, str)}))
        except Exception:
            return None

    # ----------------------------------------------------------------- states
    def _execute_state(self, sdfg, state, mem, sym) -> None:
        order = topological_sort(state)
        scope_dict = state.scope_dict()
        top_level = [n for n in order if scope_dict.get(n) is None]
        itype = state.instrument
        if self.recorder is None or itype == InstrumentationType.NONE:
            self._execute_nodes(sdfg, state, top_level, mem, sym, order, scope_dict)
            return
        self.recorder.enter("state", state.name, itype.name)
        try:
            self._execute_nodes(sdfg, state, top_level, mem, sym, order, scope_dict)
        finally:
            volume = None
            if itype.records_volume():
                volume = self._instr_value(state_volume_expr(sdfg, state), sym)
            self.recorder.exit(volume=volume)

    def _execute_nodes(
        self, sdfg, state, nodes: List[Node], mem, sym, full_order, scope_dict
    ) -> None:
        for node in nodes:
            if isinstance(node, ExitNode):
                continue  # handled by its entry
            if isinstance(node, EntryNode):
                self._execute_scope(sdfg, state, node, mem, sym, full_order, scope_dict)
            elif isinstance(node, Tasklet):
                self._execute_tasklet(sdfg, state, node, mem, sym)
            elif isinstance(node, Reduce):
                self._execute_reduce(sdfg, state, node, mem, sym)
            elif isinstance(node, NestedSDFG):
                self._execute_nested(sdfg, state, node, mem, sym)
            elif isinstance(node, AccessNode):
                self._execute_copies(sdfg, state, node, mem, sym)
            else:
                raise InterpreterError(f"cannot execute node {node!r}")

    # ----------------------------------------------------------------- scopes
    def _scope_body(self, state, entry, full_order, scope_dict) -> List[Node]:
        return [n for n in full_order if scope_dict.get(n) is entry]

    def _execute_scope(
        self, sdfg, state, entry: EntryNode, mem, sym, full_order, scope_dict
    ) -> None:
        body = self._scope_body(state, entry, full_order, scope_dict)
        if isinstance(entry, MapEntry):
            self._execute_map(sdfg, state, entry, body, mem, sym, full_order, scope_dict)
        else:
            self._execute_consume(
                sdfg, state, entry, body, mem, sym, full_order, scope_dict
            )

    def _dynamic_scope_inputs(self, sdfg, state, entry, mem, sym) -> Dict[str, Any]:
        """Values of non-relay input connectors (data-dependent ranges)."""
        extra: Dict[str, Any] = {}
        for conn in entry.in_connectors:
            if conn.startswith("IN_") or conn == "IN_stream":
                continue
            edges = state.in_edges_by_connector(entry, conn)
            if not edges:
                continue
            val = self._read_memlet(sdfg, edges[0].data, mem, sym)
            extra[conn] = val.item() if isinstance(val, np.ndarray) and val.size == 1 else val
        return extra

    def _execute_map(
        self, sdfg, state, entry: MapEntry, body, mem, sym, full_order, scope_dict
    ) -> None:
        extra = self._dynamic_scope_inputs(sdfg, state, entry, mem, sym)
        bindings = {**sym, **extra}
        ranges = []
        for param, rng in entry.map.param_ranges().items():
            ranges.append((param, rng.evaluate(bindings)))

        guard = self.guard

        def recurse(level: int, local_sym: Dict[str, Any]):
            if level == len(ranges):
                if guard is not None:
                    guard.map_iter(tuple(local_sym[p] for p, _ in ranges))
                self._execute_nodes(
                    sdfg, state, body, mem, local_sym, full_order, scope_dict
                )
                return
            param, rng = ranges[level]
            for value in rng:
                local_sym[param] = value
                recurse(level + 1, local_sym)
            local_sym.pop(param, None)

        itype = entry.map.instrument
        if self.recorder is None or itype == InstrumentationType.NONE:
            if guard is not None:
                guard.map_enter(entry.map.label)
            try:
                recurse(0, dict(bindings))
            finally:
                if guard is not None:
                    guard.map_exit()
            return
        self.recorder.enter("map", entry.map.label, itype.name)
        if guard is not None:
            guard.map_enter(entry.map.label)
        try:
            recurse(0, dict(bindings))
        finally:
            if guard is not None:
                guard.map_exit()
            iterations = volume = None
            if itype.records_iterations():
                iterations = self._instr_value(entry.map.num_iterations(), bindings)
            if itype.records_volume():
                volume = self._instr_value(
                    scope_volume_expr(sdfg, state, entry), bindings
                )
            self.recorder.exit(iterations=iterations, volume=volume)

    def _execute_consume(
        self, sdfg, state, entry: ConsumeEntry, body, mem, sym, full_order, scope_dict
    ) -> None:
        consume = entry.consume
        stream_edges = state.in_edges_by_connector(entry, "IN_stream")
        stream_name = stream_edges[0].data.data
        stream = mem[stream_name]
        queue = stream[0] if isinstance(stream, StreamArray) else stream
        num_pes = int(consume.num_pes.evaluate(sym))
        from repro.symbolic import parse_expr

        cond_expr = parse_expr(consume.condition) if consume.condition else None

        def quiescent() -> bool:
            if cond_expr is None:
                return len(queue) == 0
            bindings = self._condition_bindings(mem, sym)
            bindings[f"len_{stream_name}"] = len(queue)
            return bool(cond_expr.evaluate(bindings))

        itype = consume.instrument
        instrumented = self.recorder is not None and itype != InstrumentationType.NONE
        if instrumented:
            self.recorder.enter("consume", consume.label, itype.name)
        processed = 0
        try:
            fuel = 10_000_000
            while not quiescent():
                if self.guard is not None:
                    self.guard.checkpoint()
                # One round: each PE pops and processes one element if available.
                for pe in range(num_pes):
                    if not queue:
                        break
                    fuel -= 1
                    if fuel <= 0:
                        raise InterpreterError(
                            "consume scope exceeded execution budget"
                        )
                    element = queue.pop()
                    processed += 1
                    local = dict(sym)
                    local[consume.pe_param] = pe
                    local[("__stream_element__", stream_name)] = element
                    self._execute_nodes(
                        sdfg, state, body, mem, local, full_order, scope_dict
                    )
        finally:
            if instrumented:
                iterations = processed if itype.records_iterations() else None
                volume = None
                if itype.records_volume():
                    volume = self._instr_value(
                        scope_volume_expr(sdfg, state, entry), sym
                    )
                self.recorder.exit(iterations=iterations, volume=volume)

    # ---------------------------------------------------------------- tasklets
    def _execute_tasklet(self, sdfg, state, node: Tasklet, mem, sym) -> None:
        itype = node.instrument
        if self.recorder is None or itype == InstrumentationType.NONE:
            self._execute_tasklet_body(sdfg, state, node, mem, sym)
            return
        self.recorder.enter("tasklet", node.name, itype.name)
        try:
            self._execute_tasklet_body(sdfg, state, node, mem, sym)
        finally:
            volume = None
            if itype.records_volume():
                volume = self._instr_value(
                    tasklet_volume_expr(sdfg, state, node), sym
                )
            self.recorder.exit(volume=volume)

    def _execute_tasklet_body(self, sdfg, state, node: Tasklet, mem, sym) -> None:
        if node.language != Language.Python:
            raise InterpreterError(
                f"interpreter can only run Python tasklets, not {node.language}"
            )
        namespace: Dict[str, Any] = {
            "math": math,
            "np": np,
            "min": min,
            "max": max,
            "abs": abs,
            "int": int,
            "float": float,
        }
        for k, v in sym.items():
            if isinstance(k, str):
                namespace[k] = v
        # Bind inputs.
        out_streams: Dict[str, Tuple[Any, Memlet]] = {}
        for e in state.in_edges(node):
            if e.data.is_empty():
                continue
            desc = sdfg.arrays[e.data.data]
            if isinstance(desc, Stream):
                namespace[e.dst_conn] = self._stream_in_value(
                    sdfg, state, e, mem, sym
                )
            else:
                namespace[e.dst_conn] = self._guarded_read(
                    sdfg, state, node, e.data, mem, sym
                )
        # Prepare output stream bindings (tasklets may push explicitly).
        for e in state.out_edges(node):
            if e.data.is_empty():
                continue
            desc = sdfg.arrays[e.data.data]
            if isinstance(desc, Stream):
                queue = self._resolve_stream_queue(e.data, mem, sym)
                namespace[e.src_conn] = queue
                out_streams[e.src_conn] = (queue, e.data)

        code = self._tasklet_code_cache.get(id(node))
        if code is None:
            code = compile(node.code, f"<tasklet {node.name}>", "exec")
            self._tasklet_code_cache[id(node)] = code
        exec(code, namespace)

        # Write outputs.
        for e in state.out_edges(node):
            if e.data.is_empty():
                continue
            conn = e.src_conn
            desc = sdfg.arrays[e.data.data]
            if isinstance(desc, Stream):
                queue, _ = out_streams[conn]
                val = namespace.get(conn, queue)
                if val is not queue:
                    queue.push(val)  # plain assignment pushes once
                continue
            if conn not in namespace:
                if e.data.dynamic:
                    continue  # dynamic memlet: conditional write elided
                raise InterpreterError(
                    f"tasklet {node.name!r} did not assign output {conn!r}"
                )
            if self._guard_store(sdfg, state, node, e.data, namespace[conn], mem, sym):
                self._write_memlet(sdfg, e.data, namespace[conn], mem, sym)

    def _stream_in_value(self, sdfg, state, edge, mem, sym):
        """Input bound to a stream: inside a consume scope this is the
        popped element; otherwise the queue object itself (explicit pop)."""
        key = ("__stream_element__", edge.data.data)
        if key in sym:
            return sym[key]
        return self._resolve_stream_queue(edge.data, mem, sym)

    def _resolve_stream_queue(self, memlet: Memlet, mem, sym) -> StreamQueue:
        container = mem[memlet.data]
        if isinstance(container, StreamQueue):
            return container
        if isinstance(container, StreamArray):
            if memlet.subset is None or memlet.subset.dims == 0:
                return container[0]
            try:
                idx = memlet.subset.evaluate_indices(sym)
            except ValueError:
                return container[0]
            return container[idx]
        raise InterpreterError(f"{memlet.data!r} is not a stream")

    # ----------------------------------------------------------------- reduce
    _NP_REDUCERS = {
        "Sum": np.add,
        "Product": np.multiply,
        "Min": np.minimum,
        "Max": np.maximum,
    }

    def _execute_reduce(self, sdfg, state, node: Reduce, mem, sym) -> None:
        in_edge = state.in_edges(node)[0]
        out_edge = state.out_edges(node)[0]
        data = self._read_memlet(sdfg, in_edge.data, mem, sym)
        data = np.asarray(data)
        axes = node.axes if node.axes is not None else tuple(range(data.ndim))
        from repro.sdfg.dtypes import detect_reduction_type

        rtype = detect_reduction_type(node.wcr)
        ufunc = self._NP_REDUCERS.get(rtype.name)
        if ufunc is not None:
            result = ufunc.reduce(data, axis=tuple(axes))
        else:
            wcr = self._wcr(node.wcr)
            result = None
            flat = np.moveaxis(data, axes, tuple(range(len(axes))))
            flat = flat.reshape(-1, *flat.shape[len(axes):])
            for row in flat:
                result = row.copy() if result is None else wcr(result, row)
        if node.identity is not None:
            wcr = self._wcr(node.wcr)
            result = wcr(np.asarray(node.identity, dtype=data.dtype), result)
        self._write_memlet(sdfg, out_edge.data, result, mem, sym)
        self._mark_written(sdfg, out_edge.data.data)

    # ------------------------------------------------------------ nested SDFG
    def _execute_nested(self, sdfg, state, node: NestedSDFG, mem, sym) -> None:
        inner_mem: Dict[str, Any] = {}
        for e in state.in_edges(node):
            if e.data.is_empty() or e.dst_conn is None:
                continue
            inner_mem[e.dst_conn] = self._view_memlet(sdfg, e.data, mem, sym)
        for e in state.out_edges(node):
            if e.data.is_empty() or e.src_conn is None:
                continue
            if e.src_conn not in inner_mem:
                inner_mem[e.src_conn] = self._view_memlet(sdfg, e.data, mem, sym)
        inner_sym: Dict[str, Any] = {}
        for k, v in node.symbol_mapping.items():
            inner_sym[k] = v.evaluate(sym)
        for s in node.sdfg.free_symbols():
            if s not in inner_sym and s in sym:
                inner_sym[s] = sym[s]
        # Allocate the nested SDFG's transients.
        inner = SDFGInterpreter(node.sdfg, validate=False, recorder=self.recorder)
        inner.guard = self.guard
        for name, desc in node.sdfg.arrays.items():
            if name not in inner_mem:
                if isinstance(desc, Stream):
                    shape = tuple(int(s.evaluate(inner_sym)) for s in desc.shape)
                    inner_mem[name] = StreamArray(
                        shape, int(desc.buffer_size.evaluate(inner_sym)),
                        name=name, location=(node.sdfg.name, None),
                    )
                else:
                    shape = tuple(int(s.evaluate(inner_sym)) for s in desc.shape)
                    inner_mem[name] = np.zeros(shape, dtype=desc.dtype.as_numpy())
                    if self.guard is not None:
                        self.guard.on_alloc(
                            f"{node.sdfg.name}.{name}", name, inner_mem[name]
                        )
        itype = node.sdfg.instrument
        if self.recorder is not None and itype != InstrumentationType.NONE:
            self.recorder.enter("sdfg", node.sdfg.name, itype.name)
            try:
                inner.run_on(inner_mem, inner_sym)
            finally:
                self.recorder.exit()
        else:
            inner.run_on(inner_mem, inner_sym)

    # ------------------------------------------------------------------ copies
    def _execute_copies(self, sdfg, state, node: AccessNode, mem, sym) -> None:
        for e in state.in_edges(node):
            if e.data.is_empty():
                continue
            if isinstance(e.src, AccessNode):
                self._copy_edge(sdfg, state, e, mem, sym)
            elif isinstance(e.src, EntryNode) and e.data.data != node.data:
                # Scope-boundary copy (LocalStorage fill): memlet names the
                # source container; this node is the destination.
                src_view = self._view_memlet(sdfg, e.data, mem, sym)
                dsub = e.data.other_subset or sdfg.arrays[node.data].full_subset()
                target = mem[node.data]
                slices = dsub.evaluate(sym)
                target[slices] = np.asarray(src_view).reshape(target[slices].shape)
                self._mark_written(sdfg, node.data)
        for e in state.out_edges(node):
            # Scope-boundary copy-back (LocalStorage store): the memlet's
            # other_subset addresses the relay path's final destination.
            if (
                e.data.is_empty()
                or not isinstance(e.dst, ExitNode)
                or e.data.other_subset is None
                or e.data.data != node.data
            ):
                continue
            path = state.memlet_path(e)
            final = path[-1].dst
            if not isinstance(final, AccessNode):
                continue
            src_desc = sdfg.arrays[node.data]
            final_desc = sdfg.arrays[final.data]
            if isinstance(src_desc, Stream) and isinstance(final_desc, Stream):
                # Bulk drain: local stream into the global stream.
                sq = self._resolve_stream_queue(e.data, mem, sym)
                dq = self._resolve_stream_queue(
                    Memlet(data=final.data, subset=e.data.other_subset), mem, sym
                )
                while len(sq):
                    dq.push(sq.pop())
                continue
            src_view = self._view_memlet(sdfg, e.data, mem, sym)
            target = mem[final.data]
            slices = e.data.other_subset.evaluate(sym)
            if e.data.wcr is not None:
                wcr = self._wcr(e.data.wcr)
                target[slices] = wcr(
                    target[slices], np.asarray(src_view).reshape(target[slices].shape)
                )
            else:
                target[slices] = np.asarray(src_view).reshape(target[slices].shape)
            self._mark_written(sdfg, final.data)

    def _copy_edge(self, sdfg, state, e, mem, sym) -> None:
        src, dst = e.src, e.dst
        src_desc = sdfg.arrays[src.data]
        dst_desc = sdfg.arrays[dst.data]
        mA = e.data
        # Determine subsets on both sides.
        if mA.data == src.data:
            src_subset, dst_subset = mA.subset, mA.other_subset
        else:
            src_subset, dst_subset = mA.other_subset, mA.subset
        if isinstance(src_desc, Stream) and isinstance(dst_desc, Stream):
            # Bulk drain local -> global stream (LocalStream transformation).
            sq = self._resolve_stream_queue(
                Memlet(data=src.data, subset=src_subset), mem, sym
            )
            dq = self._resolve_stream_queue(
                Memlet(data=dst.data, subset=dst_subset), mem, sym
            )
            while len(sq):
                dq.push(sq.pop())
            return
        if isinstance(src_desc, Stream) and not isinstance(dst_desc, Stream):
            # Drain stream into array prefix (paper's Query/BFS pattern).
            queue = self._resolve_stream_queue(
                Memlet(data=src.data, subset=src_subset), mem, sym
            )
            vals = [queue.pop() for _ in range(len(queue))]
            arr = mem[dst.data]
            flat = arr.reshape(-1)
            flat[: len(vals)] = vals
            self._mark_written(sdfg, dst.data)
            return
        if isinstance(dst_desc, Stream) and not isinstance(src_desc, Stream):
            queue = self._resolve_stream_queue(
                Memlet(data=dst.data, subset=dst_subset), mem, sym
            )
            src_view = self._view_memlet(
                sdfg, Memlet(data=src.data, subset=src_subset or src_desc.full_subset()),
                mem, sym,
            )
            for v in np.asarray(src_view).reshape(-1):
                queue.push(v)
            return
        src_view = mem[src.data][
            (src_subset or src_desc.full_subset()).evaluate(sym)
        ]
        dst_slices = (dst_subset or dst_desc.full_subset()).evaluate(sym)
        target = mem[dst.data]
        if mA.wcr is not None:
            wcr = self._wcr(mA.wcr)
            target[dst_slices] = wcr(target[dst_slices], src_view.reshape(
                target[dst_slices].shape
            ))
        else:
            target[dst_slices] = np.asarray(src_view).reshape(
                target[dst_slices].shape
            )
        self._mark_written(sdfg, dst.data)

    # ------------------------------------------------------- sanitizer guards
    def _transient_key(self, sdfg, name: str) -> Optional[str]:
        """Shadow-mask key for a transient array (None otherwise); mirrors
        the generated code's ``<function>.<name>`` keying."""
        desc = sdfg.arrays.get(name)
        if desc is None or not desc.transient or isinstance(desc, Stream):
            return None
        return f"{sdfg.name}.{name}"

    @staticmethod
    def _eval_guard_index(subset, sym) -> tuple:
        """Evaluate a subset for the sanitizer: point dimensions become
        ints (not extent-1 slices) so findings carry exact element
        indices and the write-set tracks point writes."""
        idx = subset.evaluate(sym)
        if not isinstance(idx, tuple):
            idx = (idx,)
        return tuple(
            int(s.start) if isinstance(s, slice) and r.is_point() else s
            for s, r in zip(idx, subset.ranges)
        )

    def _guarded_read(self, sdfg, state, node, memlet: Memlet, mem, sym):
        """Guarded tasklet input: bounds + never-written checks, and the
        delivered view wrapped so indirect subscripts stay checked."""
        guard = self.guard
        container = mem[memlet.data]
        if (
            guard is None
            or guard.sanitizer is None
            or isinstance(container, (StreamArray, StreamQueue))
        ):
            return self._read_memlet(sdfg, memlet, mem, sym)
        san = guard.sanitizer
        t0 = time.perf_counter()
        name = memlet.data
        idx = memlet.subset.evaluate(sym)
        gidx = self._eval_guard_index(memlet.subset, sym)
        tkey = self._transient_key(sdfg, name)
        loc = (sdfg.name, state.name, node.name)
        mstr = f"{name}[{memlet.subset}]"
        ok = san.check_bounds(name, container.shape, gidx, mstr, loc)
        if not ok:  # collect mode: continue on the nearest valid element
            idx = _clamp_index(container.shape, idx)
            gidx = _clamp_index(container.shape, gidx)
        if tkey is not None:
            san.check_initialized(tkey, name, gidx, mstr, loc)
        view = container[idx]
        if (
            isinstance(view, np.ndarray)
            and view.size == 1
            and memlet.subset.is_point()
        ):
            guard.overhead += time.perf_counter() - t0
            return view.reshape(-1)[0]
        view = _squeeze_points(view, memlet.subset)
        if isinstance(view, np.ndarray) and view.ndim > 0:
            mask = san.mask_for(tkey)
            if mask is not None:
                mask = _squeeze_points(mask[idx], memlet.subset)
            view = GuardedView.wrap(view, san, name, mask, mstr, loc)
        guard.overhead += time.perf_counter() - t0
        return view

    def _guard_store(self, sdfg, state, node, memlet: Memlet, value, mem, sym):
        """Guarded tasklet output: checks before ``_write_memlet``.
        Returns False when a collect-mode out-of-bounds store must be
        dropped (recorded already) instead of executed."""
        guard = self.guard
        container = mem[memlet.data]
        if (
            guard is None
            or guard.sanitizer is None
            or isinstance(container, (StreamArray, StreamQueue))
        ):
            return True
        return guard.pre_store(
            memlet.data,
            container,
            self._eval_guard_index(memlet.subset, sym),
            value,
            memlet=f"{memlet.data}[{memlet.subset}]",
            loc=(sdfg.name, state.name, node.name),
            tkey=self._transient_key(sdfg, memlet.data),
            wcr=memlet.wcr is not None,
            dynamic=memlet.dynamic,
        )

    def _mark_written(self, sdfg, name: str) -> None:
        """Copies/reductions write whole subsets at once; conservatively
        mark the target transient written so later reads skip R803."""
        guard = self.guard
        if guard is not None and guard.sanitizer is not None:
            tkey = self._transient_key(sdfg, name)
            if tkey is not None:
                guard.mark_written(tkey)

    # ---------------------------------------------------------------- memlets
    def _read_memlet(self, sdfg, memlet: Memlet, mem, sym):
        container = mem[memlet.data]
        if isinstance(container, (StreamArray, StreamQueue)):
            return self._resolve_stream_queue(memlet, mem, sym)
        slices = memlet.subset.evaluate(sym)
        view = container[slices]
        if view.size == 1 and memlet.subset.is_point():
            return view.reshape(-1)[0]
        return _squeeze_points(view, memlet.subset)

    def _view_memlet(self, sdfg, memlet: Memlet, mem, sym):
        """Writable view (no scalarization)."""
        container = mem[memlet.data]
        if isinstance(container, (StreamArray, StreamQueue)):
            return container
        return container[memlet.subset.evaluate(sym)]

    def _write_memlet(self, sdfg, memlet: Memlet, value, mem, sym) -> None:
        container = mem[memlet.data]
        if isinstance(container, (StreamArray, StreamQueue)):
            self._resolve_stream_queue(memlet, mem, sym).push(value)
            return
        slices = memlet.subset.evaluate(sym)
        if memlet.wcr is not None:
            wcr = self._wcr(memlet.wcr)
            old = container[slices]
            result = wcr(old, value)
            container[slices] = result
        else:
            container[slices] = value

    def _wcr(self, wcr: str) -> Callable:
        fn = self._wcr_cache.get(wcr)
        if fn is None:
            fn = _compile_wcr(wcr)
            self._wcr_cache[wcr] = fn
        return fn


def _squeeze_points(view: np.ndarray, subset) -> np.ndarray:
    """Drop size-1 dimensions that correspond to point indices, so that a
    memlet ``A[i, 0:N]`` delivers a 1-D vector as tasklet code expects."""
    axes = tuple(
        ax for ax, r in enumerate(subset.ranges) if r.is_point() and view.shape[ax] == 1
    )
    if axes and len(axes) < view.ndim:
        return np.squeeze(view, axis=axes)
    return view
