"""Multicore execution pool for the parallel map tier (ROADMAP item 3).

The generated-Python backend's ``parallel=`` tier chunks the iteration
domain of proof-carrying conflict-free maps (see
:func:`repro.sdfg.validation.analyze_map_parallelism`) across a
persistent worker pool owned by the :class:`~repro.codegen.compiler.
CompiledSDFG` that the lowering belongs to.  Two worker tiers:

* **thread** — a persistent :class:`~concurrent.futures.
  ThreadPoolExecutor`.  Right for NumPy/ufunc-dominated chunk bodies:
  the ufunc inner loops release the GIL, so chunks genuinely overlap.
  Disjoint output writes land directly in the caller's arrays (shared
  address space, no copy-back).
* **fork** — persistent fork()ed worker processes, for pure-Python loop
  bodies the GIL would serialize.  Workers inherit the generated module
  through fork (chunk functions are registered *before* the first
  fork), receive ``(fn, lo, hi, args)`` tasks over pipes, and send the
  chunk's written output slices / WCR partial accumulators back; the
  parent copies disjoint slices home and merges WCR partials at the
  barrier.

Both tiers share one calling convention: a chunk function receives the
half-open chunk ``[lo, hi)`` of the chunked parameter plus the
containers/symbols it needs, writes disjoint outputs in place, and
returns ``(copyback_views, wcr_partials)``.  The pool returns the
per-chunk results *in chunk order*, so WCR merges are deterministic for
a given chunk count.

Pools start lazily on the first parallel map execution and are torn
down by :meth:`MapWorkerPool.close` — called from
``CompiledSDFG.close()``/``__del__`` and when the serve worker's
artifact LRU evicts the owning program — plus an ``atexit`` sweep over
the live-pool registry.  :func:`live_pool_rss_kb` lets the serve
layer's RSS recycling budget account for nested fork workers.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
import threading
import time
import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos import faultpoint

__all__ = [
    "ParallelConfig",
    "MapWorkerPool",
    "ParallelRun",
    "parallel_from_env",
    "live_pool_rss_kb",
    "live_pool_count",
    "live_worker_pids",
    "shutdown_all_pools",
]


# =====================================================================
# Configuration
# =====================================================================


class ParallelConfig:
    """Knobs of the parallel execution tier.

    ``workers`` is the target concurrency; ``tier`` selects the worker
    kind (``"auto"`` lets the lowering pick threads for vectorized
    bodies and forks for pure-Python loop bodies); ``chunks_per_worker``
    trades scheduling slack against merge overhead; ``min_chunk`` stops
    the partitioner from splitting domains too small to amortize
    dispatch.  All four are tunable through
    :class:`repro.tuning.cost.MeasuredCost` and surface in the program
    cache's variant key (different knobs generate different code).
    """

    __slots__ = ("workers", "tier", "chunks_per_worker", "min_chunk")

    TIERS = ("auto", "thread", "fork")

    def __init__(
        self,
        workers: int = 0,
        tier: str = "auto",
        chunks_per_worker: int = 1,
        min_chunk: int = 2,
    ):
        if workers <= 0:
            workers = os.cpu_count() or 1
        if tier not in self.TIERS:
            raise ValueError(f"unknown parallel tier {tier!r}; use one of {self.TIERS}")
        self.workers = int(workers)
        self.tier = tier
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        self.min_chunk = max(1, int(min_chunk))

    # ------------------------------------------------------------- identity
    def key_fragment(self) -> str:
        """Stable fragment for cache/variant keys."""
        return (
            f"w{self.workers}:{self.tier}:c{self.chunks_per_worker}"
            f":m{self.min_chunk}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "tier": self.tier,
            "chunks_per_worker": self.chunks_per_worker,
            "min_chunk": self.min_chunk,
        }

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "ParallelConfig":
        return ParallelConfig(
            workers=int(data.get("workers", 0)),
            tier=str(data.get("tier", "auto")),
            chunks_per_worker=int(data.get("chunks_per_worker", 1)),
            min_chunk=int(data.get("min_chunk", 2)),
        )

    @staticmethod
    def parse(spec: Any) -> Optional["ParallelConfig"]:
        """Coerce a user-facing ``parallel=`` value into a config.

        Accepted: ``None``/``False``/``0``/``""``/``"off"`` (disabled),
        ``True`` (all cores), an int worker count, a config instance, a
        dict of constructor fields, or a string ``"[tier:]workers"``
        (``"4"``, ``"thread:4"``, ``"fork:2"``).
        """
        if spec is None or spec is False:
            return None
        if isinstance(spec, ParallelConfig):
            return spec
        if spec is True:
            return ParallelConfig()
        if isinstance(spec, int):
            return ParallelConfig(workers=spec) if spec > 0 else None
        if isinstance(spec, dict):
            return ParallelConfig.from_json(spec)
        if isinstance(spec, str):
            text = spec.strip().lower()
            if text in ("", "0", "off", "false", "no", "none"):
                return None
            tier = "auto"
            if ":" in text:
                tier, _, text = text.partition(":")
            workers = int(text) if text not in ("", "auto") else 0
            return ParallelConfig(workers=workers, tier=tier)
        raise ValueError(f"cannot interpret parallel spec {spec!r}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ParallelConfig)
            and self.key_fragment() == other.key_fragment()
        )

    def __repr__(self) -> str:
        return f"ParallelConfig({self.key_fragment()})"


def parallel_from_env() -> Optional[ParallelConfig]:
    """Resolve the ``REPRO_PARALLEL`` environment knob."""
    return ParallelConfig.parse(os.environ.get("REPRO_PARALLEL", ""))


# =====================================================================
# Pool registry (teardown + RSS accounting for the serve layer)
# =====================================================================

_LIVE_POOLS: "weakref.WeakSet[MapWorkerPool]" = weakref.WeakSet()
_registry_lock = threading.Lock()


def _register(pool: "MapWorkerPool") -> None:
    with _registry_lock:
        _LIVE_POOLS.add(pool)


def live_pools() -> List["MapWorkerPool"]:
    with _registry_lock:
        return [p for p in _LIVE_POOLS if not p.closed]


def live_pool_count() -> int:
    """Number of live (not yet closed) pools in this process."""
    return len(live_pools())


def live_worker_pids() -> List[int]:
    """PIDs of all fork workers currently alive under this process."""
    pids: List[int] = []
    for pool in live_pools():
        pids.extend(pool.worker_pids())
    return pids


def _proc_rss_kb(pid: int) -> int:
    try:
        with open(f"/proc/{pid}/status", "rb") as f:
            for line in f:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def live_pool_rss_kb() -> int:
    """Total resident set of all fork workers of all live pools.

    The serve worker adds this to its own RSS when reporting to the
    supervisor, so the recycling budget sees the *whole* process tree —
    a worker whose nested pools balloon is recycled like one whose own
    heap does.
    """
    return sum(_proc_rss_kb(pid) for pid in live_worker_pids())


def shutdown_all_pools() -> None:
    for pool in live_pools():
        pool.close()


atexit.register(shutdown_all_pools)


# =====================================================================
# Fork worker protocol
# =====================================================================

_LEN = struct.Struct("!Q")


def _send_obj(fd: int, obj: Any) -> None:
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    os.write(fd, _LEN.pack(len(blob)))
    view = memoryview(blob)
    while view:
        n = os.write(fd, view)
        view = view[n:]


def _recv_exact(fd: int, n: int) -> Optional[bytes]:
    buf = bytearray()
    while len(buf) < n:
        chunk = os.read(fd, n - len(buf))
        if not chunk:
            return None
        buf.extend(chunk)
    return bytes(buf)


def _recv_obj(fd: int) -> Optional[Any]:
    head = _recv_exact(fd, _LEN.size)
    if head is None:
        return None
    body = _recv_exact(fd, _LEN.unpack(head)[0])
    if body is None:
        return None
    return pickle.loads(body)


class _ForkWorker:
    """One persistent forked worker process.

    The child inherits the parent's memory image — including the
    generated module and the pool's function registry — at fork time,
    so tasks can reference chunk functions by name instead of pickling
    them.  Input arrays ship pickled over the request pipe; the chunk's
    return value (written output slices + WCR partials) ships back the
    same way.
    """

    def __init__(self, registry: Dict[str, Callable]):
        req_r, req_w = os.pipe()
        resp_r, resp_w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(req_w)
            os.close(resp_r)
            try:
                self._child_loop(registry, req_r, resp_w)
            finally:
                os._exit(0)
        os.close(req_r)
        os.close(resp_w)
        self.pid = pid
        self._req_w = req_w
        self._resp_r = resp_r
        self.alive = True

    @staticmethod
    def _child_loop(registry: Dict[str, Callable], req_r: int, resp_w: int) -> None:
        while True:
            task = _recv_obj(req_r)
            if task is None or task[0] == "stop":
                return
            _, fn_name, lo, hi, args = task
            t0 = time.perf_counter()
            try:
                fn = registry[fn_name]
                ret = fn(lo, hi, *args)
                _send_obj(resp_w, ("ok", ret, time.perf_counter() - t0))
            except BaseException as err:  # noqa: BLE001 — shipped to parent
                try:
                    _send_obj(resp_w, ("err", f"{type(err).__name__}: {err}", 0.0))
                except BaseException:
                    return

    def submit(self, fn_name: str, lo: int, hi: int, args: tuple) -> None:
        _send_obj(self._req_w, ("run", fn_name, lo, hi, args))

    def recv(self) -> Optional[Tuple[str, Any, float]]:
        return _recv_obj(self._resp_r)

    def stop(self, kill: bool = False) -> None:
        if not self.alive:
            return
        self.alive = False
        try:
            if not kill:
                _send_obj(self._req_w, ("stop",))
        except OSError:
            kill = True
        for fd in (self._req_w, self._resp_r):
            try:
                os.close(fd)
            except OSError:
                pass
        if kill:
            try:
                os.kill(self.pid, 9)
            except OSError:
                pass
        try:
            os.waitpid(self.pid, 0)
        except ChildProcessError:
            pass


# =====================================================================
# The pool
# =====================================================================


class ParallelRun:
    """Result of one chunked map execution.

    ``parts`` is ``[(lo, hi, ret), ...]`` in chunk order; ``copyback``
    tells the generated merge code whether disjoint output slices must
    be copied home (fork tier) or already landed in place (thread tier
    and the inline single-chunk path).
    """

    __slots__ = ("parts", "copyback", "tier", "wall")

    def __init__(self, parts, copyback: bool, tier: str, wall: float):
        self.parts = parts
        self.copyback = copyback
        self.tier = tier
        self.wall = wall


class MapWorkerPool:
    """Persistent worker pool executing chunked map lowerings.

    One pool per :class:`CompiledSDFG`; both tiers start lazily on
    first use, so a compiled program that never runs a parallel map
    never spawns a thread or a process.
    """

    def __init__(self, config: ParallelConfig, name: str = "sdfg"):
        self.config = config
        self.name = name
        self.closed = False
        self._lock = threading.RLock()
        self._executor = None
        self._fork_workers: List[_ForkWorker] = []
        self._fn_registry: Dict[str, Callable] = {}
        #: Monotonic counters surfaced through telemetry and tests.
        self.stats: Dict[str, int] = {
            "runs": 0,
            "chunks": 0,
            "inline_runs": 0,
            "thread_runs": 0,
            "fork_runs": 0,
            "fork_respawns": 0,
            "fallbacks": 0,
        }
        self._pending_event: Optional[Dict[str, Any]] = None
        _register(self)

    # --------------------------------------------------------------- setup
    def register_functions(self, fns: Dict[str, Callable]) -> None:
        """Register the generated module's chunk functions.

        Must happen before the first fork so children inherit the
        registry contents; the registry dict itself is shared by
        reference with already-forked children only through fork-time
        inheritance, hence re-registration after a fork triggers a
        worker respawn on next use.
        """
        with self._lock:
            missing = [k for k in fns if k not in self._fn_registry]
            self._fn_registry.update(fns)
            if missing and self._fork_workers:
                # Children predate these functions: retire them.
                self._teardown_forks()

    def worker_pids(self) -> List[int]:
        with self._lock:
            return [w.pid for w in self._fork_workers if w.alive]

    def rss_kb(self) -> int:
        return sum(_proc_rss_kb(pid) for pid in self.worker_pids())

    # ----------------------------------------------------------- partition
    def partition(self, start: int, stop: int, step: int) -> List[Tuple[int, int]]:
        """Split ``range(start, stop, step)`` into contiguous chunks.

        Chunk boundaries are aligned to the step so each chunk is itself
        a ``range(lo, hi, step)``; the list is empty for empty domains.
        """
        start, stop, step = int(start), int(stop), int(step)
        n = len(range(start, stop, step))
        if n == 0:
            return []
        cfg = self.config
        chunks = min(cfg.workers * cfg.chunks_per_worker, max(1, n // cfg.min_chunk))
        chunks = max(1, min(chunks, n))
        out: List[Tuple[int, int]] = []
        base, extra = divmod(n, chunks)
        idx = 0
        for c in range(chunks):
            cnt = base + (1 if c < extra else 0)
            lo = start + idx * step
            hi = start + (idx + cnt) * step
            idx += cnt
            out.append((lo, hi))
        return out

    # ----------------------------------------------------------------- run
    def run(
        self,
        fn: Callable,
        start: int,
        stop: int,
        step: int,
        args: Sequence[Any],
        label: str = "map",
        tier: str = "thread",
    ) -> ParallelRun:
        """Execute ``fn`` over the chunked domain; returns chunk results
        in order.  Falls back to inline execution when the pool is
        closed, the domain yields a single chunk, or the fork tier
        fails mid-run (fork chunks never mutate parent state, so a
        wholesale inline re-run is safe)."""
        chunks = self.partition(start, stop, step)
        t0 = time.perf_counter()
        self.stats["runs"] += 1
        self.stats["chunks"] += len(chunks)
        # The call-site tier is a capability bound: 'thread' means the
        # chunk mutates shared arrays in place and must not fork (the
        # writes would stay in the child).  A configured tier can force
        # threads everywhere, or force fork only where the chunk
        # supports it.
        if self.config.tier != "auto" and tier != "thread":
            tier = self.config.tier
        busy = 0.0
        if self.closed or len(chunks) <= 1 or self.config.workers <= 1:
            parts = [(lo, hi, fn(lo, hi, *args)) for lo, hi in chunks]
            self.stats["inline_runs"] += 1
            run = ParallelRun(parts, False, "inline", time.perf_counter() - t0)
        elif tier == "fork":
            try:
                parts, busy = self._run_fork(fn, chunks, args)
                self.stats["fork_runs"] += 1
                run = ParallelRun(parts, True, "fork", time.perf_counter() - t0)
            except _ForkTierBroken:
                self.stats["fallbacks"] += 1
                parts = [(lo, hi, fn(lo, hi, *args)) for lo, hi in chunks]
                run = ParallelRun(parts, False, "inline", time.perf_counter() - t0)
        else:
            parts, busy = self._run_threads(fn, chunks, args)
            self.stats["thread_runs"] += 1
            run = ParallelRun(parts, False, "thread", time.perf_counter() - t0)
        self._pending_event = {
            "label": label,
            "tier": run.tier,
            "chunks": len(chunks),
            "workers": self.config.workers,
            "wall_s": run.wall,
            "utilization": (
                busy / (self.config.workers * run.wall)
                if busy and run.wall > 0
                else (1.0 if run.tier == "inline" else 0.0)
            ),
        }
        return run

    def note_merge(self, label: str, merge_s: float) -> None:
        """Called by the generated code after the barrier merge; flushes
        the per-map ``parallel:*`` telemetry event."""
        event = self._pending_event
        self._pending_event = None
        if event is None or event.get("label") != label:
            event = {"label": label, "tier": "?", "chunks": 0,
                     "workers": self.config.workers, "wall_s": 0.0,
                     "utilization": 0.0}
        event["merge_s"] = merge_s
        try:
            from repro.telemetry.sink import active_sink

            sink = active_sink()
            if sink is not None:
                sink.publish(
                    "parallel",
                    f"parallel:{self.name}:{label}",
                    value=event["wall_s"],
                    fields=event,
                )
        except Exception:
            pass

    # --------------------------------------------------------------- tiers
    def _ensure_executor(self):
        from concurrent.futures import ThreadPoolExecutor

        with self._lock:
            if self._executor is None:
                faultpoint("parallel.pool_spawn", tier="thread",
                           pool=self.name)
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix=f"pmap-{self.name}",
                )
            return self._executor

    def _run_threads(self, fn, chunks, args):
        executor = self._ensure_executor()
        busy = [0.0] * len(chunks)

        def timed(i, lo, hi):
            t0 = time.perf_counter()
            ret = fn(lo, hi, *args)
            busy[i] = time.perf_counter() - t0
            return ret

        futures = [
            executor.submit(timed, i, lo, hi) for i, (lo, hi) in enumerate(chunks)
        ]
        parts = [
            (lo, hi, fut.result()) for (lo, hi), fut in zip(chunks, futures)
        ]
        return parts, sum(busy)

    def _ensure_forks(self) -> List[_ForkWorker]:
        with self._lock:
            dead = [w for w in self._fork_workers if not w.alive]
            if dead:
                self._fork_workers = [w for w in self._fork_workers if w.alive]
            while len(self._fork_workers) < self.config.workers:
                faultpoint("parallel.pool_spawn", tier="fork",
                           pool=self.name)
                self._fork_workers.append(_ForkWorker(self._fn_registry))
                self.stats["fork_respawns"] += 1
            return list(self._fork_workers)

    def _run_fork(self, fn, chunks, args):
        fn_name = getattr(fn, "__name__", None)
        if fn_name is None or fn_name not in self._fn_registry:
            raise _ForkTierBroken("chunk function not registered")
        workers = self._ensure_forks()
        results: Dict[int, Any] = {}
        busy = 0.0
        pending = list(enumerate(chunks))
        inflight: Dict[int, Tuple[_ForkWorker, int]] = {}
        try:
            while pending or inflight:
                while pending and len(inflight) < len(workers):
                    widx = next(
                        i for i, w in enumerate(workers)
                        if i not in {wi for wi, _ in inflight.values()} and w.alive
                    )
                    ci, (lo, hi) = pending.pop(0)
                    workers[widx].submit(fn_name, int(lo), int(hi), tuple(args))
                    inflight[ci] = (widx, ci)
                # Synchronous farm: collect one result per loop turn.
                ci, (widx, _) = next(iter(inflight.items()))
                resp = workers[widx].recv()
                del inflight[ci]
                if resp is None:  # worker died (EOF)
                    workers[widx].stop(kill=True)
                    raise _ForkTierBroken("fork worker died")
                status, payload, elapsed = resp
                if status != "ok":
                    raise RuntimeError(f"parallel chunk failed in fork worker: {payload}")
                busy += elapsed
                results[ci] = payload
        except _ForkTierBroken:
            self._teardown_forks()
            raise
        parts = [
            (lo, hi, results[i]) for i, (lo, hi) in enumerate(chunks)
        ]
        return parts, busy

    # ------------------------------------------------------------ teardown
    def _teardown_forks(self) -> None:
        with self._lock:
            workers, self._fork_workers = self._fork_workers, []
        for w in workers:
            w.stop()

    def close(self) -> None:
        """Tear down both tiers.  Idempotent; a closed pool still
        executes (inline), so late calls through a cached entry stay
        correct."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        self._teardown_forks()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


class _ForkTierBroken(RuntimeError):
    """Internal: the fork tier is unusable; rerun inline."""
