"""Sparse-matrix substrate: CSR containers and reference kernels
(MKL sparse / CUSPARSE stand-ins)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class CSRMatrix:
    """Compressed-sparse-row matrix with the paper's SpMV layout
    (Fig. 4: ``A_row``, ``A_col``, ``A_val``)."""

    rows: int
    cols: int
    indptr: np.ndarray  # uint32, len rows+1
    indices: np.ndarray  # uint32, len nnz
    data: np.ndarray  # float32/64, len nnz

    @property
    def nnz(self) -> int:
        return len(self.data)

    @staticmethod
    def random(
        rows: int,
        cols: int,
        nnz_per_row: int,
        dtype=np.float32,
        seed: int = 42,
    ) -> "CSRMatrix":
        """Uniform random CSR with a fixed number of nonzeros per row
        (the paper's 8192^2 matrix with 2^25 nnz is this shape)."""
        rng = np.random.RandomState(seed)
        nnz_per_row = min(nnz_per_row, cols)
        indptr = np.arange(0, (rows + 1) * nnz_per_row, nnz_per_row, dtype=np.uint32)
        indices = np.empty(rows * nnz_per_row, dtype=np.uint32)
        for r in range(rows):
            indices[r * nnz_per_row : (r + 1) * nnz_per_row] = np.sort(
                rng.choice(cols, size=nnz_per_row, replace=False)
            )
        data = rng.rand(rows * nnz_per_row).astype(dtype)
        return CSRMatrix(rows, cols, indptr, indices, data)

    def to_scipy(self):
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=(self.rows, self.cols)
        )

    def spmv(self, x: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Vendor-library SpMV (SciPy's native CSR kernel plays MKL)."""
        result = self.to_scipy() @ x
        if out is not None:
            out[...] = result
            return out
        return result


def spmv_reference_loops(csr: CSRMatrix, x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain-loop SpMV (the naive-compiler baseline role)."""
    for i in range(csr.rows):
        acc = 0.0
        for j in range(int(csr.indptr[i]), int(csr.indptr[i + 1])):
            acc += csr.data[j] * x[csr.indices[j]]
        b[i] = acc
    return b
