"""Vendor-library stand-ins and shared application substrates.

The paper's evaluation compares against Intel MKL, NVIDIA CUBLAS /
CUSPARSE / CUB, and the Galois/Gluon graph frameworks.  On this testbed
those roles are played by (DESIGN.md §1):

* :mod:`repro.library.blas` — BLAS-backed dense kernels (``gemm``,
  batched/strided variants, and the SBSMM specialized small-batch
  multiply of Table 3),
* :mod:`repro.library.sparse` — CSR structures and SpMV,
* :mod:`repro.library.graphs` — CSR graphs, synthetic generators
  matching the Table 5 dataset characteristics, and baseline BFS
  implementations standing in for Galois and Gluon.
"""

from repro.library import blas, graphs, sparse

__all__ = ["blas", "graphs", "sparse"]
