"""Dense linear-algebra stand-ins for the vendor libraries of §6.

``gemm`` plays MKL/CUBLAS (it dispatches to the platform BLAS through
NumPy).  ``gemm_strided_batched`` mimics the CUBLAS batched-strided
call the paper's OMEN case study relies on — including the *padding
waste* analysis of Table 3, where only 6.1% of the flops a generic
batched GEMM executes on tiny irregular operands are useful.  ``sbsmm``
is the specialized small-batched-strided multiplication of the paper's
step ❹ (Fig. 18), which executes only the useful flops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class FlopReport:
    """Executed-vs-useful work of a library call (Table 3 columns)."""

    executed_flops: int
    useful_flops: int

    @property
    def useful_fraction(self) -> float:
        return self.useful_flops / self.executed_flops if self.executed_flops else 1.0


def gemm(
    A: np.ndarray,
    B: np.ndarray,
    C: Optional[np.ndarray] = None,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """General matrix-matrix multiply, C = alpha*A@B + beta*C (MKL role)."""
    result = alpha * (A @ B)
    if C is None:
        return result
    if beta != 0.0:
        result += beta * C
    C[...] = result
    return C


def gemv(A: np.ndarray, x: np.ndarray, y: Optional[np.ndarray] = None,
         alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
    out = alpha * (A @ x)
    if y is None:
        return out
    y[...] = out + beta * y
    return y


def gemm_strided_batched(
    A: np.ndarray, B: np.ndarray, C: Optional[np.ndarray] = None, pad_to: int = 16
) -> Tuple[np.ndarray, FlopReport]:
    """Batched-strided GEMM the way a generic vendor kernel executes it.

    ``A``: (batch, m, k), ``B``: (batch, k, n).  Generic batched kernels
    tile to fixed blocking factors; on tiny operands they compute padded
    ``pad_to``-multiples, wasting most flops (the paper's Table 3: 86.6%
    of peak executed but 6.1% useful on P100).  The returned FlopReport
    carries both numbers; the arithmetic itself uses the exact operands.
    """
    batch, m, k = A.shape
    _, k2, n = B.shape
    if k != k2:
        raise ValueError("inner dimensions do not match")
    out = np.matmul(A, B)
    if C is not None:
        C[...] = out
        out = C

    def up(x: int) -> int:
        return ((x + pad_to - 1) // pad_to) * pad_to

    useful = 2 * batch * m * n * k
    executed = 2 * batch * up(m) * up(n) * up(k)
    return out, FlopReport(executed_flops=executed, useful_flops=useful)


def sbsmm(
    A: np.ndarray, B: np.ndarray, C: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, FlopReport]:
    """Small-scale batched-strided matrix multiplication (paper §6.4 ❹).

    Specialized for the operand shapes: executes exactly the useful
    flops (no padding), amortizing across the batch dimension — the
    data-centric replacement that outperforms CUBLAS by up to 4.76x on
    tiny matrices (Table 3).
    """
    batch, m, k = A.shape
    _, _, n = B.shape
    out = np.einsum("bmk,bkn->bmn", A, B, optimize=True)
    if C is not None:
        C[...] = out
        out = C
    useful = 2 * batch * m * n * k
    return out, FlopReport(executed_flops=useful, useful_flops=useful)


def sbsmm_sdfg(batch: str = "BA", m: int = 4, n: int = 4, k: int = 4):
    """The SBSMM kernel as a data-centric program (specialized SDFG
    implementation of Fig. 18 step ❹): a batch map around a small
    contraction, vectorization-marked so backends lower it to one
    batched einsum."""
    import repro as rp
    from repro.sdfg import SDFG, Memlet

    sdfg = SDFG("sbsmm")
    sdfg.add_array("A", (batch, m, k), rp.float64)
    sdfg.add_array("B", (batch, k, n), rp.float64)
    sdfg.add_array("C", (batch, m, n), rp.float64)
    state = sdfg.add_state("sbsmm")
    _, me, _ = state.add_mapped_tasklet(
        "sbsmm",
        {"b": f"0:{batch}", "i": f"0:{m}", "j": f"0:{n}", "kk": f"0:{k}"},
        inputs={
            "a": Memlet.simple("A", "b, i, kk"),
            "bb": Memlet.simple("B", "b, kk, j"),
        },
        code="o = a * bb",
        outputs={"o": Memlet(data="C", subset="b, i, j", wcr="sum")},
    )
    me.map.vectorized = True
    sdfg.validate()
    return sdfg
