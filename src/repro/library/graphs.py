"""Graph substrate: CSR graphs, synthetic dataset generators, and
baseline BFS implementations (the Galois/Gluon roles of §6.3).

The paper's five datasets (Table 5) are unavailable offline; the
generators below reproduce their *characteristics*, which drive the
Fig. 17 result shape:

==============  =========================  ==========================
paper dataset   property                   generator
==============  =========================  ==========================
usa / osm-eur   road map: avg deg ~2.4,    :func:`road_network` — 2-D
                tiny max degree, huge       lattice with thinned edges
                diameter                    (high diameter, degree<=4)
soc-lj /        social: heavy-tailed        :func:`social_network` —
twitter         degrees, small diameter     preferential attachment
kron21          synthetic Kronecker,        :func:`kronecker_graph` —
                extreme skew                RMAT-style edge dropping
==============  =========================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

UNVISITED = np.iinfo(np.int32).max


@dataclass
class CSRGraph:
    """Directed graph in CSR form (``G_row``/``G_col`` of Fig. 16)."""

    num_vertices: int
    indptr: np.ndarray  # uint32, len V+1
    indices: np.ndarray  # uint32, len E

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(self.num_vertices, 1)

    @property
    def max_degree(self) -> int:
        return int(np.max(np.diff(self.indptr))) if self.num_vertices else 0

    @staticmethod
    def from_edges(num_vertices: int, src: np.ndarray, dst: np.ndarray) -> "CSRGraph":
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.uint32)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(num_vertices, indptr, dst.astype(np.uint32))

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]


def _dedup(num_vertices: int, src, dst) -> Tuple[np.ndarray, np.ndarray]:
    key = src.astype(np.int64) * num_vertices + dst
    key = np.unique(key[src != dst])
    return (key // num_vertices).astype(np.int64), (key % num_vertices).astype(np.int64)


def road_network(side: int, keep: float = 0.7, seed: int = 1) -> CSRGraph:
    """Road-map-like graph: a 2-D lattice with a fraction of edges kept.

    Average degree lands near the USA road network's ~2.4 with
    ``keep=0.6-0.7``; diameter is O(side) — the high-diameter regime
    where the paper's SDFG BFS outruns Galois by up to 2x.
    """
    rng = np.random.RandomState(seed)
    n = side * side
    idx = np.arange(n).reshape(side, side)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    edges = np.concatenate([right, down], axis=1)
    mask = rng.rand(edges.shape[1]) < keep
    edges = edges[:, mask]
    # Undirected: add both directions.
    src = np.concatenate([edges[0], edges[1]])
    dst = np.concatenate([edges[1], edges[0]])
    src, dst = _dedup(n, src, dst)
    return CSRGraph.from_edges(n, src, dst)


def social_network(
    num_vertices: int, edges_per_vertex: int = 14, seed: int = 2
) -> CSRGraph:
    """Social-network-like graph via preferential attachment: heavy-tailed
    degree distribution and small diameter (LiveJournal/Twitter regime)."""
    rng = np.random.RandomState(seed)
    m = edges_per_vertex
    targets: List[int] = []
    sources: List[int] = []
    # Repeated-nodes list drives preferential attachment cheaply.
    repeated = list(range(min(m, num_vertices)))
    for v in range(m, num_vertices):
        picks = rng.choice(len(repeated), size=min(m, len(repeated)), replace=False)
        chosen = {repeated[p] for p in picks}
        for u in chosen:
            sources.append(v)
            targets.append(u)
            repeated.append(u)
        repeated.extend([v] * len(chosen))
    src = np.array(sources + targets, dtype=np.int64)
    dst = np.array(targets + sources, dtype=np.int64)
    src, dst = _dedup(num_vertices, src, dst)
    return CSRGraph.from_edges(num_vertices, src, dst)


def kronecker_graph(scale: int, edge_factor: int = 16, seed: int = 3) -> CSRGraph:
    """Graph500-style RMAT/Kronecker generator (kron21.sym role)."""
    rng = np.random.RandomState(seed)
    n = 1 << scale
    num_edges = n * edge_factor
    a, b, c = 0.57, 0.19, 0.19
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        r1 = rng.rand(num_edges)
        r2 = rng.rand(num_edges)
        src_bit = r1 > (a + b)
        dst_bit = (r2 > (a + c)) & ~src_bit | (r2 > (b + c)) & src_bit
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    # Symmetrize, drop duplicates/self-loops.
    s = np.concatenate([src, dst])
    d = np.concatenate([dst, src])
    s, d = _dedup(n, s, d)
    return CSRGraph.from_edges(n, s, d)


# ---------------------------------------------------------------------------
# Baseline BFS implementations (framework stand-ins)
# ---------------------------------------------------------------------------


def bfs_level_sync(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Bulk-synchronous push BFS over NumPy frontiers (the Gluon
    bfs_push role: simple level-synchronous processing)."""
    depth = np.full(graph.num_vertices, UNVISITED, dtype=np.int32)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        starts = graph.indptr[frontier].astype(np.int64)
        ends = graph.indptr[frontier + 1].astype(np.int64)
        total = int((ends - starts).sum())
        if total == 0:
            break
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for s, e in zip(starts, ends):
            out[pos : pos + (e - s)] = graph.indices[s:e]
            pos += e - s
        cand = out[depth[out] == UNVISITED]
        if cand.size == 0:
            break
        cand = np.unique(cand)
        depth[cand] = level
        frontier = cand
    return depth


def bfs_direction_optimizing(
    graph: CSRGraph, source: int = 0, alpha: float = 4.0
) -> np.ndarray:
    """Direction-optimizing BFS (the Galois SyncTile role): switches from
    push to bottom-up pull when the frontier grows large — the trick that
    makes frameworks fast on low-diameter social networks."""
    depth = np.full(graph.num_vertices, UNVISITED, dtype=np.int32)
    depth[source] = 0
    frontier = np.zeros(graph.num_vertices, dtype=bool)
    frontier[source] = True
    level = 0
    degrees = np.diff(graph.indptr).astype(np.int64)
    while frontier.any():
        level += 1
        frontier_edges = int(degrees[frontier].sum())
        unvisited = depth == UNVISITED
        if frontier_edges * alpha > int(degrees[unvisited].sum()):
            # Bottom-up: every unvisited vertex scans its neighbors.
            new_frontier = np.zeros_like(frontier)
            for v in np.nonzero(unvisited)[0]:
                nbrs = graph.neighbors(v)
                if frontier[nbrs].any():
                    depth[v] = level
                    new_frontier[v] = True
        else:
            new_frontier = np.zeros_like(frontier)
            for v in np.nonzero(frontier)[0]:
                for u in graph.neighbors(v):
                    if depth[u] == UNVISITED:
                        depth[u] = level
                        new_frontier[u] = True
        frontier = new_frontier
    return depth


def bfs_reference(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Textbook queue BFS (ground truth for tests)."""
    from collections import deque

    depth = np.full(graph.num_vertices, UNVISITED, dtype=np.int32)
    depth[source] = 0
    q = deque([source])
    while q:
        v = q.popleft()
        for u in graph.neighbors(v):
            if depth[u] == UNVISITED:
                depth[u] = depth[v] + 1
                q.append(int(u))
    return depth
