"""Transformation infrastructure (paper §4.1, Appendix B/D).

A transformation is a "find and replace" operation on an SDFG: a
*pattern* subgraph located with VF2 subgraph matching, a programmatic
``can_be_applied`` check, and an ``apply`` that rewrites the graph
(single-pushout graph rewriting in the formal model of Appendix B).

Transformations register themselves in a global registry
(``Transformation.register_pattern`` in the paper's Appendix D listing);
the optimizer module enumerates and applies them, recording each
application in the SDFG's transformation history — the "optimization
version control" of DIODE (§4.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Type

from repro.graph import OrderedMultiDiGraph, subgraph_monomorphisms
from repro.sdfg.nodes import Node
from repro.sdfg.state import SDFGState

#: Global transformation registry (name -> class).
REGISTRY: Dict[str, Type["Transformation"]] = {}


def register_transformation(cls: Type["Transformation"]) -> Type["Transformation"]:
    """Register a transformation class (usable as a decorator)."""
    REGISTRY[cls.__name__] = cls
    return cls


class PatternNode:
    """Placeholder node in a transformation pattern graph.

    Matches host nodes by ``isinstance`` against the given classes.  The
    Appendix D listing writes these as class attributes of the
    transformation (``_in_array = nodes.AccessNode('_')``).
    """

    def __init__(self, *node_classes: type):
        self.node_classes = node_classes

    def matches(self, host_node) -> bool:
        return isinstance(host_node, self.node_classes)

    def __repr__(self) -> str:
        names = "|".join(c.__name__ for c in self.node_classes)
        return f"PatternNode({names})"


def path_graph(*nodes: PatternNode) -> OrderedMultiDiGraph:
    """Convenience: a chain pattern a -> b -> c (the paper's
    ``nxutil.node_path_graph``)."""
    g: OrderedMultiDiGraph = OrderedMultiDiGraph()
    for n in nodes:
        g.add_node(n)
    for a, b in zip(nodes, nodes[1:]):
        g.add_edge(a, b, None)
    return g


class Transformation:
    """Base class of single-state (dataflow) transformations."""

    #: Set by subclasses when the rewrite can only improve the program
    #: (applied automatically by ``apply_strict_transformations``).
    strict = False

    def __init__(self, sdfg, state: Optional[SDFGState], candidate: Dict[PatternNode, Node]):
        self.sdfg = sdfg
        self.state = state
        self.candidate = candidate

    # -- pattern interface ----------------------------------------------------
    @classmethod
    def expressions(cls) -> List[OrderedMultiDiGraph]:
        """Pattern graphs to search for (any match of any expression)."""
        raise NotImplementedError

    @classmethod
    def can_be_applied(cls, state: SDFGState, candidate, sdfg, strict: bool = False) -> bool:
        """Programmatic verification that requirements are met."""
        raise NotImplementedError

    def apply(self) -> None:
        """Perform the rewrite.  Assumes ``can_be_applied`` returned True."""
        raise NotImplementedError

    # -- matching -------------------------------------------------------------
    @classmethod
    def matches_in_state(
        cls, sdfg, state: SDFGState, strict: bool = False
    ) -> Iterator["Transformation"]:
        for pattern in cls.expressions():
            for cand in subgraph_monomorphisms(
                pattern, state, node_match=lambda pn, hn: pn.matches(hn)
            ):
                if cls.can_be_applied(state, cand, sdfg, strict):
                    yield cls(sdfg, state, cand)

    @classmethod
    def matches(cls, sdfg, strict: bool = False) -> Iterator["Transformation"]:
        for state in sdfg.nodes():
            yield from cls.matches_in_state(sdfg, state, strict)

    def node(self, pattern_node: PatternNode):
        return self.candidate[pattern_node]

    # -- bookkeeping ----------------------------------------------------------
    def apply_and_record(self) -> None:
        self.apply()
        self.sdfg.transformation_history.append(type(self).__name__)
        self.sdfg.invalidate_compiled()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.candidate})"


class MultiStateTransformation(Transformation):
    """Base class of transformations matching the top-level state machine.

    The pattern graph's nodes match SDFG states; ``state`` is None.
    """

    @classmethod
    def matches(cls, sdfg, strict: bool = False) -> Iterator["Transformation"]:
        for pattern in cls.expressions():
            for cand in subgraph_monomorphisms(
                pattern, sdfg, node_match=lambda pn, hn: pn.matches(hn)
            ):
                if cls.can_be_applied(None, cand, sdfg, strict):
                    yield cls(sdfg, None, cand)


class SDFGTransformation(Transformation):
    """Whole-SDFG transformations (hardware offloading): no pattern; they
    either apply to the SDFG or not."""

    @classmethod
    def expressions(cls) -> List[OrderedMultiDiGraph]:
        return []

    @classmethod
    def matches(cls, sdfg, strict: bool = False) -> Iterator["Transformation"]:
        if cls.applicable(sdfg):
            yield cls(sdfg, None, {})

    @classmethod
    def applicable(cls, sdfg) -> bool:
        return True
