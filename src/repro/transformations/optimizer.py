"""Transformation enumeration and application (the programmatic half of
the paper's §4.1/§4.2 workflow).

``enumerate_matches`` lists applicable instances in a stable,
deterministic order (sorted by state/node indices, so tuning traces and
beam search are reproducible); ``apply_transformations`` applies a
sequence by name or class (recording history — the "optimization
version control"); ``apply_match`` applies one specific candidate by
its index in that order; ``apply_strict_transformations`` runs the
always-beneficial set to fixpoint, as DaCe does after frontend parsing;
``replay`` re-applies a recorded chain onto a fresh SDFG.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.transformations.base import REGISTRY, Transformation

XformLike = Union[str, Type[Transformation]]

#: One replayable step: a bare transformation name (apply the first
#: sorted match, as ``apply_and_record`` logs) or a mapping with
#: ``transformation`` / optional ``match`` index / optional ``options``
#: — the form the tuner's winning histories use.
HistoryEntry = Union[str, Mapping[str, Any]]


def _resolve(x: XformLike) -> Type[Transformation]:
    if isinstance(x, str):
        try:
            return REGISTRY[x]
        except KeyError as err:
            raise KeyError(
                f"unknown transformation {x!r}; available: {sorted(REGISTRY)}"
            ) from err
    return x


def sort_matches(sdfg, matches: Iterable[Transformation]) -> List[Transformation]:
    """Order transformation instances deterministically.

    The key is ``(state index, candidate node indices)`` in graph
    insertion order — for multi-state transformations the candidate
    entries are states, keyed by their index in the SDFG.  Sorting is
    stable, so instances the key cannot distinguish keep enumeration
    order.  Every enumeration/application path routes through this, so
    "the k-th match" means the same candidate across runs, processes,
    and replayed histories.
    """
    state_index = {id(s): i for i, s in enumerate(sdfg.nodes())}
    node_index: Dict[int, int] = {}
    for s in sdfg.nodes():
        for ni, n in enumerate(s.nodes()):
            node_index[id(n)] = ni

    def key(inst: Transformation) -> Tuple:
        values = tuple(inst.candidate.values())
        if inst.state is not None:
            return (
                state_index.get(id(inst.state), -1),
                tuple(node_index.get(id(v), -1) for v in values),
            )
        return (
            -1,
            tuple(
                state_index.get(id(v), node_index.get(id(v), -1)) for v in values
            ),
        )

    return sorted(matches, key=key)


def enumerate_matches(
    sdfg, xform: XformLike, strict: bool = False
) -> List[Transformation]:
    """All applicable instances of a transformation in the SDFG, in the
    stable order of :func:`sort_matches`."""
    sdfg.propagate()
    return sort_matches(sdfg, _resolve(xform).matches(sdfg, strict))


def apply_transformations(
    sdfg,
    xforms: Union[XformLike, Sequence[XformLike]],
    options: Optional[Union[Mapping, Sequence[Optional[Mapping]]]] = None,
    validate: bool = True,
) -> int:
    """Apply the first match of each given transformation, in order.

    ``options`` sets instance attributes (e.g. ``{"tile_sizes": (64,)}``)
    for the corresponding transformation.  Returns how many applied.
    """
    if isinstance(xforms, (str, type)):
        xforms = [xforms]
    if options is None:
        opt_list: List[Optional[Mapping]] = [None] * len(xforms)
    elif isinstance(options, Mapping):
        opt_list = [options] * len(xforms)
    else:
        opt_list = list(options)
    applied = 0
    for xf, opts in zip(xforms, opt_list):
        if apply_match(sdfg, xf, options=opts, validate=False):
            applied += 1
    if validate and applied:
        sdfg.propagate()
        sdfg.validate()
    return applied


def apply_match(
    sdfg,
    xform: XformLike,
    match_index: int = 0,
    options: Optional[Mapping] = None,
    validate: bool = False,
) -> bool:
    """Apply the ``match_index``-th candidate of ``xform`` (in the
    deterministic order of :func:`enumerate_matches`).  Returns whether
    a candidate at that index existed and was applied."""
    matches = enumerate_matches(sdfg, xform)
    if match_index >= len(matches):
        return False
    inst = matches[match_index]
    for k, v in (options or {}).items():
        setattr(inst, k, v)
    inst.apply_and_record()
    if validate:
        sdfg.propagate()
        sdfg.validate()
    return True


def apply_transformations_repeated(
    sdfg,
    xforms: Union[XformLike, Sequence[XformLike]],
    validate: bool = True,
    max_applications: int = 1000,
) -> int:
    """Apply the given transformations until no more matches exist."""
    if isinstance(xforms, (str, type)):
        xforms = [xforms]
    classes = [_resolve(x) for x in xforms]
    applied = 0
    progress = True
    while progress and applied < max_applications:
        progress = False
        for cls in classes:
            if apply_match(sdfg, cls, validate=False):
                applied += 1
                progress = True
    if validate and applied:
        sdfg.propagate()
        sdfg.validate()
    return applied


def apply_strict_transformations(sdfg, validate: bool = True) -> int:
    """Apply all strict (only-beneficial) transformations to fixpoint."""
    strict = [cls for cls in REGISTRY.values() if cls.strict]
    return apply_transformations_repeated(sdfg, strict, validate=validate)


def replay(
    sdfg, history: Iterable[HistoryEntry], options: Optional[Dict] = None
) -> int:
    """Re-apply a recorded transformation chain (DIODE's saved chains,
    §4.2: 'diverging from a mid-point in the chain' when retargeting).

    Entries are bare transformation names (``sdfg.transformation_history``
    form, applying the first sorted match) or mappings with
    ``transformation``, optional ``match`` index, and optional
    ``options`` — the form the auto-tuner's winning histories use, so a
    cached tuning result replays exactly the searched candidate chain.
    """
    applied = 0
    for entry in history:
        if isinstance(entry, str):
            name, index, opts = entry, 0, (options or {}).get(entry)
        else:
            name = entry["transformation"]
            index = int(entry.get("match", 0))
            opts = entry.get("options") or (options or {}).get(name)
        if apply_match(sdfg, name, match_index=index, options=opts):
            applied += 1
    sdfg.propagate()
    sdfg.validate()
    return applied
