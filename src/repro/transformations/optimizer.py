"""Transformation enumeration and application (the programmatic half of
the paper's §4.1/§4.2 workflow).

``enumerate_matches`` lists applicable instances; ``apply_transformations``
applies a sequence by name or class (recording history — the
"optimization version control"); ``apply_strict_transformations`` runs
the always-beneficial set to fixpoint, as DaCe does after frontend
parsing; ``replay`` re-applies a recorded chain onto a fresh SDFG.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Type, Union

from repro.transformations.base import REGISTRY, Transformation

XformLike = Union[str, Type[Transformation]]


def _resolve(x: XformLike) -> Type[Transformation]:
    if isinstance(x, str):
        try:
            return REGISTRY[x]
        except KeyError as err:
            raise KeyError(
                f"unknown transformation {x!r}; available: {sorted(REGISTRY)}"
            ) from err
    return x


def enumerate_matches(
    sdfg, xform: XformLike, strict: bool = False
) -> List[Transformation]:
    """All applicable instances of a transformation in the SDFG."""
    sdfg.propagate()
    return list(_resolve(xform).matches(sdfg, strict))


def apply_transformations(
    sdfg,
    xforms: Union[XformLike, Sequence[XformLike]],
    options: Optional[Union[Mapping, Sequence[Optional[Mapping]]]] = None,
    validate: bool = True,
) -> int:
    """Apply the first match of each given transformation, in order.

    ``options`` sets instance attributes (e.g. ``{"tile_sizes": (64,)}``)
    for the corresponding transformation.  Returns how many applied.
    """
    if isinstance(xforms, (str, type)):
        xforms = [xforms]
    if options is None:
        opt_list: List[Optional[Mapping]] = [None] * len(xforms)
    elif isinstance(options, Mapping):
        opt_list = [options] * len(xforms)
    else:
        opt_list = list(options)
    applied = 0
    for xf, opts in zip(xforms, opt_list):
        cls = _resolve(xf)
        sdfg.propagate()
        matches = cls.matches(sdfg)
        for inst in matches:
            for k, v in (opts or {}).items():
                setattr(inst, k, v)
            inst.apply_and_record()
            applied += 1
            break
    if validate and applied:
        sdfg.propagate()
        sdfg.validate()
    return applied


def apply_transformations_repeated(
    sdfg,
    xforms: Union[XformLike, Sequence[XformLike]],
    validate: bool = True,
    max_applications: int = 1000,
) -> int:
    """Apply the given transformations until no more matches exist."""
    if isinstance(xforms, (str, type)):
        xforms = [xforms]
    classes = [_resolve(x) for x in xforms]
    applied = 0
    progress = True
    while progress and applied < max_applications:
        progress = False
        for cls in classes:
            sdfg.propagate()
            for inst in cls.matches(sdfg):
                inst.apply_and_record()
                applied += 1
                progress = True
                break
    if validate and applied:
        sdfg.propagate()
        sdfg.validate()
    return applied


def apply_strict_transformations(sdfg, validate: bool = True) -> int:
    """Apply all strict (only-beneficial) transformations to fixpoint."""
    strict = [cls for cls in REGISTRY.values() if cls.strict]
    return apply_transformations_repeated(sdfg, strict, validate=validate)


def replay(sdfg, history: Iterable[str], options: Optional[Dict] = None) -> int:
    """Re-apply a recorded transformation chain (DIODE's saved chains,
    §4.2: 'diverging from a mid-point in the chain' when retargeting)."""
    applied = 0
    for name in history:
        applied += apply_transformations(
            sdfg, name, options=(options or {}).get(name), validate=False
        )
    sdfg.propagate()
    sdfg.validate()
    return applied
