"""Map-scope transformations (paper Table 4, "Map transformations" +
Vectorization and MapToForLoop).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sdfg.dtypes import ScheduleType
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, EntryNode, ExitNode, Map, MapEntry, MapExit, Tasklet
from repro.sdfg.state import SDFGState
from repro.symbolic import Min, Range, Subset, sympify
from repro.transformations.base import (
    PatternNode,
    Transformation,
    path_graph,
    register_transformation,
)


def _relay_pairs(state: SDFGState, scope_node) -> List[str]:
    """Sorted relay connector indices ('1', '2', ...) of a scope node."""
    out = set()
    for c in scope_node.in_connectors:
        if c.startswith("IN_"):
            out.add(c[3:])
    for c in scope_node.out_connectors:
        if c.startswith("OUT_"):
            out.add(c[4:])
    return sorted(out)


def wrap_scope(
    state: SDFGState, entry: MapEntry, exit_: MapExit, new_map: Map
) -> Tuple[MapEntry, MapExit]:
    """Insert a new scope immediately around an existing one, relaying
    every boundary edge through fresh connectors (used by tiling)."""
    new_entry, new_exit = MapEntry(new_map), MapExit(new_map)
    state.add_node(new_entry)
    state.add_node(new_exit)
    for e in list(state.in_edges(entry)):
        state.remove_edge(e)
        if e.data.is_empty():
            state.add_edge(e.src, new_entry, Memlet.empty(), e.src_conn, None)
            state.add_edge(new_entry, entry, Memlet.empty(), None, e.dst_conn)
            continue
        idx = new_entry.next_in_connector()[3:]
        new_entry.add_in_connector(f"IN_{idx}")
        new_entry.add_out_connector(f"OUT_{idx}")
        state.add_edge(e.src, new_entry, e.data, e.src_conn, f"IN_{idx}")
        state.add_edge(new_entry, entry, e.data.clone(), f"OUT_{idx}", e.dst_conn)
    if state.in_degree(new_entry) == 0 and state.in_degree(entry) == 0:
        state.add_edge(new_entry, entry, Memlet.empty(), None, None)
    for e in list(state.out_edges(exit_)):
        state.remove_edge(e)
        if e.data.is_empty():
            state.add_edge(exit_, new_exit, Memlet.empty(), e.src_conn, None)
            state.add_edge(new_exit, e.dst, Memlet.empty(), None, e.dst_conn)
            continue
        idx = new_exit.next_in_connector()[3:]
        new_exit.add_in_connector(f"IN_{idx}")
        new_exit.add_out_connector(f"OUT_{idx}")
        state.add_edge(exit_, new_exit, e.data.clone(), e.src_conn, f"IN_{idx}")
        state.add_edge(new_exit, e.dst, e.data, f"OUT_{idx}", e.dst_conn)
    if state.out_degree(new_exit) == 0 and state.out_degree(exit_) == 0:
        state.add_edge(exit_, new_exit, Memlet.empty(), None, None)
    return new_entry, new_exit


@register_transformation
class MapCollapse(Transformation):
    """Collapses two directly-nested maps into one map whose dimensions
    are the union of the originals'."""

    _outer = PatternNode(MapEntry)
    _inner = PatternNode(MapEntry)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._outer, cls._inner)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        outer: MapEntry = candidate[cls._outer]
        inner: MapEntry = candidate[cls._inner]
        # Directly nested: all inner-entry inputs come from the outer entry,
        # and the outer exit is fed only by the inner exit.
        if any(e.src is not outer for e in state.in_edges(inner)):
            return False
        try:
            outer_exit = state.exit_node(outer)
            inner_exit = state.exit_node(inner)
        except KeyError:
            return False
        if any(e.dst is not outer_exit for e in state.out_edges(inner_exit)):
            return False
        if any(e.src is not inner_exit for e in state.in_edges(outer_exit)):
            return False
        # No data-dependent range connectors on the inner map.
        if any(not c.startswith("IN_") for c in inner.in_connectors):
            return False
        # Inner ranges must not depend on outer parameters.
        outer_params = set(outer.map.params)
        for r in inner.map.range.ranges:
            if {s.name for s in r.free_symbols} & outer_params:
                return False
        return True

    def apply(self) -> None:
        state = self.state
        outer: MapEntry = self.node(self._outer)
        inner: MapEntry = self.node(self._inner)
        outer_exit = state.exit_node(outer)
        inner_exit = state.exit_node(inner)
        m = outer.map
        m.params = m.params + inner.map.params
        m.range = Subset(tuple(m.range.ranges) + tuple(inner.map.range.ranges))
        _splice_out_scope_node(state, inner, forward=True)
        _splice_out_scope_node(state, inner_exit, forward=False)


def _splice_out_scope_node(state: SDFGState, node, forward: bool) -> None:
    """Remove a relay scope node, reconnecting IN_k/OUT_k edge pairs."""
    in_edges = state.in_edges(node)
    out_edges = state.out_edges(node)
    for ie in in_edges:
        if ie.dst_conn is None:
            # Pure ordering edge; reconnect to every successor.
            for oe in out_edges:
                state.add_edge(ie.src, oe.dst, oe.data, ie.src_conn, oe.dst_conn)
            continue
        idx = ie.dst_conn[3:]
        for oe in out_edges:
            if oe.src_conn == f"OUT_{idx}":
                # Keep the inner (more precise) memlet.
                keep = oe.data if forward else ie.data
                state.add_edge(ie.src, oe.dst, keep, ie.src_conn, oe.dst_conn)
    state.remove_node(node)


@register_transformation
class MapExpansion(Transformation):
    """Expands a multi-dimensional map into two nested maps: the first
    dimension outside, the remaining dimensions inside."""

    _entry = PatternNode(MapEntry)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._entry)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        return len(candidate[cls._entry].map.params) >= 2

    def apply(self) -> None:
        state = self.state
        entry: MapEntry = self.node(self._entry)
        exit_ = state.exit_node(entry)
        m = entry.map
        inner_map = Map(
            m.label + "_inner",
            m.params[1:],
            Subset(m.range.ranges[1:]),
            ScheduleType.Sequential,
        )
        outer_map = Map(
            m.label, m.params[:1], Subset(m.range.ranges[:1]), m.schedule, m.unroll
        )
        entry.map = outer_map
        exit_.map = outer_map
        inner_entry, inner_exit = MapEntry(inner_map), MapExit(inner_map)
        state.add_node(inner_entry)
        state.add_node(inner_exit)
        for e in list(state.out_edges(entry)):
            state.remove_edge(e)
            if e.src_conn is None:
                state.add_edge(entry, inner_entry, Memlet.empty(), None, None)
                state.add_edge(inner_entry, e.dst, e.data, None, e.dst_conn)
                continue
            idx = e.src_conn[4:]
            inner_entry.add_in_connector(f"IN_{idx}")
            inner_entry.add_out_connector(f"OUT_{idx}")
            state.add_edge(entry, inner_entry, e.data.clone(), e.src_conn, f"IN_{idx}")
            state.add_edge(inner_entry, e.dst, e.data, f"OUT_{idx}", e.dst_conn)
        for e in list(state.in_edges(exit_)):
            state.remove_edge(e)
            if e.dst_conn is None:
                state.add_edge(e.src, inner_exit, e.data, e.src_conn, None)
                state.add_edge(inner_exit, exit_, Memlet.empty(), None, None)
                continue
            idx = e.dst_conn[3:]
            inner_exit.add_in_connector(f"IN_{idx}")
            inner_exit.add_out_connector(f"OUT_{idx}")
            state.add_edge(e.src, inner_exit, e.data, e.src_conn, f"IN_{idx}")
            state.add_edge(inner_exit, exit_, e.data.clone(), f"OUT_{idx}", e.dst_conn)


@register_transformation
class MapInterchange(Transformation):
    """Interchanges the position (loop order) of two nested maps."""

    _outer = PatternNode(MapEntry)
    _inner = PatternNode(MapEntry)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._outer, cls._inner)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        outer: MapEntry = candidate[cls._outer]
        inner: MapEntry = candidate[cls._inner]
        if any(e.src is not outer for e in state.in_edges(inner)):
            return False
        # Inner range independent of outer parameters (perfect nest).
        outer_params = set(outer.map.params)
        for r in inner.map.range.ranges:
            if {s.name for s in r.free_symbols} & outer_params:
                return False
        try:
            state.exit_node(outer)
            state.exit_node(inner)
        except KeyError:
            return False
        return True

    def apply(self) -> None:
        state = self.state
        outer: MapEntry = self.node(self._outer)
        inner: MapEntry = self.node(self._inner)
        outer_exit = state.exit_node(outer)
        inner_exit = state.exit_node(inner)
        outer.map, inner.map = inner.map, outer.map
        outer_exit.map, inner_exit.map = inner_exit.map, outer_exit.map


@register_transformation
class MapTiling(Transformation):
    """Applies orthogonal tiling to a map: an outer tile map strides over
    tiles, the original map iterates within each tile."""

    _entry = PatternNode(MapEntry)

    #: Default tile edge length per dimension (overridable per instance).
    tile_sizes: Sequence[int] = (32,)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._entry)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        return True

    def apply(self) -> None:
        state = self.state
        entry: MapEntry = self.node(self._entry)
        exit_ = state.exit_node(entry)
        m = entry.map
        sizes = list(self.tile_sizes)
        while len(sizes) < len(m.params):
            sizes.append(sizes[-1])
        tile_params = [f"__tile_{p}" for p in m.params]
        outer_ranges = []
        inner_ranges = []
        for p, tp, rng, ts in zip(m.params, tile_params, m.range.ranges, sizes):
            ts_e = sympify(int(ts))
            stride = rng.step * ts_e
            outer_ranges.append(Range(rng.start, rng.end, stride))
            inner_ranges.append(
                Range(
                    sympify(tp),
                    Min.make(rng.end, sympify(tp) + stride),
                    rng.step,
                )
            )
        tile_map = Map(m.label + "_tiled", tile_params, Subset(outer_ranges), m.schedule)
        m.range = Subset(inner_ranges)
        m.schedule = ScheduleType.Sequential
        wrap_scope(state, entry, exit_, tile_map)


@register_transformation
class Vectorization(Transformation):
    """Marks an innermost map for vector lowering.

    In the paper this alters data accesses to use vector types; in this
    reproduction's Python backend it unlocks the strongest lowering tier
    (contraction/einsum and wide NumPy operations), and in the C++/HLS
    backends it corresponds to vector-extension friendly code.
    """

    _entry = PatternNode(MapEntry)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._entry)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        from repro.codegen.pytranslate import is_vectorizable_tasklet
        from repro.sdfg.dtypes import Language

        entry: MapEntry = candidate[cls._entry]
        if entry.map.vectorized:
            return False  # already applied
        sd = state.scope_dict()
        body = [n for n, s in sd.items() if s is entry and not isinstance(n, ExitNode)]
        tasklets = [n for n in body if isinstance(n, Tasklet)]
        if len(body) != len(tasklets) or len(tasklets) != 1:
            return False
        t = tasklets[0]
        return t.language == Language.Python and is_vectorizable_tasklet(t.code)

    def apply(self) -> None:
        self.node(self._entry).map.vectorized = True


@register_transformation
class MapToForLoop(Transformation):
    """Converts a one-dimensional top-level map into a for-loop over
    states (sequentialization; the inverse direction of parallelism)."""

    _entry = PatternNode(MapEntry)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._entry)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        entry: MapEntry = candidate[cls._entry]
        if len(entry.map.params) != 1:
            return False
        sd = state.scope_dict()
        if sd.get(entry) is not None:
            return False
        # The state must contain only this scope plus boundary access nodes.
        scope_nodes = set(map(id, state.scope_subgraph(entry)))
        for n in state.nodes():
            if id(n) not in scope_nodes and not isinstance(n, AccessNode):
                return False
        return True

    def apply(self) -> None:
        sdfg = self.sdfg
        state = self.state
        entry: MapEntry = self.node(self._entry)
        exit_ = state.exit_node(entry)
        param = entry.map.params[0]
        rng = entry.map.range.ranges[0]
        # Remove the scope nodes, reconnecting through-paths with the
        # inner (precise) memlets.
        _splice_out_scope_node(state, entry, forward=True)
        _splice_out_scope_node(state, exit_, forward=False)
        # Wrap the state in a loop over the parameter.
        before = sdfg.add_state_before(state, f"{param}_init")
        guard = sdfg.add_state(f"{param}_guard")
        after = sdfg.add_state(f"{param}_end")
        from repro.sdfg.sdfg import InterstateEdge
        from repro.symbolic import parse_expr
        from repro.symbolic.expr import Not

        # before -> guard (init), guard -> state (cond), state -> guard (inc),
        # guard -> after (!cond); re-route state's old outgoing edges to after.
        for e in list(sdfg.out_edges(state)):
            sdfg.remove_edge(e)
            sdfg.add_edge(after, e.dst, e.data)
        for e in list(sdfg.out_edges(before)):
            sdfg.remove_edge(e)
        sdfg.add_edge(before, guard, InterstateEdge(assignments={param: rng.start}))
        cond = parse_expr(f"{param} < {rng.end}")
        sdfg.add_edge(guard, state, InterstateEdge(condition=cond))
        sdfg.add_edge(
            state,
            guard,
            InterstateEdge(assignments={param: sympify(param) + rng.step}),
        )
        sdfg.add_edge(guard, after, InterstateEdge(condition=Not.make(cond)))
