"""Data-centric graph transformations (paper §4.1, Appendix B).

All 16 transformations of the paper's Table 4 are implemented, plus the
strict ``RedundantArray`` cleanup of Appendix D:

Map transformations
    :class:`~repro.transformations.maps.MapCollapse`,
    :class:`~repro.transformations.maps.MapExpansion`,
    :class:`~repro.transformations.fusion.MapFusion`,
    :class:`~repro.transformations.maps.MapInterchange`,
    :class:`~repro.transformations.fusion.MapReduceFusion`,
    :class:`~repro.transformations.maps.MapTiling`
Subgraph fusion (beyond Table 4; exploited by the cutout tuner)
    :class:`~repro.transformations.subgraph.OnTheFlyMapFusion`,
    :class:`~repro.transformations.subgraph.TaskletFusion`
Data transformations
    :class:`~repro.transformations.memory.DoubleBuffering`,
    :class:`~repro.transformations.memory.LocalStorage`,
    :class:`~repro.transformations.memory.LocalStream`,
    :class:`~repro.transformations.maps.Vectorization`
Control-flow transformations
    :class:`~repro.transformations.maps.MapToForLoop`,
    :class:`~repro.transformations.interstate.StateFusion`,
    :class:`~repro.transformations.interstate.InlineSDFG`
Hardware mapping transformations
    :class:`~repro.transformations.hardware.FPGATransform`,
    :class:`~repro.transformations.hardware.GPUTransform`,
    :class:`~repro.transformations.hardware.MPITransform`
"""

from repro.transformations.base import (
    REGISTRY,
    PatternNode,
    Transformation,
    path_graph,
    register_transformation,
)
from repro.transformations.maps import (
    MapCollapse,
    MapExpansion,
    MapInterchange,
    MapTiling,
    MapToForLoop,
    Vectorization,
)
from repro.transformations.fusion import MapFusion, MapReduceFusion
from repro.transformations.subgraph import OnTheFlyMapFusion, TaskletFusion
from repro.transformations.memory import (
    DoubleBuffering,
    LocalStorage,
    LocalStream,
    RedundantArray,
)
from repro.transformations.interstate import InlineSDFG, StateFusion
from repro.transformations.hardware import FPGATransform, GPUTransform, MPITransform
from repro.transformations.auto import auto_optimize, auto_optimize_guarded
from repro.transformations.guard import (
    AttemptRecord,
    GuardedOptimizer,
    GuardReport,
    canonical_snapshot,
)
from repro.transformations.optimizer import (
    apply_match,
    apply_strict_transformations,
    apply_transformations,
    apply_transformations_repeated,
    enumerate_matches,
    replay,
    sort_matches,
)

__all__ = [
    "AttemptRecord",
    "DoubleBuffering",
    "GuardReport",
    "GuardedOptimizer",
    "FPGATransform",
    "GPUTransform",
    "InlineSDFG",
    "LocalStorage",
    "LocalStream",
    "MPITransform",
    "MapCollapse",
    "MapExpansion",
    "MapFusion",
    "MapInterchange",
    "MapReduceFusion",
    "MapTiling",
    "MapToForLoop",
    "OnTheFlyMapFusion",
    "PatternNode",
    "REGISTRY",
    "RedundantArray",
    "StateFusion",
    "TaskletFusion",
    "Transformation",
    "Vectorization",
    "apply_match",
    "apply_strict_transformations",
    "auto_optimize",
    "auto_optimize_guarded",
    "canonical_snapshot",
    "apply_transformations",
    "apply_transformations_repeated",
    "enumerate_matches",
    "path_graph",
    "register_transformation",
    "replay",
    "sort_matches",
]
