"""Hardware mapping transformations: GPUTransform, FPGATransform,
MPITransform (paper Table 4).

GPU/FPGA offloading follows §5: the whole SDFG is converted to execute
on the accelerator — device copies of every externally-visible container
are created, pre/post states copy data in and out with volumes taken
from propagated memlets, access nodes are redirected to the device
copies, and top-level map schedules become device schedules.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sdfg.data import Scalar, Stream
from repro.sdfg.dtypes import ScheduleType, StorageType
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry
from repro.sdfg.sdfg import InterstateEdge
from repro.transformations.base import (
    SDFGTransformation,
    register_transformation,
)


class _DeviceTransform(SDFGTransformation):
    """Shared machinery for whole-SDFG accelerator offloading."""

    prefix = "dev_"
    global_storage = StorageType.GPU_Global
    transient_storage = StorageType.GPU_Global
    device_schedule = ScheduleType.GPU_Device

    @classmethod
    def applicable(cls, sdfg) -> bool:
        # Not applicable twice.
        return not any(
            name.startswith(cls.prefix) for name in sdfg.arrays
        )

    def apply(self) -> None:
        sdfg = self.sdfg
        sdfg.propagate()
        externals = {
            name: desc
            for name, desc in sdfg.arglist().items()
            if not isinstance(desc, Stream)
        }
        # Device copies of all externally-visible containers.
        mapping: Dict[str, str] = {}
        for name, desc in externals.items():
            dev = desc.clone()
            dev.transient = True
            dev.storage = self.global_storage
            dev_name = sdfg.add_datadesc(
                f"{self.prefix}{name}", dev, find_new_name=True
            )
            mapping[name] = dev_name
        # Determine read/written externals and their exact propagated
        # footprints (the copy volumes the paper credits for GPU wins).
        read, written = set(), set()
        footprint: Dict[str, object] = {}

        def _note(name, subset):
            if subset is None:
                return
            if name in footprint:
                try:
                    footprint[name] = footprint[name].union_bb(subset)
                except ValueError:
                    footprint[name] = None  # rank confusion: fall back
            else:
                footprint[name] = subset

        for state in sdfg.nodes():
            for n in state.nodes():
                if isinstance(n, AccessNode) and n.data in externals:
                    if state.out_edges(n):
                        read.add(n.data)
                        for e in state.out_edges(n):
                            if not e.data.is_empty() and e.data.data == n.data:
                                _note(n.data, e.data.subset)
                    if state.in_edges(n):
                        written.add(n.data)
                        for e in state.in_edges(n):
                            if not e.data.is_empty() and e.data.data == n.data:
                                _note(n.data, e.data.subset)
        for e in sdfg.edges():
            for s in e.data.free_symbols:
                if s.name in externals:
                    read.add(s.name)
        # Redirect all access nodes and memlets to the device copies.
        for state in sdfg.nodes():
            for n in state.nodes():
                if isinstance(n, AccessNode) and n.data in mapping:
                    n.data = mapping[n.data]
            for e in state.edges():
                if not e.data.is_empty() and e.data.data in mapping:
                    e.data.data = mapping[e.data.data]
        # Device storage for existing transients; device schedule for
        # top-level maps.
        for name, desc in sdfg.arrays.items():
            if desc.transient and not name.startswith(self.prefix):
                if isinstance(desc, Stream):
                    continue
                if desc.storage == StorageType.Default:
                    desc.storage = self.transient_storage
        for state in sdfg.nodes():
            sd = state.scope_dict()
            for n in state.nodes():
                if isinstance(n, MapEntry) and sd.get(n) is None:
                    if n.map.schedule in (
                        ScheduleType.Default,
                        ScheduleType.CPU_Multicore,
                        ScheduleType.Sequential,
                    ):
                        n.map.schedule = self.device_schedule
        # Copy-in state before the start state; copy-out state at the end.
        if read:
            copy_in = sdfg.add_state_before(sdfg.start_state, "copy_to_device")
            for name in sorted(read):
                src = copy_in.add_read(name)
                dst = copy_in.add_write(mapping[name])
                sub = footprint.get(name)
                usable = (
                    sub is not None
                    and {s.name for s in sub.free_symbols} <= set(sdfg.symbols)
                    and sub.dims == sdfg.arrays[name].dims
                )
                if usable:
                    mem = Memlet(data=name, subset=sub, other_subset=sub)
                else:
                    mem = Memlet.from_array(name, sdfg.arrays[name])
                copy_in.add_edge(src, dst, mem, None, None)
        end_states = [s for s in sdfg.nodes() if sdfg.out_degree(s) == 0]
        if written and end_states:
            copy_out = sdfg.add_state("copy_to_host")
            for s in end_states:
                if s is not copy_out:
                    sdfg.add_edge(s, copy_out, InterstateEdge())
            for name in sorted(written):
                src = copy_out.add_read(mapping[name])
                dst = copy_out.add_write(name)
                sub = footprint.get(name)
                usable = (
                    sub is not None
                    and {s.name for s in sub.free_symbols} <= set(sdfg.symbols)
                    and sub.dims == sdfg.arrays[name].dims
                )
                if usable:
                    mem = Memlet(data=mapping[name], subset=sub, other_subset=sub)
                else:
                    mem = Memlet.from_array(mapping[name], sdfg.arrays[mapping[name]])
                copy_out.add_edge(src, dst, mem, None, None)
        sdfg.invalidate_compiled()


@register_transformation
class GPUTransform(_DeviceTransform):
    """Converts a CPU SDFG to run on a GPU, copying memory to the device
    and executing kernels (paper §5)."""

    prefix = "gpu_"
    global_storage = StorageType.GPU_Global
    transient_storage = StorageType.GPU_Global
    device_schedule = ScheduleType.GPU_Device


@register_transformation
class FPGATransform(_DeviceTransform):
    """Converts a CPU SDFG to be fully invoked on an FPGA (paper §5)."""

    prefix = "fpga_"
    global_storage = StorageType.FPGA_Global
    transient_storage = StorageType.FPGA_Local
    device_schedule = ScheduleType.FPGA_Device


@register_transformation
class MPITransform(SDFGTransformation):
    """Converts top-level CPU maps to distribute work across MPI ranks:
    each map's leading dimension is block-partitioned by the introduced
    ``__mpi_rank``/``__mpi_size`` symbols.

    On this single-node testbed the generated program runs with one rank
    (``__mpi_size = 1``) which reproduces the original semantics; the
    structural change (rank-parameterized ranges) is what the paper's
    MPI backend consumes.
    """

    @classmethod
    def applicable(cls, sdfg) -> bool:
        return "__mpi_rank" not in sdfg.symbols

    def apply(self) -> None:
        from repro.symbolic import CeilDiv, Min, Range, Subset, sympify

        sdfg = self.sdfg
        sdfg.add_symbol("__mpi_rank")
        sdfg.add_symbol("__mpi_size")
        sdfg.constants.setdefault("__mpi_rank", 0)
        sdfg.constants.setdefault("__mpi_size", 1)
        rank = sympify("__mpi_rank")
        size = sympify("__mpi_size")
        for state in sdfg.nodes():
            sd = state.scope_dict()
            for n in state.nodes():
                if isinstance(n, MapEntry) and sd.get(n) is None:
                    rng = n.map.range.ranges[0]
                    chunk = CeilDiv.make(rng.size(), size)
                    new_start = rng.start + rank * chunk * rng.step
                    new_end = Min.make(rng.end, rng.start + (rank + 1) * chunk * rng.step)
                    n.map.range = Subset(
                        (Range(new_start, new_end, rng.step),)
                        + tuple(n.map.range.ranges[1:])
                    )
        sdfg.invalidate_compiled()
