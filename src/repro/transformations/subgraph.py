"""Subgraph fusion transformations: TaskletFusion and OnTheFlyMapFusion.

These are the finer-grained fusions the cutout tuner exploits
(:mod:`repro.tuning.cutout`): once :class:`MapFusion` has merged two map
scopes, the producer/consumer tasklet pair it leaves behind is a
:class:`TaskletFusion` candidate; and where MapFusion's identical-domain
requirement fails (stencil consumers reading shifted elements),
:class:`OnTheFlyMapFusion` fuses anyway by *recomputing* the producer
element inside the consumer scope — the classic recompute-vs-store
trade that removes the transient tensor entirely.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List

from repro.sdfg.data import Stream
from repro.sdfg.dtypes import Language
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, MapEntry, MapExit, Tasklet
from repro.symbolic.sets import Range
from repro.transformations.base import (
    PatternNode,
    Transformation,
    path_graph,
    register_transformation,
)
from repro.transformations.fusion import _occurrence_count


def _identifier_used(code: str, name: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\b", code) is not None


class _InlineName(ast.NodeTransformer):
    """Replace every load of ``name`` with a (parenthesized) expression."""

    def __init__(self, name: str, replacement: ast.expr):
        self.name = name
        self.replacement = replacement

    def visit_Name(self, node: ast.Name) -> ast.expr:
        if node.id == self.name and isinstance(node.ctx, ast.Load):
            return ast.copy_location(self.replacement, node)
        return node


@register_transformation
class TaskletFusion(Transformation):
    """Fuses a producer tasklet into its consumer when they communicate
    through a single-element transient: the producer's right-hand side is
    inlined into the consumer's code and the intermediate container
    disappears.  This is exactly the shape :class:`MapFusion` leaves
    behind (``<arr>_elem`` scalars), so the two compose in a search."""

    _first = PatternNode(Tasklet)
    _array = PatternNode(AccessNode)
    _second = PatternNode(Tasklet)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._first, cls._array, cls._second)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        t1: Tasklet = candidate[cls._first]
        arr: AccessNode = candidate[cls._array]
        t2: Tasklet = candidate[cls._second]
        desc = sdfg.arrays.get(arr.data)
        if desc is None or not desc.transient or isinstance(desc, Stream):
            return False
        if state.in_degree(arr) != 1 or state.out_degree(arr) != 1:
            return False
        if _occurrence_count(sdfg, arr.data) != 1:
            return False
        if t1.language is not Language.Python or t2.language is not Language.Python:
            return False
        if t1.code_global or t2.code_global:
            return False
        if len(t1.out_connectors) != 1:
            return False
        e1 = state.in_edges(arr)[0]
        e2 = state.out_edges(arr)[0]
        if e1.src is not t1 or e2.dst is not t2:
            return False
        if e1.data.wcr is not None or e2.data.wcr is not None:
            return False
        for m in (e1.data, e2.data):
            if m.subset is None or not m.subset.is_point() or m.dynamic:
                return False
        if not e1.src_conn or not e2.dst_conn:
            return False
        if e2.dst_conn not in t2.in_connectors:
            return False
        # Same scope: the pair executes in lockstep per iteration.
        sd = state.scope_dict()
        if sd.get(t1) is not sd.get(t2) or sd.get(arr) is not sd.get(t1):
            return False
        # The producer must be a single pure assignment to its output.
        rhs = cls._producer_rhs(t1, e1.src_conn)
        if rhs is None:
            return False
        # Inlining must not capture: producer input names may not collide
        # with any name the consumer already uses.
        for conn in t1.in_connectors:
            if conn in t2.in_connectors or conn in t2.out_connectors:
                return False
            if _identifier_used(t2.code, conn):
                return False
        return True

    @staticmethod
    def _producer_rhs(t1: Tasklet, out_conn: str):
        """The RHS AST of ``out_conn = <expr>`` if that is all of t1."""
        try:
            tree = ast.parse(t1.code)
        except SyntaxError:
            return None
        if len(tree.body) != 1 or not isinstance(tree.body[0], ast.Assign):
            return None
        assign = tree.body[0]
        if len(assign.targets) != 1:
            return None
        target = assign.targets[0]
        if not isinstance(target, ast.Name) or target.id != out_conn:
            return None
        return assign.value

    def apply(self) -> None:
        sdfg, state = self.sdfg, self.state
        t1: Tasklet = self.node(self._first)
        arr: AccessNode = self.node(self._array)
        t2: Tasklet = self.node(self._second)
        e1 = state.in_edges(arr)[0]
        e2 = state.out_edges(arr)[0]
        bridge = e2.dst_conn

        rhs = self._producer_rhs(t1, e1.src_conn)
        tree = ast.parse(t2.code)
        tree = _InlineName(bridge, rhs).visit(tree)
        ast.fix_missing_locations(tree)
        t2.code = ast.unparse(tree)

        t2.remove_in_connector(bridge)
        for e in list(state.in_edges(t1)):
            state.remove_edge(e)
            if e.dst_conn:
                t2.add_in_connector(e.dst_conn)
            state.add_edge(e.src, t2, e.data, e.src_conn, e.dst_conn)
        state.remove_edge(e1)
        state.remove_edge(e2)
        state.remove_node(t1)
        state.remove_node(arr)
        del sdfg.arrays[arr.data]


@register_transformation
class OnTheFlyMapFusion(Transformation):
    """Fuses a producer map into a consumer map by *recomputing* the
    producer tasklet at every consumer read site ("on the fly"), so the
    iteration domains need not match — the stencil case MapFusion
    rejects.  The transient tensor between the maps disappears; each
    consumer read of ``tmp[f(j)]`` becomes a private producer-tasklet
    instance computing that element into a scalar."""

    _first_exit = PatternNode(MapExit)
    _array = PatternNode(AccessNode)
    _second_entry = PatternNode(MapEntry)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._first_exit, cls._array, cls._second_entry)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        exit1: MapExit = candidate[cls._first_exit]
        arr: AccessNode = candidate[cls._array]
        entry2: MapEntry = candidate[cls._second_entry]
        desc = sdfg.arrays.get(arr.data)
        if desc is None or not desc.transient or isinstance(desc, Stream):
            return False
        if state.in_degree(arr) != 1 or state.out_degree(arr) != 1:
            return False
        if _occurrence_count(sdfg, arr.data) != 1:
            return False
        entry1 = state.entry_node_of(exit1)
        sd = state.scope_dict()
        if sd.get(entry1) is not sd.get(entry2):
            return False
        # Producer body: exactly one flat tasklet.
        body = [
            n
            for n in state.scope_subgraph(entry1, include_scope_nodes=False)
        ]
        if len(body) != 1 or not isinstance(body[0], Tasklet):
            return False
        t1 = body[0]
        if t1.language is not Language.Python or t1.code_global:
            return False
        m1 = exit1.map
        # Producer writes exactly arr[params...] (the canonical identity
        # write) with no conflict resolution.
        writes = state.in_edges(exit1)
        if len(writes) != 1 or writes[0].src is not t1 or writes[0].data.wcr:
            return False
        wsub = writes[0].data.subset
        if wsub is None or not wsub.is_point() or wsub.dims != len(m1.params):
            return False
        for rng, param in zip(wsub.ranges, m1.params):
            if str(rng.start) != param:
                return False
        # Producer params must live only in memlets, never in the code.
        if any(_identifier_used(t1.code, p) for p in m1.params):
            return False
        # Producer inputs: point reads relayed from outside access nodes.
        for e in state.in_edges(t1):
            if e.data.is_empty():
                continue
            if e.src is not entry1 or not e.src_conn or not e.dst_conn:
                return False
            if e.data.wcr is not None or e.data.dynamic:
                return False
            if e.data.subset is None or not e.data.subset.is_point():
                return False
            outer = state.in_edges_by_connector(entry1, "IN_" + e.src_conn[4:])
            if len(outer) != 1 or not isinstance(outer[0].src, AccessNode):
                return False
        # Consumer scope must be flat and every read of arr a point read
        # into a tasklet.
        for n, s in sd.items():
            if s is entry2 and isinstance(n, MapEntry):
                return False
        reads = cls._consumer_reads(state, entry2, arr)
        if not reads:
            return False
        m2 = entry2.map
        for re_ in reads:
            sub = re_.data.subset
            if (
                not isinstance(re_.dst, Tasklet)
                or not re_.dst_conn
                or re_.data.wcr is not None
                or re_.data.dynamic
                or sub is None
                or not sub.is_point()
                or sub.dims != len(m1.params)
            ):
                return False
            # Every recomputed index must lie inside the producer's
            # domain (monotone index expressions; endpoint bounds).
            lo = {p: r.start for p, r in zip(m2.params, m2.range.ranges)}
            hi = {p: r.max_element() for p, r in zip(m2.params, m2.range.ranges)}
            for d, rng in enumerate(sub.ranges):
                read_lo = rng.start.subs(lo)
                read_hi = rng.start.subs(hi)
                if not m1.range.ranges[d].covers(Range(read_lo, read_hi + 1)):
                    return False
        return True

    @classmethod
    def _consumer_reads(cls, state, entry2, arr):
        out = []
        for e_in in state.in_edges(entry2):
            if e_in.src is arr and e_in.dst_conn:
                conn = "OUT_" + e_in.dst_conn[3:]
                out.extend(state.out_edges_by_connector(entry2, conn))
        return out

    def apply(self) -> None:
        sdfg, state = self.sdfg, self.state
        exit1: MapExit = self.node(self._first_exit)
        arr: AccessNode = self.node(self._array)
        entry2: MapEntry = self.node(self._second_entry)
        entry1 = state.entry_node_of(exit1)
        t1 = next(
            n
            for n in state.scope_subgraph(entry1, include_scope_nodes=False)
            if isinstance(n, Tasklet)
        )
        m1 = exit1.map
        out_conn = state.in_edges(exit1)[0].src_conn

        # Producer inputs: (tasklet connector, inner memlet, source node).
        feeds = []
        for e in state.in_edges(t1):
            if e.data.is_empty():
                continue
            outer = state.in_edges_by_connector(entry1, "IN_" + e.src_conn[4:])[0]
            feeds.append((e.dst_conn, e.data, outer.src))

        reads = self._consumer_reads(state, entry2, arr)
        for re_ in reads:
            rename: Dict[str, object] = {
                p: rng.start for p, rng in zip(m1.params, re_.data.subset.ranges)
            }
            sname, _ = sdfg.add_transient(
                f"{arr.data}_otf", (1,), sdfg.arrays[arr.data].dtype
            )
            clone = state.add_tasklet(
                f"{t1.name}_otf",
                [c for c, _, _ in feeds],
                [out_conn],
                t1.code,
                t1.language,
            )
            for conn, inner, src in feeds:
                fresh = entry2.next_in_connector()[3:]
                entry2.add_in_connector(f"IN_{fresh}")
                entry2.add_out_connector(f"OUT_{fresh}")
                state.add_edge(
                    src,
                    entry2,
                    Memlet(
                        data=inner.data,
                        subset=sdfg.arrays[inner.data].full_subset(),
                    ),
                    None,
                    f"IN_{fresh}",
                )
                state.add_edge(
                    entry2,
                    clone,
                    Memlet(data=inner.data, subset=inner.subset.subs(rename)),
                    f"OUT_{fresh}",
                    conn,
                )
            if not feeds:
                state.add_nedge(entry2, clone)
            sacc = state.add_access(sname)
            state.add_edge(clone, sacc, Memlet.simple(sname, "0"), out_conn, None)
            state.add_edge(sacc, re_.dst, Memlet.simple(sname, "0"), None, re_.dst_conn)
            state.remove_edge(re_)

        # Detach arr from the consumer entry.
        for e_in in list(state.in_edges(entry2)):
            if e_in.src is arr:
                idx = e_in.dst_conn[3:]
                state.remove_edge(e_in)
                entry2.remove_in_connector(f"IN_{idx}")
                entry2.remove_out_connector(f"OUT_{idx}")

        # Remove the producer scope and the transient tensor.
        doomed: List = [entry1, t1, exit1, arr]
        edges = {}
        for n in doomed:
            for e in state.in_edges(n) + state.out_edges(n):
                edges[id(e)] = e
        for e in edges.values():
            state.remove_edge(e)
        for n in doomed:
            state.remove_node(n)
        del sdfg.arrays[arr.data]
