"""Control-flow transformations: StateFusion and InlineSDFG (paper
Table 4).  Both are *strict* (only-beneficial) transformations applied
automatically after frontend parsing in DaCe; here they run through
``apply_strict_transformations``."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.sdfg.data import Stream
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import AccessNode, NestedSDFG
from repro.sdfg.state import SDFGState
from repro.transformations.base import (
    MultiStateTransformation,
    PatternNode,
    Transformation,
    path_graph,
    register_transformation,
)


def _reads_writes(state: SDFGState) -> tuple:
    reads: Set[str] = set()
    writes: Set[str] = set()
    for n in state.nodes():
        if isinstance(n, AccessNode):
            if state.out_edges(n):
                reads.add(n.data)
            if state.in_edges(n):
                writes.add(n.data)
    return reads, writes


@register_transformation
class StateFusion(MultiStateTransformation):
    """Fuses two states joined by an unconditional, assignment-free
    transition when no data hazards arise."""

    strict = True

    _first = PatternNode(SDFGState)
    _second = PatternNode(SDFGState)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._first, cls._second)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        s1: SDFGState = candidate[cls._first]
        s2: SDFGState = candidate[cls._second]
        if sdfg.out_degree(s1) != 1 or sdfg.in_degree(s2) != 1:
            return False
        edge = sdfg.edges_between(s1, s2)[0]
        if not edge.data.is_unconditional() or edge.data.assignments:
            return False
        r1, w1 = _reads_writes(s1)
        r2, w2 = _reads_writes(s2)
        # Write-write and read-after-write-after-read hazards are avoided
        # conservatively; RAW is handled by access-node chaining below.
        if w1 & w2:
            return False
        if r1 & w2:
            return False
        return True

    def apply(self) -> None:
        sdfg = self.sdfg
        s1: SDFGState = self.node(self._first)
        s2: SDFGState = self.node(self._second)
        # Last write access node per container in s1.
        last_write: Dict[str, AccessNode] = {}
        for n in s1.nodes():
            if isinstance(n, AccessNode) and s1.in_edges(n):
                last_write[n.data] = n
        # Move nodes; source access nodes reading data written in s1 merge
        # into s1's write node (RAW ordering).
        node_map: Dict[int, object] = {}
        for n in s2.nodes():
            if (
                isinstance(n, AccessNode)
                and not s2.in_edges(n)
                and n.data in last_write
            ):
                node_map[id(n)] = last_write[n.data]
            else:
                s1.add_node(n)
                node_map[id(n)] = n
        for e in s2.edges():
            s1.add_edge(
                node_map[id(e.src)], node_map[id(e.dst)], e.data, e.src_conn, e.dst_conn
            )
        # Rewire the state machine.
        for e in list(sdfg.out_edges(s2)):
            sdfg.remove_edge(e)
            sdfg.add_edge(s1, e.dst, e.data)
        if sdfg.start_state is s2:
            sdfg.start_state = s1
        sdfg.remove_node(s2)


@register_transformation
class InlineSDFG(Transformation):
    """Inlines a single-state nested SDFG into its parent state."""

    strict = True

    _nested = PatternNode(NestedSDFG)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._nested)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        node: NestedSDFG = candidate[cls._nested]
        inner = node.sdfg
        if inner.number_of_nodes() != 1:
            return False
        if node.symbol_mapping and any(
            str(k) != str(v) for k, v in node.symbol_mapping.items()
        ):
            return False  # nontrivial symbol remapping is not inlined
        # Every connector's outer memlet must cover the whole inner
        # container with matching rank, so subsets transfer unchanged.
        for e in list(state.in_edges(node)) + list(state.out_edges(node)):
            if e.data.is_empty():
                continue
            conn = e.dst_conn if e.dst is node else e.src_conn
            if conn is None:
                continue
            other = e.src if e.dst is node else e.dst
            if not isinstance(other, AccessNode):
                return False  # inlining inside scopes is out of scope here
            idesc = inner.arrays.get(conn)
            if idesc is None:
                return False
            if e.data.subset.dims != idesc.dims:
                return False
            for r, s in zip(e.data.subset.ranges, idesc.shape):
                if r.num_elements() != s:
                    return False
        return True

    def apply(self) -> None:
        sdfg, state = self.sdfg, self.state
        node: NestedSDFG = self.node(self._nested)
        inner = node.sdfg
        inner_state = inner.nodes()[0]
        # Offsets of each connector's outer subset.
        outer_edges: Dict[str, object] = {}
        for e in state.in_edges(node):
            if e.dst_conn:
                outer_edges[e.dst_conn] = e
        for e in state.out_edges(node):
            if e.src_conn:
                outer_edges.setdefault(e.src_conn, e)
        # Rename inner containers: connectors map to outer containers,
        # transients get fresh outer names.
        rename: Dict[str, str] = {}
        offset: Dict[str, object] = {}
        for name, desc in inner.arrays.items():
            if name in outer_edges:
                oe = outer_edges[name]
                rename[name] = oe.data.data
                offset[name] = oe.data.subset
            else:
                fresh = sdfg.add_datadesc(
                    f"{node.name}_{name}", desc.clone(), find_new_name=True
                )
                rename[name] = fresh
        # Copy nodes.
        node_map: Dict[int, object] = {}
        for n in inner_state.nodes():
            if isinstance(n, AccessNode):
                new = AccessNode(rename[n.data])
                state.add_node(new)
                node_map[id(n)] = new
            else:
                state.add_node(n)
                node_map[id(n)] = n
        for e in inner_state.edges():
            m = e.data.clone()
            if not m.is_empty():
                orig = m.data
                m.data = rename[orig]
                if orig in offset and m.subset is not None:
                    m.subset = offset[orig].compose(m.subset)
            state.add_edge(
                node_map[id(e.src)], node_map[id(e.dst)], m, e.src_conn, e.dst_conn
            )
        # Merge inlined boundary access nodes with the outer nodes feeding
        # the connectors (no self-copies).
        for e in list(state.in_edges(node)):
            state.remove_edge(e)
            if e.dst_conn is None or not isinstance(e.src, AccessNode):
                continue
            for n in inner_state.nodes():
                if (
                    isinstance(n, AccessNode)
                    and n.data == e.dst_conn
                    and not inner_state.in_edges(n)
                ):
                    inlined = node_map[id(n)]
                    for oe in list(state.out_edges(inlined)):
                        state.remove_edge(oe)
                        state.add_edge(e.src, oe.dst, oe.data, oe.src_conn, oe.dst_conn)
                    state.remove_node(inlined)
        for e in list(state.out_edges(node)):
            state.remove_edge(e)
            if e.src_conn is None or not isinstance(e.dst, AccessNode):
                continue
            for n in inner_state.nodes():
                if (
                    isinstance(n, AccessNode)
                    and n.data == e.src_conn
                    and inner_state.in_edges(n)
                    and not inner_state.out_edges(n)
                ):
                    inlined = node_map[id(n)]
                    for ie in list(state.in_edges(inlined)):
                        state.remove_edge(ie)
                        state.add_edge(ie.src, e.dst, ie.data, ie.src_conn, ie.dst_conn)
                    state.remove_node(inlined)
        state.remove_node(node)
