"""Data transformations: LocalStorage, LocalStream, DoubleBuffering, and
the strict RedundantArray cleanup (paper Table 4 + Appendix D)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sdfg.data import Array, Stream
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    EntryNode,
    ExitNode,
    MapEntry,
    MapExit,
    Tasklet,
)
from repro.symbolic import Subset
from repro.transformations.base import (
    PatternNode,
    Transformation,
    path_graph,
    register_transformation,
)


@register_transformation
class LocalStorage(Transformation):
    """Introduces a transient for caching data between two scope levels
    (paper Fig. 11b): the edge's footprint becomes a scratchpad array and
    inner memlets are re-indexed relative to it.

    Matches both directions: MapEntry→MapEntry (read caching / packing)
    and MapExit→MapExit (write caching / tile stores).
    """

    _outer_in = PatternNode(MapEntry)
    _inner_in = PatternNode(MapEntry)
    _inner_out = PatternNode(MapExit)
    _outer_out = PatternNode(MapExit)

    #: Override to restrict which container gets cached.
    array: Optional[str] = None

    @classmethod
    def expressions(cls):
        return [
            path_graph(cls._outer_in, cls._inner_in),
            path_graph(cls._inner_out, cls._outer_out),
        ]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        if cls._outer_in in candidate:
            src, dst = candidate[cls._outer_in], candidate[cls._inner_in]
        else:
            src, dst = candidate[cls._inner_out], candidate[cls._outer_out]
        for e in state.edges_between(src, dst):
            if e.data.is_empty() or e.data.subset is None:
                continue
            desc = sdfg.arrays.get(e.data.data)
            if desc is None or isinstance(desc, Stream):
                continue
            if e.data.dynamic:
                continue
            return True
        return False

    def _pick_edge(self, state, src, dst):
        for e in state.edges_between(src, dst):
            if e.data.is_empty() or e.data.subset is None or e.data.dynamic:
                continue
            desc = self.sdfg.arrays.get(e.data.data)
            if desc is None or isinstance(desc, Stream):
                continue
            if self.array is not None and e.data.data != self.array:
                continue
            return e
        return None

    def apply(self) -> None:
        sdfg, state = self.sdfg, self.state
        inward = self._outer_in in self.candidate
        if inward:
            src, dst = self.node(self._outer_in), self.node(self._inner_in)
        else:
            src, dst = self.node(self._inner_out), self.node(self._outer_out)
        edge = self._pick_edge(state, src, dst)
        if edge is None:
            raise RuntimeError("LocalStorage: no cacheable edge (set .array)")
        data = edge.data.data
        desc = sdfg.arrays[data]
        subset = edge.data.subset
        shape = [r.num_elements() for r in subset.ranges]
        tmp_name, tmp_desc = sdfg.add_transient(f"local_{data}", shape, desc.dtype)
        acc = state.add_access(tmp_name)
        origin = subset

        if inward:
            # outer --copy--> local --full--> inner; inner-scope memlets
            # re-index into the local buffer.
            state.remove_edge(edge)
            state.add_edge(
                src,
                acc,
                Memlet(data=data, subset=subset, other_subset=tmp_desc.full_subset()),
                edge.src_conn,
                None,
            )
            state.add_edge(
                acc, dst, Memlet.simple(tmp_name, str(tmp_desc.full_subset())),
                None, edge.dst_conn,
            )
            self._reindex_downstream(state, dst, edge.dst_conn, data, tmp_name, origin)
        else:
            state.remove_edge(edge)
            state.add_edge(
                src, acc, Memlet.simple(tmp_name, str(tmp_desc.full_subset())),
                edge.src_conn, None,
            )
            state.add_edge(
                acc,
                dst,
                Memlet(data=tmp_name, subset=tmp_desc.full_subset(), other_subset=subset),
                None,
                edge.dst_conn,
            )
            self._reindex_upstream(state, src, edge.src_conn, data, tmp_name, origin)

    def _reindex_downstream(self, state, entry, in_conn, data, tmp, origin) -> None:
        """Rewrite memlets below ``entry``'s relay connector to the local
        buffer's coordinate system."""
        out_conn = "OUT_" + in_conn[3:]
        stack = list(state.out_edges_by_connector(entry, out_conn))
        while stack:
            e = stack.pop()
            if not e.data.is_empty() and e.data.data == data:
                e.data.data = tmp
                e.data.subset = e.data.subset.offset(origin, negative=True)
            if isinstance(e.dst, EntryNode) and e.dst_conn:
                stack.extend(
                    state.out_edges_by_connector(e.dst, "OUT_" + e.dst_conn[3:])
                )

    def _reindex_upstream(self, state, exit_, out_conn, data, tmp, origin) -> None:
        in_conn = "IN_" + out_conn[4:]
        stack = list(state.in_edges_by_connector(exit_, in_conn))
        while stack:
            e = stack.pop()
            if not e.data.is_empty() and e.data.data == data:
                e.data.data = tmp
                e.data.subset = e.data.subset.offset(origin, negative=True)
            if isinstance(e.src, ExitNode) and e.src_conn:
                stack.extend(
                    state.in_edges_by_connector(e.src, "IN_" + e.src_conn[4:])
                )


@register_transformation
class LocalStream(Transformation):
    """Accumulates stream writes into a scope-local transient stream,
    draining it in bulk at scope exit (paper §6.3 ❷: turns per-element
    atomic pushes to a global stream into bulk updates).

    Two shapes are matched: a tasklet pushing through one map exit
    directly to a stream, and the nested form where an inner map exit
    relays through an outer exit (the BFS Fig. 16 structure) — there the
    local stream accumulates per outer iteration.
    """

    _tasklet = PatternNode(Tasklet)
    _exit = PatternNode(MapExit)
    _stream = PatternNode(AccessNode)
    _inner_exit = PatternNode(MapExit)
    _outer_exit = PatternNode(MapExit)
    _stream2 = PatternNode(AccessNode)

    @classmethod
    def expressions(cls):
        return [
            path_graph(cls._inner_exit, cls._outer_exit, cls._stream2),
            path_graph(cls._tasklet, cls._exit, cls._stream),
        ]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        if cls._stream2 in candidate:
            stream_node = candidate[cls._stream2]
            src, dst = candidate[cls._inner_exit], candidate[cls._outer_exit]
        else:
            stream_node = candidate[cls._stream]
            src, dst = candidate[cls._tasklet], candidate[cls._exit]
        desc = sdfg.arrays.get(stream_node.data)
        if not isinstance(desc, Stream):
            return False
        return any(
            not e.data.is_empty() and e.data.data == stream_node.data
            for e in state.edges_between(src, dst)
        )

    def apply(self) -> None:
        sdfg, state = self.sdfg, self.state
        nested = self._stream2 in self.candidate
        if nested:
            stream_node: AccessNode = self.node(self._stream2)
            src, dst = self.node(self._inner_exit), self.node(self._outer_exit)
        else:
            stream_node = self.node(self._stream)
            src, dst = self.node(self._tasklet), self.node(self._exit)
        desc = sdfg.arrays[stream_node.data]
        lname, _ = sdfg.add_stream(
            f"L{stream_node.data}", desc.dtype, transient=True
        )
        lacc = state.add_access(lname)
        for e in list(state.edges_between(src, dst)):
            if e.data.is_empty() or e.data.data != stream_node.data:
                continue
            # Retarget the upstream producing memlet path at the local stream.
            path = state.memlet_path(e)
            for pe in path[: path.index(e)]:
                if not pe.data.is_empty() and pe.data.data == stream_node.data:
                    pe.data.data = lname
            state.remove_edge(e)
            # producer -> local stream (inside the scope)
            state.add_edge(
                src, lacc, Memlet(data=lname, subset="0", dynamic=True),
                e.src_conn, None,
            )
            # local stream -> exit -> global stream: other_subset flags the
            # bulk drain into the relay path's final destination.
            idx = dst.next_in_connector()[3:]
            dst.add_in_connector(f"IN_{idx}")
            dst.add_out_connector(f"OUT_{idx}")
            state.add_edge(
                lacc, dst,
                Memlet(data=lname, subset="0", other_subset="0", dynamic=True),
                None, f"IN_{idx}",
            )
            state.add_edge(
                dst, stream_node,
                Memlet(data=stream_node.data, subset="0", dynamic=True),
                f"OUT_{idx}", None,
            )


@register_transformation
class DoubleBuffering(Transformation):
    """Doubles a scope-local transient so that filling buffer ``k % 2``
    can overlap processing buffer ``(k-1) % 2`` (paper Table 4).

    Sequential backends execute the two buffers degenerately (both phases
    of an iteration use the same half), preserving semantics; the GPU and
    FPGA machine models credit copy/compute overlap for descriptors
    marked ``double_buffered``.
    """

    _entry = PatternNode(MapEntry)
    _local = PatternNode(AccessNode)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._entry, cls._local)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        entry: MapEntry = candidate[cls._entry]
        local: AccessNode = candidate[cls._local]
        desc = sdfg.arrays.get(local.data)
        if desc is None or not desc.transient or isinstance(desc, Stream):
            return False
        if getattr(desc, "double_buffered", False):
            return False
        # The transient must live inside the (sequential) scope.
        return state.scope_dict().get(local) is entry and len(entry.map.params) >= 1

    def apply(self) -> None:
        sdfg, state = self.sdfg, self.state
        entry: MapEntry = self.node(self._entry)
        local: AccessNode = self.node(self._local)
        desc: Array = sdfg.arrays[local.data]
        param = entry.map.params[0]
        from repro.symbolic import sympify

        desc.shape = (sympify(2),) + tuple(desc.shape)
        desc.strides = Array.default_strides(desc.shape)
        desc.double_buffered = True  # type: ignore[attr-defined]
        phase = f"{param} % 2"
        for st in sdfg.nodes():
            for e in st.edges():
                m = e.data
                if m.is_empty():
                    continue
                if m.data == local.data and m.subset is not None:
                    m.subset = Subset.from_string(f"{phase}, {m.subset}")
                elif m.other_subset is not None:
                    # other_subset reindexes the opposite endpoint.
                    touches_local = any(
                        isinstance(n, AccessNode) and n.data == local.data
                        for n in (e.src, e.dst)
                    )
                    if touches_local:
                        m.other_subset = Subset.from_string(
                            f"{phase}, {m.other_subset}"
                        )


@register_transformation
class RedundantArray(Transformation):
    """Removes a transient array copied directly into another array and
    used nowhere else (paper Appendix D, reproduced faithfully)."""

    strict = True

    _in_array = PatternNode(AccessNode)
    _out_array = PatternNode(AccessNode)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._in_array, cls._out_array)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        in_array: AccessNode = candidate[cls._in_array]
        out_array: AccessNode = candidate[cls._out_array]
        if in_array.data == out_array.data:
            return False
        in_desc = sdfg.arrays.get(in_array.data)
        out_desc = sdfg.arrays.get(out_array.data)
        if in_desc is None or out_desc is None:
            return False
        if isinstance(in_desc, Stream) or isinstance(out_desc, Stream):
            return False
        # Ensure out degree is one (only one target, out_array).
        if state.out_degree(in_array) != 1:
            return False
        # Make sure that the candidate is a transient variable.
        if not in_desc.transient:
            return False
        # Both arrays must use the same storage location.
        if in_desc.storage != out_desc.storage:
            return False
        # The connecting edge must be a plain copy.
        e = state.edges_between(in_array, out_array)
        if not e or e[0].data.wcr is not None:
            return False
        # Only one occurrence of the array in this and other states.
        occurrences = [
            n
            for st in sdfg.nodes()
            for n in st.nodes()
            if isinstance(n, AccessNode) and n.data == in_array.data
        ]
        if len(occurrences) > 1:
            return False
        # Same shape (no need to modify memlet subsets).
        if len(in_desc.shape) != len(out_desc.shape) or any(
            i != o for i, o in zip(in_desc.shape, out_desc.shape)
        ):
            return False
        return True

    def apply(self) -> None:
        sdfg, state = self.sdfg, self.state
        in_array: AccessNode = self.node(self._in_array)
        out_array: AccessNode = self.node(self._out_array)
        # Modify all incoming edges (and their relay paths) to point to
        # out_array, then redirect the edges.
        for e in list(state.in_edges(in_array)):
            for pe in state.memlet_path(e):
                if not pe.data.is_empty() and pe.data.data == in_array.data:
                    pe.data.data = out_array.data
            state.remove_edge(e)
            state.add_edge(e.src, out_array, e.data, e.src_conn, e.dst_conn)
        state.remove_node(in_array)
        del sdfg.arrays[in_array.data]
