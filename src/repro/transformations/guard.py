"""Transactional transformation application (the safety layer over the
paper's §4.1/§4.2 workflow).

``GuardedOptimizer`` wraps every transformation application in a
transaction, in the spirit of DIODE's "optimization version control":

1. **snapshot** — serialize the SDFG (JSON round-trip);
2. **apply** — run the transformation's graph rewrite;
3. **re-validate** — full structural validation of the result;
4. **differential verification** (optional) — execute the pre- and
   post-transformation SDFGs on small inputs through the interpreter
   backend and compare every output container within a tolerance;
5. **commit or roll back** — on any failure the snapshot is restored
   *in place* (byte-identical serialization), so a corrupting
   transformation can never leave the graph broken.

Every attempt — applied, rolled back (with the reason), or no match —
is recorded in a machine-readable :class:`GuardReport`, making the
optimization pipeline safe to run unattended to fixpoint.
"""

from __future__ import annotations

import copy
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.instrumentation import InstrumentationRecorder
from repro.sdfg.serialize import restore_sdfg_inplace, sdfg_from_json, sdfg_to_json
from repro.transformations.base import REGISTRY, Transformation
from repro.transformations.optimizer import XformLike, _resolve, sort_matches

#: Sentinel reason when differential verification could not run (e.g.
#: the *baseline* already fails on synthesized inputs): the application
#: is kept, but recorded as unverified.
VERIFY_SKIPPED = "skipped"


def canonical_snapshot(sdfg) -> str:
    """Deterministic serialized form, used for byte-identity checks."""
    return json.dumps(sdfg_to_json(sdfg), sort_keys=True)


@dataclass
class AttemptRecord:
    """One transformation attempt in a guarded pipeline."""

    transformation: str
    status: str  # "applied" | "rolled_back" | "no_match"
    reason: str = ""
    code: Optional[str] = None  # diagnostic code of the failure, if any
    verified: Optional[str] = None  # None | "ok" | "skipped"
    max_abs_error: Optional[float] = None
    duration: float = 0.0
    #: Wall-clock seconds per phase: snapshot / apply / validate / verify.
    timings: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "transformation": self.transformation,
            "status": self.status,
            "reason": self.reason,
            "code": self.code,
            "verified": self.verified,
            "max_abs_error": self.max_abs_error,
            "duration": self.duration,
            "timings": dict(self.timings),
        }


@dataclass
class GuardReport:
    """Machine-readable log of a guarded optimization run."""

    sdfg: str
    attempts: List[AttemptRecord] = field(default_factory=list)

    def applied(self) -> List[AttemptRecord]:
        return [a for a in self.attempts if a.status == "applied"]

    def rolled_back(self) -> List[AttemptRecord]:
        return [a for a in self.attempts if a.status == "rolled_back"]

    def to_json(self) -> Dict[str, Any]:
        return {"sdfg": self.sdfg, "attempts": [a.to_json() for a in self.attempts]}

    def summary(self) -> str:
        n_app, n_rb = len(self.applied()), len(self.rolled_back())
        lines = [f"guarded optimization of {self.sdfg!r}: "
                 f"{n_app} applied, {n_rb} rolled back"]
        for a in self.attempts:
            extra = f" ({a.reason})" if a.reason else ""
            lines.append(f"  {a.status:12s} {a.transformation}{extra}")
        return "\n".join(lines)


class GuardedOptimizer:
    """Applies transformations transactionally (snapshot / validate /
    verify / roll back) and records every attempt.

    :param sdfg: The SDFG to optimize (mutated in place; rolled back in
        place on failure).
    :param verify: Differentially verify each application by executing
        pre- and post-transformation SDFGs through the interpreter
        backend and comparing outputs.
    :param verify_inputs: Keyword arguments (arrays + symbol values) for
        verification runs.  When omitted, small random inputs are
        synthesized from the SDFG's argument descriptors — sound for
        dense kernels; pass explicit inputs for data-dependent graphs
        (sparse indices, stream sizes).
    :param tolerance: Maximum absolute output difference accepted.
    :param symbol_default: Value bound to each free size symbol when
        synthesizing inputs.
    :param recorder: Instrumentation event bus to report per-attempt
        phase timings into; created internally when omitted (see
        :meth:`instrumentation_report`).
    """

    def __init__(
        self,
        sdfg,
        verify: bool = False,
        verify_inputs: Optional[Mapping[str, Any]] = None,
        tolerance: float = 1e-8,
        validate: bool = True,
        symbol_default: int = 6,
        seed: int = 0,
        recorder: Optional[InstrumentationRecorder] = None,
    ):
        self.sdfg = sdfg
        self.verify = verify
        self.verify_inputs = dict(verify_inputs) if verify_inputs else None
        self.tolerance = tolerance
        self.validate = validate
        self.symbol_default = symbol_default
        self.seed = seed
        self.report = GuardReport(sdfg=sdfg.name)
        self.recorder = recorder if recorder is not None else InstrumentationRecorder()

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> Dict[str, Any]:
        return sdfg_to_json(self.sdfg)

    def restore(self, snap: Dict[str, Any]) -> None:
        restore_sdfg_inplace(self.sdfg, snap)

    # -------------------------------------------------------------- applying
    def apply(
        self,
        xform: XformLike,
        options: Optional[Mapping[str, Any]] = None,
        strict: bool = False,
        match_index: int = 0,
    ) -> bool:
        """Apply the ``match_index``-th match of ``xform`` transactionally
        (matches are deterministically ordered, so the index identifies
        the same candidate across runs — the auto-tuner's search steps
        rely on this).

        Returns True when the transformation was applied *and* survived
        validation (and differential verification, when enabled); False
        when there was no match or the application was rolled back.  The
        outcome is appended to :attr:`report` either way.
        """
        cls = _resolve(xform)
        name = cls.__name__
        timings: Dict[str, float] = {}
        if self.recorder is not None:
            self.recorder.enter("transformation", name)
        try:
            start = time.perf_counter()
            snap = self.snapshot()
            timings["snapshot"] = time.perf_counter() - start

            try:
                t0 = time.perf_counter()
                self.sdfg.propagate()
                matches = sort_matches(self.sdfg, cls.matches(self.sdfg, strict))
                inst = matches[match_index] if match_index < len(matches) else None
                if inst is None:
                    timings["apply"] = time.perf_counter() - t0
                    self._record(name, "no_match", start=start, timings=timings)
                    return False
                for k, v in (options or {}).items():
                    setattr(inst, k, v)
                inst.apply_and_record()
                self.sdfg.propagate()
                timings["apply"] = time.perf_counter() - t0
                t0 = time.perf_counter()
                if self.validate:
                    self.sdfg.validate()
                timings["validate"] = time.perf_counter() - t0
            except Exception as err:  # noqa: BLE001 - any failure rolls back
                self.restore(snap)
                from repro.sdfg.validation import InvalidSDFGError

                code = "G102" if isinstance(err, InvalidSDFGError) else "G101"
                self._record(
                    name,
                    "rolled_back",
                    reason=f"{type(err).__name__}: {err}",
                    code=getattr(err, "code", None) or code,
                    start=start,
                    timings=timings,
                )
                return False

            verified: Optional[str] = None
            max_err: Optional[float] = None
            if self.verify:
                t0 = time.perf_counter()
                failure, max_err = self._differential_check(snap)
                timings["verify"] = time.perf_counter() - t0
                if failure is VERIFY_SKIPPED:
                    verified = VERIFY_SKIPPED
                elif failure is not None:
                    self.restore(snap)
                    self._record(
                        name,
                        "rolled_back",
                        reason=failure,
                        code="G103",
                        max_abs_error=max_err,
                        start=start,
                        timings=timings,
                    )
                    return False
                else:
                    verified = "ok"

            self._record(
                name,
                "applied",
                verified=verified,
                max_abs_error=max_err,
                start=start,
                timings=timings,
            )
            return True
        finally:
            if self.recorder is not None:
                for phase, dur in timings.items():
                    self.recorder.event("phase", phase, duration=dur)
                self.recorder.exit()

    def apply_to_fixpoint(
        self,
        xforms: Optional[Sequence[XformLike]] = None,
        max_applications: int = 1000,
    ) -> int:
        """Apply the given transformations (default: the strict set)
        repeatedly until none matches or every remaining candidate has
        been rolled back.  A transformation whose application rolls back
        is retired from the pool — a corrupting rewrite is contained
        once, not retried forever.  Returns the number applied.
        """
        if xforms is None:
            classes = [cls for cls in REGISTRY.values() if cls.strict]
        else:
            classes = [_resolve(x) for x in xforms]
        applied = 0
        retired: set = set()
        progress = True
        while progress and applied < max_applications:
            progress = False
            for cls in classes:
                if cls in retired:
                    continue
                if self.apply(cls):
                    applied += 1
                    progress = True
                elif self.report.attempts[-1].status == "rolled_back":
                    retired.add(cls)
        return applied

    # -------------------------------------------------- differential checks
    def _differential_check(self, pre_snapshot: Dict[str, Any]):
        """Execute pre- and post-transformation SDFGs on identical inputs
        via the interpreter and compare outputs.

        Returns ``(failure_reason_or_None_or_VERIFY_SKIPPED, max_abs_error)``.
        """
        baseline = sdfg_from_json(pre_snapshot)
        inputs = self.verify_inputs
        if inputs is None:
            inputs = synthesize_inputs(baseline, self.symbol_default, self.seed)

        try:
            ref = _run_via_interpreter(baseline, inputs)
        except Exception as err:  # noqa: BLE001 - baseline unrunnable
            return VERIFY_SKIPPED, None
        try:
            out = _run_via_interpreter(self.sdfg, inputs)
        except Exception as err:  # noqa: BLE001 - transformed run crashed
            return f"transformed SDFG failed to execute: {type(err).__name__}: {err}", None

        max_err = 0.0
        for name in sorted(set(ref) & set(out)):
            a, b = np.asarray(ref[name]), np.asarray(out[name])
            if a.shape != b.shape:
                return f"output {name!r} shape changed: {a.shape} -> {b.shape}", None
            if a.size == 0:
                continue
            diff = float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))
            max_err = max(max_err, diff)
            if diff > self.tolerance:
                return (
                    f"output {name!r} diverged: max abs error {diff:.3e} "
                    f"> tolerance {self.tolerance:.1e}",
                    diff,
                )
        return None, max_err

    # ------------------------------------------------------------- recording
    def _record(
        self,
        name: str,
        status: str,
        reason: str = "",
        code: Optional[str] = None,
        verified: Optional[str] = None,
        max_abs_error: Optional[float] = None,
        start: float = 0.0,
        timings: Optional[Dict[str, float]] = None,
    ) -> None:
        self.report.attempts.append(
            AttemptRecord(
                transformation=name,
                status=status,
                reason=reason,
                code=code,
                verified=verified,
                max_abs_error=max_abs_error,
                duration=time.perf_counter() - start,
                timings=dict(timings) if timings else {},
            )
        )

    def instrumentation_report(self):
        """Per-attempt phase timings as an
        :class:`~repro.instrumentation.report.InstrumentationReport`
        (one ``transformation`` event per attempt, with ``phase``
        children for snapshot / apply / validate / verify)."""
        return self.recorder.report(self.sdfg.name, backend="guard")


# =====================================================================
# Differential-execution helpers
# =====================================================================


def synthesize_inputs(sdfg, symbol_default: int = 6, seed: int = 0) -> Dict[str, Any]:
    """Small random arguments for an SDFG: every free size symbol bound
    to ``symbol_default``, float containers filled uniformly at random,
    integer containers zeroed (random integers would be unsound for
    graphs that index through them)."""
    from repro.sdfg.data import Scalar, Stream

    rng = np.random.RandomState(seed)
    symbols = {
        s: symbol_default
        for s in sorted(set(sdfg.free_symbols()) | set(sdfg.symbols))
        if s not in sdfg.constants
    }
    inputs: Dict[str, Any] = dict(symbols)
    for name, desc in sorted(sdfg.arglist().items()):
        if isinstance(desc, Stream):
            continue  # interpreter allocates streams itself
        np_dtype = desc.dtype.as_numpy()
        if isinstance(desc, Scalar):
            if np.issubdtype(np_dtype, np.floating):
                inputs[name] = np_dtype(rng.rand())
            else:
                inputs[name] = np_dtype(0)
            continue
        shape = tuple(int(s.evaluate(symbols)) for s in desc.shape)
        if np.issubdtype(np_dtype, np.floating):
            inputs[name] = rng.rand(*shape).astype(np_dtype)
        elif np.issubdtype(np_dtype, np.complexfloating):
            inputs[name] = (rng.rand(*shape) + 1j * rng.rand(*shape)).astype(np_dtype)
        else:
            inputs[name] = np.zeros(shape, dtype=np_dtype)
    return inputs


def _run_via_interpreter(sdfg, inputs: Mapping[str, Any]) -> Dict[str, np.ndarray]:
    """Run an SDFG through the interpreter backend on a private copy of
    ``inputs`` and return the (possibly mutated) array arguments."""
    from repro.codegen.compiler import compile_sdfg

    local = {
        k: (v.copy() if isinstance(v, np.ndarray) else copy.copy(v))
        for k, v in inputs.items()
    }
    compiled = compile_sdfg(sdfg, backend="interpreter", validate=False)
    compiled(**local)
    return {k: v for k, v in local.items() if isinstance(v, np.ndarray)}
