"""Fusion transformations: MapFusion and MapReduceFusion (paper Table 4,
Fig. 11a)."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.codegen.python_gen import _rename_identifiers
from repro.sdfg.dtypes import ReductionType, detect_reduction_type
from repro.sdfg.memlet import Memlet
from repro.sdfg.nodes import (
    AccessNode,
    ExitNode,
    MapEntry,
    MapExit,
    Reduce,
    Tasklet,
)
from repro.sdfg.data import Stream
from repro.symbolic import Subset
from repro.transformations.base import (
    PatternNode,
    Transformation,
    path_graph,
    register_transformation,
)


def _occurrence_count(sdfg, data: str) -> int:
    return sum(
        1
        for st in sdfg.nodes()
        for n in st.nodes()
        if isinstance(n, AccessNode) and n.data == data
    )


@register_transformation
class MapFusion(Transformation):
    """Fuses two consecutive maps with identical iteration domains that
    communicate through a transient array, turning the per-iteration
    element into a scalar transient inside one fused scope."""

    _first_exit = PatternNode(MapExit)
    _array = PatternNode(AccessNode)
    _second_entry = PatternNode(MapEntry)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._first_exit, cls._array, cls._second_entry)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        exit1: MapExit = candidate[cls._first_exit]
        arr: AccessNode = candidate[cls._array]
        entry2: MapEntry = candidate[cls._second_entry]
        desc = sdfg.arrays.get(arr.data)
        if desc is None or not desc.transient or isinstance(desc, Stream):
            return False
        if state.in_degree(arr) != 1 or state.out_degree(arr) != 1:
            return False
        if _occurrence_count(sdfg, arr.data) != 1:
            return False
        m1, m2 = exit1.map, entry2.map
        if len(m1.params) != len(m2.params):
            return False
        rename = dict(zip(m2.params, m1.params))
        if m2.range.subs(rename) != m1.range:
            return False
        # Producer writes and consumer reads the same point per iteration.
        prod = cls._producer_edge(state, exit1, arr)
        if prod is None or prod.data.wcr is not None:
            return False
        if not prod.data.subset.is_point():
            return False
        cons_edges = cls._consumer_edges(state, entry2, arr)
        if not cons_edges:
            return False
        for ce in cons_edges:
            if not ce.data.subset.is_point():
                return False
            if ce.data.subset.subs(rename) != prod.data.subset:
                return False
        # Scopes must be flat tasklet bodies (no nested maps) for this
        # simplified fusion.
        sd = state.scope_dict()
        for n, s in sd.items():
            if s is entry2 and isinstance(n, MapEntry):
                return False
        return True

    @classmethod
    def _producer_edge(cls, state, exit1, arr):
        for e_out in state.out_edges(exit1):
            if e_out.dst is arr and e_out.src_conn:
                conn = "IN_" + e_out.src_conn[4:]
                inner = state.in_edges_by_connector(exit1, conn)
                if inner:
                    return inner[0]
        return None

    @classmethod
    def _consumer_edges(cls, state, entry2, arr):
        out = []
        for e_in in state.in_edges(entry2):
            if e_in.src is arr and e_in.dst_conn:
                conn = "OUT_" + e_in.dst_conn[3:]
                out.extend(state.out_edges_by_connector(entry2, conn))
        return out

    def apply(self) -> None:
        sdfg, state = self.sdfg, self.state
        exit1: MapExit = self.node(self._first_exit)
        arr: AccessNode = self.node(self._array)
        entry2: MapEntry = self.node(self._second_entry)
        entry1 = state.entry_node_of(exit1)
        exit2 = state.exit_node(entry2)
        m1, m2 = exit1.map, entry2.map
        rename = dict(zip(m2.params, m1.params))

        # Rename second-map parameters in its scope's memlets and tasklets.
        scope2 = state.scope_subgraph(entry2, include_scope_nodes=True)
        for node in scope2:
            for e in state.out_edges(node):
                if not e.data.is_empty():
                    e.data = e.data.subs(rename)
            if isinstance(node, Tasklet) and any(
                p in node.code for p in rename
            ):
                node.code = _rename_identifiers(node.code, rename)

        # Scalar transient carrying the per-iteration element.
        elem_name, elem_desc = sdfg.add_transient(
            f"{arr.data}_elem", (1,), sdfg.arrays[arr.data].dtype
        )
        elem_acc = state.add_access(elem_name)

        prod = self._producer_edge(state, exit1, arr)
        cons_edges = self._consumer_edges(state, entry2, arr)
        # Producer tasklet now writes the scalar.
        state.add_edge(
            prod.src, elem_acc, Memlet.simple(elem_name, "0"), prod.src_conn, None
        )
        state.remove_edge(prod)
        # Consumers read the scalar.
        for ce in cons_edges:
            state.add_edge(
                elem_acc, ce.dst, Memlet.simple(elem_name, "0"), None, ce.dst_conn
            )
            state.remove_edge(ce)

        # Re-route second-scope external inputs through the first entry.
        for e_in in list(state.in_edges(entry2)):
            if e_in.src is arr:
                state.remove_edge(e_in)
                continue
            state.remove_edge(e_in)
            if e_in.data.is_empty():
                continue
            conn_idx = e_in.dst_conn[3:] if e_in.dst_conn else None
            inner_edges = (
                state.out_edges_by_connector(entry2, f"OUT_{conn_idx}")
                if conn_idx
                else []
            )
            fresh = entry1.next_in_connector()[3:]
            entry1.add_in_connector(f"IN_{fresh}")
            entry1.add_out_connector(f"OUT_{fresh}")
            state.add_edge(e_in.src, entry1, e_in.data, e_in.src_conn, f"IN_{fresh}")
            for ie in inner_edges:
                state.add_edge(entry1, ie.dst, ie.data, f"OUT_{fresh}", ie.dst_conn)
                state.remove_edge(ie)
        # Remaining relay edges of entry2 (already consumed) are dropped with
        # the node itself; re-route second-scope outputs through exit1.
        for e_out in list(state.out_edges(exit2)):
            state.remove_edge(e_out)
            if e_out.data.is_empty():
                continue
            conn_idx = e_out.src_conn[4:] if e_out.src_conn else None
            inner_edges = (
                state.in_edges_by_connector(exit2, f"IN_{conn_idx}") if conn_idx else []
            )
            fresh = exit1.next_in_connector()[3:]
            exit1.add_in_connector(f"IN_{fresh}")
            exit1.add_out_connector(f"OUT_{fresh}")
            state.add_edge(exit1, e_out.dst, e_out.data, f"OUT_{fresh}", e_out.dst_conn)
            for ie in inner_edges:
                state.add_edge(ie.src, exit1, ie.data, ie.src_conn, f"IN_{fresh}")
                state.remove_edge(ie)
        state.remove_node(entry2)
        state.remove_node(exit2)
        # The intermediate array node: drop the exit1 relay edge and node.
        for e in list(state.in_edges(arr)):
            state.remove_edge(e)
            if e.src is exit1 and e.src_conn:
                idx = e.src_conn[4:]
                exit1.remove_in_connector(f"IN_{idx}")
                exit1.remove_out_connector(f"OUT_{idx}")
        state.remove_node(arr)
        del sdfg.arrays[arr.data]
        # Keep the exit connected if the producer was its only input.
        if state.in_degree(exit1) == 0:
            state.add_edge(elem_acc, exit1, Memlet.empty(), None, None)


_IDENTITY = {
    ReductionType.Sum: 0,
    ReductionType.Product: 1,
    ReductionType.Min: np.inf,
    ReductionType.Max: -np.inf,
}


@register_transformation
class MapReduceFusion(Transformation):
    """Fuses a map with an immediately-following Reduce over its output
    (paper Fig. 11a): the transient tensor disappears, the tasklet output
    becomes a write-conflict-resolution memlet, and the reduction output
    is initialized to the reduction identity."""

    _exit = PatternNode(MapExit)
    _array = PatternNode(AccessNode)
    _reduce = PatternNode(Reduce)
    _out = PatternNode(AccessNode)

    @classmethod
    def expressions(cls):
        return [path_graph(cls._exit, cls._array, cls._reduce, cls._out)]

    @classmethod
    def can_be_applied(cls, state, candidate, sdfg, strict=False) -> bool:
        exit1: MapExit = candidate[cls._exit]
        arr: AccessNode = candidate[cls._array]
        red: Reduce = candidate[cls._reduce]
        desc = sdfg.arrays.get(arr.data)
        if desc is None or not desc.transient:
            return False
        if state.in_degree(arr) != 1 or state.out_degree(arr) != 1:
            return False
        if _occurrence_count(sdfg, arr.data) != 1:
            return False
        if detect_reduction_type(red.wcr) not in _IDENTITY:
            return False
        inner = state.in_edges(exit1)
        if len(inner) != 1 or inner[0].data.wcr is not None:
            return False
        if not inner[0].data.subset.is_point():
            return False
        axes = red.axes if red.axes is not None else tuple(range(desc.dims))
        if max(axes) >= desc.dims:
            return False
        return True

    def apply(self) -> None:
        sdfg, state = self.sdfg, self.state
        exit1: MapExit = self.node(self._exit)
        arr: AccessNode = self.node(self._array)
        red: Reduce = self.node(self._reduce)
        out: AccessNode = self.node(self._out)
        entry1 = state.entry_node_of(exit1)
        out_desc = sdfg.arrays[out.data]
        rtype = detect_reduction_type(red.wcr)
        axes = set(red.axes if red.axes is not None else range(sdfg.arrays[arr.data].dims))

        inner = state.in_edges(exit1)[0]
        kept = [
            r for d, r in enumerate(inner.data.subset.ranges) if d not in axes
        ]
        new_subset = Subset(kept) if kept else Subset.from_string("0")
        inner.data = Memlet(
            data=out.data, subset=new_subset, wcr=red.wcr
        )
        # Exit relay writes the (initialized) output with conflict resolution.
        relay = state.out_edges(exit1)
        for e in list(relay):
            if e.dst is arr:
                state.remove_edge(e)
                state.add_edge(
                    exit1,
                    out,
                    Memlet(
                        data=out.data,
                        subset=out_desc.full_subset(),
                        wcr=red.wcr,
                    ),
                    e.src_conn,
                    None,
                )
        # Remove the reduce node and the transient tensor.
        state.remove_node(red)
        state.remove_node(arr)
        del sdfg.arrays[arr.data]

        # Initialize the output to the reduction identity before the
        # accumulation scope runs (ordering via an empty memlet).
        identity = _IDENTITY[rtype]
        init_out = state.add_access(out.data)
        params = {
            f"__init{d}": f"0:{s}" for d, s in enumerate(out_desc.shape)
        }
        idx = ", ".join(params)
        state.add_mapped_tasklet(
            "_reduce_init_",
            params,
            inputs={},
            code=f"__o = {identity!r}",
            outputs={"__o": Memlet.simple(out.data, idx)},
            output_nodes={out.data: init_out},
        )
        state.add_edge(init_out, entry1, Memlet.empty(), None, None)
