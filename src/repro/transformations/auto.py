"""Automatic optimization (the paper's §8 outlook: "research may be
conducted into [transformations'] systematic application, enabling
automatic optimization with reduced human intervention").

``auto_optimize`` is a deliberately simple greedy pilot of that idea:

1. strict cleanup pass (RedundantArray / StateFusion / InlineSDFG),
2. fuse producer/consumer maps and map+reduce pairs where legal,
3. collapse nested maps into wider parallel scopes,
4. mark every vectorizable map for the strongest backend lowering,
5. optionally offload the whole SDFG to a device.

Each step only applies transformations whose ``can_be_applied`` accepts,
so the result is always semantics-preserving; the applied chain is
recorded in ``sdfg.transformation_history`` for inspection and replay.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.transformations.optimizer import (
    apply_strict_transformations,
    apply_transformations,
    apply_transformations_repeated,
    replay,
)


def auto_optimize(
    sdfg,
    device: Optional[str] = None,
    validate: bool = True,
    strategy: str = "fixed",
    **tune_kwargs,
) -> int:
    """Automatic optimization pass.  Returns the number of
    transformations applied.  ``device`` may be ``"gpu"`` or ``"fpga"``.

    ``strategy`` selects between the fixed greedy recipe below
    (``"fixed"``, the default) and the cost-guided search of
    :func:`repro.tuning.tune` (``"search"``), which explores legal
    transformation sequences and applies the best-scoring one in place.
    Extra keyword arguments (``cost``, ``depth``, ``budget``,
    ``cache_dir``, ...) are forwarded to ``tune``.
    """
    if strategy == "search":
        return _auto_optimize_search(sdfg, device, validate, **tune_kwargs)
    if strategy != "fixed":
        raise ValueError(f"unknown auto-optimize strategy {strategy!r}")
    applied = 0
    applied += apply_strict_transformations(sdfg, validate=False)
    applied += apply_transformations_repeated(
        sdfg, ["MapReduceFusion", "MapFusion"], validate=False, max_applications=50
    )
    applied += apply_transformations_repeated(
        sdfg, "MapCollapse", validate=False, max_applications=50
    )
    applied += apply_transformations_repeated(
        sdfg, "Vectorization", validate=False, max_applications=50
    )
    if device == "gpu":
        applied += apply_transformations(sdfg, "GPUTransform", validate=False)
    elif device == "fpga":
        applied += apply_transformations(sdfg, "FPGATransform", validate=False)
    if validate:
        sdfg.propagate()
        sdfg.validate()
    return applied


def _auto_optimize_search(
    sdfg, device: Optional[str], validate: bool, **tune_kwargs
) -> int:
    """The ``strategy="search"`` body: tune on a copy, then replay the
    winning history onto the caller's SDFG in place (callers of
    ``auto_optimize`` expect in-place optimization)."""
    from repro.tuning import tune

    result = tune(sdfg, **tune_kwargs)
    applied = replay(sdfg, result.history) if result.history else 0
    if device == "gpu":
        applied += apply_transformations(sdfg, "GPUTransform", validate=False)
    elif device == "fpga":
        applied += apply_transformations(sdfg, "FPGATransform", validate=False)
    if validate:
        sdfg.propagate()
        sdfg.validate()
    return applied


def auto_optimize_guarded(
    sdfg,
    device: Optional[str] = None,
    verify: bool = False,
    verify_inputs: Optional[Mapping[str, Any]] = None,
    tolerance: float = 1e-8,
    recorder=None,
):
    """Run the :func:`auto_optimize` schedule transactionally.

    Every application is snapshotted, re-validated, optionally
    differentially verified, and rolled back on failure — the unattended
    form of auto-optimization.  Returns the :class:`~repro.
    transformations.guard.GuardReport` with every attempt recorded; the
    number applied is ``len(report.applied())``.  Pass an
    :class:`~repro.instrumentation.recorder.InstrumentationRecorder` to
    collect per-attempt phase timings on an external event bus.
    """
    from repro.transformations.guard import GuardedOptimizer

    guard = GuardedOptimizer(
        sdfg,
        verify=verify,
        verify_inputs=verify_inputs,
        tolerance=tolerance,
        recorder=recorder,
    )
    guard.apply_to_fixpoint()  # strict cleanup set
    guard.apply_to_fixpoint(["MapReduceFusion", "MapFusion"], max_applications=50)
    guard.apply_to_fixpoint(["MapCollapse"], max_applications=50)
    guard.apply_to_fixpoint(["Vectorization"], max_applications=50)
    if device == "gpu":
        guard.apply("GPUTransform")
    elif device == "fpga":
        guard.apply("FPGATransform")
    return guard.report
