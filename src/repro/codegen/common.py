"""Shared code-generation utilities: expression and subset rendering."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.symbolic import Expr, Range, Subset
from repro.symbolic.expr import (
    Abs,
    Add,
    And,
    BoolConst,
    CeilDiv,
    Eq,
    FloorDiv,
    Ge,
    Gt,
    Integer,
    Le,
    Lt,
    Max,
    Min,
    Mod,
    Mul,
    Ne,
    Not,
    Or,
    Pow,
    Real,
    Symbol,
)


class CodegenError(Exception):
    """Raised when an SDFG feature cannot be lowered by a backend.

    Carries a structured :class:`repro.diagnostics.Diagnostic` (stable
    ``code``, optional SDFG/state/node location) so the compilation
    driver and tooling can record *why* a backend was abandoned when the
    degradation chain fires.
    """

    def __init__(self, message: str, code: str = "CG000", sdfg=None, state=None, node=None):
        from repro.diagnostics import Severity, make_diagnostic

        self.code = code
        self.diagnostic = make_diagnostic(
            code, message, Severity.ERROR, sdfg=sdfg, state=state, node=node
        )
        super().__init__(message)


def pycode(e: Expr, rename: Optional[Dict[str, str]] = None) -> str:
    """Render a symbolic expression as Python source."""
    r = rename or {}

    def go(e: Expr) -> str:
        if isinstance(e, Integer):
            return str(e.value) if e.value >= 0 else f"({e.value})"
        if isinstance(e, Real):
            return repr(e.value)
        if isinstance(e, BoolConst):
            return "True" if e.value else "False"
        if isinstance(e, Symbol):
            return r.get(e.name, e.name)
        if isinstance(e, Add):
            return "(" + " + ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Mul):
            return "(" + " * ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Pow):
            return f"({go(e.base)} ** {go(e.exp)})"
        if isinstance(e, FloorDiv):
            return f"({go(e.a)} // {go(e.b)})"
        if isinstance(e, CeilDiv):
            return f"(-((-({go(e.a)})) // ({go(e.b)})))"
        if isinstance(e, Mod):
            return f"({go(e.a)} % {go(e.b)})"
        if isinstance(e, Min):
            return "min(" + ", ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Max):
            return "max(" + ", ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Abs):
            return f"abs({go(e.arg)})"
        for cls, op in ((Eq, "=="), (Ne, "!="), (Lt, "<"), (Le, "<="), (Gt, ">"), (Ge, ">=")):
            if isinstance(e, cls):
                return f"({go(e.a)} {op} {go(e.b)})"
        if isinstance(e, And):
            return "(" + " and ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Or):
            return "(" + " or ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Not):
            return f"(not {go(e.arg)})"
        raise CodegenError(f"cannot render expression {e!r}", code="CG001")

    return go(e)


def cppcode(e: Expr, rename: Optional[Dict[str, str]] = None) -> str:
    """Render a symbolic expression as C++ source (int semantics).

    C++ integer division truncates toward zero; SDFG ranges are
    non-negative in practice, where the semantics coincide.
    """
    r = rename or {}

    def go(e: Expr) -> str:
        if isinstance(e, Integer):
            return str(e.value) if e.value >= 0 else f"({e.value})"
        if isinstance(e, Real):
            return repr(e.value)
        if isinstance(e, BoolConst):
            return "true" if e.value else "false"
        if isinstance(e, Symbol):
            return r.get(e.name, e.name)
        if isinstance(e, Add):
            return "(" + " + ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Mul):
            return "(" + " * ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Pow):
            if isinstance(e.exp, Integer) and 0 < e.exp.value < 8:
                return "(" + " * ".join([go(e.base)] * e.exp.value) + ")"
            return f"std::pow({go(e.base)}, {go(e.exp)})"
        if isinstance(e, FloorDiv):
            return f"(({go(e.a)}) / ({go(e.b)}))"
        if isinstance(e, CeilDiv):
            return f"((({go(e.a)}) + ({go(e.b)}) - 1) / ({go(e.b)}))"
        if isinstance(e, Mod):
            return f"(({go(e.a)}) % ({go(e.b)}))"
        if isinstance(e, Min):
            out = go(e.args[0])
            for a in e.args[1:]:
                out = f"std::min<long long>({out}, {go(a)})"
            return out
        if isinstance(e, Max):
            out = go(e.args[0])
            for a in e.args[1:]:
                out = f"std::max<long long>({out}, {go(a)})"
            return out
        if isinstance(e, Abs):
            return f"std::abs({go(e.arg)})"
        for cls, op in ((Eq, "=="), (Ne, "!="), (Lt, "<"), (Le, "<="), (Gt, ">"), (Ge, ">=")):
            if isinstance(e, cls):
                return f"({go(e.a)} {op} {go(e.b)})"
        if isinstance(e, And):
            return "(" + " && ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Or):
            return "(" + " || ".join(go(a) for a in e.args) + ")"
        if isinstance(e, Not):
            return f"(!{go(e.arg)})"
        raise CodegenError(f"cannot render expression {e!r}", code="CG002")

    return go(e)


def subset_to_py_index(subset: Subset) -> str:
    """Render a subset as a Python index tuple (slices for ranges)."""
    parts: List[str] = []
    for rng in subset.ranges:
        if rng.is_point():
            parts.append(pycode(rng.start))
        else:
            step = "" if rng.step == Integer(1) else f":{pycode(rng.step)}"
            parts.append(f"{pycode(rng.start)}:{pycode(rng.end)}{step}")
    return ", ".join(parts)


def flat_index_cpp(subset: Subset, strides) -> str:
    """Row-major flattened element index for C-style codegen (points only)."""
    terms = []
    for rng, stride in zip(subset.ranges, strides):
        if not rng.is_point():
            raise CodegenError("flat index requires point subset", code="CG003")
        terms.append(f"({cppcode(rng.start)}) * ({cppcode(stride)})")
    return " + ".join(terms) if terms else "0"


class CodeBuffer:
    """Indented source-code accumulator."""

    def __init__(self, indent_str: str = "    "):
        self._lines: List[str] = []
        self._indent = 0
        self._indent_str = indent_str

    def line(self, text: str = "") -> None:
        if text:
            self._lines.append(self._indent_str * self._indent + text)
        else:
            self._lines.append("")

    def lines(self, text: str) -> None:
        for ln in text.splitlines():
            self.line(ln)

    def indent(self) -> "CodeBuffer":
        self._indent += 1
        return self

    def dedent(self) -> "CodeBuffer":
        self._indent -= 1
        return self

    class _Block:
        def __init__(self, buf: "CodeBuffer", opener: str, closer: str = ""):
            self.buf = buf
            self.closer = closer
            buf.line(opener)

        def __enter__(self):
            self.buf.indent()
            return self.buf

        def __exit__(self, *exc):
            self.buf.dedent()
            if self.closer:
                self.buf.line(self.closer)
            return False

    def block(self, opener: str, closer: str = "") -> "CodeBuffer._Block":
        """``with buf.block("for i in range(N):"):`` style nesting."""
        return CodeBuffer._Block(self, opener, closer)

    def getvalue(self) -> str:
        return "\n".join(self._lines) + "\n"
