"""Tasklet Python-code analysis and NumPy vectorization translation.

Loop-mode code generation inlines tasklet code verbatim (it already is
Python).  Vector-mode lowering, used when an entire Map iteration domain
is evaluated at once, rewrites the tasklet AST so every operation is
elementwise over NumPy arrays: ``min`` becomes ``np.minimum``, ``x if c
else y`` becomes ``np.where(c, x, y)``, boolean operators become logical
ufuncs, and ``math.*`` calls become their ``np.*`` equivalents.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.codegen.common import CodegenError

_NP_FUNCS = {
    "min": "np.minimum",
    "max": "np.maximum",
    "abs": "np.abs",
    "sqrt": "np.sqrt",
    "exp": "np.exp",
    "log": "np.log",
    "sin": "np.sin",
    "cos": "np.cos",
    "tan": "np.tan",
    "pow": "np.power",
    "floor": "np.floor",
    "ceil": "np.ceil",
    "fabs": "np.abs",
    "conj": "np.conj",
}

#: Scalar casts with an exact elementwise equivalent (``int()`` truncates
#: toward zero, as does ``astype`` from float to a signed integer type).
_CASTS = {
    "int": "np.int64",
    "float": "np.float64",
}


def parse_tasklet(code: str) -> ast.Module:
    try:
        return ast.parse(code)
    except SyntaxError as err:
        raise CodegenError(f"cannot parse tasklet code: {err}") from err


def assigned_names(tree: ast.Module) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
    return out


def loaded_names(tree: ast.Module) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            out.add(node.id)
    return out


def is_vectorizable_tasklet(code: str) -> bool:
    """True when every statement is a plain assignment of an elementwise
    expression (the vector-mode contract)."""
    try:
        tree = parse_tasklet(code)
    except CodegenError:
        return False
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                return False
            if not _expr_vectorizable(stmt.value):
                return False
        elif isinstance(stmt, ast.AugAssign):
            if not isinstance(stmt.target, ast.Name):
                return False
            if not _expr_vectorizable(stmt.value):
                return False
        elif isinstance(stmt, (ast.Pass, ast.Expr)) and (
            isinstance(stmt, ast.Pass) or isinstance(stmt.value, ast.Constant)
        ):
            continue
        else:
            return False
    return True


def _expr_vectorizable(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float, complex, bool))
    if isinstance(node, ast.Name):
        return True
    if isinstance(node, ast.BinOp):
        ok_ops = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)
        return (
            isinstance(node.op, ok_ops)
            and _expr_vectorizable(node.left)
            and _expr_vectorizable(node.right)
        )
    if isinstance(node, ast.UnaryOp):
        return isinstance(node.op, (ast.USub, ast.UAdd, ast.Not)) and _expr_vectorizable(
            node.operand
        )
    if isinstance(node, ast.Compare):
        return all(_expr_vectorizable(c) for c in [node.left] + node.comparators)
    if isinstance(node, ast.BoolOp):
        return all(_expr_vectorizable(v) for v in node.values)
    if isinstance(node, ast.IfExp):
        return all(
            _expr_vectorizable(x) for x in (node.test, node.body, node.orelse)
        )
    if isinstance(node, ast.Call):
        fname = _call_name(node)
        if fname in _CASTS and len(node.args) == 1:
            return _expr_vectorizable(node.args[0])
        if fname is None or fname not in _NP_FUNCS:
            return False
        return all(_expr_vectorizable(a) for a in node.args)
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Name):
        if node.func.value.id in ("math", "np", "numpy"):
            return node.func.attr
    return None


class _Vectorize(ast.NodeTransformer):
    """Rewrite a tasklet expression tree into elementwise NumPy form."""

    def __init__(self, rename: Dict[str, str]):
        self.rename = rename

    def visit_Name(self, node: ast.Name):
        new = self.rename.get(node.id)
        if new is not None:
            return ast.copy_location(
                ast.parse(new, mode="eval").body, node
            )
        return node

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        fname = _call_name(node)
        if fname in _CASTS and len(node.args) == 1:
            cast = ast.parse(
                f"np.asarray(__x).astype({_CASTS[fname]})", mode="eval"
            ).body
            cast.func.value.args[0] = node.args[0]  # type: ignore[attr-defined]
            return ast.copy_location(ast.fix_missing_locations(cast), node)
        if fname is None or fname not in _NP_FUNCS:
            raise CodegenError(f"call {ast.dump(node.func)} not vectorizable")
        target = _NP_FUNCS[fname]
        # N-ary min/max fold into nested binary ufunc calls.
        if fname in ("min", "max") and len(node.args) > 2:
            out = node.args[0]
            for a in node.args[1:]:
                out = ast.Call(
                    func=ast.parse(target, mode="eval").body, args=[out, a], keywords=[]
                )
            return ast.copy_location(ast.fix_missing_locations(out), node)
        return ast.copy_location(
            ast.Call(
                func=ast.parse(target, mode="eval").body,
                args=node.args,
                keywords=[],
            ),
            node,
        )

    def visit_IfExp(self, node: ast.IfExp):
        self.generic_visit(node)
        return ast.copy_location(
            ast.Call(
                func=ast.parse("np.where", mode="eval").body,
                args=[node.test, node.body, node.orelse],
                keywords=[],
            ),
            node,
        )

    def visit_BoolOp(self, node: ast.BoolOp):
        self.generic_visit(node)
        fn = "np.logical_and" if isinstance(node.op, ast.And) else "np.logical_or"
        out = node.values[0]
        for v in node.values[1:]:
            out = ast.Call(
                func=ast.parse(fn, mode="eval").body, args=[out, v], keywords=[]
            )
        return ast.copy_location(ast.fix_missing_locations(out), node)

    def visit_UnaryOp(self, node: ast.UnaryOp):
        self.generic_visit(node)
        if isinstance(node.op, ast.Not):
            return ast.copy_location(
                ast.Call(
                    func=ast.parse("np.logical_not", mode="eval").body,
                    args=[node.operand],
                    keywords=[],
                ),
                node,
            )
        return node


def vectorize_tasklet(
    code: str, rename: Dict[str, str]
) -> List[Tuple[str, str]]:
    """Translate tasklet code to vector form.

    ``rename`` maps connector/parameter names to replacement expressions
    (array loads, broadcast index arrays).  Returns ``(target, expr)``
    source pairs in statement order.
    """
    tree = parse_tasklet(code)
    out: List[Tuple[str, str]] = []
    locals_seen: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring
        if isinstance(stmt, ast.Assign):
            target = stmt.targets[0].id  # type: ignore[attr-defined]
            value = stmt.value
        elif isinstance(stmt, ast.AugAssign):
            target = stmt.target.id  # type: ignore[attr-defined]
            value = ast.BinOp(left=ast.Name(id=target, ctx=ast.Load()), op=stmt.op,
                              right=stmt.value)
            ast.fix_missing_locations(value)
        else:
            raise CodegenError(f"statement not vectorizable: {ast.dump(stmt)}")
        # Locals defined by earlier statements shadow renames.
        local_rename = {k: v for k, v in rename.items() if k not in locals_seen}
        new_value = _Vectorize(local_rename).visit(value)
        ast.fix_missing_locations(new_value)
        expr_src = ast.unparse(new_value)
        tgt = rename.get(target)
        if tgt is not None and target not in locals_seen:
            out.append((tgt, expr_src))
        else:
            locals_seen.add(target)
            out.append((target, expr_src))
    return out


def detect_pure_product(code: str, inputs: Sequence[str], output: str) -> bool:
    """True when the tasklet computes ``output = prod(inputs)`` exactly —
    the pattern that admits einsum-based contraction lowering."""
    try:
        tree = parse_tasklet(code)
    except CodegenError:
        return False
    stmts = [s for s in tree.body if not isinstance(s, ast.Pass)]
    if len(stmts) != 1 or not isinstance(stmts[0], ast.Assign):
        return False
    stmt = stmts[0]
    if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
        return False
    if stmt.targets[0].id != output:
        return False
    factors: List[str] = []

    def collect(node: ast.expr) -> bool:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            return collect(node.left) and collect(node.right)
        if isinstance(node, ast.Name):
            factors.append(node.id)
            return True
        return False

    if not collect(stmt.value):
        return False
    return sorted(factors) == sorted(inputs)


def _references(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(node)
    )


def detect_indexed_update(code: str, view_conn: str) -> Optional[Tuple[str, str]]:
    """Detect the indirect-update ("scatter") tasklet pattern::

        [prelude assignments]
        view[idx] += val                      # or *=, or
        view[idx] = min(view[idx], val)       # or max

    where ``view_conn`` is the connector holding a view of the output
    container.  These bodies fail ``is_vectorizable_tasklet`` (the
    subscripted store) yet have an exact whole-domain lowering through
    the unbuffered ``np.<ufunc>.at`` scatter ufuncs.

    Returns ``(op, mini_code)`` with ``op`` in ``{"sum", "product",
    "min", "max"}`` and ``mini_code`` a rewritten tasklet body computing
    ``__scatter_idx`` and ``__scatter_val`` (prelude preserved), suitable
    for :func:`vectorize_tasklet`.  Returns None when the code does not
    match the pattern.
    """
    try:
        tree = parse_tasklet(code)
    except CodegenError:
        return None
    stmts = [
        s
        for s in tree.body
        if not (
            isinstance(s, ast.Pass)
            or (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant))
        )
    ]
    if not stmts:
        return None
    prelude, update = stmts[:-1], stmts[-1]
    # Prelude: plain vectorizable assignments that never touch the view.
    for s in prelude:
        if (
            not isinstance(s, ast.Assign)
            or len(s.targets) != 1
            or not isinstance(s.targets[0], ast.Name)
            or s.targets[0].id == view_conn
            or not _expr_vectorizable(s.value)
            or _references(s.value, view_conn)
        ):
            return None

    def match_subscript(node: ast.expr) -> Optional[ast.expr]:
        """``view_conn[idx]`` with a scalar (rank-1) index → idx."""
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == view_conn
            and not isinstance(node.slice, (ast.Tuple, ast.Slice))
        ):
            return node.slice
        return None

    op: Optional[str] = None
    idx: Optional[ast.expr] = None
    val: Optional[ast.expr] = None
    if isinstance(update, ast.AugAssign):
        idx = match_subscript(update.target)
        if idx is None:
            return None
        if isinstance(update.op, ast.Add):
            op = "sum"
        elif isinstance(update.op, ast.Mult):
            op = "product"
        else:
            return None
        val = update.value
    elif (
        isinstance(update, ast.Assign)
        and len(update.targets) == 1
        and isinstance(update.value, ast.Call)
        and _call_name(update.value) in ("min", "max")
        and len(update.value.args) == 2
        and not update.value.keywords
    ):
        idx = match_subscript(update.targets[0])
        if idx is None:
            return None
        target_src = ast.unparse(update.targets[0])
        a, b = update.value.args
        if isinstance(a, ast.Subscript) and ast.unparse(a) == target_src:
            val = b
        elif isinstance(b, ast.Subscript) and ast.unparse(b) == target_src:
            val = a
        else:
            return None
        op = _call_name(update.value)
    else:
        return None
    # Index and value must be elementwise over map parameters and must not
    # read back through the view (order-dependent otherwise).
    if not _expr_vectorizable(idx) or not _expr_vectorizable(val):
        return None
    if _references(idx, view_conn) or _references(val, view_conn):
        return None
    lines = [ast.unparse(s) for s in prelude]
    lines.append(f"__scatter_idx = {ast.unparse(idx)}")
    lines.append(f"__scatter_val = {ast.unparse(val)}")
    return op, "\n".join(lines)
