"""Compilation pipeline driver (paper §4.3).

``compile_sdfg`` runs the three steps: ❶ validation + memlet
propagation, ❷ code generation through the requested backend,
❸ "compiler invocation" — for the Python backend this is ``compile()``
+ ``exec`` of the generated module; for the C++ backend, gcc via ctypes
(see :mod:`repro.codegen.cpp_gen`).

If the Python generator hits an unsupported construct, compilation
transparently falls back to the reference interpreter, so every valid
SDFG is executable.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.codegen.common import CodegenError


class CompiledSDFG:
    """A callable compiled SDFG (the paper's 'compiled library')."""

    def __init__(self, sdfg, entry: Callable, source: str, backend: str):
        self.sdfg = sdfg
        self._entry = entry
        self.source = source
        self.backend = backend
        self.last_runtime: Optional[float] = None

    def __call__(self, **kwargs):
        from repro.runtime.arguments import split_arguments

        arrays, symbols = split_arguments(self.sdfg, kwargs)
        start = time.perf_counter()
        result = self._entry(arrays, symbols)
        self.last_runtime = time.perf_counter() - start
        return result

    def __repr__(self) -> str:
        return f"CompiledSDFG({self.sdfg.name!r}, backend={self.backend!r})"


def generate_code(sdfg, backend: str = "cpp") -> str:
    """Generate target code without compiling (steps ❶–❷)."""
    sdfg.validate()
    sdfg.propagate()
    if backend == "python":
        from repro.codegen.python_gen import PythonGenerator

        return PythonGenerator(sdfg).generate()
    if backend == "cpp":
        from repro.codegen.cpp_gen import CppGenerator

        return CppGenerator(sdfg).generate()
    if backend == "cuda":
        from repro.codegen.cuda_gen import CudaGenerator

        return CudaGenerator(sdfg).generate()
    if backend == "fpga":
        from repro.codegen.fpga_gen import FPGAGenerator

        return FPGAGenerator(sdfg).generate()
    raise ValueError(f"unknown backend {backend!r}")


def compile_sdfg(sdfg, backend: str = "python", validate: bool = True) -> CompiledSDFG:
    """Compile an SDFG into a callable."""
    if validate:
        sdfg.validate()
    sdfg.propagate()
    if backend == "python":
        try:
            return _compile_python(sdfg)
        except CodegenError:
            return _interpreter_fallback(sdfg)
    if backend == "interpreter":
        return _interpreter_fallback(sdfg)
    if backend == "cpp":
        from repro.codegen.cpp_gen import compile_cpp

        return compile_cpp(sdfg)
    raise ValueError(f"backend {backend!r} is not executable; use generate_code")


def _compile_python(sdfg) -> CompiledSDFG:
    from repro.codegen.python_gen import PythonGenerator

    source = PythonGenerator(sdfg).generate()
    namespace: Dict[str, Any] = {}
    code = compile(source, f"<sdfg {sdfg.name}>", "exec")
    exec(code, namespace)
    main = namespace["main"]

    arg_arrays = sorted(sdfg.arglist())
    syms_order = sorted(
        set(sdfg.free_symbols()) | set(sdfg.symbols) - set(sdfg.constants)
    )

    def entry(arrays: Dict[str, Any], symbols: Dict[str, int]):
        args = [arrays[a] for a in arg_arrays]
        args += [symbols[s] for s in syms_order]
        return main(*args)

    return CompiledSDFG(sdfg, entry, source, "python")


def _interpreter_fallback(sdfg) -> CompiledSDFG:
    from repro.runtime.interpreter import SDFGInterpreter

    interp = SDFGInterpreter(sdfg, validate=False)

    def entry(arrays: Dict[str, Any], symbols: Dict[str, int]):
        mem = interp._allocate(arrays, symbols)
        sym = dict(symbols)
        for k, v in sdfg.constants.items():
            sym.setdefault(k, v)
        interp._run_state_machine(sdfg, mem, sym)
        return None

    return CompiledSDFG(sdfg, entry, "# interpreter fallback (no source)", "interpreter")
