"""Compilation pipeline driver (paper §4.3).

``compile_sdfg`` runs the three steps: ❶ validation + memlet
propagation, ❷ code generation through the requested backend,
❸ "compiler invocation" — for the Python backend this is ``compile()``
+ ``exec`` of the generated module; for the C++ backend, gcc via ctypes
(see :mod:`repro.codegen.cpp_gen`).

Backends degrade gracefully along an explicit chain

    cpp  →  python  →  interpreter

so every valid SDFG is executable even when the host toolchain is
broken: a missing g++, a failed compile, a ctypes load error, or an
unsupported construct in a generator each abandon the current backend
and fall through to the next.  Every hop is recorded on the returned
:class:`CompiledSDFG` (``requested_backend`` + ``degradation``) so
callers — and the fault-injection harness — can see which fallbacks
fired and why.

The pipeline reports into the instrumentation event bus: each phase
(validate, propagate, per-backend codegen) is timed into the artifact's
``compile_report``, and executing an instrumented SDFG attaches an
:class:`~repro.instrumentation.report.InstrumentationReport` to the
artifact as ``last_report`` (see :mod:`repro.instrumentation`).
"""

from __future__ import annotations

import subprocess
import time
from typing import Any, Callable, Dict, List, Optional

from repro.chaos import faultpoint
from repro.codegen.common import CodegenError
from repro.instrumentation import (
    InstrumentationRecorder,
    InstrumentationType,
    has_instrumentation,
    profiling_enabled,
)

#: Next backend to try when one fails; the interpreter is the terminal
#: fallback (it executes the IR directly and cannot itself "miscompile").
DEGRADATION_CHAIN: Dict[str, str] = {"cpp": "python", "python": "interpreter"}

#: Exception types that mean "this backend is unusable here", not "the
#: SDFG is broken": unsupported constructs (CodegenError), missing or
#: broken host toolchain (OSError from subprocess/ctypes), generated
#: code the host CPython rejects (SyntaxError), missing entry symbols
#: (AttributeError), and compiler-invocation failures.
DEGRADABLE_ERRORS = (
    CodegenError,
    OSError,
    SyntaxError,
    AttributeError,
    subprocess.SubprocessError,
)

#: Default diagnostic code per degradable error type, used when the
#: exception itself carries none (``CodegenError.code`` wins when set).
_DEFAULT_HOP_CODES: Dict[type, str] = {
    CodegenError: "CG000",
    SyntaxError: "CG102",
    AttributeError: "CG103",
    OSError: "CG101",
    subprocess.SubprocessError: "CG101",
}


def _classify_hop_code(err: BaseException) -> Optional[str]:
    code = getattr(err, "code", None)
    if code:
        return code
    for etype, default in _DEFAULT_HOP_CODES.items():
        if isinstance(err, etype):
            return default
    return None


class CompiledSDFG:
    """A callable compiled SDFG (the paper's 'compiled library')."""

    def __init__(self, sdfg, entry: Callable, source: str, backend: str):
        self.sdfg = sdfg
        self._entry = entry
        self.source = source
        #: Backend that actually produced this artifact.
        self.backend = backend
        #: Backend the caller asked for (== ``backend`` unless degraded).
        self.requested_backend = backend
        #: Fallback hops taken, in order: dicts with ``from``/``to``/
        #: ``error``/``code``/``reason``/``message`` keys (empty when
        #: none fired).  ``code`` is the triggering diagnostic code,
        #: ``message`` the full exception text.
        self.degradation: List[Dict[str, Optional[str]]] = []
        self.last_runtime: Optional[float] = None
        #: Report of the most recent instrumented execution (None when
        #: the SDFG carries no instrumentation and REPRO_PROFILE is off).
        self.last_report = None
        #: Report of the compilation pipeline itself (phase timings).
        self.compile_report = None
        #: True when this artifact was rebuilt from the program cache.
        self.cache_hit = False
        #: Program-cache key of this artifact (None when caching is off).
        self.cache_key: Optional[str] = None
        #: Non-fatal diagnostics raised during code generation (e.g. a
        #: custom WCR reduction degraded to the scalar loop path).
        self.codegen_warnings: List[Any] = []
        #: Sanitizer mode this artifact was built with (None, ``"raise"``,
        #: or ``"collect"``); set by ``compile_sdfg``.
        self.sanitize: Optional[str] = None
        #: Watchdog policy: per-call wall-clock deadline (seconds) and
        #: transient-memory budget (bytes); set by ``compile_sdfg``.
        self.deadline: Optional[float] = None
        self.memory_budget: Optional[int] = None
        #: Sanitizer findings of the most recent call (collect mode), or
        #: None when the sanitizer was off.
        self.last_findings: Optional[List[Any]] = None
        #: Cached argument-marshaling plan (built on the first call).
        self._marshal_plan = None
        #: Parallel-tier configuration this artifact was built with, and
        #: the worker pool it owns (python backend only; see
        #: :mod:`repro.runtime.parallel`).
        self.parallel = None
        self._pool = None

    def attach_pool(self, pool) -> None:
        """Adopt a worker pool: the entry closure receives it on every
        call and :meth:`close` tears it down with the artifact."""
        self._pool = pool
        inner = self._entry

        def entry(arrays, symbols, instr=None, guard=None):
            return inner(arrays, symbols, instr, guard, pool)

        self._entry = entry

    def close(self) -> None:
        """Release owned resources (the parallel worker pool).  Safe to
        call repeatedly; subsequent calls of the artifact degrade to the
        serial path (a closed pool runs inline)."""
        pool = self._pool
        if pool is not None:
            pool.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def _make_guard(self):
        """Build the per-call GuardContext, or None when neither the
        sanitizer nor the watchdog is armed."""
        if self.sanitize is None and self.deadline is None and self.memory_budget is None:
            return None
        from repro.runtime.sanitizer import GuardContext, Sanitizer
        from repro.runtime.watchdog import Watchdog

        san = Sanitizer(self.sanitize) if self.sanitize else None
        dog = None
        if self.deadline is not None or self.memory_budget is not None:
            dog = Watchdog(self.deadline, self.memory_budget, self.sdfg.name)
        return GuardContext(san, dog)

    def _call_entry(self, arrays, symbols, recorder, guard):
        """One attempt of the entry function, with instrumentation
        scoping (the backend-retry policy lives in :meth:`_invoke`)."""
        if guard is not None and guard.watchdog is not None:
            guard.watchdog.arm()
            # Entry checkpoint: fully vectorized programs have no loop
            # checkpoints, and an already-expired deadline fails fast.
            guard.watchdog.checkpoint()
        if recorder is None:
            if guard is None:
                return self._entry(arrays, symbols, None)
            return self._entry(arrays, symbols, None, guard)
        itype = self.sdfg.instrument
        if itype != InstrumentationType.NONE or profiling_enabled():
            name = itype.name if itype != InstrumentationType.NONE else "TIMER"
            recorder.enter("sdfg", self.sdfg.name, name)
            try:
                if guard is None:
                    return self._entry(arrays, symbols, recorder)
                return self._entry(arrays, symbols, recorder, guard)
            finally:
                recorder.exit()
        if guard is None:
            return self._entry(arrays, symbols, recorder)
        return self._entry(arrays, symbols, recorder, guard)

    def _invoke(self, arrays, symbols, recorder, guard):
        """Run the entry with crash containment: contained backend
        crashes are retried with backoff, then degrade to the next
        backend in the chain at call time; watchdog violations feed the
        circuit breaker and re-raise."""
        from repro.runtime.isolation import BackendCrashError
        from repro.runtime.watchdog import BREAKERS, RetryPolicy, WatchdogViolation

        policy = RetryPolicy.from_env()
        attempt = 0
        while True:
            try:
                result = self._call_entry(arrays, symbols, recorder, guard)
            except WatchdogViolation as err:
                BREAKERS.record_failure(self.backend, code="R805")
                self.degradation.append(
                    {
                        "from": self.backend,
                        "to": None,
                        "error": type(err).__name__,
                        "code": "R805",
                        "reason": err.diagnostic.message.splitlines()[0],
                        "message": str(err),
                    }
                )
                raise
            except BackendCrashError as err:
                # The crash was contained by the subprocess harness and
                # the caller's arrays are intact: retry, then degrade.
                if attempt < policy.retries:
                    time.sleep(policy.delay(attempt))
                    attempt += 1
                    continue
                BREAKERS.record_failure(self.backend, code=err.code)
                if not self._degrade_at_call(err, attempt + 1):
                    raise
                attempt = 0
                continue
            if self.backend == "cpp":
                BREAKERS.record_success("cpp")
            return result

    def _degrade_at_call(self, err, attempts: int) -> bool:
        """Swap in the next backend's artifact after a call-time crash.
        Returns False when the chain is exhausted."""
        current = self.backend
        while True:
            nxt = DEGRADATION_CHAIN.get(current)
            if nxt is None:
                return False
            hop = {
                "from": current,
                "to": nxt,
                "error": type(err).__name__,
                "code": _classify_hop_code(err),
                "reason": str(err).splitlines()[0],
                "message": str(err),
                "attempts": attempts,
            }
            bundle = getattr(err, "bundle", None)
            if bundle:
                hop["bundle"] = bundle
            self.degradation.append(hop)
            try:
                fallback = _compile_backend(self.sdfg, nxt, sanitize=self.sanitize)
            except DEGRADABLE_ERRORS as err2:
                err = err2
                attempts = 1
                current = nxt
                continue
            self._entry = fallback._entry
            self.backend = fallback.backend
            self.source = fallback.source
            return True

    def __call__(self, **kwargs):
        from repro.runtime.arguments import MarshalingPlan, split_arguments

        # Fast path: after the first call, re-marshaling the same argument
        # signature reuses the cached plan and skips re-validation.
        marshaled = None
        plan = self._marshal_plan
        if plan is not None and plan.matches(kwargs):
            marshaled = plan.apply(kwargs)
        if marshaled is None:
            arrays, symbols = split_arguments(self.sdfg, kwargs)
            self._marshal_plan = MarshalingPlan.build(self.sdfg, kwargs, arrays, symbols)
        else:
            arrays, symbols = marshaled
        guard = self._make_guard()
        recorder = None
        # A guarded run always records, so sanitizer/watchdog summaries
        # (check counts, overhead) land on ``last_report``.
        if has_instrumentation(self.sdfg) or profiling_enabled() or guard is not None:
            recorder = InstrumentationRecorder()
        if guard is not None and guard.sanitizer is not None:
            self.last_findings = []
        start = time.perf_counter()
        try:
            result = self._invoke(arrays, symbols, recorder, guard)
        finally:
            if guard is not None:
                guard.finish(recorder)
                if guard.sanitizer is not None:
                    self.last_findings = guard.sanitizer.findings
            if recorder is not None:
                self.last_report = recorder.report(self.sdfg.name, backend=self.backend)
            else:
                self.last_report = None
            self.last_runtime = time.perf_counter() - start
        return result

    def __repr__(self) -> str:
        degraded = (
            f", degraded_from={self.requested_backend!r}"
            if self.backend != self.requested_backend
            else ""
        )
        return f"CompiledSDFG({self.sdfg.name!r}, backend={self.backend!r}{degraded})"


def generate_code(sdfg, backend: str = "cpp") -> str:
    """Generate target code without compiling (steps ❶–❷)."""
    sdfg.validate()
    sdfg.propagate()
    if backend == "python":
        from repro.codegen.python_gen import PythonGenerator

        return PythonGenerator(sdfg).generate()
    if backend == "cpp":
        from repro.codegen.cpp_gen import CppGenerator

        return CppGenerator(sdfg).generate()
    if backend == "cuda":
        from repro.codegen.cuda_gen import CudaGenerator

        return CudaGenerator(sdfg).generate()
    if backend == "fpga":
        from repro.codegen.fpga_gen import FPGAGenerator

        return FPGAGenerator(sdfg).generate()
    raise ValueError(f"unknown backend {backend!r}")


def compile_sdfg(
    sdfg,
    backend: str = "python",
    validate: bool = True,
    fallback: bool = True,
    recorder: Optional[InstrumentationRecorder] = None,
    cache: Any = None,
    sanitize: Any = None,
    deadline: Optional[float] = None,
    memory_budget: Optional[int] = None,
    isolate: Optional[bool] = None,
    cache_namespace: Optional[str] = None,
    vectorize: bool = True,
    parallel: Any = None,
) -> CompiledSDFG:
    """Compile an SDFG into a callable.

    On backend failure the next backend in :data:`DEGRADATION_CHAIN` is
    tried (``fallback=False`` disables this and re-raises).  The
    returned artifact records the requested backend and every fallback
    hop taken, and carries phase timings in ``compile_report``.  Pass a
    ``recorder`` to additionally splice the pipeline events into an
    external event bus (the guarded optimizer does this).

    ``cache`` selects the program cache (``"disk"``, ``"memory"``,
    ``"off"``, or a :class:`~repro.codegen.progcache.ProgramCache`);
    ``None`` consults ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` and defaults
    to off.  A warm hit skips validation, propagation, and codegen — the
    content hash guarantees the cached program came from an identical
    (already validated) graph — and appears as a ``progcache[hit]`` phase
    in ``compile_report`` instead of the codegen phases.

    Guarded-execution knobs (see :mod:`repro.runtime.sanitizer` and
    :mod:`repro.runtime.watchdog`):

    * ``sanitize`` — ``True``/``"raise"`` aborts on the first dynamic
      memlet finding, ``"collect"`` records all findings on
      ``compiled.last_findings``; ``None`` consults ``REPRO_SANITIZE``.
      Only the python and interpreter backends support it, so a
      sanitized cpp request degrades to python with a recorded hop.
    * ``deadline`` / ``memory_budget`` — per-call wall-clock and
      transient-memory limits, enforced cooperatively; ``None`` consults
      ``REPRO_DEADLINE`` / ``REPRO_MEMORY_BUDGET``.
    * ``isolate`` — run cpp artifacts through the crash-containing
      subprocess harness (default on; ``REPRO_ISOLATE=0`` opts out).
    * ``cache_namespace`` — tenant namespace mixed into the program
      cache variant key, so one tenant's cached programs never hit for
      (or are poisoned by) another tenant's identically-shaped graph
      (used by the :mod:`repro.serve` worker pool).

    Python-backend lowering tiers (see :mod:`repro.runtime.parallel`):

    * ``vectorize`` — allow the NumPy-vectorized map tier (default on).
    * ``parallel`` — multicore map execution for W501-proven
      conflict-free maps: ``True`` for the default worker config, a
      :class:`~repro.runtime.parallel.ParallelConfig`, worker count, or
      spec string (``"4"``, ``"thread:4"``) for explicit control,
      ``False`` to force off, ``None`` to consult ``REPRO_PARALLEL``.
      The returned
      artifact owns the worker pool; ``compiled.close()`` tears it
      down.  Ignored (with a W702 diagnostic) under ``sanitize``.

    Backends whose circuit breaker is open (repeated call-time crashes
    or watchdog kills) are skipped with a recorded hop.
    """
    from repro.codegen.progcache import program_key, resolve_cache
    from repro.runtime.isolation import isolate_from_env
    from repro.runtime.sanitizer import sanitize_from_env
    from repro.runtime.watchdog import (
        BREAKERS,
        deadline_from_env,
        memory_budget_from_env,
    )
    from repro.symbolic import memo as _symmemo

    if sanitize is None:
        sanitize = sanitize_from_env()
    elif sanitize is True:
        sanitize = "raise"
    elif sanitize is False:
        sanitize = None
    if sanitize not in (None, "raise", "collect"):
        raise ValueError(f"unknown sanitize mode {sanitize!r}")
    if deadline is None:
        deadline = deadline_from_env()
    if memory_budget is None:
        memory_budget = memory_budget_from_env()
    if isolate is None:
        isolate = isolate_from_env()
    from repro.runtime.parallel import ParallelConfig, parallel_from_env

    if parallel is None:
        parallel = parallel_from_env()
    else:
        parallel = ParallelConfig.parse(parallel)
    # The sanitizer instruments the serial path: the generator degrades
    # the request (reporting W702), so the cache key must not fork and
    # no pool is built — but the generator still sees the request.
    effective_parallel = None if sanitize else parallel
    variant_parts = []
    if cache_namespace:
        from repro.codegen.progcache import safe_namespace

        variant_parts.append(f"ns={safe_namespace(cache_namespace)}")
    if sanitize:
        variant_parts.append("sanitize")
    if not vectorize:
        variant_parts.append("novec")
    if effective_parallel is not None:
        variant_parts.append(f"par={effective_parallel.key_fragment()}")
    variant = ":".join(variant_parts)

    store = resolve_cache(cache)
    crec = InstrumentationRecorder()
    crec.enter("compile", sdfg.name)
    sym_before = _symmemo.snapshot()
    compiled: Optional[CompiledSDFG] = None
    key_pre: Optional[str] = None
    try:
        if store is not None and backend == "python":
            from repro.sdfg.serialize import content_hash

            t0 = time.perf_counter()
            key_pre = program_key(content_hash(sdfg), backend, variant)
            cached = store.lookup(key_pre)
            crec.event(
                "phase", "progcache[lookup]", duration=time.perf_counter() - t0
            )
            if cached is not None:
                t0 = time.perf_counter()
                compiled = _rebuild_from_cache(sdfg, cached[0], cached[1], store, key_pre)
                crec.event(
                    "phase", "progcache[hit]", duration=time.perf_counter() - t0
                )
            else:
                crec.event("phase", "progcache[miss]")

        if compiled is None:
            t0 = time.perf_counter()
            if validate:
                sdfg.validate()
            crec.event("phase", "validate", duration=time.perf_counter() - t0)
            t0 = time.perf_counter()
            sdfg.propagate()
            crec.event("phase", "propagate", duration=time.perf_counter() - t0)

            hops: List[Dict[str, Optional[str]]] = []
            current = backend
            while True:
                nxt_open = DEGRADATION_CHAIN.get(current)
                if fallback and nxt_open is not None and BREAKERS.is_open(current):
                    n = BREAKERS.failures(current)
                    hops.append(
                        {
                            "from": current,
                            "to": nxt_open,
                            "error": "CircuitBreakerOpen",
                            "code": BREAKERS.last_code(current) or "E201",
                            "reason": f"circuit breaker open after {n} failures",
                            "message": f"backend {current!r} skipped: circuit "
                            f"breaker open after {n} consecutive call-time "
                            "failures",
                        }
                    )
                    current = nxt_open
                    continue
                t0 = time.perf_counter()
                try:
                    compiled = _compile_backend(
                        sdfg,
                        current,
                        sanitize=sanitize,
                        isolate=isolate,
                        vectorize=vectorize,
                        parallel=parallel,
                    )
                except DEGRADABLE_ERRORS as err:
                    crec.event(
                        "phase",
                        f"codegen[{current}]",
                        duration=time.perf_counter() - t0,
                    )
                    nxt = DEGRADATION_CHAIN.get(current)
                    if nxt is None or not fallback:
                        raise
                    message = str(err)
                    hops.append(
                        {
                            "from": current,
                            "to": nxt,
                            "error": type(err).__name__,
                            "code": _classify_hop_code(err),
                            "reason": message.splitlines()[0] if message else "",
                            "message": message,
                        }
                    )
                    current = nxt
                    continue
                crec.event(
                    "phase", f"codegen[{current}]", duration=time.perf_counter() - t0
                )
                compiled.requested_backend = backend
                compiled.degradation = hops
                break

            if (
                store is not None
                and key_pre is not None
                and compiled.backend == "python"
                and not hops
            ):
                t0 = time.perf_counter()
                _store_in_cache(sdfg, compiled, store, key_pre, backend, variant)
                crec.event(
                    "phase", "progcache[store]", duration=time.perf_counter() - t0
                )

        _emit_symcache_events(crec, sym_before, _symmemo.snapshot())
    finally:
        crec.exit()
    compiled.sanitize = sanitize
    compiled.deadline = deadline
    compiled.memory_budget = memory_budget
    compiled.parallel = effective_parallel
    if effective_parallel is not None and compiled.backend == "python":
        from repro.runtime.parallel import MapWorkerPool

        chunks = getattr(getattr(compiled, "_py_main", None), "_parallel_chunks", None)
        if chunks:
            pool = MapWorkerPool(effective_parallel)
            pool.register_functions(chunks)
            compiled.attach_pool(pool)
    compiled.compile_report = crec.report(sdfg.name, backend=f"compile[{backend}]")
    if recorder is not None:
        for node in crec.root.children.values():
            recorder.absorb(node)
    return compiled


def _emit_symcache_events(crec, before, after) -> None:
    """Emit symbolic-engine cache hit/miss deltas as COUNTER events."""
    from repro.telemetry.sink import active_sink

    sink = active_sink()
    for name in sorted(after):
        h0, m0 = before.get(name, (0, 0))
        h1, m1 = after[name]
        if h1 > h0:
            crec.event("symcache", f"{name}[hit]", itype="COUNTER", iterations=h1 - h0)
            if sink is not None:
                sink.publish("cache", f"symcache:{name}",
                             fields={"event": "hit", "n": h1 - h0})
        if m1 > m0:
            crec.event("symcache", f"{name}[miss]", itype="COUNTER", iterations=m1 - m0)
            if sink is not None:
                sink.publish("cache", f"symcache:{name}",
                             fields={"event": "miss", "n": m1 - m0})


def _rebuild_from_cache(sdfg, entry_rec, main, store, key) -> CompiledSDFG:
    """Rebuild a CompiledSDFG from a cache entry.  Memory-tier hits reuse
    the already-``exec``'d callable; disk hits ``exec`` once and promote."""
    from repro.diagnostics import Diagnostic

    if main is None:
        main = _exec_python_source(entry_rec.source, entry_rec.sdfg_name)
        store.attach_callable(key, main)
    compiled = CompiledSDFG(
        sdfg,
        _python_entry(main, entry_rec.arg_arrays, entry_rec.symbol_order),
        entry_rec.source,
        "python",
    )
    compiled.cache_hit = True
    compiled.cache_key = key
    compiled._py_main = main
    compiled._py_orders = (entry_rec.arg_arrays, entry_rec.symbol_order)
    warnings = []
    for w in entry_rec.warnings:
        try:
            warnings.append(Diagnostic.from_json(w))
        except Exception:
            continue
    compiled.codegen_warnings = warnings
    return compiled


def _store_in_cache(sdfg, compiled, store, key_pre, backend, variant="") -> None:
    """Store a freshly compiled python program under both the
    pre-propagation key (computed before ``sdfg.propagate()`` rewrote the
    outer memlets) and the post-propagation key, so both the original and
    the propagated form of the same graph hit on the next compile."""
    from repro.codegen.progcache import ProgramCacheEntry, program_key
    from repro.sdfg.serialize import content_hash

    main = getattr(compiled, "_py_main", None)
    orders = getattr(compiled, "_py_orders", None)
    if main is None or orders is None:
        return
    warnings = []
    for w in compiled.codegen_warnings:
        try:
            warnings.append(w.to_json())
        except Exception:
            continue
    entry = ProgramCacheEntry(
        key=key_pre,
        backend="python",
        sdfg_name=sdfg.name,
        source=compiled.source,
        arg_arrays=orders[0],
        symbol_order=orders[1],
        warnings=warnings,
    )
    compiled.cache_key = key_pre
    store.store(key_pre, entry, main)
    key_post = program_key(content_hash(sdfg), backend, variant)
    if key_post != key_pre:
        store.store(key_post, entry, main)


def _compile_backend(
    sdfg,
    backend: str,
    sanitize: Optional[str] = None,
    isolate: bool = False,
    vectorize: bool = True,
    parallel=None,
) -> CompiledSDFG:
    # `raise-io` here is a degradable failure (OSError is in
    # DEGRADABLE_ERRORS): the compile hops down the backend chain
    # exactly as a real codegen I/O failure would.
    faultpoint("compiler.codegen", backend=backend, sdfg=sdfg.name)
    if backend == "python":
        return _compile_python(
            sdfg, sanitize=bool(sanitize), vectorize=vectorize, parallel=parallel
        )
    if backend == "interpreter":
        return _interpreter_fallback(sdfg)
    if backend == "cpp":
        from repro.codegen.cpp_gen import compile_cpp

        if sanitize:
            raise CodegenError(
                "the dynamic memlet sanitizer requires the python or "
                "interpreter backend",
                code="CG000",
                sdfg=sdfg,
            )
        return compile_cpp(sdfg, isolated=isolate)
    raise ValueError(f"backend {backend!r} is not executable; use generate_code")


def _exec_python_source(source: str, name: str) -> Callable:
    faultpoint("compiler.exec", sdfg=name)
    namespace: Dict[str, Any] = {}
    code = compile(source, f"<sdfg {name}>", "exec")
    exec(code, namespace)
    main = namespace["main"]
    # Parallel chunk functions ride on the entry so cache rebuilds (which
    # only keep ``main``) can still register them with a fresh pool.
    main._parallel_chunks = namespace.get("_PARALLEL_CHUNKS", {})
    return main


def _python_entry(main: Callable, arg_arrays, syms_order) -> Callable:
    def entry(arrays: Dict[str, Any], symbols: Dict[str, int], instr=None,
              guard=None, pool=None):
        args = [arrays[a] for a in arg_arrays]
        args += [symbols[s] for s in syms_order]
        return main(*args, __instr=instr, __guard=guard, __pool=pool)

    return entry


def _compile_python(
    sdfg, sanitize: bool = False, vectorize: bool = True, parallel=None
) -> CompiledSDFG:
    from repro.codegen.python_gen import PythonGenerator

    gen = PythonGenerator(sdfg, vectorize=vectorize, sanitize=sanitize,
                          parallel=parallel)
    source = gen.generate()
    main = _exec_python_source(source, sdfg.name)

    arg_arrays = sorted(sdfg.arglist())
    syms_order = sorted(
        set(sdfg.free_symbols()) | set(sdfg.symbols) - set(sdfg.constants)
    )

    compiled = CompiledSDFG(sdfg, _python_entry(main, arg_arrays, syms_order), source, "python")
    compiled.codegen_warnings = list(getattr(gen, "diagnostics", []))
    # Kept for the program cache: the raw module entry plus argument order.
    compiled._py_main = main
    compiled._py_orders = (arg_arrays, syms_order)
    return compiled


def _interpreter_fallback(sdfg) -> CompiledSDFG:
    from repro.runtime.interpreter import SDFGInterpreter

    interp = SDFGInterpreter(sdfg, validate=False)

    def entry(arrays: Dict[str, Any], symbols: Dict[str, int], instr=None, guard=None):
        interp.recorder = instr
        interp.guard = guard
        try:
            mem = interp._allocate(arrays, symbols)
            sym = dict(symbols)
            for k, v in sdfg.constants.items():
                sym.setdefault(k, v)
            interp._run_state_machine(sdfg, mem, sym)
        finally:
            interp.recorder = None
            interp.guard = None
        return None

    return CompiledSDFG(sdfg, entry, "# interpreter fallback (no source)", "interpreter")
