"""Compilation pipeline driver (paper §4.3).

``compile_sdfg`` runs the three steps: ❶ validation + memlet
propagation, ❷ code generation through the requested backend,
❸ "compiler invocation" — for the Python backend this is ``compile()``
+ ``exec`` of the generated module; for the C++ backend, gcc via ctypes
(see :mod:`repro.codegen.cpp_gen`).

Backends degrade gracefully along an explicit chain

    cpp  →  python  →  interpreter

so every valid SDFG is executable even when the host toolchain is
broken: a missing g++, a failed compile, a ctypes load error, or an
unsupported construct in a generator each abandon the current backend
and fall through to the next.  Every hop is recorded on the returned
:class:`CompiledSDFG` (``requested_backend`` + ``degradation``) so
callers — and the fault-injection harness — can see which fallbacks
fired and why.
"""

from __future__ import annotations

import subprocess
import time
from typing import Any, Callable, Dict, List, Optional

from repro.codegen.common import CodegenError

#: Next backend to try when one fails; the interpreter is the terminal
#: fallback (it executes the IR directly and cannot itself "miscompile").
DEGRADATION_CHAIN: Dict[str, str] = {"cpp": "python", "python": "interpreter"}

#: Exception types that mean "this backend is unusable here", not "the
#: SDFG is broken": unsupported constructs (CodegenError), missing or
#: broken host toolchain (OSError from subprocess/ctypes), generated
#: code the host CPython rejects (SyntaxError), missing entry symbols
#: (AttributeError), and compiler-invocation failures.
DEGRADABLE_ERRORS = (
    CodegenError,
    OSError,
    SyntaxError,
    AttributeError,
    subprocess.SubprocessError,
)


class CompiledSDFG:
    """A callable compiled SDFG (the paper's 'compiled library')."""

    def __init__(self, sdfg, entry: Callable, source: str, backend: str):
        self.sdfg = sdfg
        self._entry = entry
        self.source = source
        #: Backend that actually produced this artifact.
        self.backend = backend
        #: Backend the caller asked for (== ``backend`` unless degraded).
        self.requested_backend = backend
        #: Fallback hops taken, in order: dicts with ``from``/``to``/
        #: ``error``/``code``/``reason`` keys (empty when none fired).
        self.degradation: List[Dict[str, Optional[str]]] = []
        self.last_runtime: Optional[float] = None

    def __call__(self, **kwargs):
        from repro.runtime.arguments import split_arguments

        arrays, symbols = split_arguments(self.sdfg, kwargs)
        start = time.perf_counter()
        result = self._entry(arrays, symbols)
        self.last_runtime = time.perf_counter() - start
        return result

    def __repr__(self) -> str:
        degraded = (
            f", degraded_from={self.requested_backend!r}"
            if self.backend != self.requested_backend
            else ""
        )
        return f"CompiledSDFG({self.sdfg.name!r}, backend={self.backend!r}{degraded})"


def generate_code(sdfg, backend: str = "cpp") -> str:
    """Generate target code without compiling (steps ❶–❷)."""
    sdfg.validate()
    sdfg.propagate()
    if backend == "python":
        from repro.codegen.python_gen import PythonGenerator

        return PythonGenerator(sdfg).generate()
    if backend == "cpp":
        from repro.codegen.cpp_gen import CppGenerator

        return CppGenerator(sdfg).generate()
    if backend == "cuda":
        from repro.codegen.cuda_gen import CudaGenerator

        return CudaGenerator(sdfg).generate()
    if backend == "fpga":
        from repro.codegen.fpga_gen import FPGAGenerator

        return FPGAGenerator(sdfg).generate()
    raise ValueError(f"unknown backend {backend!r}")


def compile_sdfg(
    sdfg, backend: str = "python", validate: bool = True, fallback: bool = True
) -> CompiledSDFG:
    """Compile an SDFG into a callable.

    On backend failure the next backend in :data:`DEGRADATION_CHAIN` is
    tried (``fallback=False`` disables this and re-raises).  The
    returned artifact records the requested backend and every fallback
    hop taken.
    """
    if validate:
        sdfg.validate()
    sdfg.propagate()

    hops: List[Dict[str, Optional[str]]] = []
    current = backend
    while True:
        try:
            compiled = _compile_backend(sdfg, current)
        except DEGRADABLE_ERRORS as err:
            nxt = DEGRADATION_CHAIN.get(current)
            if nxt is None or not fallback:
                raise
            hops.append(
                {
                    "from": current,
                    "to": nxt,
                    "error": type(err).__name__,
                    "code": getattr(err, "code", None),
                    "reason": str(err).splitlines()[0] if str(err) else "",
                }
            )
            current = nxt
            continue
        compiled.requested_backend = backend
        compiled.degradation = hops
        return compiled


def _compile_backend(sdfg, backend: str) -> CompiledSDFG:
    if backend == "python":
        return _compile_python(sdfg)
    if backend == "interpreter":
        return _interpreter_fallback(sdfg)
    if backend == "cpp":
        from repro.codegen.cpp_gen import compile_cpp

        return compile_cpp(sdfg)
    raise ValueError(f"backend {backend!r} is not executable; use generate_code")


def _compile_python(sdfg) -> CompiledSDFG:
    from repro.codegen.python_gen import PythonGenerator

    source = PythonGenerator(sdfg).generate()
    namespace: Dict[str, Any] = {}
    code = compile(source, f"<sdfg {sdfg.name}>", "exec")
    exec(code, namespace)
    main = namespace["main"]

    arg_arrays = sorted(sdfg.arglist())
    syms_order = sorted(
        set(sdfg.free_symbols()) | set(sdfg.symbols) - set(sdfg.constants)
    )

    def entry(arrays: Dict[str, Any], symbols: Dict[str, int]):
        args = [arrays[a] for a in arg_arrays]
        args += [symbols[s] for s in syms_order]
        return main(*args)

    return CompiledSDFG(sdfg, entry, source, "python")


def _interpreter_fallback(sdfg) -> CompiledSDFG:
    from repro.runtime.interpreter import SDFGInterpreter

    interp = SDFGInterpreter(sdfg, validate=False)

    def entry(arrays: Dict[str, Any], symbols: Dict[str, int]):
        mem = interp._allocate(arrays, symbols)
        sym = dict(symbols)
        for k, v in sdfg.constants.items():
            sym.setdefault(k, v)
        interp._run_state_machine(sdfg, mem, sym)
        return None

    return CompiledSDFG(sdfg, entry, "# interpreter fallback (no source)", "interpreter")
