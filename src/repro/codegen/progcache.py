"""Persistent compiled-program cache (execution fast path).

``compile_sdfg`` re-generates and re-``exec``s the backend module on
every call even when the SDFG is byte-identical to one compiled a moment
(or a process) ago.  This module stores generated programs keyed by
content:

    key = SHA-256( content_hash(sdfg) ‖ backend ‖ codegen version )

so a warm compile skips validation, propagation, codegen, and — on an
in-process hit — even ``exec``.  The cache is two-tier:

* an in-memory LRU (``OrderedDict``) holding the entry *and* the already
  ``exec``'d entry callable, and
* an optional on-disk tier (one JSON file per entry) following the
  :class:`repro.tuning.cache.TuningCache` conventions: schema-versioned
  entries, **atomic writes** via ``os.replace``, **mtime-LRU eviction**,
  and **corrupt-entry quarantine** (unreadable or mismatched files are
  deleted and counted as misses, never raised).

Selection is explicit: the cache is *off* by default so existing
pipelines (and the fault-injection harness, which relies on backends
actually running) are unaffected.  Enable with ``compile_sdfg(...,
cache="memory"|"disk")``, a :class:`ProgramCache` instance, or the
``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` environment knobs.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos import faultpoint
from repro.filelock import FileLock
from repro.telemetry.sink import active_sink

#: Bump whenever generated-code semantics change; part of every key, so
#: old entries become unreachable (and age out by LRU) rather than stale.
#: v2: entry functions grew the ``__guard`` parameter (sanitizer/watchdog).
CODEGEN_VERSION = 3

#: Entry file layout version; mismatched files are quarantined as misses.
CACHE_SCHEMA_VERSION = 1


def program_key(sdfg_hash: str, backend: str, variant: str = "") -> str:
    """Content address of one generated program.

    ``variant`` separates differently-instrumented programs of the same
    graph (e.g. ``"sanitize"`` for guarded codegen) so a sanitized build
    never shadows — or is shadowed by — the plain one.
    """
    h = hashlib.sha256()
    h.update(sdfg_hash.encode())
    h.update(b"\x00")
    h.update(backend.encode())
    h.update(b"\x00")
    h.update(str(CODEGEN_VERSION).encode())
    if variant:
        h.update(b"\x00")
        h.update(variant.encode())
    return h.hexdigest()


class ProgramCacheEntry:
    """One cached generated program plus the metadata needed to rebuild a
    :class:`~repro.codegen.compiler.CompiledSDFG` without re-running the
    pipeline."""

    __slots__ = (
        "key",
        "backend",
        "sdfg_name",
        "source",
        "arg_arrays",
        "symbol_order",
        "codegen_version",
        "warnings",
    )

    def __init__(
        self,
        key: str,
        backend: str,
        sdfg_name: str,
        source: str,
        arg_arrays: List[str],
        symbol_order: List[str],
        codegen_version: int = CODEGEN_VERSION,
        warnings: Optional[List[Dict[str, Any]]] = None,
    ):
        self.key = key
        self.backend = backend
        self.sdfg_name = sdfg_name
        self.source = source
        self.arg_arrays = list(arg_arrays)
        self.symbol_order = list(symbol_order)
        self.codegen_version = codegen_version
        self.warnings = list(warnings or [])

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "key": self.key,
            "backend": self.backend,
            "sdfg_name": self.sdfg_name,
            "source": self.source,
            "arg_arrays": self.arg_arrays,
            "symbol_order": self.symbol_order,
            "codegen_version": self.codegen_version,
            "warnings": self.warnings,
        }

    @staticmethod
    def from_json(obj: Any) -> "ProgramCacheEntry":
        if (
            not isinstance(obj, dict)
            or obj.get("schema") != CACHE_SCHEMA_VERSION
            or obj.get("codegen_version") != CODEGEN_VERSION
            or not isinstance(obj.get("key"), str)
            or not isinstance(obj.get("source"), str)
            or not isinstance(obj.get("arg_arrays"), list)
            or not isinstance(obj.get("symbol_order"), list)
        ):
            raise ValueError("malformed program cache entry")
        return ProgramCacheEntry(
            key=obj["key"],
            backend=obj.get("backend", "python"),
            sdfg_name=obj.get("sdfg_name", "sdfg"),
            source=obj["source"],
            arg_arrays=obj["arg_arrays"],
            symbol_order=obj["symbol_order"],
            codegen_version=obj["codegen_version"],
            warnings=obj.get("warnings") or [],
        )


class ProgramCache:
    """Two-tier (memory + optional disk) LRU cache of generated programs."""

    def __init__(self, cache_dir: Optional[str] = None, max_entries: int = 256):
        self.cache_dir = cache_dir
        self.max_entries = max(1, max_entries)
        #: key -> (entry, exec'd entry callable or None)
        self._memory: "OrderedDict[str, Tuple[ProgramCacheEntry, Optional[Callable]]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    def _tap(self, event: str, n: int = 1) -> None:
        """Mirror one counter bump into the active telemetry sink."""
        sink = active_sink()
        if sink is not None:
            sink.publish("cache", "progcache", fields={"event": event, "n": n})

    # ---------------------------------------------------------------- paths
    def _path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.json")

    def _dir_lock(self) -> Optional[FileLock]:
        """Cross-process lock serializing multi-file disk operations
        (eviction, quarantine) against other worker processes sharing
        this cache directory.  Single-file writes stay lock-free — they
        are already atomic via ``os.replace``.  Best-effort: a lock that
        cannot be acquired degrades to the lock-free behavior rather
        than failing the compile."""
        if self.cache_dir is None:
            return None
        lock = FileLock(os.path.join(self.cache_dir, ".lock"), timeout=5.0)
        return lock if lock.acquire(best_effort=True) else None

    # --------------------------------------------------------------- lookup
    def lookup(self, key: str) -> Optional[Tuple[ProgramCacheEntry, Optional[Callable]]]:
        """Return ``(entry, callable_or_None)`` on a hit, None on a miss.

        Memory hits carry the already-``exec``'d callable; disk hits are
        promoted into the memory tier with ``callable=None`` (the caller
        ``exec``s once and attaches it via :meth:`attach_callable`).
        Corrupt disk entries are deleted and counted as misses.
        """
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            self._tap("hit")
            return cached
        if self.cache_dir is None:
            self.misses += 1
            self._tap("miss")
            return None
        path = self._path(key)
        try:
            with open(path) as f:
                raw = f.read()
            raw = faultpoint("progcache.disk_read", payload=raw)
            entry = ProgramCacheEntry.from_json(json.loads(raw))
            if entry.key != key:
                raise ValueError("key mismatch in program cache entry")
        except FileNotFoundError:
            self.misses += 1
            self._tap("miss")
            return None
        except (OSError, ValueError, json.JSONDecodeError):
            self.corrupt += 1
            self.misses += 1
            self._tap("corrupt")
            self._tap("miss")
            lock = self._dir_lock()
            try:
                os.remove(path)
            except OSError:
                pass
            finally:
                if lock is not None:
                    lock.release()
            return None
        self.hits += 1
        self._tap("hit")
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        self._remember(key, entry, None)
        return self._memory[key]

    def attach_callable(self, key: str, fn: Callable) -> None:
        """Attach the ``exec``'d entry callable to a memory-tier entry so
        subsequent in-process hits skip ``exec`` entirely."""
        cached = self._memory.get(key)
        if cached is not None and cached[1] is None:
            self._memory[key] = (cached[0], fn)

    # ---------------------------------------------------------------- store
    def store(self, key: str, entry: ProgramCacheEntry, fn: Optional[Callable] = None) -> None:
        """Store an entry in both tiers (disk write is atomic)."""
        self._remember(key, entry, fn)
        self.stores += 1
        self._tap("store")
        if self.cache_dir is None:
            return
        record = entry.to_json()
        record["key"] = key  # aliases store under their own key
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            data = json.dumps(record, indent=1, sort_keys=True)
            # A `corrupt` rule here lands a genuinely torn entry on disk
            # (quarantined by the next read or by fsck); `raise-io` /
            # `enospc` exercise the store-is-best-effort contract.
            data = faultpoint("progcache.disk_write", payload=data)
            with open(tmp, "w") as f:
                f.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        self._evict_disk()

    def _remember(self, key: str, entry: ProgramCacheEntry, fn: Optional[Callable]) -> None:
        self._memory[key] = (entry, fn)
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.evictions += 1
            self._tap("evict")

    # ------------------------------------------------------------- eviction
    def _evict_disk(self) -> None:
        lock = self._dir_lock()
        try:
            try:
                names = os.listdir(self.cache_dir)
            except OSError:
                return
            entries = []
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(self.cache_dir, name)
                try:
                    entries.append((os.path.getmtime(path), path))
                except OSError:
                    continue
            if len(entries) <= self.max_entries:
                return
            entries.sort()  # oldest mtime first
            for _, path in entries[: len(entries) - self.max_entries]:
                try:
                    os.remove(path)
                    self.evictions += 1
                    self._tap("evict")
                except OSError:
                    pass
        finally:
            if lock is not None:
                lock.release()

    # ------------------------------------------------------------- counters
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "memory_entries": len(self._memory),
        }


#: Process-wide shared in-memory cache (``cache="memory"`` and the tuner).
_SHARED: Optional[ProgramCache] = None

#: Disk caches by resolved directory, so repeated ``cache="disk"`` calls
#: share a memory tier (and thus exec'd callables) per directory.
_DISK: Dict[str, ProgramCache] = {}


def shared_cache() -> ProgramCache:
    global _SHARED
    if _SHARED is None:
        _SHARED = ProgramCache()
    return _SHARED


def _disk_cache(cache_dir: str) -> ProgramCache:
    key = os.path.realpath(cache_dir)
    cache = _DISK.get(key)
    if cache is None:
        cache = _DISK[key] = ProgramCache(cache_dir=key)
    return cache


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "progcache"
    )


def safe_namespace(namespace: str) -> str:
    """Filesystem- and key-safe form of a tenant namespace.

    Dots are allowed mid-name, but a namespace that is *only* dots
    (``"."``, ``".."``) would traverse out of the cache root.

    The mapping must be **injective**: sanitizing alone would collapse
    distinct tenants onto one directory and one variant key (``'a/b'``
    and ``'a_b'`` both sanitize to ``'a_b'``), silently merging their
    caches.  A short hash of the *raw* name is therefore always
    appended — tenant names are caller-chosen, so even a deliberately
    crafted name cannot collide with another tenant's namespace."""
    digest = hashlib.sha256(namespace.encode("utf-8")).hexdigest()[:8]
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in namespace)
    safe = safe[:64]
    if not safe.strip("."):
        safe = "default"
    return f"{safe}-{digest}"


def namespaced_cache(root_dir: str, namespace: str,
                     max_entries: int = 256) -> ProgramCache:
    """Per-tenant disk cache under ``root_dir/<namespace>``.

    Tenants sharing a service must not share cache *files*: one
    tenant's LRU churn (or a poisoned entry) must never evict or shadow
    another tenant's warm programs.  Each namespace gets its own
    subdirectory with its own LRU budget and lock; instances are
    registered in the per-directory table so repeat calls share the
    memory tier.
    """
    path = os.path.join(root_dir, safe_namespace(namespace))
    key = os.path.realpath(path)
    cache = _DISK.get(key)
    if cache is None:
        cache = _DISK[key] = ProgramCache(cache_dir=key, max_entries=max_entries)
    return cache


def resolve_cache(cache: Any) -> Optional[ProgramCache]:
    """Resolve the ``cache=`` knob of ``compile_sdfg``.

    Accepts ``None`` (consult ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``; off
    when neither is set), ``"off"``, ``"memory"``, ``"disk"``, or a
    :class:`ProgramCache` instance.
    """
    if isinstance(cache, ProgramCache):
        return cache
    if cache is None:
        env = os.environ.get("REPRO_CACHE", "").strip().lower()
        if env:
            cache = env
        elif os.environ.get("REPRO_CACHE_DIR"):
            cache = "disk"
        else:
            return None
    if cache == "off":
        return None
    if cache == "memory":
        return shared_cache()
    if cache == "disk":
        return _disk_cache(default_cache_dir())
    raise ValueError(
        f"unknown program cache mode {cache!r}; expected 'disk', 'memory', "
        "'off', or a ProgramCache instance"
    )
