"""Python-to-C++ tasklet code converter (paper §3.2).

The paper: "the converter traverses the Python AST, performs type and
shape inference, tracks local variables for definitions, and uses
features from C++14 to create the corresponding code."  This module
implements that converter for the tasklet subset: assignments,
arithmetic, comparisons, conditionals (statement and expression forms),
and the math intrinsics; dictionaries, dynamically-sized lists, and
exceptions are unsupported by design.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.codegen.common import CodegenError

_MATH_FUNCS = {
    "sqrt": "std::sqrt",
    "exp": "std::exp",
    "log": "std::log",
    "sin": "std::sin",
    "cos": "std::cos",
    "tan": "std::tan",
    "fabs": "std::fabs",
    "floor": "std::floor",
    "ceil": "std::ceil",
    "pow": "std::pow",
    "abs": "std::abs",
}

_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.Mod: "%",
}

_CMPOPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}


class Py2Cpp:
    """Translate one tasklet's Python code to C++ statements."""

    def __init__(
        self,
        declared: Optional[Dict[str, str]] = None,
        rename: Optional[Dict[str, str]] = None,
    ):
        #: name -> ctype for pre-declared variables (connectors).
        self.declared: Dict[str, str] = dict(declared or {})
        self.rename = dict(rename or {})
        self._defined: Set[str] = set(self.declared)

    def convert(self, code: str) -> List[str]:
        try:
            tree = ast.parse(code)
        except SyntaxError as err:
            raise CodegenError(f"tasklet code does not parse: {err}") from err
        lines: List[str] = []
        for stmt in tree.body:
            lines.extend(self._stmt(stmt))
        return lines

    # ------------------------------------------------------------- statements
    def _stmt(self, node: ast.stmt) -> List[str]:
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise CodegenError("chained assignment unsupported in tasklets")
            target = node.targets[0]
            value = self._expr(node.value)
            if isinstance(target, ast.Name):
                name = self.rename.get(target.id, target.id)
                if target.id in self._defined:
                    return [f"{name} = {value};"]
                self._defined.add(target.id)
                return [f"auto {name} = {value};"]
            if isinstance(target, ast.Subscript):
                return [f"{self._expr(target)} = {value};"]
            raise CodegenError(f"unsupported assignment target {ast.dump(target)}")
        if isinstance(node, ast.AugAssign):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise CodegenError("unsupported augmented assignment")
            return [f"{self._expr(node.target)} {op}= {self._expr(node.value)};"]
        if isinstance(node, ast.If):
            out = [f"if ({self._expr(node.test)}) {{"]
            for s in node.body:
                out.extend("    " + ln for ln in self._stmt(s))
            if node.orelse:
                out.append("} else {")
                for s in node.orelse:
                    out.extend("    " + ln for ln in self._stmt(s))
            out.append("}")
            return out
        if isinstance(node, ast.Pass):
            return []
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant):
                return []  # docstring
            if isinstance(node.value, ast.Call):
                return [f"{self._expr(node.value)};"]
        raise CodegenError(f"unsupported tasklet statement {ast.dump(node)}")

    # ------------------------------------------------------------ expressions
    def _expr(self, node: ast.expr) -> str:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return "true" if node.value else "false"
            if isinstance(node.value, (int, float)):
                return repr(node.value)
            raise CodegenError(f"unsupported literal {node.value!r}")
        if isinstance(node, ast.Name):
            return self.rename.get(node.id, node.id)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Pow):
                return f"std::pow({self._expr(node.left)}, {self._expr(node.right)})"
            if isinstance(node.op, ast.FloorDiv):
                # Python floor semantics vs C++ truncation; non-negative in IR use.
                return f"(({self._expr(node.left)}) / ({self._expr(node.right)}))"
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise CodegenError(f"unsupported operator {ast.dump(node.op)}")
            return f"({self._expr(node.left)} {op} {self._expr(node.right)})"
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return f"(-{self._expr(node.operand)})"
            if isinstance(node.op, ast.UAdd):
                return self._expr(node.operand)
            if isinstance(node.op, ast.Not):
                return f"(!{self._expr(node.operand)})"
            raise CodegenError("unsupported unary operator")
        if isinstance(node, ast.Compare):
            parts = []
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                cop = _CMPOPS.get(type(op))
                if cop is None:
                    raise CodegenError("unsupported comparison")
                parts.append(f"({self._expr(left)} {cop} {self._expr(right)})")
                left = right
            return "(" + " && ".join(parts) + ")"
        if isinstance(node, ast.BoolOp):
            op = "&&" if isinstance(node.op, ast.And) else "||"
            return "(" + f" {op} ".join(self._expr(v) for v in node.values) + ")"
        if isinstance(node, ast.IfExp):
            return (
                f"(({self._expr(node.test)}) ? ({self._expr(node.body)}) "
                f": ({self._expr(node.orelse)}))"
            )
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            base = self._expr(node.value)
            if isinstance(node.slice, ast.Tuple):
                raise CodegenError(
                    "multi-dimensional connector indexing requires flat pointers"
                )
            return f"{base}[{self._expr(node.slice)}]"
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "math":
                fn = _MATH_FUNCS.get(node.attr)
                if fn:
                    return fn
            raise CodegenError(f"unsupported attribute {ast.dump(node)}")
        raise CodegenError(f"unsupported expression {ast.dump(node)}")

    def _call(self, node: ast.Call) -> str:
        args = [self._expr(a) for a in node.args]
        if isinstance(node.func, ast.Name):
            fname = node.func.id
            if fname == "min":
                out = args[0]
                for a in args[1:]:
                    out = f"std::min<double>({out}, {a})"
                return out
            if fname == "max":
                out = args[0]
                for a in args[1:]:
                    out = f"std::max<double>({out}, {a})"
                return out
            if fname in ("int",):
                return f"(long long)({args[0]})"
            if fname in ("float",):
                return f"(double)({args[0]})"
            if fname in _MATH_FUNCS:
                return f"{_MATH_FUNCS[fname]}({', '.join(args)})"
            # Stream operations appear as method-style calls after renaming.
            raise CodegenError(f"unsupported call {fname!r} in tasklet")
        if isinstance(node.func, ast.Attribute):
            obj = node.func.value
            if isinstance(obj, ast.Name) and obj.id == "math":
                fn = _MATH_FUNCS.get(node.func.attr)
                if fn:
                    return f"{fn}({', '.join(args)})"
            if node.func.attr == "push":
                target = self._expr(obj)
                return f"{target}.push({', '.join(args)})"
            if node.func.attr == "pop":
                target = self._expr(obj)
                return f"{target}.pop()"
        raise CodegenError(f"unsupported call {ast.dump(node.func)}")
