"""Code generation: lowering SDFGs to executable/compilable code.

The compilation pipeline (paper §4.3) is: ❶ validation + memlet
propagation, ❷ hierarchical code generation through per-target
*dispatchers* keyed on storage/schedule types, ❸ compiler invocation.

Backends:

* ``python`` — generates executable Python/NumPy (the primary backend in
  this reproduction; maps lower to vectorized NumPy or loops),
* ``cpp`` — C++17/OpenMP translation unit (compiled and executed via
  gcc + ctypes in integration tests when a compiler is present),
* ``cuda`` — CUDA dialect (structure-verified text; executed via the
  GPU machine model),
* ``fpga`` — HLS dialect with systolic-array generation from Map+Stream
  (structure-verified text; executed via the FPGA pipeline model).
"""

from repro.codegen.compiler import CompiledSDFG, compile_sdfg, generate_code

__all__ = ["CompiledSDFG", "compile_sdfg", "generate_code"]
