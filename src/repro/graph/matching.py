"""VF2-style subgraph matching for transformation pattern detection.

The paper (§4.1) locates transformation patterns with the VF2 subgraph
isomorphism algorithm [Cordella et al. 2004].  This module implements the
same state-space search: pattern nodes are matched one at a time in a
connectivity-driven order, pruning candidates that violate adjacency of
already-matched pairs.

By default we search for *monomorphisms* (the host may have extra edges
around the matched nodes) because transformation patterns describe the
required structure, and ``can_be_applied`` checks impose the remaining
restrictions — mirroring how DaCe transformations are written
(Appendix D).  ``induced=True`` requests exact induced subgraphs.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, List, Optional, TypeVar

from repro.graph.multigraph import OrderedMultiDiGraph

NodeT = TypeVar("NodeT", bound=Hashable)

NodeMatchFn = Callable[[object, object], bool]
EdgeMatchFn = Callable[[object, object], bool]


def _default_match(a: object, b: object) -> bool:
    return True


def subgraph_monomorphisms(
    pattern: OrderedMultiDiGraph,
    host: OrderedMultiDiGraph,
    node_match: Optional[NodeMatchFn] = None,
    edge_match: Optional[EdgeMatchFn] = None,
    induced: bool = False,
) -> Iterator[Dict]:
    """Yield mappings {pattern node -> host node}, deterministically ordered.

    ``node_match(pattern_node, host_node)`` and
    ``edge_match(pattern_edge_data, host_edge_data)`` restrict candidate
    pairs; both default to always-true.
    """
    node_match = node_match or _default_match
    edge_match = edge_match or _default_match

    pnodes = _connectivity_order(pattern)
    if not pnodes:
        return
    hnodes = host.nodes()

    mapping: Dict[int, object] = {}  # id(pattern node) -> host node
    used: set = set()  # id(host node)

    def edges_ok(pn, hn) -> bool:
        """Check adjacency constraints between (pn, hn) and mapped pairs."""
        for pe in pattern.out_edges(pn):
            if id(pe.dst) in mapping:
                hdst = mapping[id(pe.dst)]
                cands = host.edges_between(hn, hdst)
                if not any(edge_match(pe.data, he.data) for he in cands):
                    return False
        for pe in pattern.in_edges(pn):
            if id(pe.src) in mapping:
                hsrc = mapping[id(pe.src)]
                cands = host.edges_between(hsrc, hn)
                if not any(edge_match(pe.data, he.data) for he in cands):
                    return False
        if induced:
            # No host edges may exist between matched nodes unless the
            # pattern has a corresponding edge.
            for hother in list(mapping.values()):
                pother = _reverse_lookup(mapping, pattern, hother)
                if host.edges_between(hn, hother) and not pattern.edges_between(
                    pn, pother
                ):
                    return False
                if host.edges_between(hother, hn) and not pattern.edges_between(
                    pother, pn
                ):
                    return False
        return True

    def degrees_ok(pn, hn) -> bool:
        return host.in_degree(hn) >= pattern.in_degree(pn) and host.out_degree(
            hn
        ) >= pattern.out_degree(pn)

    def backtrack(depth: int) -> Iterator[Dict]:
        if depth == len(pnodes):
            yield {pn: mapping[id(pn)] for pn in pnodes}
            return
        pn = pnodes[depth]
        for hn in hnodes:
            if id(hn) in used:
                continue
            if not degrees_ok(pn, hn):
                continue
            if not node_match(pn, hn):
                continue
            if not edges_ok(pn, hn):
                continue
            mapping[id(pn)] = hn
            used.add(id(hn))
            yield from backtrack(depth + 1)
            del mapping[id(pn)]
            used.discard(id(hn))

    yield from backtrack(0)


def _connectivity_order(pattern: OrderedMultiDiGraph) -> List:
    """Order pattern nodes so each (after the first of its component) is
    adjacent to an earlier one — the key VF2 pruning enabler."""
    nodes = pattern.nodes()
    remaining = {id(n): n for n in nodes}
    order: List = []
    placed: set = set()
    while remaining:
        # Start a new component at the first remaining node.
        frontier = [next(iter(remaining.values()))]
        while frontier:
            n = frontier.pop(0)
            if id(n) not in remaining:
                continue
            del remaining[id(n)]
            placed.add(id(n))
            order.append(n)
            for other in pattern.successors(n) + pattern.predecessors(n):
                if id(other) in remaining:
                    frontier.append(other)
    return order


def _reverse_lookup(mapping: Dict[int, object], pattern: OrderedMultiDiGraph, hnode):
    for pn in pattern.nodes():
        if id(pn) in mapping and mapping[id(pn)] is hnode:
            return pn
    raise KeyError(hnode)
