"""Directed-multigraph substrate used by both levels of the SDFG.

An SDFG is "a directed graph of directed acyclic multigraphs" (paper §3):
the top level is a state machine whose edges carry interstate conditions,
and each state is an acyclic dataflow multigraph whose edges carry
memlets.  Both levels are instances of
:class:`~repro.graph.multigraph.OrderedMultiDiGraph`, which preserves
insertion order everywhere — a hard requirement for deterministic code
generation and reproducible pattern matching.

The package also provides the graph algorithms the IR and the
transformation engine need: traversals, topological sort, dominators and
post-dominators (scope detection), weakly-connected components (each
component of a state executes concurrently, §3.3), and a VF2-style
subgraph matcher (§4.1 uses VF2 to locate transformation patterns).
"""

from repro.graph.multigraph import Edge, GraphError, OrderedMultiDiGraph
from repro.graph.algorithms import (
    CycleError,
    bfs_order,
    dfs_preorder,
    dominators,
    postdominators,
    topological_sort,
    weakly_connected_components,
)
from repro.graph.matching import subgraph_monomorphisms

__all__ = [
    "CycleError",
    "Edge",
    "GraphError",
    "OrderedMultiDiGraph",
    "bfs_order",
    "dfs_preorder",
    "dominators",
    "postdominators",
    "subgraph_monomorphisms",
    "topological_sort",
    "weakly_connected_components",
]
