"""Ordered directed multigraph with connector-labeled edges."""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

NodeT = TypeVar("NodeT", bound=Hashable)
EdgeDataT = TypeVar("EdgeDataT")


class GraphError(Exception):
    """Raised on structurally invalid graph operations."""


class Edge(Generic[NodeT, EdgeDataT]):
    """A directed edge with optional source/destination connectors.

    Connectors are the SDFG's attachment points (paper Appendix A.1):
    dataflow edges attach to named connectors on scope nodes and tasklets
    (``IN_x`` / ``OUT_x``, tasklet parameter names, stream ``push``/``pop``).
    """

    __slots__ = ("src", "src_conn", "dst", "dst_conn", "data")

    def __init__(
        self,
        src: NodeT,
        dst: NodeT,
        data: EdgeDataT,
        src_conn: Optional[str] = None,
        dst_conn: Optional[str] = None,
    ):
        self.src = src
        self.dst = dst
        self.data = data
        self.src_conn = src_conn
        self.dst_conn = dst_conn

    def reversed(self) -> "Edge[NodeT, EdgeDataT]":
        return Edge(self.dst, self.src, self.data, self.dst_conn, self.src_conn)

    def __repr__(self) -> str:
        sc = f".{self.src_conn}" if self.src_conn else ""
        dc = f".{self.dst_conn}" if self.dst_conn else ""
        return f"Edge({self.src!r}{sc} -> {self.dst!r}{dc}: {self.data!r})"


class OrderedMultiDiGraph(Generic[NodeT, EdgeDataT]):
    """Directed multigraph preserving node and edge insertion order.

    Nodes may be any hashable objects; identity of a node in the graph is
    the object itself.  Parallel edges (same endpoints) are allowed and
    kept distinct as :class:`Edge` instances.
    """

    def __init__(self) -> None:
        # dict preserves insertion order; values unused.
        self._nodes: Dict[NodeT, None] = {}
        self._out: Dict[NodeT, List[Edge[NodeT, EdgeDataT]]] = {}
        self._in: Dict[NodeT, List[Edge[NodeT, EdgeDataT]]] = {}

    # -- nodes -----------------------------------------------------------------
    def add_node(self, node: NodeT) -> NodeT:
        if node not in self._nodes:
            self._nodes[node] = None
            self._out[node] = []
            self._in[node] = []
        return node

    def remove_node(self, node: NodeT) -> None:
        if node not in self._nodes:
            raise GraphError(f"node {node!r} not in graph")
        for e in list(self._out[node]):
            self.remove_edge(e)
        for e in list(self._in[node]):
            self.remove_edge(e)
        del self._nodes[node]
        del self._out[node]
        del self._in[node]

    def has_node(self, node: NodeT) -> bool:
        return node in self._nodes

    def nodes(self) -> List[NodeT]:
        return list(self._nodes)

    def number_of_nodes(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: NodeT) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[NodeT]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- edges ------------------------------------------------------------------
    def add_edge(
        self,
        src: NodeT,
        dst: NodeT,
        data: EdgeDataT,
        src_conn: Optional[str] = None,
        dst_conn: Optional[str] = None,
    ) -> Edge[NodeT, EdgeDataT]:
        self.add_node(src)
        self.add_node(dst)
        edge = Edge(src, dst, data, src_conn, dst_conn)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        return edge

    def add_edge_object(self, edge: Edge[NodeT, EdgeDataT]) -> Edge[NodeT, EdgeDataT]:
        """Insert a pre-built Edge (used when re-wiring during transformations)."""
        self.add_node(edge.src)
        self.add_node(edge.dst)
        self._out[edge.src].append(edge)
        self._in[edge.dst].append(edge)
        return edge

    def remove_edge(self, edge: Edge[NodeT, EdgeDataT]) -> None:
        try:
            self._out[edge.src].remove(edge)
            self._in[edge.dst].remove(edge)
        except (KeyError, ValueError) as err:
            raise GraphError(f"edge {edge!r} not in graph") from err

    def edges(self) -> List[Edge[NodeT, EdgeDataT]]:
        out: List[Edge[NodeT, EdgeDataT]] = []
        for node in self._nodes:
            out.extend(self._out[node])
        return out

    def number_of_edges(self) -> int:
        return sum(len(v) for v in self._out.values())

    def out_edges(self, node: NodeT) -> List[Edge[NodeT, EdgeDataT]]:
        if node not in self._nodes:
            raise GraphError(f"node {node!r} not in graph")
        return list(self._out[node])

    def in_edges(self, node: NodeT) -> List[Edge[NodeT, EdgeDataT]]:
        if node not in self._nodes:
            raise GraphError(f"node {node!r} not in graph")
        return list(self._in[node])

    def all_edges(self, *nodes: NodeT) -> List[Edge[NodeT, EdgeDataT]]:
        """All edges incident to any of ``nodes`` (deduplicated, ordered)."""
        seen: Dict[int, Edge[NodeT, EdgeDataT]] = {}
        for n in nodes:
            for e in self.in_edges(n) + self.out_edges(n):
                seen.setdefault(id(e), e)
        return list(seen.values())

    def edges_between(self, src: NodeT, dst: NodeT) -> List[Edge[NodeT, EdgeDataT]]:
        if src not in self._nodes:
            return []
        return [e for e in self._out[src] if e.dst is dst or e.dst == dst]

    def out_degree(self, node: NodeT) -> int:
        return len(self._out[node])

    def in_degree(self, node: NodeT) -> int:
        return len(self._in[node])

    def successors(self, node: NodeT) -> List[NodeT]:
        seen: Dict[NodeT, None] = {}
        for e in self._out[node]:
            seen.setdefault(e.dst)
        return list(seen)

    def predecessors(self, node: NodeT) -> List[NodeT]:
        seen: Dict[NodeT, None] = {}
        for e in self._in[node]:
            seen.setdefault(e.src)
        return list(seen)

    # -- queries -----------------------------------------------------------------
    def source_nodes(self) -> List[NodeT]:
        return [n for n in self._nodes if not self._in[n]]

    def sink_nodes(self) -> List[NodeT]:
        return [n for n in self._nodes if not self._out[n]]

    def copy_structure(self) -> "OrderedMultiDiGraph[NodeT, EdgeDataT]":
        """Shallow copy: same node/edge-data objects, fresh topology."""
        g: OrderedMultiDiGraph[NodeT, EdgeDataT] = OrderedMultiDiGraph()
        for n in self._nodes:
            g.add_node(n)
        for e in self.edges():
            g.add_edge(e.src, e.dst, e.data, e.src_conn, e.dst_conn)
        return g

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )
