"""Graph algorithms over :class:`OrderedMultiDiGraph`.

All algorithms are deterministic: ties are broken by node insertion
order, never by hash order.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, TypeVar

from repro.graph.multigraph import GraphError, OrderedMultiDiGraph

NodeT = TypeVar("NodeT", bound=Hashable)


class CycleError(GraphError):
    """Raised when an acyclic-only algorithm encounters a cycle."""


def dfs_preorder(
    graph: OrderedMultiDiGraph, sources: Optional[Iterable] = None
) -> List:
    """Depth-first preorder from ``sources`` (default: all source nodes)."""
    if sources is None:
        sources = graph.source_nodes() or graph.nodes()[:1]
    visited: Set[int] = set()
    order: List = []
    stack: List = list(sources)[::-1]
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        order.append(node)
        # Reverse so that the first successor is visited first.
        stack.extend(reversed(graph.successors(node)))
    return order


def bfs_order(graph: OrderedMultiDiGraph, sources: Optional[Iterable] = None) -> List:
    """Breadth-first order from ``sources`` (default: all source nodes)."""
    if sources is None:
        sources = graph.source_nodes() or graph.nodes()[:1]
    visited: Set[int] = set()
    order: List = []
    queue: List = list(sources)
    for n in queue:
        visited.add(id(n))
    while queue:
        node = queue.pop(0)
        order.append(node)
        for succ in graph.successors(node):
            if id(succ) not in visited:
                visited.add(id(succ))
                queue.append(succ)
    return order


def topological_sort(graph: OrderedMultiDiGraph) -> List:
    """Kahn's algorithm; raises :class:`CycleError` on cycles.

    Among ready nodes, earlier-inserted nodes come first, which makes
    generated code stable across runs.
    """
    indeg: Dict[int, int] = {id(n): graph.in_degree(n) for n in graph.nodes()}
    ready: List = [n for n in graph.nodes() if indeg[id(n)] == 0]
    order: List = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for e in graph.out_edges(node):
            indeg[id(e.dst)] -= 1
            if indeg[id(e.dst)] == 0:
                ready.append(e.dst)
    if len(order) != graph.number_of_nodes():
        raise CycleError("graph contains a cycle; no topological order exists")
    return order


def weakly_connected_components(graph: OrderedMultiDiGraph) -> List[List]:
    """Weakly connected components in first-seen order.

    Distinct components of an SDFG state execute concurrently (§3.3); the
    code generators rely on this decomposition.
    """
    visited: Set[int] = set()
    components: List[List] = []
    for start in graph.nodes():
        if id(start) in visited:
            continue
        comp: List = []
        stack = [start]
        visited.add(id(start))
        while stack:
            node = stack.pop()
            comp.append(node)
            for other in graph.successors(node) + graph.predecessors(node):
                if id(other) not in visited:
                    visited.add(id(other))
                    stack.append(other)
        components.append(comp)
    return components


def dominators(graph: OrderedMultiDiGraph, entry) -> Dict:
    """Immediate-dominator-free full dominator sets (iterative data-flow).

    Returns a dict mapping each reachable node to the set of its
    dominators (including itself).  Simple O(N^2) iteration — state
    graphs are small.
    """
    nodes = [n for n in dfs_preorder(graph, [entry])]
    idx = {id(n): i for i, n in enumerate(nodes)}
    all_set = set(range(len(nodes)))
    dom: List[Set[int]] = [all_set.copy() for _ in nodes]
    dom[0] = {0}
    changed = True
    while changed:
        changed = False
        for i, n in enumerate(nodes):
            if i == 0:
                continue
            preds = [idx[id(p)] for p in graph.predecessors(n) if id(p) in idx]
            new = all_set.copy()
            for p in preds:
                new &= dom[p]
            new |= {i}
            if new != dom[i]:
                dom[i] = new
                changed = True
    return {n: {nodes[d] for d in dom[i]} for i, n in enumerate(nodes)}


def postdominators(graph: OrderedMultiDiGraph, exit_node) -> Dict:
    """Post-dominator sets, computed as dominators on the reversed graph."""
    rev = OrderedMultiDiGraph()
    for n in graph.nodes():
        rev.add_node(n)
    for e in graph.edges():
        rev.add_edge(e.dst, e.src, e.data)
    return dominators(rev, exit_node)
