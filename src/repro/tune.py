"""Command-line front end for the transformation auto-tuner.

Usage (``python -m repro.tune``):

* ``python -m repro.tune run gemm --cache-dir .tuning-cache --report
  tuning.json`` — tune one kernel (PolyBench name or one of the five
  fundamental kernels), print the tuning trace, optionally persist the
  :class:`TuningReport` JSON and reuse/populate a shared cache;
* ``python -m repro.tune compare matmul`` — tune, then score the naive
  and tuned variants under the measured backend and the analytic
  cpu/gpu/fpga machine models side by side;
* ``python -m repro.tune run gemm_chain --cutout --jobs 4`` — cutout
  strategy: split the program into per-state/per-scope cutouts,
  deduplicate identical kernels by content hash, and tune the unique
  ones across a worker pool before stitching the winners back;
* ``python -m repro.tune --if-drifted snapshot.json`` — re-tune only
  the kernels whose telemetry timings drifted past their stored
  baselines (W901), invalidating their stale cache entries first;
* ``python -m repro.tune --list`` — list tunable kernel names.

``--assert-improved`` exits nonzero when the tuned variant scores worse
than the naive one, ``--assert-cache-hit`` when the run was not served
from the cache, and ``--assert-dedup`` when cutout grouping saved no
searches — CI uses these to prove the subsystem end to end.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.tuning import TuningResult, tune


def make_kernel_sdfg(name: str):
    """Resolve a kernel name: fundamental kernels (§6.1) and other
    ``*_sdfg`` factories in :mod:`repro.workloads.kernels` first, then
    the PolyBench registry."""
    from repro.workloads import kernels

    if name in kernels.KERNELS or hasattr(kernels, f"{name}_sdfg"):
        return getattr(kernels, f"{name}_sdfg")()
    from repro.workloads.polybench import get

    try:
        kernel = get(name)
    except KeyError as err:
        raise KeyError(
            f"unknown kernel {name!r}; see python -m repro.tune --list"
        ) from err
    return kernel.make_sdfg()


def list_kernels() -> List[str]:
    from repro.workloads import kernels
    from repro.workloads.polybench import all_kernels

    factories = {n[: -len("_sdfg")] for n in dir(kernels) if n.endswith("_sdfg")}
    return sorted(set(kernels.KERNELS) | factories | set(all_kernels()))


def run_tuning(args, kernel: Optional[str] = None) -> TuningResult:
    sdfg = make_kernel_sdfg(kernel or args.kernel)
    return tune(
        sdfg,
        cost=args.cost,
        strategy=args.strategy,
        depth=args.depth,
        beam_width=args.beam_width,
        budget=args.budget,
        machine=args.machine,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
    )


def run_drift_retune(args) -> int:
    """``--if-drifted``: re-tune only the kernels flagged W901.

    Loads a saved telemetry snapshot, checks it against the stored
    benchmark baselines, invalidates the drifted kernels' tuning-cache
    entries (their cached histories were won under the old performance
    regime), and re-tunes each one.  Kernels that are not tunable by
    name are reported and skipped.
    """
    import json

    from repro.telemetry.regression import check_drift, load_baselines

    with open(args.if_drifted) as f:
        snapshot = json.load(f)
    baselines = load_baselines(args.baselines)
    drift = check_drift(snapshot, baselines)
    if not drift.drifts:
        print(
            f"no drifted kernels in {args.if_drifted} "
            f"({len(drift.checked)} checked, {len(drift.skipped)} skipped)"
        )
        return 0

    status = 0
    for d in drift.drifts:
        print(d.to_diagnostic().message if hasattr(d, "to_diagnostic") else d)
        try:
            sdfg = make_kernel_sdfg(d.kernel)
        except KeyError:
            print(f"  (not a tunable kernel; skipping {d.kernel!r})")
            continue
        if args.cache_dir:
            from repro.tuning import TuningCache

            cache = TuningCache(args.cache_dir)
            # Telemetry reports the serve-layer kernel name; cache entries
            # are keyed by the SDFG's own name — invalidate under both.
            removed = cache.invalidate(d.kernel)
            if sdfg.name != d.kernel:
                removed += cache.invalidate(sdfg.name)
            print(f"  invalidated {removed} cache entr{'y' if removed == 1 else 'ies'}")
        result = run_tuning(args, kernel=d.kernel)
        print(result.report.render())
        if args.report:
            path = f"{args.report}.{d.kernel}.json" if len(drift.drifts) > 1 else args.report
            result.report.save(path)
            print(f"saved tuning report to {path}", file=sys.stderr)
        if args.assert_improved and (
            result.best_score is None
            or result.baseline_score is None
            or result.best_score > result.baseline_score
        ):
            status = 1
    return status


def _compare(args, result: TuningResult) -> str:
    """Score naive vs tuned under measured + analytic providers."""
    from repro.tuning import AnalyticCost, MeasuredCost

    naive = make_kernel_sdfg(args.kernel)
    tuned = result.sdfg
    providers = [("measured[python]", MeasuredCost())] + [
        (f"analytic[{m}]", AnalyticCost(machine=m)) for m in ("cpu", "gpu", "fpga")
    ]
    lines = [
        f"naive vs tuned scores for {args.kernel!r} "
        f"(winner: {len(result.history)} transformation(s))",
        f"  {'provider':20s} {'naive':>14s} {'tuned':>14s} {'speedup':>9s}",
    ]
    for label, provider in providers:
        try:
            a = provider.score(naive)
            b = provider.score(tuned)
        except Exception as err:  # noqa: BLE001 - provider N/A for this kernel
            lines.append(f"  {label:20s} (unavailable: {type(err).__name__}: {err})")
            continue
        speedup = f"{a / b:9.2f}" if b > 0 else " " * 9
        lines.append(f"  {label:20s} {a:14.6g} {b:14.6g} {speedup}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Search transformation sequences for the best-scoring "
        "SDFG variant (cost-guided auto-tuning).",
    )
    parser.add_argument(
        "command",
        nargs="?",
        choices=("run", "compare"),
        help="run: tune and print the trace; compare: tune, then score "
        "naive vs tuned across providers",
    )
    parser.add_argument(
        "kernel",
        nargs="?",
        help="kernel to tune (fundamental kernel or PolyBench name)",
    )
    parser.add_argument(
        "--cost",
        default="measured",
        choices=("measured", "analytic"),
        help="cost provider (default: measured)",
    )
    parser.add_argument(
        "--machine",
        default="cpu",
        choices=("cpu", "gpu", "fpga"),
        help="machine model for --cost analytic (default: cpu)",
    )
    parser.add_argument(
        "--strategy",
        default="greedy",
        choices=("greedy", "beam", "cutout"),
        help="search driver (default: greedy)",
    )
    parser.add_argument(
        "--cutout",
        action="store_true",
        help="shorthand for --strategy cutout (per-state cutout "
        "extraction, hash dedup, parallel search, stitch-back)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for --strategy cutout (default: 1)",
    )
    parser.add_argument("--depth", type=int, default=4, help="max chain length")
    parser.add_argument(
        "--beam-width", type=int, default=3, help="beam width (--strategy beam)"
    )
    parser.add_argument(
        "--budget", type=int, default=48, help="max cost evaluations"
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent tuning cache directory (content-addressed; "
        "repeated identical runs short-circuit the search)",
    )
    parser.add_argument(
        "--report", metavar="FILE", help="save the TuningReport as JSON"
    )
    parser.add_argument(
        "--assert-improved",
        action="store_true",
        help="exit 1 when the tuned variant scores worse than naive",
    )
    parser.add_argument(
        "--assert-cache-hit",
        action="store_true",
        help="exit 1 when the run was not served from the cache",
    )
    parser.add_argument(
        "--assert-dedup",
        action="store_true",
        help="exit 1 when cutout grouping deduplicated nothing",
    )
    parser.add_argument(
        "--if-drifted",
        metavar="SNAPSHOT",
        help="re-tune only kernels whose timings in this saved telemetry "
        "snapshot drifted past their baselines (W901), invalidating "
        "their cache entries first",
    )
    parser.add_argument(
        "--baselines",
        default="benchmarks/baselines",
        metavar="PATH",
        help="baseline BENCH_*.json file or directory for --if-drifted "
        "(default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--tiers",
        action="store_true",
        help="instead of searching transformations, measure the python "
        "backend's serial / vectorized / parallel lowering tiers of the "
        "kernel and report the fastest (with the compile knobs that "
        "select it)",
    )
    parser.add_argument(
        "--workers",
        metavar="N[,N...]",
        help="parallel worker counts to try with --tiers "
        "(default: 2 and the host core count)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list tunable kernels and exit"
    )
    args = parser.parse_args(argv)
    if args.cutout:
        args.strategy = "cutout"

    if args.list:
        print("\n".join(list_kernels()))
        return 0
    if args.if_drifted:
        try:
            return run_drift_retune(args)
        except (OSError, ValueError, KeyError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
    if args.tiers:
        kernel = args.kernel or args.command
        if not kernel:
            parser.print_usage()
            return 2
        from repro.tuning import tune_tiers

        try:
            sdfg = make_kernel_sdfg(kernel)
        except KeyError as err:
            print(f"error: {err.args[0]}", file=sys.stderr)
            return 1
        workers = None
        if args.workers:
            workers = [int(n) for n in args.workers.split(",") if n.strip()]
        tiers = tune_tiers(sdfg, workers=workers)
        print(tiers.render())
        if args.report:
            import json

            with open(args.report, "w") as f:
                json.dump(tiers.to_json(), f, indent=2)
            print(f"saved tier report to {args.report}", file=sys.stderr)
        return 0 if tiers.best is not None else 1
    if not args.command or not args.kernel:
        parser.print_usage()
        return 2

    try:
        result = run_tuning(args)
    except KeyError as err:
        print(f"error: {err.args[0]}", file=sys.stderr)
        return 1

    print(result.report.render())
    if args.command == "compare":
        print()
        print(_compare(args, result))

    if args.report:
        result.report.save(args.report)
        print(f"saved tuning report to {args.report}", file=sys.stderr)

    status = 0
    if args.assert_cache_hit and not result.cache_hit:
        print("error: expected a tuning-cache hit, but the search ran",
              file=sys.stderr)
        status = 1
    if args.assert_dedup and not result.report.cutouts.get("deduplicated"):
        print(
            "error: expected cutout dedup to save at least one search "
            f"(cutouts section: {result.report.cutouts or '{}'})",
            file=sys.stderr,
        )
        status = 1
    if args.assert_improved and (
        result.best_score is None
        or result.baseline_score is None
        or result.best_score > result.baseline_score
    ):
        print(
            f"error: tuned score {result.best_score} is worse than naive "
            f"{result.baseline_score}",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
