"""Persistent content-addressed tuning cache.

A tuning run is expensive (every candidate is compiled and measured, or
simulated); its *result* — the winning transformation history — is a few
hundred bytes.  The cache stores that result on disk keyed by content:

    key = SHA-256( canonical SDFG hash ‖ tuner config key ‖ cost key )

so a hit is only possible when the input graph, the search parameters,
and the cost provider setup are all identical.  On a hit the search is
skipped entirely and the history is replayed through
:func:`repro.transformations.optimizer.replay`.

The store is one JSON file per entry in ``cache_dir``, with:

* **LRU eviction** — reads touch the entry's mtime; writes evict the
  stalest entries beyond ``max_entries``;
* **corrupt-entry tolerance** — unreadable or schema-mismatched files
  count as misses and are deleted rather than raised;
* **hit/miss counters** — kept on the object and surfaced as
  ``cache`` instrumentation events on the recorder the tuner shares.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.chaos import faultpoint
from repro.filelock import FileLock
from repro.instrumentation import InstrumentationRecorder
from repro.sdfg.serialize import content_hash
from repro.telemetry.sink import active_sink

#: Bump when the entry layout changes; mismatched entries are evicted.
CACHE_SCHEMA_VERSION = 1


class TuningCache:
    """On-disk LRU cache of winning transformation histories."""

    def __init__(
        self,
        cache_dir: str,
        max_entries: int = 256,
        recorder: Optional[InstrumentationRecorder] = None,
    ):
        self.cache_dir = cache_dir
        self.max_entries = max(1, max_entries)
        self.recorder = recorder
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        os.makedirs(cache_dir, exist_ok=True)

    # ---------------------------------------------------------------- keys
    def key(self, sdfg, config_key: str, cost_key: str) -> str:
        """Content address of one tuning problem."""
        h = hashlib.sha256()
        h.update(content_hash(sdfg).encode())
        h.update(b"\x00")
        h.update(config_key.encode())
        h.update(b"\x00")
        h.update(cost_key.encode())
        return h.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")

    def _dir_lock(self) -> Optional[FileLock]:
        """Best-effort cross-process lock for multi-file operations
        (eviction, quarantine); see :mod:`repro.filelock`.  Concurrent
        worker processes share tuning-cache directories, and two racing
        evictions must not double-delete or interleave with a put."""
        lock = FileLock(os.path.join(self.cache_dir, ".lock"), timeout=5.0)
        return lock if lock.acquire(best_effort=True) else None

    # ------------------------------------------------------------- get/put
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up an entry; None on miss.  Corrupt or stale-schema files
        are deleted and counted as misses, never raised."""
        path = self._path(key)
        try:
            with open(path) as f:
                raw = f.read()
            raw = faultpoint("tuningcache.disk_read", payload=raw)
            entry = json.loads(raw)
            if (
                not isinstance(entry, dict)
                or entry.get("schema") != CACHE_SCHEMA_VERSION
                or entry.get("key") != key
                or not isinstance(entry.get("history"), list)
            ):
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self._count("miss")
            return None
        except (OSError, ValueError):
            self._count("corrupt")
            self._count("miss")
            lock = self._dir_lock()
            try:
                os.remove(path)
            except OSError:
                pass
            finally:
                if lock is not None:
                    lock.release()
            return None
        self._count("hit")
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return entry

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        """Store an entry (atomically via rename) and evict LRU overflow."""
        record = dict(entry)
        record["schema"] = CACHE_SCHEMA_VERSION
        record["key"] = key
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            data = json.dumps(record, indent=1, sort_keys=True, default=str)
            data = faultpoint("tuningcache.disk_write", payload=data)
            with open(tmp, "w") as f:
                f.write(data)
            os.replace(tmp, path)
        except OSError:
            # A failed store (disk full, torn directory) loses only the
            # shortcut — the tuning result itself is already in hand.
            try:
                os.remove(tmp)
            except OSError:
                pass
            return
        self._count("store")
        self._evict()

    # --------------------------------------------------------- invalidation
    def invalidate(self, sdfg_name: str) -> int:
        """Delete every entry recorded for ``sdfg_name``.

        The drift-retune path (``python -m repro.tune --if-drifted``)
        uses this: a kernel whose measured timings drifted past its
        baseline (W901) must not short-circuit into its stale cached
        history on the next tune.  Cutout entries belong to their
        parent kernel — ``<sdfg_name>_cut_<state>`` names are
        invalidated along with the whole-program entry, so a drifted
        kernel tuned with ``strategy="cutout"`` cannot keep stale
        per-cutout winners either.  Returns how many entries were
        removed.
        """
        removed = 0
        cutout_prefix = f"{sdfg_name}_cut_"
        lock = self._dir_lock()
        try:
            for _, path in self._entries():
                try:
                    with open(path) as f:
                        entry = json.load(f)
                except (OSError, ValueError):
                    continue
                if not isinstance(entry, dict):
                    continue
                name = str(entry.get("sdfg", ""))
                if name != sdfg_name and not name.startswith(cutout_prefix):
                    continue
                try:
                    os.remove(path)
                    removed += 1
                    self._count("invalidate")
                except OSError:
                    pass
        finally:
            if lock is not None:
                lock.release()
        return removed

    # ------------------------------------------------------------ eviction
    def _entries(self):
        out = []
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.cache_dir, name)
            try:
                out.append((os.path.getmtime(path), path))
            except OSError:
                continue
        return out

    def _evict(self) -> None:
        lock = self._dir_lock()
        try:
            entries = self._entries()
            if len(entries) <= self.max_entries:
                return
            entries.sort()  # oldest mtime first
            for _, path in entries[: len(entries) - self.max_entries]:
                try:
                    os.remove(path)
                    self.evictions += 1
                    self._count("evict")
                except OSError:
                    pass
        finally:
            if lock is not None:
                lock.release()

    # ------------------------------------------------------------ counters
    def _count(self, what: str) -> None:
        if what == "hit":
            self.hits += 1
        elif what == "miss":
            self.misses += 1
        if self.recorder is not None:
            self.recorder.event("cache", what, itype="COUNTER")
        sink = active_sink()
        if sink is not None:
            sink.publish("cache", "tuning", fields={"event": what, "n": 1})

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
