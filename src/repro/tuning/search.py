"""Search drivers for the transformation auto-tuner.

The paper's §8 outlook asks for "systematic application [of
transformations], enabling automatic optimization with reduced human
intervention"; this module is that systematic application.  Instead of
the fixed greedy recipe of ``auto_optimize``, :func:`tune` *searches*
the space of legal transformation sequences:

1. every candidate step is one ``(transformation, match index)`` pair
   from the deterministic :func:`enumerate_matches` order;
2. each step is applied through :class:`GuardedOptimizer`, so illegal or
   graph-corrupting applications roll back cleanly and merely show up as
   ``rolled_back`` entries in the trace;
3. surviving variants are scored by a :class:`CostProvider` (measured
   wall-clock or the analytic machine model) and explored greedily or
   with beam search under a global evaluation budget;
4. variants are deduplicated by canonical content hash, so sequences
   that commute are scored once.

The result carries the winning history (replayable via
``optimizer.replay``), a full :class:`TuningReport` trace, and — when a
cache directory is given — is persisted content-addressed so the next
identical tuning problem short-circuits the whole search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.instrumentation import InstrumentationRecorder
from repro.sdfg.serialize import content_hash, sdfg_from_json, sdfg_to_json
from repro.telemetry.sink import active_sink
from repro.transformations.base import REGISTRY
from repro.transformations.guard import GuardedOptimizer
from repro.transformations.optimizer import replay
from repro.tuning.cache import TuningCache
from repro.tuning.cost import CostProvider, resolve_provider
from repro.tuning.report import TuningReport, history_label

#: Transformations excluded from the default search pool: hardware
#: offloads retarget storage/schedules for devices the measuring
#: backend cannot execute — include them explicitly (or via
#: ``auto_optimize(device=...)``) when tuning analytically for them.
DEFAULT_POOL_EXCLUDED = frozenset({"FPGATransform", "GPUTransform", "MPITransform"})


def default_pool() -> List[str]:
    """The default searchable transformation set, sorted for stable
    candidate enumeration order."""
    return sorted(n for n in REGISTRY if n not in DEFAULT_POOL_EXCLUDED)


@dataclass
class TuningConfig:
    """Search-space parameters of one tuning run.

    ``strategy`` selects the driver (``greedy`` follows the single best
    child per depth; ``beam`` keeps the ``beam_width`` best variants per
    depth).  ``budget`` caps cost-provider evaluations across the whole
    search (the expensive part); ``max_matches`` caps how many match
    sites of one transformation are tried per expansion.  A candidate
    child is accepted only when it improves its parent by at least
    ``min_improvement`` (relative), which keeps timer noise from
    accumulating chains of phantom wins under measured cost.
    """

    strategy: str = "greedy"
    depth: int = 4
    beam_width: int = 3
    budget: int = 64
    max_matches: int = 2
    min_improvement: float = 0.0
    transformations: Optional[Sequence[str]] = None
    verify: bool = False

    def pool(self) -> List[str]:
        if self.transformations is not None:
            return list(self.transformations)
        return default_pool()

    def key(self) -> str:
        """Stable identity of the search configuration (cache key part)."""
        return (
            f"{self.strategy}:d{self.depth}:w{self.beam_width}:b{self.budget}"
            f":m{self.max_matches}:i{self.min_improvement}"
            f":v{int(self.verify)}:{','.join(self.pool())}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "depth": self.depth,
            "beam_width": self.beam_width,
            "budget": self.budget,
            "max_matches": self.max_matches,
            "min_improvement": self.min_improvement,
            "transformations": self.pool(),
            "verify": self.verify,
        }


@dataclass
class TuningResult:
    """What :func:`tune` returns."""

    #: A fresh SDFG with the winning history applied (the input SDFG is
    #: never mutated; use ``auto_optimize(strategy="search")`` for
    #: in-place tuning).
    sdfg: Any
    #: Winning history as replayable entries
    #: (``[{"transformation": name, "match": k}, ...]``); empty when no
    #: sequence beat the naive graph.
    history: List[Dict[str, Any]]
    baseline_score: Optional[float]
    best_score: Optional[float]
    cache_hit: bool
    cache_key: Optional[str]
    report: TuningReport

    @property
    def improved(self) -> bool:
        return bool(self.history)

    def speedup(self) -> Optional[float]:
        return self.report.speedup()


@dataclass
class _Variant:
    """One point in the search space."""

    history: List[Dict[str, Any]]
    snapshot: Dict[str, Any]
    hash: str
    score: float

    def label(self) -> str:
        return history_label(self.history)


class _SearchState:
    """Shared bookkeeping across one search: budget and dedup table."""

    def __init__(self, budget: int):
        self.budget = budget
        self.evals = 0
        #: content hash -> best known score (duplicate pruning).
        self.seen: Dict[str, float] = {}
        #: per-transformation candidate/accept/reject counts and
        #: apply/evaluate wall-clock (surfaced as tuning telemetry).
        self.xforms: Dict[str, Dict[str, float]] = {}

    def exhausted(self) -> bool:
        return self.evals >= self.budget

    def xform(self, name: str) -> Dict[str, float]:
        return self.xforms.setdefault(
            name,
            {"candidates": 0, "accepted": 0, "rejected": 0,
             "apply_s": 0.0, "evaluate_s": 0.0},
        )


def tune(
    sdfg,
    cost: Any = "measured",
    strategy: Optional[str] = None,
    depth: Optional[int] = None,
    beam_width: Optional[int] = None,
    budget: Optional[int] = None,
    transformations: Optional[Sequence[str]] = None,
    config: Optional[TuningConfig] = None,
    cache_dir: Optional[str] = None,
    cache: Optional[TuningCache] = None,
    inputs: Optional[Mapping[str, Any]] = None,
    machine: str = "cpu",
    symbols: Optional[Mapping[str, int]] = None,
    recorder: Optional[InstrumentationRecorder] = None,
    jobs: int = 1,
) -> TuningResult:
    """Search for the best-scoring transformation sequence over ``sdfg``.

    ``cost`` is ``"measured"`` (execute and time the generated-Python
    backend; pass ``inputs`` for data-dependent graphs), ``"analytic"``
    (machine-model simulation for ``machine``; pass ``symbols`` for
    problem sizes), or any :class:`CostProvider`.  Individual search
    knobs (``strategy``/``depth``/``beam_width``/``budget``/
    ``transformations``) override the corresponding ``config`` fields.

    ``strategy="cutout"`` switches to the cutout-parallel driver
    (:func:`repro.tuning.parallel.tune_cutouts`): every unique kernel of
    the program is extracted, tuned once across ``jobs`` worker
    processes, and the winners are stitched back and differentially
    verified.  ``jobs`` is ignored by the serial strategies.

    With ``cache_dir`` (or an explicit ``cache``), results persist
    content-addressed across processes: a repeated call with identical
    graph + config + cost setup replays the cached winning history
    instead of searching.  The input SDFG is never mutated.
    """
    provider = resolve_provider(cost, inputs=inputs, machine=machine, symbols=symbols)
    cfg = config or TuningConfig()
    if strategy is not None:
        cfg.strategy = strategy
    if depth is not None:
        cfg.depth = depth
    if beam_width is not None:
        cfg.beam_width = beam_width
    if budget is not None:
        cfg.budget = budget
    if transformations is not None:
        cfg.transformations = list(transformations)
    if cfg.strategy == "cutout":
        from repro.tuning.parallel import tune_cutouts

        return tune_cutouts(
            sdfg,
            cost=provider,
            jobs=jobs,
            config=cfg,
            cache_dir=cache_dir,
            cache=cache,
            inputs=inputs,
            machine=machine,
            symbols=symbols,
            recorder=recorder,
        )
    if cfg.strategy not in ("greedy", "beam"):
        raise ValueError(f"unknown search strategy {cfg.strategy!r}")

    recorder = recorder if recorder is not None else InstrumentationRecorder()
    base_json = sdfg_to_json(sdfg)

    report = TuningReport(
        sdfg=sdfg.name,
        strategy=cfg.strategy,
        cost=provider.key(),
        config=cfg.to_json(),
        budget=cfg.budget,
    )

    store = cache
    if store is None and cache_dir is not None:
        store = TuningCache(cache_dir, recorder=recorder)
    elif store is not None and store.recorder is None:
        store.recorder = recorder
    key: Optional[str] = None
    if store is not None:
        key = store.key(sdfg, cfg.key(), provider.key())
        entry = store.get(key)
        report.cache = {"enabled": True, "key": key, "hit": entry is not None}
        if entry is not None:
            report.cache.update(store.stats())
            report.baseline_score = entry.get("baseline_score")
            report.best_score = entry.get("score")
            report.winner = list(entry.get("history", ()))
            tuned = sdfg_from_json(base_json)
            if report.winner:
                replay(tuned, report.winner)
            return TuningResult(
                sdfg=tuned,
                history=list(report.winner),
                baseline_score=report.baseline_score,
                best_score=report.best_score,
                cache_hit=True,
                cache_key=key,
                report=report,
            )
    else:
        report.cache = {"enabled": False}

    recorder.enter("tuning", sdfg.name)
    try:
        state = _SearchState(cfg.budget)
        root_sdfg = sdfg_from_json(base_json)
        baseline = provider.score(root_sdfg)
        root = _Variant(
            history=[], snapshot=base_json, hash=content_hash(root_sdfg), score=baseline
        )
        state.seen[root.hash] = baseline
        report.baseline_score = baseline

        if cfg.strategy == "greedy":
            best = _greedy_search(root, cfg, provider, report, state)
        else:
            best = _beam_search(root, cfg, provider, report, state)

        report.budget_used = state.evals
        winner = best.history if best.score < baseline else []
        best_score = best.score if winner else baseline
        report.best_score = best_score
        report.winner = list(winner)
        report.transformations = {
            name: {
                "candidates": int(stats["candidates"]),
                "accepted": int(stats["accepted"]),
                "rejected": int(stats["rejected"]),
                "apply_s": round(stats["apply_s"], 6),
                "evaluate_s": round(stats["evaluate_s"], 6),
            }
            for name, stats in sorted(state.xforms.items())
        }
        _publish_xform_stats(report.transformations)
    finally:
        recorder.exit()

    if store is not None and key is not None:
        store.put(
            key,
            {
                "sdfg": sdfg.name,
                "history": winner,
                "score": best_score,
                "baseline_score": baseline,
                "config": cfg.to_json(),
                "cost": provider.key(),
            },
        )
        report.cache.update(store.stats())

    tuned = sdfg_from_json(base_json)
    if winner:
        replay(tuned, winner)
    return TuningResult(
        sdfg=tuned,
        history=winner,
        baseline_score=baseline,
        best_score=best_score,
        cache_hit=False,
        cache_key=key,
        report=report,
    )


# =====================================================================
# Drivers
# =====================================================================


def _greedy_search(
    root: _Variant,
    cfg: TuningConfig,
    provider: CostProvider,
    report: TuningReport,
    state: _SearchState,
) -> _Variant:
    """Follow the single best improving child per depth; stop when no
    child improves the current variant by ``min_improvement``."""
    current = root
    for depth in range(1, cfg.depth + 1):
        children = _expand(current, depth, cfg, provider, report, state)
        if not children:
            break
        best_child = min(children, key=lambda v: v.score)
        if not _improves(best_child.score, current.score, cfg.min_improvement):
            break
        _mark_accepted(report, depth, best_child)
        current = best_child
        if state.exhausted():
            break
    return current


def _beam_search(
    root: _Variant,
    cfg: TuningConfig,
    provider: CostProvider,
    report: TuningReport,
    state: _SearchState,
) -> _Variant:
    """Keep the ``beam_width`` best variants per depth, expanding each;
    the overall best scored variant (any depth) wins."""
    frontier = [root]
    best = root
    for depth in range(1, cfg.depth + 1):
        children: List[_Variant] = []
        for variant in frontier:
            children.extend(_expand(variant, depth, cfg, provider, report, state))
            if state.exhausted():
                break
        if not children:
            break
        children.sort(key=lambda v: v.score)  # stable: ties keep order
        frontier = children[: cfg.beam_width]
        for v in frontier:
            _mark_accepted(report, depth, v)
        if frontier[0].score < best.score:
            best = frontier[0]
        if state.exhausted():
            break
    return best


def _expand(
    variant: _Variant,
    depth: int,
    cfg: TuningConfig,
    provider: CostProvider,
    report: TuningReport,
    state: _SearchState,
) -> List[_Variant]:
    """All legal single-step children of ``variant``, scored.

    Every attempt is recorded in the report; applications run through
    the guarded optimizer so a corrupting transformation surfaces as a
    ``rolled_back`` trace entry instead of a broken graph.
    """
    from repro.transformations.optimizer import enumerate_matches

    parent_label = variant.label()
    children: List[_Variant] = []
    for name in cfg.pool():
        probe = sdfg_from_json(variant.snapshot)
        try:
            n_matches = len(enumerate_matches(probe, name))
        except Exception as err:  # noqa: BLE001 - enumeration itself failed
            report.add(
                depth, parent_label, name, 0, "rolled_back",
                reason=f"match enumeration failed: {type(err).__name__}: {err}",
            )
            continue
        if n_matches == 0:
            report.add(depth, parent_label, name, 0, "no_match")
            continue
        stats = state.xform(name)
        for index in range(min(n_matches, cfg.max_matches)):
            if state.exhausted():
                report.budget_exhausted = True
                report.add(
                    depth, parent_label, name, index, "pruned_budget",
                    reason=f"budget of {state.budget} evaluations exhausted",
                )
                return children
            work = sdfg_from_json(variant.snapshot)
            guard = GuardedOptimizer(work, verify=cfg.verify)
            stats["candidates"] += 1
            t0 = time.perf_counter()
            applied = guard.apply(name, match_index=index)
            stats["apply_s"] += time.perf_counter() - t0
            if not applied:
                attempt = guard.report.attempts[-1]
                stats["rejected"] += 1
                report.add(
                    depth, parent_label, name, index,
                    attempt.status, reason=attempt.reason,
                )
                continue
            digest = content_hash(work)
            if digest in state.seen:
                report.add(
                    depth, parent_label, name, index, "pruned_duplicate",
                    score=state.seen[digest],
                    reason="variant already scored (identical canonical form)",
                )
                continue
            state.evals += 1
            try:
                t0 = time.perf_counter()
                score = provider.score(work)
                stats["evaluate_s"] += time.perf_counter() - t0
            except Exception as err:  # noqa: BLE001 - unscorable variant
                stats["evaluate_s"] += time.perf_counter() - t0
                stats["rejected"] += 1
                report.add(
                    depth, parent_label, name, index, "score_failed",
                    reason=f"{type(err).__name__}: {err}",
                )
                continue
            stats["accepted"] += 1
            state.seen[digest] = score
            report.add(depth, parent_label, name, index, "scored", score=score)
            children.append(
                _Variant(
                    history=variant.history
                    + [{"transformation": name, "match": index}],
                    snapshot=sdfg_to_json(work),
                    hash=digest,
                    score=score,
                )
            )
    return children


def _publish_xform_stats(stats: Mapping[str, Mapping[str, Any]]) -> None:
    """Emit one ``tuning``/``xform:<name>`` event per transformation with
    candidate/accept/reject counts and apply+evaluate wall-clock, so the
    telemetry dashboard can show where search time goes."""
    sink = active_sink()
    if sink is None:
        return
    for name, s in stats.items():
        sink.publish(
            "tuning",
            f"xform:{name}",
            float(s.get("apply_s", 0.0)) + float(s.get("evaluate_s", 0.0)),
            fields={
                "candidates": int(s.get("candidates", 0)),
                "accepted": int(s.get("accepted", 0)),
                "rejected": int(s.get("rejected", 0)),
                "apply_s": round(float(s.get("apply_s", 0.0)), 6),
                "evaluate_s": round(float(s.get("evaluate_s", 0.0)), 6),
            },
        )


def _improves(candidate: float, incumbent: float, min_improvement: float) -> bool:
    return candidate < incumbent * (1.0 - min_improvement)


def _mark_accepted(report: TuningReport, depth: int, variant: _Variant) -> None:
    """Flag the trace entry that produced ``variant`` as accepted."""
    if not variant.history:
        return
    last = variant.history[-1]
    parent = history_label(variant.history[:-1])
    for rec in reversed(report.candidates):
        if (
            rec.depth == depth
            and rec.parent == parent
            and rec.transformation == last["transformation"]
            and rec.match == last["match"]
            and rec.status == "scored"
        ):
            rec.accepted = True
            return
