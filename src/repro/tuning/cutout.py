"""Cutout extraction: turning one state (or map scope) of an SDFG into
a standalone, validated SDFG.

The paper's argument is that a graph IR lets optimization act on *local
dataflow structure*; cutouts cash that out for tuning.  A cutout is a
self-contained SDFG whose arguments are derived from the boundary
memlets of the extracted region: transients that live entirely inside
the region stay transient, everything the region exchanges with the
rest of the program is promoted to an input/output argument.  Because
the extraction is a node-order-preserving copy, deterministic match
enumeration (:func:`repro.transformations.optimizer.sort_matches`)
yields the *same* candidate order inside the cutout as inside the
parent region — which is what lets the parallel tuner
(:mod:`repro.tuning.parallel`) replay a cutout's winning transformation
history onto the parent by match index.

Identical kernels appearing many times in a program (the common case in
gemm chains and multi-layer models) are grouped by
:func:`grouping_hash`, a *normalized* content hash that ignores
incidental naming (array/tasklet/state names) but preserves structure
and node order, so each unique kernel is tuned exactly once.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.diagnostics import Diagnostic, Severity, make_diagnostic
from repro.sdfg import dtypes
from repro.sdfg.data import Scalar, Stream
from repro.sdfg.nodes import AccessNode, EntryNode, MapEntry, NestedSDFG
from repro.sdfg.sdfg import SDFG
from repro.sdfg.serialize import (
    content_hash,
    data_from_json,
    data_to_json,
    sdfg_to_json,
    state_from_json,
    state_to_json,
)
from repro.sdfg.state import SDFGState


class CutoutError(Exception):
    """A region that cannot be extracted as a standalone SDFG.

    Carries a W1001 :class:`~repro.diagnostics.Diagnostic`; the batch
    extractors catch it and record the warning instead of failing the
    whole program.
    """

    def __init__(self, diagnostic: Diagnostic):
        self.diagnostic = diagnostic
        self.code = diagnostic.code
        super().__init__(str(diagnostic))


@dataclass
class Cutout:
    """One extracted region: a standalone SDFG plus provenance."""

    sdfg: SDFG
    parent_name: str
    state_name: str
    state_index: int
    #: Scope-level cutouts record the entry node's map label; state-level
    #: cutouts leave this None.
    scope_label: Optional[str] = None
    _grouping: Optional[str] = field(default=None, repr=False)
    _content: Optional[str] = field(default=None, repr=False)

    @property
    def label(self) -> str:
        if self.scope_label:
            return f"{self.state_name}/{self.scope_label}"
        return self.state_name

    @property
    def content_hash(self) -> str:
        if self._content is None:
            self._content = content_hash(self.sdfg)
        return self._content

    @property
    def grouping_hash(self) -> str:
        if self._grouping is None:
            self._grouping = grouping_hash(self.sdfg)
        return self._grouping

    @property
    def is_trivial(self) -> bool:
        """True for regions with no dataflow (nothing to tune)."""
        return all(s.number_of_nodes() == 0 for s in self.sdfg.nodes())


# =====================================================================
# Extraction
# =====================================================================


def _sanitize_name(name: str) -> str:
    name = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not re.match(r"^[A-Za-z_]", name):
        name = "_" + name
    return name


def _interstate_names(parent: SDFG) -> Set[str]:
    """Names referenced (or assigned) by any interstate transition."""
    names: Set[str] = set()
    for e in parent.edges():
        names |= {s.name for s in e.data.free_symbols}
        names |= set(e.data.assignments.keys())
    return names


def _data_used_by_state(state: SDFGState) -> Set[str]:
    used: Set[str] = set()
    for node in state.nodes():
        if isinstance(node, AccessNode):
            used.add(node.data)
    for e in state.edges():
        if e.data.data:
            used.add(e.data.data)
    return used


def _usage_map(parent: SDFG) -> Dict[str, Set[str]]:
    """Data container name -> set of state names that use it."""
    usage: Dict[str, Set[str]] = {}
    for state in parent.nodes():
        for name in _data_used_by_state(state):
            usage.setdefault(name, set()).add(state.name)
    return usage


def _reject(parent, state, message: str, data: Optional[str] = None):
    raise CutoutError(
        make_diagnostic(
            "W1001", message, Severity.WARNING, sdfg=parent, state=state, data=data
        )
    )


def _declare_free_names(cut: SDFG, parent: SDFG) -> None:
    """Declare exactly the symbols the cutout uses (copying the parent's
    types) and fold in the parent constants it references.  Declaring
    *only* used symbols matters: input synthesis binds every declared
    symbol, and the compiled cutout rejects spurious keyword arguments.
    """
    for name in sorted(cut.free_symbols()):
        if name in parent.constants:
            cut.constants[name] = parent.constants[name]
        else:
            cut.add_symbol(name, parent.symbols.get(name, dtypes.int64))


def extract_state_cutout(parent: SDFG, state: SDFGState) -> Cutout:
    """Extract one state as a standalone SDFG.

    Boundary derivation: a transient stays transient only when it is
    used by this state alone and never appears in an interstate
    transition; otherwise it carries values across the region boundary
    and is promoted to a (non-transient) argument.  Raises
    :class:`CutoutError` (W1001) for regions that cannot stand alone.
    """
    for node in state.nodes():
        if isinstance(node, NestedSDFG):
            _reject(parent, state,
                    "cutout extraction does not support nested SDFGs")

    used = _data_used_by_state(state)
    usage = _usage_map(parent)
    inter = _interstate_names(parent)

    name = _sanitize_name(f"{parent.name}_cut_{state.name}")
    cut = SDFG(name)
    for dname in sorted(used):
        desc = parent.arrays.get(dname)
        if desc is None:
            _reject(parent, state,
                    f"state references undefined container {dname!r}",
                    data=dname)
        copy = data_from_json(data_to_json(desc))
        if desc.transient:
            escapes = bool(usage.get(dname, set()) - {state.name}) or dname in inter
            if escapes:
                if isinstance(desc, Stream):
                    _reject(parent, state,
                            f"transient stream {dname!r} crosses the state "
                            "boundary and cannot be promoted to an argument",
                            data=dname)
                copy.transient = False
        cut.arrays[dname] = copy

    new_state = state_from_json(state_to_json(state), cut)
    cut.add_node(new_state)
    cut.start_state = new_state
    _declare_free_names(cut, parent)

    try:
        cut.validate()
    except Exception as err:  # noqa: BLE001 - any invalidity rejects the region
        _reject(parent, state,
                f"extracted cutout failed validation: {err}")
    return Cutout(
        sdfg=cut,
        parent_name=parent.name,
        state_name=state.name,
        state_index=parent.nodes().index(state),
    )


def extract_scope_cutout(parent: SDFG, state: SDFGState, entry: MapEntry) -> Cutout:
    """Extract one top-level map scope of ``state`` as a standalone SDFG.

    The scope subgraph plus its boundary access nodes are copied (in
    parent node order); every boundary container becomes an argument.
    Finer-grained than state cutouts — used for analysis and tests; the
    parallel tuner operates at state granularity (DESIGN §13).
    """
    exit_node = state.exit_node(entry)
    keep: Set[int] = {
        id(n) for n in state.scope_subgraph(entry, include_scope_nodes=True)
    }
    boundary: Set[str] = set()
    for e in state.in_edges(entry):
        if not isinstance(e.src, AccessNode):
            _reject(parent, state,
                    "scope cutout requires access-node boundaries "
                    f"(map {entry.map.label!r} is fed by {type(e.src).__name__})")
        keep.add(id(e.src))
        boundary.add(e.src.data)
    for e in state.out_edges(exit_node):
        if not isinstance(e.dst, AccessNode):
            _reject(parent, state,
                    "scope cutout requires access-node boundaries "
                    f"(map {entry.map.label!r} writes to {type(e.dst).__name__})")
        keep.add(id(e.dst))
        boundary.add(e.dst.data)
    for node in state.nodes():
        if id(node) in keep and isinstance(node, NestedSDFG):
            _reject(parent, state,
                    "cutout extraction does not support nested SDFGs")

    obj = state_to_json(state)
    kept_order = [i for i, n in enumerate(state.nodes()) if id(n) in keep]
    remap = {old: new for new, old in enumerate(kept_order)}
    obj["nodes"] = [obj["nodes"][i] for i in kept_order]
    obj["edges"] = [
        {**e, "src": remap[e["src"]], "dst": remap[e["dst"]]}
        for e in obj["edges"]
        if e["src"] in remap and e["dst"] in remap
    ]

    kept_nodes = [n for n in state.nodes() if id(n) in keep]
    used: Set[str] = {
        n.data for n in kept_nodes if isinstance(n, AccessNode)
    }
    for e in obj["edges"]:
        if e["memlet"]["data"]:
            used.add(e["memlet"]["data"])

    name = _sanitize_name(
        f"{parent.name}_cut_{state.name}_{entry.map.label}"
    )
    cut = SDFG(name)
    for dname in sorted(used):
        desc = parent.arrays[dname]
        copy = data_from_json(data_to_json(desc))
        if desc.transient and dname in boundary:
            if isinstance(desc, Stream):
                _reject(parent, state,
                        f"transient stream {dname!r} crosses the scope "
                        "boundary and cannot be promoted to an argument",
                        data=dname)
            copy.transient = False
        cut.arrays[dname] = copy

    new_state = state_from_json(obj, cut)
    cut.add_node(new_state)
    cut.start_state = new_state
    _declare_free_names(cut, parent)
    try:
        cut.validate()
    except Exception as err:  # noqa: BLE001
        _reject(parent, state, f"extracted cutout failed validation: {err}")
    return Cutout(
        sdfg=cut,
        parent_name=parent.name,
        state_name=state.name,
        state_index=parent.nodes().index(state),
        scope_label=entry.map.label,
    )


def extract_state_cutouts(
    parent: SDFG,
) -> Tuple[List[Cutout], List[Diagnostic]]:
    """Extract every non-empty state; unsupported regions become W1001
    warnings instead of failures (those regions are simply not tuned)."""
    cutouts: List[Cutout] = []
    warnings: List[Diagnostic] = []
    for state in parent.nodes():
        if state.number_of_nodes() == 0:
            continue
        try:
            cutouts.append(extract_state_cutout(parent, state))
        except CutoutError as err:
            warnings.append(err.diagnostic)
    return cutouts, warnings


# =====================================================================
# Grouping (normalized content hash)
# =====================================================================


def grouping_hash(sdfg: SDFG) -> str:
    """Content hash modulo incidental naming.

    The canonical serialized form is rewritten so that array names are
    positional (first-appearance order over access nodes, then edges,
    then leftovers sorted), and SDFG/state/tasklet/map names are
    replaced with positional placeholders.  Structure, node order,
    connectors, subsets, symbols, dtypes, and schedules are untouched —
    so two cutouts share a grouping hash exactly when they are the same
    kernel up to renaming of containers and labels.  Equal normalized
    forms imply equal node insertion order, which is what makes a tuned
    representative's (transformation, match-index) history replayable on
    every member of its group.
    """
    obj = sdfg_to_json(sdfg, canonical=True)
    obj["name"] = "cutout"

    order: List[str] = []
    seen: Set[str] = set()

    def note(name: Optional[str]) -> None:
        if name and name not in seen:
            seen.add(name)
            order.append(name)

    for st in obj["states"]:
        for n in st["nodes"]:
            if n["type"] == "AccessNode":
                note(n["data"])
        for e in st["edges"]:
            note(e["memlet"]["data"])
    for name in sorted(obj["arrays"]):
        note(name)
    rename = {name: f"__a{i}" for i, name in enumerate(order)}

    obj["arrays"] = {
        rename.get(k, k): v for k, v in obj["arrays"].items()
    }
    for si, st in enumerate(obj["states"]):
        st["name"] = f"__s{si}"
        counter = 0
        for n in st["nodes"]:
            kind = n["type"]
            if kind == "AccessNode":
                n["data"] = rename.get(n["data"], n["data"])
            elif kind in ("Tasklet", "Reduce"):
                n["name"] = f"__n{counter}"
                counter += 1
            elif kind in ("MapEntry", "MapExit"):
                n["label"] = "__m"
            elif kind in ("ConsumeEntry", "ConsumeExit"):
                n["label"] = "__c"
        for e in st["edges"]:
            m = e["memlet"]
            if m["data"] in rename:
                m["data"] = rename[m["data"]]
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def group_cutouts(cutouts: Sequence[Cutout]) -> "Dict[str, List[Cutout]]":
    """Group cutouts by normalized hash, preserving first-appearance
    order; each group is tuned once (via its first member)."""
    groups: Dict[str, List[Cutout]] = {}
    for cut in cutouts:
        groups.setdefault(cut.grouping_hash, []).append(cut)
    return groups


# =====================================================================
# Chain execution (cutout fidelity)
# =====================================================================


def execute_cutouts(
    parent: SDFG,
    cutouts: Sequence[Cutout],
    arrays: Mapping[str, Any],
    symbols: Optional[Mapping[str, int]] = None,
    max_steps: int = 100_000,
) -> Dict[str, np.ndarray]:
    """Execute the parent program *through its cutouts*: walk the parent
    state machine, running each state's extracted cutout on the live
    data environment and evaluating interstate transitions on the
    symbol/scalar values — the executable statement of cutout fidelity
    (every promoted boundary is faithful iff this matches the parent).

    ``arrays`` provides the parent's external arguments; transients
    (which the cutouts see as arguments) are allocated zeroed, matching
    the interpreter's allocation semantics.  Returns the non-transient
    containers after the walk.
    """
    from repro.codegen.compiler import compile_sdfg
    from repro.runtime.arguments import infer_symbols

    cutmap = {c.state_name: c for c in cutouts if c.scope_label is None}

    env: Dict[str, Any] = {}
    for name, value in arrays.items():
        if isinstance(value, np.ndarray):
            env[name] = value.copy()
        else:
            env[name] = value
    symenv: Dict[str, Any] = infer_symbols(parent, env, dict(symbols or {}))
    for sym in parent.symbols:
        if sym not in symenv and sym in arrays:
            symenv[sym] = int(arrays[sym])

    # Allocate transients and normalize scalars to 1-element arrays so
    # writes in one state are visible to reads in the next.
    for name, desc in parent.arrays.items():
        if isinstance(desc, Stream):
            continue
        np_dtype = desc.dtype.as_numpy()
        if isinstance(desc, Scalar):
            if name in env and not isinstance(env[name], np.ndarray):
                env[name] = np.full((1,), env[name], dtype=np_dtype)
            elif name not in env:
                env[name] = np.zeros((1,), dtype=np_dtype)
            continue
        if name not in env:
            shape = tuple(int(s.evaluate(symenv)) for s in desc.shape)
            env[name] = np.zeros(shape, dtype=np_dtype)

    compiled_cache: Dict[str, Any] = {}

    def bindings() -> Dict[str, Any]:
        out: Dict[str, Any] = dict(symenv)
        for name, desc in parent.arrays.items():
            if isinstance(desc, Scalar) and isinstance(env.get(name), np.ndarray):
                value = env[name][0]
                out[name] = int(value) if np.issubdtype(
                    type(value), np.integer) else float(value)
        return out

    current = parent.start_state
    steps = 0
    while current is not None:
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"cutout chain execution exceeded {max_steps} steps "
                f"(state machine of {parent.name!r} may not terminate)"
            )
        if current.number_of_nodes() > 0:
            cut = cutmap.get(current.name)
            if cut is None:
                raise KeyError(
                    f"no cutout provided for state {current.name!r}"
                )
            compiled = compiled_cache.get(current.name)
            if compiled is None:
                compiled = compile_sdfg(
                    cut.sdfg, backend="interpreter", validate=False
                )
                compiled_cache[current.name] = compiled
            kwargs = {n: env[n] for n in cut.sdfg.arglist()
                      if not isinstance(cut.sdfg.arrays[n], Stream)}
            kwargs.update({s: symenv[s] for s in cut.sdfg.symbols
                           if s in symenv})
            compiled(**kwargs)

        nxt = None
        scope = bindings()
        for e in parent.out_edges(current):
            cond = e.data
            if cond.is_unconditional() or bool(cond.condition.evaluate(scope)):
                for k, v in cond.assignments.items():
                    value = v.evaluate(scope)
                    symenv[k] = int(value) if float(value).is_integer() else value
                nxt = e.dst
                break
        current = nxt

    return {
        name: env[name]
        for name, desc in parent.arrays.items()
        if not desc.transient and isinstance(env.get(name), np.ndarray)
    }
