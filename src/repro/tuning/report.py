"""Tuning reports: a JSON-serializable trace of one auto-tuning run.

The report is to the tuner what :class:`InstrumentationReport` is to an
execution: a machine-readable record of everything that happened —
every candidate tried (with its transformation, match index, and
outcome), every score, every pruning decision, the cache interaction,
and the winning history.  Because match enumeration is deterministic,
two runs over the same SDFG with the same configuration produce the
same trace, which is what makes tuning results reviewable and
regressions bisectable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Schema version of the serialized report.
TUNING_REPORT_SCHEMA_VERSION = 1

#: Candidate outcomes:
#: ``scored`` — applied cleanly and evaluated by the cost provider;
#: ``no_match`` / ``rolled_back`` — the guarded application failed;
#: ``pruned_duplicate`` — the variant's content hash was already scored;
#: ``pruned_budget`` — the evaluation budget ran out before this step;
#: ``score_failed`` — the cost provider raised on the variant.
CANDIDATE_STATUSES = (
    "scored",
    "no_match",
    "rolled_back",
    "pruned_duplicate",
    "pruned_budget",
    "score_failed",
)


@dataclass
class CandidateRecord:
    """One search step: parent variant + one transformation candidate."""

    depth: int
    parent: str  # human-readable parent history, "" for the root
    transformation: str
    match: int
    status: str
    score: Optional[float] = None
    reason: str = ""
    accepted: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "depth": self.depth,
            "parent": self.parent,
            "transformation": self.transformation,
            "match": self.match,
            "status": self.status,
            "score": self.score,
            "reason": self.reason,
            "accepted": self.accepted,
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "CandidateRecord":
        return CandidateRecord(
            depth=int(obj["depth"]),
            parent=obj.get("parent", ""),
            transformation=obj["transformation"],
            match=int(obj.get("match", 0)),
            status=obj["status"],
            score=obj.get("score"),
            reason=obj.get("reason", ""),
            accepted=bool(obj.get("accepted", False)),
        )


@dataclass
class TuningReport:
    """Machine-readable log of one :func:`repro.tuning.tune` run."""

    sdfg: str
    strategy: str = ""
    cost: str = ""
    config: Dict[str, Any] = field(default_factory=dict)
    baseline_score: Optional[float] = None
    best_score: Optional[float] = None
    winner: List[Dict[str, Any]] = field(default_factory=list)
    candidates: List[CandidateRecord] = field(default_factory=list)
    cache: Dict[str, Any] = field(default_factory=dict)
    budget: Optional[int] = None
    budget_used: int = 0
    budget_exhausted: bool = False
    #: Per-transformation search statistics (candidate/accept/reject
    #: counts, apply/evaluate wall-clock) — filled by the search drivers.
    transformations: Dict[str, Any] = field(default_factory=dict)
    #: Cutout-strategy section (dedup counts, per-cutout outcomes,
    #: stitching/verification results) — filled by the parallel tuner.
    cutouts: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------ recording
    def add(
        self,
        depth: int,
        parent: str,
        transformation: str,
        match: int,
        status: str,
        score: Optional[float] = None,
        reason: str = "",
    ) -> CandidateRecord:
        rec = CandidateRecord(
            depth=depth,
            parent=parent,
            transformation=transformation,
            match=match,
            status=status,
            score=score,
            reason=reason,
        )
        self.candidates.append(rec)
        return rec

    # ------------------------------------------------------------- queries
    def scored(self) -> List[CandidateRecord]:
        return [c for c in self.candidates if c.status == "scored"]

    def speedup(self) -> Optional[float]:
        """Baseline/best cost ratio (>1 means the tuner found a win)."""
        if not self.baseline_score or self.best_score is None:
            return None
        if self.best_score <= 0:
            return None
        return self.baseline_score / self.best_score

    # -------------------------------------------------------------- (de)ser
    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": TUNING_REPORT_SCHEMA_VERSION,
            "sdfg": self.sdfg,
            "strategy": self.strategy,
            "cost": self.cost,
            "config": dict(self.config),
            "baseline_score": self.baseline_score,
            "best_score": self.best_score,
            "winner": list(self.winner),
            "candidates": [c.to_json() for c in self.candidates],
            "cache": dict(self.cache),
            "budget": self.budget,
            "budget_used": self.budget_used,
            "budget_exhausted": self.budget_exhausted,
            "transformations": dict(self.transformations),
            "cutouts": dict(self.cutouts),
        }

    @staticmethod
    def from_json(obj: Dict[str, Any]) -> "TuningReport":
        if not isinstance(obj, dict) or "sdfg" not in obj:
            raise ValueError("not a tuning report")
        return TuningReport(
            sdfg=obj["sdfg"],
            strategy=obj.get("strategy", ""),
            cost=obj.get("cost", ""),
            config=dict(obj.get("config", {})),
            baseline_score=obj.get("baseline_score"),
            best_score=obj.get("best_score"),
            winner=list(obj.get("winner", ())),
            candidates=[
                CandidateRecord.from_json(c) for c in obj.get("candidates", ())
            ],
            cache=dict(obj.get("cache", {})),
            budget=obj.get("budget"),
            budget_used=int(obj.get("budget_used", 0)),
            budget_exhausted=bool(obj.get("budget_exhausted", False)),
            transformations=dict(obj.get("transformations", {})),
            cutouts=dict(obj.get("cutouts", {})),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_json(), f, indent=1, sort_keys=True, default=str)

    @staticmethod
    def load(path: str) -> "TuningReport":
        with open(path) as f:
            return TuningReport.from_json(json.load(f))

    # --------------------------------------------------------------- render
    def render(self) -> str:
        """Human-readable summary: header, winner chain, candidate table."""
        lines = [
            f"tuning report for {self.sdfg!r} "
            f"[strategy={self.strategy}, cost={self.cost}]"
        ]
        if self.cache.get("enabled"):
            state = "hit" if self.cache.get("hit") else "miss"
            lines.append(
                f"  cache: {state} "
                f"(key {str(self.cache.get('key', ''))[:16]}…, "
                f"{self.cache.get('hits', 0)} hits / "
                f"{self.cache.get('misses', 0)} misses)"
            )
        if self.baseline_score is not None:
            lines.append(f"  baseline score: {self.baseline_score:.6g}")
        if self.best_score is not None:
            su = self.speedup()
            extra = f" (speedup {su:.2f}x)" if su else ""
            lines.append(f"  best score:     {self.best_score:.6g}{extra}")
        if self.winner:
            chain = " -> ".join(history_label([w]) for w in self.winner)
            lines.append(f"  winner: {chain}")
        else:
            lines.append("  winner: (naive SDFG; no improving sequence found)")
        if self.budget is not None:
            exhausted = " (exhausted)" if self.budget_exhausted else ""
            lines.append(
                f"  budget: {self.budget_used}/{self.budget} evaluations{exhausted}"
            )
        if self.cutouts:
            lines.append(
                f"  cutouts: {self.cutouts.get('unique', 0)} unique of "
                f"{self.cutouts.get('total', 0)} "
                f"(saved {self.cutouts.get('deduplicated', 0)} searches, "
                f"jobs={self.cutouts.get('jobs', 1)}, "
                f"verification: {self.cutouts.get('verification', 'not_run')})"
            )
        if self.candidates:
            lines.append(
                f"  {'depth':>5s} {'candidate':34s} {'status':18s} "
                f"{'score':>12s}  parent"
            )
            for c in self.candidates:
                score = f"{c.score:.6g}" if c.score is not None else ""
                mark = "*" if c.accepted else " "
                lines.append(
                    f" {mark}{c.depth:>5d} "
                    f"{c.transformation + '[' + str(c.match) + ']':34s} "
                    f"{c.status:18s} {score:>12s}  {c.parent}"
                )
        return "\n".join(lines)


def history_label(history: List[Dict[str, Any]]) -> str:
    """Compact text form of a (partial) history, used in traces:
    ``MapReduceFusion[0] > Vectorization[1]``."""
    return " > ".join(
        f"{e['transformation']}[{int(e.get('match', 0))}]" for e in history
    )
