"""Parallel cutout tuning: tune each unique kernel of a program once,
in worker processes, and stitch the winners back.

The pipeline (``tune(strategy="cutout", jobs=N)``):

1. **extract** — every non-empty state becomes a standalone cutout SDFG
   (:mod:`repro.tuning.cutout`); unsupported regions degrade to W1001
   warnings and are left untuned;
2. **group** — cutouts are deduplicated by normalized content hash, so a
   kernel appearing k times in the program is tuned once, not k times;
3. **tune** — one greedy/beam search per unique cutout, fanned across a
   ``multiprocessing`` pool; workers share the flock-guarded
   :class:`~repro.tuning.cache.TuningCache` and (through the disk tier)
   the :class:`~repro.codegen.progcache.ProgramCache`, so a re-run of
   the same program is a pure cache hit without any search;
4. **stitch** — each group's winning ``(transformation, match-index)``
   history is replayed onto every member's parent state.  Extraction is
   node-order preserving and match enumeration is deterministic, so the
   cutout's k-th in-state match *is* the parent state's k-th in-state
   match; the replay translates in-state indices to global ones and
   applies through :class:`~repro.transformations.guard.GuardedOptimizer`.
   A member whose translation fails (e.g. a transformation whose
   applicability saw whole-SDFG context) is rolled back and recorded as
   W1002 — the region is simply left untuned;
5. **verify** — the fully stitched program is differentially verified
   against the original at 1e-8; on mismatch the whole result reverts
   to the baseline.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.diagnostics import make_diagnostic, Severity
from repro.instrumentation import InstrumentationRecorder
from repro.sdfg.serialize import restore_sdfg_inplace, sdfg_from_json, sdfg_to_json
from repro.telemetry.sink import active_sink
from repro.transformations.guard import VERIFY_SKIPPED, GuardedOptimizer
from repro.transformations.optimizer import enumerate_matches
from repro.tuning.cache import TuningCache
from repro.tuning.cost import AnalyticCost, CostProvider, MeasuredCost, resolve_provider
from repro.tuning.cutout import Cutout, extract_state_cutouts, group_cutouts
from repro.tuning.report import TuningReport

#: Transformations that cannot help inside a single-state cutout (and
#: would waste enumeration time per cutout) on top of the default
#: hardware-offload exclusions.
CUTOUT_POOL_EXCLUDED = frozenset(
    {"FPGATransform", "GPUTransform", "MPITransform", "StateFusion"}
)


def cutout_pool() -> List[str]:
    """Default transformation pool for per-cutout searches."""
    from repro.transformations.base import REGISTRY

    return sorted(n for n in REGISTRY if n not in CUTOUT_POOL_EXCLUDED)


# =====================================================================
# Worker side
# =====================================================================


def _provider_spec(provider: CostProvider) -> Optional[Dict[str, Any]]:
    """A picklable recipe rebuilding an equivalent provider in a worker.

    Explicit measurement inputs are *dropped*: they are keyed by parent
    container names, which do not exist inside a cutout — workers
    synthesize boundary inputs from the cutout's own argument
    descriptors instead.  Returns None for custom providers (those tune
    in-process).
    """
    if isinstance(provider, MeasuredCost):
        return {
            "kind": "measured",
            "symbol_default": provider.symbol_default,
            "seed": provider.seed,
            "repeats": provider.repeats,
            "backend": provider.backend,
            "program_cache": (
                provider.program_cache
                if isinstance(provider.program_cache, str)
                else "memory"
            ),
        }
    if isinstance(provider, AnalyticCost):
        return {
            "kind": "analytic",
            "machine": provider.machine,
            "symbols": dict(provider.symbols),
            "symbol_default": provider.symbol_default,
            "naive_fpga": provider.naive_fpga,
        }
    return None


def _spec_provider(spec: Dict[str, Any], progcache_dir: Optional[str]) -> CostProvider:
    if spec["kind"] == "measured":
        program_cache: Any = spec["program_cache"]
        if progcache_dir is not None:
            from repro.codegen.progcache import ProgramCache

            os.makedirs(progcache_dir, exist_ok=True)
            program_cache = ProgramCache(cache_dir=progcache_dir)
        return MeasuredCost(
            symbol_default=spec["symbol_default"],
            seed=spec["seed"],
            repeats=spec["repeats"],
            backend=spec["backend"],
            program_cache=program_cache,
        )
    return AnalyticCost(
        machine=spec["machine"],
        symbols=spec["symbols"],
        symbol_default=spec["symbol_default"],
        naive_fpga=spec["naive_fpga"],
    )


def _tune_one_cutout(payload: Dict[str, Any], provider: CostProvider) -> Dict[str, Any]:
    """Tune one cutout and return a plain-data outcome."""
    from repro.tuning.search import TuningConfig, tune

    start = time.perf_counter()
    cut_sdfg = sdfg_from_json(payload["sdfg"])
    cfg = TuningConfig(**payload["config"])
    result = tune(
        cut_sdfg,
        cost=provider,
        config=cfg,
        cache_dir=payload["cache_dir"],
    )
    return {
        "group": payload["group"],
        "label": payload["label"],
        "history": list(result.history),
        "baseline": result.baseline_score,
        "best": result.best_score,
        "cache_hit": result.cache_hit,
        "evals": result.report.budget_used,
        "transformations": dict(
            getattr(result.report, "transformations", {}) or {}
        ),
        "wall": time.perf_counter() - start,
        "pid": os.getpid(),
    }


def _tune_cutout_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool entry point: never raises (errors come back as data)."""
    try:
        provider = _spec_provider(payload["provider"], payload["progcache_dir"])
        return _tune_one_cutout(payload, provider)
    except Exception as err:  # noqa: BLE001 - worker failures are outcomes
        return {
            "group": payload.get("group"),
            "label": payload.get("label"),
            "error": f"{type(err).__name__}: {err}",
            "wall": 0.0,
        }


# =====================================================================
# Stitching
# =====================================================================


def _stitch_member(
    tuned,
    member: Cutout,
    history: Sequence[Mapping[str, Any]],
    verify: bool,
) -> Tuple[Optional[List[Dict[str, Any]]], str]:
    """Replay a cutout-local history onto one parent state.

    Translates each step's in-state match index to the global index over
    the whole (evolving) program and applies it transactionally.
    Returns ``(global_history, "")`` on success or ``(None, reason)``
    with the member fully rolled back.
    """
    snapshot = sdfg_to_json(tuned)
    guard = GuardedOptimizer(tuned, verify=verify)
    applied: List[Dict[str, Any]] = []
    for entry in history:
        name = entry["transformation"]
        local_index = int(entry.get("match", 0))
        state = next(
            (s for s in tuned.nodes() if s.name == member.state_name), None
        )
        if state is None:
            restore_sdfg_inplace(tuned, snapshot)
            return None, f"state {member.state_name!r} vanished from the parent"
        try:
            matches = enumerate_matches(tuned, name)
        except Exception as err:  # noqa: BLE001
            restore_sdfg_inplace(tuned, snapshot)
            return None, f"match enumeration failed: {type(err).__name__}: {err}"
        in_state = [
            gi for gi, inst in enumerate(matches) if inst.state is state
        ]
        if local_index >= len(in_state):
            restore_sdfg_inplace(tuned, snapshot)
            return None, (
                f"{name}[{local_index}] has no counterpart in state "
                f"{member.state_name!r} ({len(in_state)} in-state matches)"
            )
        global_index = in_state[local_index]
        if not guard.apply(name, match_index=global_index):
            attempt = guard.report.attempts[-1]
            restore_sdfg_inplace(tuned, snapshot)
            return None, (
                f"{name}[{local_index}] rolled back on the parent: "
                f"{attempt.reason or attempt.status}"
            )
        applied.append({"transformation": name, "match": global_index})
    return applied, ""


# =====================================================================
# Driver
# =====================================================================


def tune_cutouts(
    sdfg,
    cost: Any = "measured",
    jobs: int = 1,
    config=None,
    cache_dir: Optional[str] = None,
    cache: Optional[TuningCache] = None,
    inputs: Optional[Mapping[str, Any]] = None,
    machine: str = "cpu",
    symbols: Optional[Mapping[str, int]] = None,
    recorder: Optional[InstrumentationRecorder] = None,
):
    """Cutout-parallel tuning of a (multi-state) program; the
    ``strategy="cutout"`` driver behind :func:`repro.tuning.tune`.

    ``config.budget`` is the evaluation budget *per unique cutout* (the
    per-cutout searches are independent).  Returns a
    :class:`~repro.tuning.search.TuningResult` whose ``history`` holds
    the stitched global replayable chain and whose report carries a
    ``cutouts`` section (dedup counts, per-cutout outcomes, pool
    utilization) next to the usual fields.
    """
    from repro.tuning.search import TuningConfig, TuningResult

    provider = resolve_provider(cost, inputs=inputs, machine=machine, symbols=symbols)
    cfg = config or TuningConfig(strategy="cutout")
    jobs = max(1, int(jobs))
    recorder = recorder if recorder is not None else InstrumentationRecorder()
    sink = active_sink()

    base_json = sdfg_to_json(sdfg)
    report = TuningReport(
        sdfg=sdfg.name,
        strategy="cutout",
        cost=provider.key(),
        config=dict(cfg.to_json(), jobs=jobs),
        budget=cfg.budget,
    )

    t_start = time.perf_counter()
    cutouts, warnings = extract_state_cutouts(sdfg)
    cutouts = [c for c in cutouts if not c.is_trivial]
    groups = group_cutouts(cutouts)

    sub_config = {
        "strategy": "greedy",
        "depth": cfg.depth,
        "beam_width": cfg.beam_width,
        "budget": cfg.budget,
        "max_matches": cfg.max_matches,
        "min_improvement": cfg.min_improvement,
        "transformations": (
            list(cfg.transformations)
            if cfg.transformations is not None
            else cutout_pool()
        ),
        "verify": cfg.verify,
    }
    if cache is not None and cache_dir is None:
        cache_dir = cache.cache_dir
    progcache_dir = (
        os.path.join(cache_dir, "programs") if cache_dir is not None else None
    )
    spec = _provider_spec(provider)

    payloads = []
    for ghash, members in groups.items():
        rep = members[0]
        payloads.append(
            {
                "group": ghash,
                "label": rep.label,
                "sdfg": sdfg_to_json(rep.sdfg),
                "config": sub_config,
                "cache_dir": cache_dir,
                "progcache_dir": progcache_dir,
                "provider": spec,
            }
        )

    if sink is not None:
        sink.publish(
            "tuning",
            "cutout:dedup",
            fields={
                "total": len(cutouts),
                "unique": len(groups),
                "saved": len(cutouts) - len(groups),
            },
        )

    # ------------------------------------------------------------- tune
    if spec is None or jobs == 1 or len(payloads) <= 1:
        # In-process: custom (unpicklable) providers tune here too.
        outcomes = []
        for payload in payloads:
            if spec is None:
                try:
                    outcomes.append(_tune_one_cutout(payload, provider))
                except Exception as err:  # noqa: BLE001
                    outcomes.append(
                        {
                            "group": payload["group"],
                            "label": payload["label"],
                            "error": f"{type(err).__name__}: {err}",
                            "wall": 0.0,
                        }
                    )
            else:
                outcomes.append(_tune_cutout_worker(payload))
    else:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        with ctx.Pool(processes=min(jobs, len(payloads))) as pool:
            outcomes = pool.map(_tune_cutout_worker, payloads)

    pool_wall = time.perf_counter() - t_start
    by_group = {o["group"]: o for o in outcomes}

    # ------------------------------------------------------------ stitch
    tuned = sdfg_from_json(base_json)
    stitched_history: List[Dict[str, Any]] = []
    per_cutout: List[Dict[str, Any]] = []
    merged_xforms: Dict[str, Dict[str, float]] = {}
    n_stitched = 0
    for ghash, members in groups.items():
        outcome = by_group.get(ghash) or {"error": "no outcome", "wall": 0.0}
        record = {
            "label": members[0].label,
            "members": [m.label for m in members],
            "history": list(outcome.get("history", ())),
            "baseline": outcome.get("baseline"),
            "best": outcome.get("best"),
            "cache_hit": bool(outcome.get("cache_hit")),
            "evals": int(outcome.get("evals", 0)),
            "wall": float(outcome.get("wall", 0.0)),
            "stitched": [],
            "failures": [],
        }
        if "error" in outcome:
            record["error"] = outcome["error"]
        for name, stats in (outcome.get("transformations") or {}).items():
            agg = merged_xforms.setdefault(
                name,
                {"candidates": 0, "accepted": 0, "rejected": 0,
                 "apply_s": 0.0, "evaluate_s": 0.0},
            )
            for field in agg:
                agg[field] += stats.get(field, 0)
        history = record["history"]
        if history and "error" not in outcome:
            for member in members:
                applied, reason = _stitch_member(
                    tuned, member, history, verify=cfg.verify
                )
                if applied is None:
                    diag = make_diagnostic(
                        "W1002",
                        f"stitching tuned cutout onto state "
                        f"{member.state_name!r} failed: {reason}",
                        Severity.WARNING,
                        sdfg=sdfg,
                        state=member.state_name,
                    )
                    warnings.append(diag)
                    record["failures"].append(
                        {"member": member.label, "reason": reason}
                    )
                else:
                    stitched_history.extend(applied)
                    record["stitched"].append(member.label)
                    n_stitched += 1
        per_cutout.append(record)
        if sink is not None:
            sink.publish(
                "tuning",
                f"cutout:{record['label']}",
                record["wall"],
                fields={
                    "members": len(members),
                    "evals": record["evals"],
                    "cache_hit": record["cache_hit"],
                    "stitched": len(record["stitched"]),
                },
            )

    # ------------------------------------------------------------ verify
    verification = "not_run"
    if stitched_history:
        guard = GuardedOptimizer(
            tuned, verify=True, verify_inputs=inputs, tolerance=1e-8
        )
        failure, max_err = guard._differential_check(base_json)
        if failure is VERIFY_SKIPPED:
            verification = "skipped"
        elif failure is not None:
            verification = f"failed: {failure}"
            warnings.append(
                make_diagnostic(
                    "W1002",
                    "stitched program failed differential verification "
                    f"({failure}); reverting to the baseline",
                    Severity.WARNING,
                    sdfg=sdfg,
                )
            )
            restore_sdfg_inplace(tuned, base_json)
            stitched_history = []
        else:
            verification = f"ok (max abs error {max_err:.3e})"

    # ------------------------------------------------------- score/report
    baseline_score: Optional[float] = None
    best_score: Optional[float] = None
    try:
        baseline_score = provider.score(sdfg_from_json(base_json))
        best_score = (
            provider.score(sdfg_from_json(sdfg_to_json(tuned)))
            if stitched_history
            else baseline_score
        )
    except Exception:  # noqa: BLE001 - scoring is informational here
        pass

    total_wall = time.perf_counter() - t_start
    busy = sum(r["wall"] for r in per_cutout)
    utilization = (
        busy / (jobs * pool_wall) if jobs > 0 and pool_wall > 0 else 0.0
    )
    report.baseline_score = baseline_score
    report.best_score = best_score
    report.winner = list(stitched_history)
    report.budget_used = sum(r["evals"] for r in per_cutout)
    report.transformations = {
        name: {
            "candidates": int(stats["candidates"]),
            "accepted": int(stats["accepted"]),
            "rejected": int(stats["rejected"]),
            "apply_s": round(float(stats["apply_s"]), 6),
            "evaluate_s": round(float(stats["evaluate_s"]), 6),
        }
        for name, stats in sorted(merged_xforms.items())
    }
    all_hit = bool(groups) and all(r["cache_hit"] for r in per_cutout)
    report.cache = {
        "enabled": cache_dir is not None,
        "hit": all_hit,
        "hits": sum(1 for r in per_cutout if r["cache_hit"]),
        "misses": sum(1 for r in per_cutout if not r["cache_hit"]),
    }
    report.cutouts = {
        "total": len(cutouts),
        "unique": len(groups),
        "deduplicated": len(cutouts) - len(groups),
        "stitched": n_stitched,
        "jobs": jobs,
        "wall": round(total_wall, 6),
        "pool_wall": round(pool_wall, 6),
        "utilization": round(utilization, 4),
        "verification": verification,
        "per_cutout": per_cutout,
        "warnings": [d.to_json() for d in warnings],
    }

    if sink is not None:
        sink.publish(
            "tuning",
            "cutout:pool",
            pool_wall,
            fields={
                "jobs": jobs,
                "tasks": len(groups),
                "utilization": round(utilization, 4),
            },
        )

    return TuningResult(
        sdfg=tuned,
        history=stitched_history,
        baseline_score=baseline_score,
        best_score=best_score,
        cache_hit=all_hit,
        cache_key=None,
        report=report,
    )
