"""Cost providers for the transformation auto-tuner.

A cost provider answers one question — *how expensive is this SDFG
variant?* — behind a single interface, so the search drivers are
agnostic to where the number comes from:

* :class:`MeasuredCost` executes the variant through the generated-
  Python backend on small inputs and scores it by the instrumentation
  report's wall-clock time (paper §4.4: instrumented results feed the
  optimization loop);
* :class:`AnalyticCost` scores it with the roofline performance model
  (:func:`repro.runtime.perfmodel.simulate`), enabling tuning for
  machines this testbed cannot execute (gpu, fpga).

Every provider exposes a stable :meth:`~CostProvider.key` string that
becomes part of the tuning cache's content address: scores produced
under different providers (or different measurement setups) never
collide in the cache.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.instrumentation import InstrumentationType
from repro.sdfg.serialize import sdfg_from_json, sdfg_to_json


class CostProvider:
    """Scores SDFG variants; lower is better.

    Implementations must not mutate the SDFG they score (the tuner
    hands them live search variants) and must be deterministic enough
    for search decisions — measured providers take the minimum over
    repeats to suppress timer noise.
    """

    def key(self) -> str:
        """Stable identity of this provider *and its configuration*,
        mixed into the tuning cache key."""
        raise NotImplementedError

    def score(self, sdfg) -> float:
        """Cost of one variant (seconds, or model-seconds); lower wins."""
        raise NotImplementedError


class MeasuredCost(CostProvider):
    """Score by executing the variant and reading the instrumentation
    report's wall-clock time.

    The variant is serialized to a private copy, instrumented with a
    whole-SDFG TIMER, compiled through ``backend`` (generated Python by
    default), and run ``repeats`` times on identical inputs; the score
    is the minimum observed :meth:`InstrumentationReport.total_duration`.
    When ``inputs`` is omitted, small random inputs are synthesized the
    same way the guarded optimizer synthesizes verification inputs
    (every free size symbol bound to ``symbol_default``).
    """

    def __init__(
        self,
        inputs: Optional[Mapping[str, Any]] = None,
        symbol_default: int = 16,
        seed: int = 0,
        repeats: int = 3,
        backend: str = "python",
        program_cache: Any = "memory",
        vectorize: bool = True,
        parallel: Any = None,
    ):
        self.inputs = dict(inputs) if inputs is not None else None
        self.symbol_default = symbol_default
        self.seed = seed
        self.repeats = max(1, repeats)
        self.backend = backend
        #: Search loops re-score identical candidates (revisits, repeated
        #: tune() calls); routing compilation through the shared program
        #: cache makes those re-scores skip codegen entirely.  Pass
        #: ``"off"`` to opt out, or a ProgramCache instance to isolate.
        self.program_cache = program_cache
        #: Python-backend lowering tiers to measure under: disable the
        #: vectorized tier and/or enable the multicore map tier (any
        #: ``ParallelConfig.parse`` spec), so ``tune()`` can compare
        #: serial-vs-vectorized-vs-parallel artifacts of one graph.
        self.vectorize = vectorize
        from repro.runtime.parallel import ParallelConfig

        self.parallel = ParallelConfig.parse(parallel)

    def key(self) -> str:
        if self.inputs is None:
            data = f"synth:d{self.symbol_default}:s{self.seed}"
        else:
            data = f"inputs:{_inputs_fingerprint(self.inputs)}"
        tier = "" if self.vectorize else ":novec"
        if self.parallel is not None:
            tier += f":par={self.parallel.key_fragment()}"
        return f"measured:{self.backend}:r{self.repeats}{tier}:{data}"

    def score(self, sdfg) -> float:
        from repro.codegen.compiler import compile_sdfg
        from repro.transformations.guard import synthesize_inputs

        # Private copy: instrumenting and compiling must not leak into
        # the search variant (its content hash must stay untouched).
        work = sdfg_from_json(sdfg_to_json(sdfg))
        work.instrument = InstrumentationType.TIMER
        inputs = self.inputs
        if inputs is None:
            inputs = synthesize_inputs(work, self.symbol_default, self.seed)
        compiled = compile_sdfg(
            work,
            backend=self.backend,
            validate=True,
            cache=self.program_cache,
            vectorize=self.vectorize,
            parallel=self.parallel,
        )
        best = float("inf")
        try:
            for _ in range(self.repeats):
                local = {
                    k: (v.copy() if isinstance(v, np.ndarray) else copy.copy(v))
                    for k, v in inputs.items()
                }
                compiled(**local)
                report = compiled.last_report
                elapsed = (
                    report.total_duration()
                    if report is not None and not report.is_empty()
                    else compiled.last_runtime
                )
                best = min(best, float(elapsed))
        finally:
            compiled.close()
        return best


class AnalyticCost(CostProvider):
    """Score with the analytic performance model on a machine model.

    ``machine`` is any key of :data:`repro.runtime.machine.MACHINES`
    (``cpu``, ``gpu``, ``fpga``); unbound size symbols are fixed to
    ``symbol_default`` so variants are compared on identical problem
    sizes.  This provider is deterministic and cheap, and it is the
    only way to tune for accelerators the host cannot run.
    """

    def __init__(
        self,
        machine: str = "cpu",
        symbols: Optional[Mapping[str, int]] = None,
        symbol_default: int = 1024,
        naive_fpga: bool = False,
        cores: int = 1,
        parallel_overhead: float = 5e-4,
    ):
        self.machine = machine
        self.symbols = dict(symbols) if symbols else {}
        self.symbol_default = symbol_default
        self.naive_fpga = naive_fpga
        #: Multicore map tier model: an idealized linear-scaling bound —
        #: model time divided by ``cores`` plus a fixed per-run pool
        #: dispatch/merge overhead.  ``cores=1`` (default) leaves the
        #: roofline time untouched.
        self.cores = max(1, int(cores))
        self.parallel_overhead = parallel_overhead

    def key(self) -> str:
        syms = ",".join(f"{k}={v}" for k, v in sorted(self.symbols.items()))
        cores = f":p{self.cores}" if self.cores > 1 else ""
        return (
            f"analytic:{self.machine}:d{self.symbol_default}"
            f":naive{int(self.naive_fpga)}{cores}:{syms}"
        )

    def score(self, sdfg) -> float:
        from repro.runtime.perfmodel import simulate

        symbols = dict(self.symbols)
        for s in sorted(set(sdfg.free_symbols()) | set(sdfg.symbols)):
            if s not in symbols and s not in sdfg.constants:
                symbols[s] = self.symbol_default
        t = float(simulate(sdfg, self.machine, symbols, self.naive_fpga).time)
        if self.cores > 1:
            t = t / self.cores + self.parallel_overhead
        return t


def resolve_provider(
    cost: Any,
    inputs: Optional[Mapping[str, Any]] = None,
    machine: str = "cpu",
    symbols: Optional[Mapping[str, int]] = None,
) -> CostProvider:
    """Turn ``tune()``'s ``cost`` argument into a provider instance."""
    if isinstance(cost, CostProvider):
        return cost
    if cost == "measured":
        return MeasuredCost(inputs=inputs)
    if cost == "analytic":
        return AnalyticCost(machine=machine, symbols=symbols)
    raise ValueError(
        f"unknown cost provider {cost!r}; use 'measured', 'analytic', "
        "or a CostProvider instance"
    )


def _inputs_fingerprint(inputs: Mapping[str, Any]) -> str:
    """Short stable hash of explicit measurement inputs (part of the
    cache key: different inputs mean different measured scores)."""
    h = hashlib.sha256()
    for name in sorted(inputs):
        v = inputs[name]
        h.update(name.encode())
        if isinstance(v, np.ndarray):
            h.update(str(v.dtype).encode())
            h.update(str(v.shape).encode())
            h.update(np.ascontiguousarray(v).tobytes())
        else:
            h.update(repr(v).encode())
    return h.hexdigest()[:16]
