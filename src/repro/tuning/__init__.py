"""Cost-guided transformation auto-tuning (the paper's §8 outlook).

This package searches the space of legal transformation sequences over
an SDFG and returns the best-scoring variant, instead of trusting the
fixed recipe of ``auto_optimize``:

* :mod:`repro.tuning.search` — greedy and beam-search drivers over the
  deterministic candidate enumeration, applied transactionally through
  the guarded optimizer (:func:`tune`, :class:`TuningConfig`,
  :class:`TuningResult`);
* :mod:`repro.tuning.cost` — the cost-provider interface with a
  *measured* implementation (execute + instrumentation wall-clock) and
  an *analytic* one (machine-model simulation for cpu/gpu/fpga);
* :mod:`repro.tuning.cache` — a persistent content-addressed cache of
  winning histories (canonical SDFG hash + config + cost key), with LRU
  eviction, corrupt-entry tolerance, and instrumented hit/miss counters;
* :mod:`repro.tuning.report` — the :class:`TuningReport` trace recording
  every candidate, score, and pruning decision.

Entry points::

    from repro.tuning import tune
    result = tune(sdfg, cost="measured", cache_dir=".tuning-cache")
    result.sdfg          # tuned copy; result.history replays it
    result.report.render()

or in place via ``auto_optimize(sdfg, strategy="search")``, or from the
shell via ``python -m repro.tune``.
"""

from repro.tuning.cache import CACHE_SCHEMA_VERSION, TuningCache
from repro.tuning.cost import (
    AnalyticCost,
    CostProvider,
    MeasuredCost,
    resolve_provider,
)
from repro.tuning.cutout import (
    Cutout,
    CutoutError,
    execute_cutouts,
    extract_scope_cutout,
    extract_state_cutout,
    extract_state_cutouts,
    group_cutouts,
    grouping_hash,
)
from repro.tuning.parallel import CUTOUT_POOL_EXCLUDED, cutout_pool, tune_cutouts
from repro.tuning.report import CandidateRecord, TuningReport, history_label
from repro.tuning.tiers import TierCandidate, TierResult, tune_tiers
from repro.tuning.search import (
    DEFAULT_POOL_EXCLUDED,
    TuningConfig,
    TuningResult,
    default_pool,
    tune,
)

__all__ = [
    "AnalyticCost",
    "CACHE_SCHEMA_VERSION",
    "CUTOUT_POOL_EXCLUDED",
    "CandidateRecord",
    "CostProvider",
    "Cutout",
    "CutoutError",
    "DEFAULT_POOL_EXCLUDED",
    "MeasuredCost",
    "TuningCache",
    "TuningConfig",
    "TuningReport",
    "TuningResult",
    "cutout_pool",
    "default_pool",
    "execute_cutouts",
    "extract_scope_cutout",
    "extract_state_cutout",
    "extract_state_cutouts",
    "TierCandidate",
    "TierResult",
    "group_cutouts",
    "grouping_hash",
    "history_label",
    "resolve_provider",
    "tune",
    "tune_cutouts",
    "tune_tiers",
]
