"""Execution-tier selection for the generated-Python backend.

The transformation auto-tuner searches over *graph rewrites*; this
module searches over *lowering tiers* of one fixed graph: the serial
scalar loop nest, the NumPy-vectorized tier, and the multicore parallel
tier at one or more worker counts (see :mod:`repro.runtime.parallel`).
``tune_tiers`` measures each candidate under :class:`MeasuredCost` —
so the parallel tier is only ever chosen when its W501 parallelism
proof holds (an ineligible map degrades to serial inside the candidate
and simply scores accordingly) — and reports the fastest.

The choice feeds back into ``compile_sdfg`` verbatim: every candidate
is described by the exact ``(vectorize=, parallel=)`` keyword pair that
reproduces it.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.tuning.cost import MeasuredCost


class TierCandidate:
    """One lowering tier: a label plus the compile knobs that select it."""

    def __init__(self, label: str, vectorize: bool, parallel: Any = None):
        self.label = label
        self.vectorize = vectorize
        self.parallel = parallel
        self.score: Optional[float] = None
        self.error: Optional[str] = None

    def compile_kwargs(self) -> Dict[str, Any]:
        return {"vectorize": self.vectorize, "parallel": self.parallel}

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "vectorize": self.vectorize,
            "parallel": self.parallel,
            "score": self.score,
            "error": self.error,
        }


class TierResult:
    """Outcome of a tier search: scored candidates, best first choice."""

    def __init__(self, sdfg_name: str, candidates: List[TierCandidate]):
        self.sdfg_name = sdfg_name
        self.candidates = candidates

    @property
    def best(self) -> Optional[TierCandidate]:
        scored = [c for c in self.candidates if c.score is not None]
        return min(scored, key=lambda c: c.score) if scored else None

    @property
    def serial_score(self) -> Optional[float]:
        for c in self.candidates:
            if c.label == "serial":
                return c.score
        return None

    def speedup(self) -> Optional[float]:
        """Best-tier speedup over the serial tier (>1 means faster)."""
        best = self.best
        base = self.serial_score
        if best is None or base is None or best.score in (None, 0):
            return None
        return base / best.score

    def to_json(self) -> Dict[str, Any]:
        best = self.best
        return {
            "sdfg": self.sdfg_name,
            "best": best.label if best else None,
            "speedup_vs_serial": self.speedup(),
            "candidates": [c.to_json() for c in self.candidates],
        }

    def render(self) -> str:
        lines = [f"execution tiers for {self.sdfg_name!r} (lower is better)"]
        best = self.best
        for c in self.candidates:
            mark = " <- best" if best is c else ""
            if c.score is None:
                lines.append(f"  {c.label:16s} (unavailable: {c.error}){mark}")
            else:
                lines.append(f"  {c.label:16s} {c.score:12.6g} s{mark}")
        sp = self.speedup()
        if sp is not None:
            lines.append(f"  best tier is {sp:.2f}x vs serial")
        return "\n".join(lines)


def default_worker_counts() -> Tuple[int, ...]:
    """Worker counts worth trying on this host: 2 and the core count
    (deduplicated, capped at 8 so the search stays cheap)."""
    cores = os.cpu_count() or 1
    counts = sorted({n for n in (2, min(cores, 8)) if n >= 2 and n <= cores})
    return tuple(counts) or (2,)


def tune_tiers(
    sdfg,
    workers: Optional[Sequence[int]] = None,
    inputs: Optional[Mapping[str, Any]] = None,
    symbol_default: int = 64,
    repeats: int = 3,
) -> TierResult:
    """Measure the serial, vectorized, and parallel tiers of ``sdfg``
    and pick the fastest.

    ``workers`` lists the parallel worker counts to try (default:
    :func:`default_worker_counts`).  Candidates that fail to execute are
    reported with their error instead of aborting the search.
    """
    if workers is None:
        workers = default_worker_counts()
    candidates = [
        TierCandidate("serial", vectorize=False),
        TierCandidate("vectorized", vectorize=True),
    ]
    for n in workers:
        candidates.append(
            TierCandidate(f"parallel[{n}]", vectorize=True, parallel=int(n))
        )
    for cand in candidates:
        provider = MeasuredCost(
            inputs=inputs,
            symbol_default=symbol_default,
            repeats=repeats,
            vectorize=cand.vectorize,
            parallel=cand.parallel,
        )
        try:
            cand.score = provider.score(sdfg)
        except Exception as err:  # noqa: BLE001 - candidate N/A, keep searching
            cand.error = f"{type(err).__name__}: {err}"
    return TierResult(sdfg.name, candidates)
