"""Structured diagnostics for validation, code generation, and the
guarded optimization pipeline.

Every check in the system reports through a :class:`Diagnostic`: a
stable error code, a severity, a human-readable message, and the
location (SDFG / state / node / data container) it refers to.  The
:class:`DiagnosticCollector` supports two modes:

* *raise mode* (default) — the first ERROR raises immediately through a
  caller-supplied exception factory, preserving the historical
  fail-fast behavior of ``validate_sdfg``;
* *collect mode* (``collect_all=True``) — every diagnostic is recorded
  and returned, so tooling (DIODE-style editors, the guarded optimizer,
  CI) can show all problems of a broken SDFG at once.

``python -m repro.diagnostics --self-check`` exercises the robustness
machinery end to end (multi-error collection, the write-conflict
detector, transactional rollback, and backend degradation) and is run
in CI on every push.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity; only ERROR aborts a pipeline."""

    INFO = 0
    WARNING = 1
    ERROR = 2


#: Registry of stable diagnostic codes.  Codes are part of the public
#: surface: tests and tooling match on them, messages may change freely.
CODES: Dict[str, str] = {
    # --- SDFG-level structure (V0xx)
    "V001": "SDFG has no states",
    "V002": "SDFG has no start state",
    "V003": "duplicate state names",
    "V004": "interstate assignment targets a data container",
    # --- state-level structure (V1xx)
    "V101": "state dataflow graph is cyclic",
    "V102": "malformed scope structure",
    "V103": "scope entry without matching exit",
    # --- node checks (V2xx)
    "V201": "access node references undefined container",
    "V202": "tasklet accesses a name without a memlet",
    "V203": "dataflow into tasklet without a connector",
    "V204": "dataflow out of tasklet without a connector",
    "V205": "tasklet declares outputs but has no outgoing edges",
    "V206": "recursive nested SDFG",
    "V207": "nested SDFG connector has no matching container",
    "V208": "consume entry needs exactly one stream input",
    "V209": "consume entry input must come from a stream",
    # --- edge/memlet checks (V3xx)
    "V301": "memlet references undefined container",
    "V302": "memlet subset rank mismatch",
    "V303": "memlet other_subset rank mismatch",
    "V304": "edge uses undeclared source connector",
    "V305": "edge uses undeclared destination connector",
    "V306": "memlet out of bounds",
    # --- schedule/storage feasibility (V4xx)
    "V401": "storage not accessible from schedule",
    # --- static race analysis (W5xx, warnings)
    "W501": "overlapping writes inside map scope without conflict resolution",
    # --- instrumentation placement (W6xx, warnings)
    "W601": "instrumentation attached to empty state",
    "W602": "instrumentation attached to disconnected node",
    "W603": "instrumentation attached to unreachable state",
    # --- codegen performance degradations (W7xx, warnings)
    "W701": "custom WCR reduction lowered through the scalar loop path",
    "W702": "fast lowering tier disabled by the sanitizer",
    "W703": "map not provably parallelizable; degraded from the parallel tier",
    # --- code generation (CGxxx)
    "CG001": "expression not renderable as Python",
    "CG002": "expression not renderable as C++",
    "CG003": "flat index requires point subset",
    "CG101": "no host C++ compiler found",
    "CG102": "C++ compilation failed",
    "CG103": "compiled library could not be loaded",
    "CG000": "backend cannot lower SDFG feature",
    # --- guarded optimization (G1xx)
    "G101": "transformation application raised",
    "G102": "post-transformation validation failed",
    "G103": "differential verification mismatch",
    # --- runtime execution errors (E1xx containers, E2xx backends)
    "E101": "stream index out of bounds",
    "E201": "backend execution crashed",
    "E202": "malformed service request",
    "E203": "unknown program key (recompile required)",
    "E204": "internal service error",
    "E205": "service request timed out on the client socket",
    # --- dynamic sanitizer / watchdog findings (R8xx)
    "R801": "out-of-bounds access detected at runtime",
    "R802": "non-finite value produced at tasklet output",
    "R803": "read of never-written transient",
    "R804": "runtime write conflict without conflict resolution",
    "R805": "watchdog violation (deadline or memory budget exceeded)",
    # --- service admission control (R8xx continued)
    "R806": "tenant admission rejected: too many in-flight requests",
    "R807": "tenant admission rejected: circuit breaker open",
    "R808": "tenant admission rejected: deadline budget exhausted",
    "R809": "service draining: request rejected during shutdown",
    # --- service degradation (W8xx, warnings)
    "W801": "service degraded under load: request options shed",
    # --- telemetry / performance regression (W9xx, warnings)
    "W901": "kernel timing drifted past its stored baseline",
    "W902": "kernel observed in telemetry but has no stored baseline",
    # --- cutout tuning (W10xx, warnings)
    "W1001": "cutout extraction skipped an unsupported region",
    "W1002": "stitching a tuned cutout back failed; region left untuned",
}


@dataclass
class Diagnostic:
    """One finding, with a stable code and a precise location."""

    code: str
    severity: Severity
    message: str
    sdfg: Optional[str] = None
    state: Optional[str] = None
    node: Optional[str] = None
    data: Optional[str] = None

    def location(self) -> str:
        loc = ""
        if self.sdfg:
            loc += f" [sdfg {self.sdfg}]"
        if self.state:
            loc += f" [state {self.state}]"
        if self.node:
            loc += f" [node {self.node}]"
        if self.data:
            loc += f" [data {self.data}]"
        return loc

    def __str__(self) -> str:
        return f"{self.code} {self.severity.name}: {self.message}{self.location()}"

    def to_json(self) -> Dict[str, Optional[str]]:
        return {
            "code": self.code,
            "severity": self.severity.name,
            "message": self.message,
            "sdfg": self.sdfg,
            "state": self.state,
            "node": self.node,
            "data": self.data,
        }

    @staticmethod
    def from_json(obj: Dict[str, Optional[str]]) -> "Diagnostic":
        # Unknown severities (a newer peer's diagnostic) degrade to
        # WARNING instead of refusing to rehydrate.
        try:
            severity = Severity[str(obj.get("severity", "WARNING"))]
        except KeyError:
            severity = Severity.WARNING
        return Diagnostic(
            code=str(obj["code"]),
            severity=severity,
            message=str(obj.get("message", "")),
            sdfg=obj.get("sdfg"),
            state=obj.get("state"),
            node=obj.get("node"),
            data=obj.get("data"),
        )


def make_diagnostic(
    code: str,
    message: str,
    severity: Severity = Severity.ERROR,
    sdfg=None,
    state=None,
    node=None,
    data: Optional[str] = None,
) -> Diagnostic:
    """Build a diagnostic from live IR objects (names are extracted)."""
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        sdfg=getattr(sdfg, "name", sdfg) if sdfg is not None else None,
        state=getattr(state, "name", state) if state is not None else None,
        node=repr(node) if node is not None else None,
        data=data,
    )


class DiagnosticCollector:
    """Accumulates diagnostics; raises on the first ERROR unless
    ``collect_all`` is set.

    ``error_factory`` builds the exception raised in fail-fast mode from
    ``(diagnostic, sdfg, state, node)`` — validation passes
    ``InvalidSDFGError`` so existing ``except`` clauses keep working.
    """

    def __init__(
        self,
        collect_all: bool = False,
        error_factory: Optional[Callable] = None,
    ):
        self.collect_all = collect_all
        self.error_factory = error_factory
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------- reporting
    def report(
        self,
        code: str,
        message: str,
        severity: Severity = Severity.ERROR,
        sdfg=None,
        state=None,
        node=None,
        data: Optional[str] = None,
        cause: Optional[BaseException] = None,
    ) -> Diagnostic:
        diag = make_diagnostic(code, message, severity, sdfg, state, node, data)
        self.diagnostics.append(diag)
        if severity >= Severity.ERROR and not self.collect_all:
            if self.error_factory is not None:
                err = self.error_factory(diag, sdfg, state, node)
            else:
                err = DiagnosticError(diag)
            if cause is not None:
                raise err from cause
            raise err
        return diag

    def error(self, code: str, message: str, **kw) -> Diagnostic:
        return self.report(code, message, Severity.ERROR, **kw)

    def warning(self, code: str, message: str, **kw) -> Diagnostic:
        return self.report(code, message, Severity.WARNING, **kw)

    def info(self, code: str, message: str, **kw) -> Diagnostic:
        return self.report(code, message, Severity.INFO, **kw)

    # --------------------------------------------------------------- queries
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def to_json(self) -> List[Dict[str, Optional[str]]]:
        return [d.to_json() for d in self.diagnostics]


class DiagnosticError(Exception):
    """Default exception wrapping a diagnostic (used when no
    domain-specific exception type applies)."""

    def __init__(self, diagnostic: Diagnostic):
        self.diagnostic = diagnostic
        self.code = diagnostic.code
        super().__init__(str(diagnostic))


# =====================================================================
# Self-check: exercised by CI (`python -m repro.diagnostics --self-check`)
# =====================================================================


def _selfcheck_collect_all() -> str:
    """A multi-error SDFG yields every diagnostic, not just the first."""
    from repro.sdfg import SDFG, Memlet, dtypes
    from repro.sdfg.validation import validate_sdfg

    sdfg = SDFG("broken")
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state("s")
    # Error 1: access node referencing an undefined container.
    st.add_access("ghost")
    # Error 2: tasklet reading an undeclared name.
    st.add_tasklet("t", [], ["o"], "o = undeclared_name")
    # Error 3 lives in a second state: memlet to an undefined container.
    st2 = sdfg.add_state("s2")
    a = st2.add_access("A")
    b = st2.add_access("ghost2")
    st2.add_edge(a, b, Memlet(data="ghost2", subset="0"), None, None)
    from repro.sdfg.sdfg import InterstateEdge

    sdfg.add_edge(st, st2, InterstateEdge())

    diags = validate_sdfg(sdfg, collect_all=True)
    errors = [d for d in diags if d.severity >= Severity.ERROR]
    assert len(errors) >= 3, f"expected >=3 errors, got {errors}"
    codes = {d.code for d in errors}
    assert "V201" in codes and "V202" in codes, codes
    return f"collect_all: {len(errors)} errors, codes {sorted(codes)}"


def _selfcheck_write_conflicts() -> str:
    """The racy map is flagged; the WCR-annotated one is clean."""
    from repro.sdfg import SDFG, Memlet, dtypes
    from repro.sdfg.validation import detect_write_conflicts

    def build(wcr):
        sdfg = SDFG("racy" if wcr is None else "safe")
        sdfg.add_array("A", ("N", "N"), dtypes.float64)
        sdfg.add_array("out", ("N",), dtypes.float64)
        st = sdfg.add_state()
        st.add_mapped_tasklet(
            "acc",
            {"i": "0:N", "j": "0:N"},
            inputs={"a": Memlet.simple("A", "i, j")},
            code="o = a",
            outputs={"o": Memlet.simple("out", "i", wcr=wcr)},
        )
        return sdfg

    racy = detect_write_conflicts(build(None))
    safe = detect_write_conflicts(build("sum"))
    assert any(d.code == "W501" for d in racy), racy
    assert not safe, safe
    return "write-conflict detector: racy flagged, WCR clean"


def _selfcheck_rollback() -> str:
    """A corrupting transformation is rolled back byte-identically."""
    from repro.sdfg import SDFG, Memlet, dtypes
    from repro.transformations.base import Transformation
    from repro.transformations.guard import GuardedOptimizer, canonical_snapshot

    sdfg = SDFG("victim")
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "c",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a * 2",
        outputs={"b": Memlet.simple("A", "i")},
    )

    class Corruptor(Transformation):
        @classmethod
        def expressions(cls):
            return []

        @classmethod
        def matches(cls, sdfg, strict=False):
            yield cls(sdfg, None, {})

        def apply(self):
            # Dangle an access node to an undefined container.
            state = self.sdfg.states()[0]
            state.add_access("__no_such_container")

    before = canonical_snapshot(sdfg)
    guard = GuardedOptimizer(sdfg)
    ok = guard.apply(Corruptor)
    after = canonical_snapshot(sdfg)
    assert not ok, "corrupting transformation reported success"
    assert before == after, "rollback was not byte-identical"
    att = guard.report.attempts[-1]
    assert att.status == "rolled_back", att
    return f"rollback: contained ({att.reason.splitlines()[0]})"


def _selfcheck_degradation() -> str:
    """With the host compiler gone, cpp degrades to a runnable artifact."""
    import unittest.mock

    import numpy as np

    from repro.codegen import cpp_gen
    from repro.codegen.compiler import compile_sdfg
    from repro.sdfg import SDFG, Memlet, dtypes

    sdfg = SDFG("degrade")
    sdfg.add_array("A", ("N",), dtypes.float64)
    st = sdfg.add_state()
    st.add_mapped_tasklet(
        "c",
        {"i": "0:N"},
        inputs={"a": Memlet.simple("A", "i")},
        code="b = a + 1",
        outputs={"b": Memlet.simple("A", "i")},
    )

    with unittest.mock.patch.object(cpp_gen, "find_host_compiler", lambda: None):
        compiled = compile_sdfg(sdfg, backend="cpp")
    assert compiled.requested_backend == "cpp"
    assert compiled.degradation, "no fallback was recorded"
    A = np.ones(5)
    compiled(A=A, N=5)
    assert (A == 2.0).all()
    hops = " -> ".join(
        ["cpp"] + [rec["to"] for rec in compiled.degradation]
    )
    return f"degradation: {hops}, result correct"


def self_check(verbose: bool = True) -> int:
    checks = [
        _selfcheck_collect_all,
        _selfcheck_write_conflicts,
        _selfcheck_rollback,
        _selfcheck_degradation,
    ]
    failures = 0
    for check in checks:
        try:
            msg = check()
            if verbose:
                print(f"PASS  {msg}")
        except Exception as err:  # noqa: BLE001 - report every failure
            failures += 1
            if verbose:
                print(f"FAIL  {check.__name__}: {err}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.diagnostics",
        description="Structured diagnostics utilities.",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="run the robustness smoke checks (rollback, degradation, "
        "collect-all validation, write-conflict detection)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print the diagnostic code registry as JSON",
    )
    args = parser.parse_args(argv)
    if args.list_codes:
        print(json.dumps(CODES, indent=2, sort_keys=True))
        return 0
    if args.self_check:
        failures = self_check()
        print("self-check:", "OK" if failures == 0 else f"{failures} FAILURES")
        return 1 if failures else 0
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
