"""Type system and enumerations of the SDFG IR.

``typeclass`` wraps a NumPy scalar type and knows how to render itself in
each code-generation dialect.  Storage and schedule enumerations mirror
the paper's container/Map properties (§3.1, §3.3): containers are *tied
to a specific storage location* and Maps are *tied to schedules* that
determine how they lower to code on each platform.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

import numpy as np


class typeclass:
    """A scalar element type, bridging NumPy, C++, and Python."""

    _CTYPES: Dict[str, str] = {
        "bool": "bool",
        "int8": "char",
        "int16": "short",
        "int32": "int",
        "int64": "long long",
        "uint8": "unsigned char",
        "uint16": "unsigned short",
        "uint32": "unsigned int",
        "uint64": "unsigned long long",
        "float32": "float",
        "float64": "double",
        "complex64": "cuFloatComplex",
        "complex128": "cuDoubleComplex",
    }

    def __init__(self, nptype: type):
        self.nptype = np.dtype(nptype)
        self.name = self.nptype.name

    @property
    def bytes(self) -> int:
        return self.nptype.itemsize

    @property
    def ctype(self) -> str:
        if self.name.startswith("complex"):
            inner = "float" if self.name == "complex64" else "double"
            return f"std::complex<{inner}>"
        return self._CTYPES[self.name]

    def as_numpy(self) -> np.dtype:
        return self.nptype

    def is_integer(self) -> bool:
        return np.issubdtype(self.nptype, np.integer)

    def is_float(self) -> bool:
        return np.issubdtype(self.nptype, np.floating)

    def is_complex(self) -> bool:
        return np.issubdtype(self.nptype, np.complexfloating)

    def zero(self):
        return self.nptype.type(0)

    def __eq__(self, other) -> bool:
        if isinstance(other, typeclass):
            return self.nptype == other.nptype
        if isinstance(other, (type, np.dtype)):
            return self.nptype == np.dtype(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.nptype)

    def __call__(self, *shape):
        """``float64[M, N]``-style annotation support (via __getitem__)."""
        return self.__getitem__(shape)

    def __getitem__(self, shape):
        from repro.sdfg.data import Array

        if not isinstance(shape, tuple):
            shape = (shape,)
        return Array(self, shape)

    def __repr__(self) -> str:
        return f"repro.{self.name}"

    def __str__(self) -> str:
        return self.name


bool_ = typeclass(np.bool_)
int8 = typeclass(np.int8)
int16 = typeclass(np.int16)
int32 = typeclass(np.int32)
int64 = typeclass(np.int64)
uint8 = typeclass(np.uint8)
uint16 = typeclass(np.uint16)
uint32 = typeclass(np.uint32)
uint64 = typeclass(np.uint64)
float32 = typeclass(np.float32)
float64 = typeclass(np.float64)
complex64 = typeclass(np.complex64)
complex128 = typeclass(np.complex128)

_BY_NAME = {
    t.name: t
    for t in (
        bool_,
        int8,
        int16,
        int32,
        int64,
        uint8,
        uint16,
        uint32,
        uint64,
        float32,
        float64,
        complex64,
        complex128,
    )
}


def dtype_from_name(name: str) -> typeclass:
    try:
        return _BY_NAME[name]
    except KeyError as err:
        raise ValueError(f"unknown dtype {name!r}") from err


def dtype_of(value) -> typeclass:
    """Typeclass of a NumPy array/scalar or Python number."""
    if isinstance(value, np.ndarray):
        return typeclass(value.dtype.type)
    if isinstance(value, (bool, np.bool_)):
        return bool_
    if isinstance(value, (int, np.integer)):
        return int64
    if isinstance(value, (float, np.floating)):
        return float64
    if isinstance(value, (complex, np.complexfloating)):
        return complex128
    raise TypeError(f"cannot infer dtype of {type(value).__name__}")


class StorageType(enum.Enum):
    """Where a container lives (paper §3.1: containers are tied to a
    storage location, which may be on a GPU 'or even a file')."""

    Default = enum.auto()
    CPU_Heap = enum.auto()
    CPU_Pinned = enum.auto()
    CPU_ThreadLocal = enum.auto()
    Register = enum.auto()
    GPU_Global = enum.auto()
    GPU_Shared = enum.auto()
    FPGA_Global = enum.auto()  # off-chip DDR banks
    FPGA_Local = enum.auto()  # on-chip BRAM/URAM
    FPGA_Registers = enum.auto()


class ScheduleType(enum.Enum):
    """How a Map/Consume scope lowers to code (paper §3.3)."""

    Default = enum.auto()
    Sequential = enum.auto()
    CPU_Multicore = enum.auto()  # OpenMP parallel for
    GPU_Device = enum.auto()  # CUDA kernel grid
    GPU_ThreadBlock = enum.auto()  # CUDA block-level
    FPGA_Device = enum.auto()  # processing-element replication


#: Storage a schedule's local transients default to.
SCOPEDEFAULT_STORAGE = {
    ScheduleType.Default: StorageType.CPU_Heap,
    ScheduleType.Sequential: StorageType.CPU_Heap,
    ScheduleType.CPU_Multicore: StorageType.CPU_ThreadLocal,
    ScheduleType.GPU_Device: StorageType.GPU_Shared,
    ScheduleType.GPU_ThreadBlock: StorageType.Register,
    ScheduleType.FPGA_Device: StorageType.FPGA_Local,
}

#: Which storage types a given schedule may legally access (validation).
STORAGE_ACCESSIBLE_FROM = {
    ScheduleType.Default: {
        StorageType.Default,
        StorageType.CPU_Heap,
        StorageType.CPU_Pinned,
        StorageType.CPU_ThreadLocal,
        StorageType.Register,
    },
    ScheduleType.Sequential: {
        StorageType.Default,
        StorageType.CPU_Heap,
        StorageType.CPU_Pinned,
        StorageType.CPU_ThreadLocal,
        StorageType.Register,
    },
    ScheduleType.CPU_Multicore: {
        StorageType.Default,
        StorageType.CPU_Heap,
        StorageType.CPU_Pinned,
        StorageType.CPU_ThreadLocal,
        StorageType.Register,
    },
    ScheduleType.GPU_Device: {
        StorageType.GPU_Global,
        StorageType.GPU_Shared,
        StorageType.Register,
        StorageType.CPU_Pinned,
    },
    ScheduleType.GPU_ThreadBlock: {
        StorageType.GPU_Global,
        StorageType.GPU_Shared,
        StorageType.Register,
    },
    ScheduleType.FPGA_Device: {
        StorageType.FPGA_Global,
        StorageType.FPGA_Local,
        StorageType.FPGA_Registers,
    },
}


class Language(enum.Enum):
    """Tasklet source language (paper §2.1 "External Code")."""

    Python = enum.auto()
    CPP = enum.auto()


class ReductionType(enum.Enum):
    """Recognized write-conflict-resolution functions.

    WCR memlets carry arbitrary lambdas; recognizing common reductions
    lets backends emit atomics/vendor reductions (paper §3.3).
    """

    Custom = enum.auto()
    Sum = enum.auto()
    Product = enum.auto()
    Min = enum.auto()
    Max = enum.auto()
    LogicalAnd = enum.auto()
    LogicalOr = enum.auto()


_WCR_CANONICAL = {
    "lambda a, b: a + b": ReductionType.Sum,
    "lambda a, b: a * b": ReductionType.Product,
    "lambda a, b: min(a, b)": ReductionType.Min,
    "lambda a, b: max(a, b)": ReductionType.Max,
    "lambda a, b: a and b": ReductionType.LogicalAnd,
    "lambda a, b: a or b": ReductionType.LogicalOr,
}

_WCR_ALIASES = {
    "sum": "lambda a, b: a + b",
    "+": "lambda a, b: a + b",
    "product": "lambda a, b: a * b",
    "*": "lambda a, b: a * b",
    "min": "lambda a, b: min(a, b)",
    "max": "lambda a, b: max(a, b)",
}


def canonicalize_wcr(wcr: Optional[str]) -> Optional[str]:
    """Normalize a WCR spec (alias or lambda string) to a lambda string."""
    if wcr is None:
        return None
    wcr = wcr.strip()
    return _WCR_ALIASES.get(wcr, wcr)


def detect_reduction_type(wcr: Optional[str]) -> ReductionType:
    wcr = canonicalize_wcr(wcr)
    if wcr is None:
        raise ValueError("no WCR given")
    normalized = " ".join(wcr.split())
    return _WCR_CANONICAL.get(normalized, ReductionType.Custom)


#: Identity element per reduction (used by Reduce lowering).
REDUCTION_IDENTITY = {
    ReductionType.Sum: 0,
    ReductionType.Product: 1,
    ReductionType.Min: None,  # type-dependent (+inf)
    ReductionType.Max: None,  # type-dependent (-inf)
    ReductionType.LogicalAnd: True,
    ReductionType.LogicalOr: False,
}
