"""Node types of SDFG state multigraphs (paper Table 1, Appendix A.1).

Every node carries named *connectors* — attachment points for edges.
Scope nodes (Map/Consume entry/exit) use the ``IN_x``/``OUT_x`` naming
convention to relay memlets across the scope boundary; tasklets use
their declared input/output variable names.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.instrumentation.types import InstrumentationType
from repro.sdfg.dtypes import Language, ScheduleType, canonicalize_wcr, typeclass
from repro.symbolic import Expr, Range, Subset, parse_expr, sympify

_node_counter = itertools.count()


class Node:
    """Base class: identity-hashed, ordered by creation for determinism."""

    def __init__(self):
        self.in_connectors: Set[str] = set()
        self.out_connectors: Set[str] = set()
        self._creation_id = next(_node_counter)

    def add_in_connector(self, name: str) -> str:
        self.in_connectors.add(name)
        return name

    def add_out_connector(self, name: str) -> str:
        self.out_connectors.add(name)
        return name

    def remove_in_connector(self, name: str) -> None:
        self.in_connectors.discard(name)

    def remove_out_connector(self, name: str) -> None:
        self.out_connectors.discard(name)

    def next_in_connector(self) -> str:
        """Fresh ``IN_k`` connector name."""
        k = 1
        while f"IN_{k}" in self.in_connectors:
            k += 1
        return f"IN_{k}"

    def next_out_connector(self) -> str:
        k = 1
        while f"OUT_{k}" in self.out_connectors:
            k += 1
        return f"OUT_{k}"

    @property
    def label(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.label}#{self._creation_id}"


class AccessNode(Node):
    """Reference to a data container by name (Data or Stream descriptor)."""

    def __init__(self, data: str):
        super().__init__()
        self.data = data

    @property
    def label(self) -> str:
        return self.data

    def desc(self, sdfg):
        """Resolve this node's descriptor in the given SDFG."""
        return sdfg.arrays[self.data]

    def __repr__(self) -> str:
        return f"AccessNode({self.data})"


class Tasklet(Node):
    """Fine-grained, stateless computation (paper §3.2).

    The code cannot access any memory except through its declared
    input/output connectors; it stays *immutable* throughout
    transformation and compilation.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str] = (),
        outputs: Sequence[str] = (),
        code: str = "",
        language: Language = Language.Python,
        code_global: str = "",
    ):
        super().__init__()
        self.name = name
        self.in_connectors = set(inputs)
        self.out_connectors = set(outputs)
        self.code = code
        self.language = language
        #: Preamble emitted at global scope (e.g. ``#include <mkl.h>``,
        #: paper Fig. 5's external-code support).
        self.code_global = code_global
        #: Instrumentation attached to this tasklet (timed per firing).
        self.instrument = InstrumentationType.NONE

    @property
    def label(self) -> str:
        return self.name

    def free_symbols(self) -> Set[str]:
        """Names referenced by the code that are not connectors or locals.

        Conservative AST-based analysis for Python tasklets; C++ tasklets
        report nothing (they may only touch connectors by contract).
        """
        if self.language != Language.Python:
            return set()
        import ast

        try:
            tree = ast.parse(self.code)
        except SyntaxError:
            return set()
        loaded: Set[str] = set()
        stored: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    stored.add(node.id)
                else:
                    loaded.add(node.id)
        builtins = {"min", "max", "abs", "int", "float", "bool", "range", "len",
                    "math", "np", "numpy", "True", "False", "None"}
        return loaded - stored - self.in_connectors - self.out_connectors - builtins

    def __repr__(self) -> str:
        return f"Tasklet({self.name})"


class Map:
    """Shared attribute object of a Map entry/exit pair (paper §3.3).

    ``params`` and ``range`` define the symbolic iteration space; the
    ``schedule`` decides the lowering (OpenMP loop, CUDA kernel, FPGA
    processing elements); ``unroll`` requests compile-time expansion.
    """

    def __init__(
        self,
        label: str,
        params: Sequence[str],
        rng: Union[str, Subset],
        schedule: ScheduleType = ScheduleType.Default,
        unroll: bool = False,
        vectorized: bool = False,
    ):
        self.label = label
        self.params: List[str] = list(params)
        if isinstance(rng, str):
            rng = Subset.from_string(rng)
        self.range: Subset = rng
        if len(self.params) != self.range.dims:
            raise ValueError(
                f"map {label!r}: {len(self.params)} params vs "
                f"{self.range.dims}-dimensional range"
            )
        self.schedule = schedule
        self.unroll = unroll
        #: Set by the Vectorization transformation: permits backends to use
        #: stronger lowerings (contraction/einsum, wide vector loads).
        self.vectorized = vectorized
        #: Instrumentation of the whole scope (shared by entry and exit).
        self.instrument = InstrumentationType.NONE

    def param_ranges(self) -> Dict[str, Range]:
        return dict(zip(self.params, self.range.ranges))

    def num_iterations(self) -> Expr:
        return self.range.num_elements()

    def __repr__(self) -> str:
        rngs = ", ".join(f"{p}={r}" for p, r in zip(self.params, self.range.ranges))
        return f"Map[{rngs}]"


class EntryNode(Node):
    """Base of scope-opening nodes."""


class ExitNode(Node):
    """Base of scope-closing nodes."""


class MapEntry(EntryNode):
    def __init__(self, map_obj: Map):
        super().__init__()
        self.map = map_obj

    @property
    def label(self) -> str:
        return f"{self.map.label}[{self.map.range}]"

    def __repr__(self) -> str:
        return f"MapEntry({self.map!r})"


class MapExit(ExitNode):
    def __init__(self, map_obj: Map):
        super().__init__()
        self.map = map_obj

    @property
    def label(self) -> str:
        return f"{self.map.label}[{self.map.range}]"

    def __repr__(self) -> str:
        return f"MapExit({self.map!r})"


class Consume:
    """Shared attribute object of a Consume entry/exit pair (paper §3.3).

    ``num_pes`` processing elements pop from the input stream until the
    quiescence ``condition`` (a boolean expression over symbols,
    including ``len_<stream>``) evaluates true.
    """

    def __init__(
        self,
        label: str,
        pe_param: str,
        num_pes: Union[int, str, Expr],
        condition: Optional[str] = None,
        schedule: ScheduleType = ScheduleType.Default,
    ):
        self.label = label
        self.pe_param = pe_param
        self.num_pes = sympify(num_pes)
        self.condition = condition  # None = run until stream is empty
        self.schedule = schedule
        #: Instrumentation of the whole scope (shared by entry and exit).
        self.instrument = InstrumentationType.NONE

    def __repr__(self) -> str:
        cond = self.condition or "len(stream) == 0"
        return f"Consume[{self.pe_param}=0:{self.num_pes}, {cond}]"


class ConsumeEntry(EntryNode):
    def __init__(self, consume: Consume):
        super().__init__()
        self.consume = consume
        # The stream element enters the scope through this connector.
        self.add_in_connector("IN_stream")
        self.add_out_connector("OUT_stream")

    @property
    def label(self) -> str:
        return f"{self.consume.label}[p=0:{self.consume.num_pes}]"

    def __repr__(self) -> str:
        return f"ConsumeEntry({self.consume!r})"


class ConsumeExit(ExitNode):
    def __init__(self, consume: Consume):
        super().__init__()
        self.consume = consume

    @property
    def label(self) -> str:
        return f"{self.consume.label}[p=0:{self.consume.num_pes}]"

    def __repr__(self) -> str:
        return f"ConsumeExit({self.consume!r})"


class Reduce(Node):
    """Target-optimized reduction over given axes (paper Table 1).

    Semantically a map over the input subset with an identity tasklet and
    a WCR output memlet (Appendix A.2); backends lower it to optimized
    procedures instead.
    """

    def __init__(
        self,
        wcr: str,
        axes: Optional[Sequence[int]] = None,
        identity=None,
        label: str = "reduce",
    ):
        super().__init__()
        self.wcr = canonicalize_wcr(wcr)
        self.axes = tuple(axes) if axes is not None else None  # None = all axes
        self.identity = identity
        self.name = label
        self.add_in_connector("IN_1")
        self.add_out_connector("OUT_1")

    @property
    def label(self) -> str:
        ax = "all" if self.axes is None else ",".join(map(str, self.axes))
        return f"{self.name}[axes: {ax}]"

    def __repr__(self) -> str:
        return f"Reduce({self.wcr!r}, axes={self.axes})"


class NestedSDFG(Node):
    """Invoke node: calls a nested SDFG within a state (paper §3.4).

    Semantically equivalent to a tasklet — no external memory access
    except through connectors.  ``symbol_mapping`` binds the nested
    SDFG's free symbols to expressions of the outer scope.
    """

    def __init__(
        self,
        label: str,
        sdfg,
        inputs: Sequence[str],
        outputs: Sequence[str],
        symbol_mapping: Optional[Mapping[str, Union[str, int, Expr]]] = None,
    ):
        super().__init__()
        self.name = label
        self.sdfg = sdfg
        self.in_connectors = set(inputs)
        self.out_connectors = set(outputs)
        self.symbol_mapping: Dict[str, Expr] = {
            k: sympify(v) for k, v in (symbol_mapping or {}).items()
        }
        sdfg.parent_node = self

    @property
    def label(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"NestedSDFG({self.name})"
